// Benchmark harness regenerating every table/figure of the AVFI paper's
// evaluation (DSN 2018). The paper has no numbered tables; its evaluation
// is Figures 2-4:
//
//	BenchmarkFigure2InputFaultMSR  — Fig 2: mission success rate per input fault
//	BenchmarkFigure3InputFaultVPK  — Fig 3: violations/km per input fault
//	BenchmarkFigure4OutputDelayVPK — Fig 4: violations/km vs output delay
//
// Each figure bench runs its campaign (training the agent once per process,
// cached) and reports the figure's series as benchmark metrics, so
//
//	go test -bench 'Figure' -benchmem
//
// prints the reproduced series next to the timing. Absolute values depend
// on this repository's simulator substrate; EXPERIMENTS.md records the
// paper-vs-measured comparison. Micro-benchmarks for the substrate hot
// paths follow the figure benches.
package avfi_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/avfi/avfi"
)

// Campaign scale for the figure benches; must match EXPERIMENTS.md.
const (
	benchMissions = 6
	benchReps     = 2
	benchSeed     = 12345
)

var (
	paperOnce  sync.Once
	paperFig23 *avfi.ResultSet
	paperFig4  *avfi.ResultSet
	paperErr   error
)

// paperCampaigns trains the experiment agent once per process and runs the
// Figure 2/3 and Figure 4 campaigns; tests and benchmarks share the cached
// results so one `go test -bench .` invocation pays for them once.
func paperCampaigns(tb testing.TB) (*avfi.ResultSet, *avfi.ResultSet) {
	tb.Helper()
	paperOnce.Do(func() {
		spec := avfi.DefaultPretrainSpec()
		base := avfi.CampaignConfig{
			World:       avfi.DefaultWorldConfig(),
			Agent:       avfi.AgentSource{Pretrain: &spec},
			Missions:    benchMissions,
			Repetitions: benchReps,
			Seed:        benchSeed,
		}
		cfg := base
		cfg.Injectors = avfi.InputFaultSuite()
		runner, err := avfi.NewCampaign(cfg)
		if err != nil {
			paperErr = err
			return
		}
		if paperFig23, err = runner.Run(); err != nil {
			paperErr = err
			return
		}
		cfg = base
		cfg.Injectors = avfi.DelaySweep(avfi.Fig4Frames())
		if runner, err = avfi.NewCampaign(cfg); err != nil {
			paperErr = err
			return
		}
		paperFig4, paperErr = runner.Run()
	})
	if paperErr != nil {
		tb.Fatal(paperErr)
	}
	return paperFig23, paperFig4
}

// benchCampaigns is the benchmark-facing alias.
func benchCampaigns(b *testing.B) (*avfi.ResultSet, *avfi.ResultSet) {
	b.Helper()
	return paperCampaigns(b)
}

// BenchmarkFigure2InputFaultMSR regenerates Figure 2: mission success rate
// (%) for {noinject, gaussian, saltpepper, solidocc, transpocc, waterdrop}.
func BenchmarkFigure2InputFaultMSR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig23, _ := benchCampaigns(b)
		b.StopTimer()
		for _, rep := range fig23.Reports {
			b.ReportMetric(rep.MSR, fmt.Sprintf("MSR_%%_%s", rep.Injector))
		}
		b.StartTimer()
	}
}

// BenchmarkFigure3InputFaultVPK regenerates Figure 3: total violations per
// km driven for the same injector suite (median of the per-episode
// distribution, as the paper's box plot).
func BenchmarkFigure3InputFaultVPK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig23, _ := benchCampaigns(b)
		b.StopTimer()
		for _, rep := range fig23.Reports {
			b.ReportMetric(rep.VPK.Median, fmt.Sprintf("VPKmed_%s", rep.Injector))
			b.ReportMetric(rep.MeanVPK, fmt.Sprintf("VPKmean_%s", rep.Injector))
		}
		b.StartTimer()
	}
}

// BenchmarkFigure4OutputDelayVPK regenerates Figure 4: total violations per
// km vs the injected output delay between the agent and actuation, for
// delays {0, 5, 10, 20, 30} frames at 15 FPS.
func BenchmarkFigure4OutputDelayVPK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fig4 := benchCampaigns(b)
		b.StopTimer()
		for _, rep := range fig4.Reports {
			b.ReportMetric(rep.VPK.Median, fmt.Sprintf("VPKmed_%s", rep.Injector))
			b.ReportMetric(rep.MSR, fmt.Sprintf("MSR_%%_%s", rep.Injector))
		}
		b.StartTimer()
	}
}
