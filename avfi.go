// Package avfi is the public API of AVFI, the Autonomous Vehicle Fault
// Injector — a Go reproduction of "AVFI: Fault Injection for Autonomous
// Vehicles" (Jha, Banerjee, Cyriac, Kalbarczyk, Iyer; DSN 2018).
//
// AVFI assesses the end-to-end resilience of an autonomous-driving stack by
// injecting faults into its sensor-compute-actuate loop and measuring
// domain-specific failure metrics. This package bundles:
//
//   - a self-contained urban driving simulator (procedural towns, kinematic
//     vehicle physics, a software-rendered hood camera, NPC traffic and
//     pedestrians) standing in for the paper's CARLA/Unreal substrate;
//   - a conditional imitation-learning driving agent (trainable from the
//     built-in oracle autopilot) standing in for the paper's IL-CNN;
//   - four classes of fault injectors — data (camera/GPS/speed), hardware
//     (bit flips, stuck-at), timing (delay/drop/reorder on the control
//     path) and machine-learning (weight noise and bit flips);
//   - a sharded pool of persistent, session-multiplexed simulation
//     engines: a campaign runs over one server connection per engine
//     (and, over TCP, one listener each), with concurrent episodes
//     interleaved as protocol sessions, least-loaded dispatch across
//     engines (CampaignConfig.Pool), bounded retry of transient episode
//     failures, and replacement of dead backends;
//   - a streaming results pipeline: episode records flow through
//     incremental per-cell aggregation and an optional RecordSink (e.g.
//     NewJSONLSink), so a campaign can retain just a small fixed-size
//     statistics digest per episode instead of full records
//     (CampaignConfig.DiscardRecords);
//   - campaign orchestration over either the classic flat injector sweep or
//     a ScenarioMatrix (weather x traffic density x AEB x windowed fault
//     activation x injector), with the paper's resilience metrics: Mission
//     Success Rate, Traffic Violations per KM, Accidents per KM, and Time
//     to Traffic Violation;
//   - an adaptive campaign orchestrator (Runner.RunAdaptive): a round-based
//     plan -> observe -> reallocate loop that steers the episode budget
//     toward high-risk scenario cells with pluggable policies — Uniform
//     (the exhaustive baseline), SuccessiveHalving (prunes low-risk cells)
//     and UCB (bandit-style exploration) — all deterministic given the
//     campaign seed;
//   - campaign resume: LoadRecordsJSONL turns a partial JSONL episode log
//     back into records, and CampaignConfig.Resume seeds a new run with
//     them, skipping every (cell, mission, repetition) already recorded;
//   - a distributed fleet mode: SimWorker serves episodes to remote
//     campaigns (avfi -serve), PoolConfig.Backends dials a fleet of
//     workers round-robin with retry and dead-worker replacement, and
//     ShardSinks/LoadRecordsDir/MergeRecordsJSONL shard the durable
//     episode log across independent writers — all bit-identical to the
//     single in-process engine run for the same seed, even under a
//     mid-campaign backend kill.
//
// # Quick start
//
//	spec := avfi.DefaultPretrainSpec()
//	cfg := avfi.CampaignConfig{
//		World:       avfi.DefaultWorldConfig(),
//		Agent:       avfi.AgentSource{Pretrain: &spec},
//		Injectors:   avfi.InputFaultSuite(),
//		Missions:    6,
//		Repetitions: 2,
//		Seed:        1,
//	}
//	runner, err := avfi.NewCampaign(cfg)
//	// ...
//	results, err := runner.Run()
//	avfi.PrintTable(os.Stdout, "input faults", results.Reports)
//
// # Scenario matrices
//
// Replace CampaignConfig.Injectors with a Matrix to sweep a combinatorial
// scenario space; every cell becomes one report column:
//
//	cfg.Injectors = nil
//	cfg.Matrix = &avfi.ScenarioMatrix{
//		Weathers:  []avfi.Weather{avfi.WeatherClear, avfi.WeatherRain},
//		Densities: []avfi.Density{{}, {NPCs: 8, Pedestrians: 4}},
//		AEB:       []bool{false, true},
//		Injectors: avfi.InputFaultSuite(),
//	}
//
// # Adaptive campaigns
//
// Instead of sweeping every cell exhaustively, let a policy steer the
// episode budget toward the cells that are producing violations:
//
//	rs, err := runner.RunAdaptive(ctx, avfi.AdaptiveConfig{
//		Policy: avfi.UCBPolicy(0), // or SuccessiveHalvingPolicy()
//		Budget: 5000,              // total episodes, any grid size
//	})
//	// rs.Adaptive reports the per-round and per-cell allocation.
//
// Campaigns remain a pure function of their configuration: all mission,
// episode and injector randomness derives from Config.Seed, so results
// reproduce bit-identically run to run — adaptive allocation included.
//
// The types below are aliases of the implementation packages, so values
// returned here interoperate with the whole library surface.
package avfi

import (
	"io"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/campaign"
	"github.com/avfi/avfi/internal/fault"

	// Link every built-in fault injector into the registry.
	_ "github.com/avfi/avfi/internal/fault/hwfault"
	_ "github.com/avfi/avfi/internal/fault/imagefault"
	_ "github.com/avfi/avfi/internal/fault/mlfault"
	_ "github.com/avfi/avfi/internal/fault/sensorfault"
	_ "github.com/avfi/avfi/internal/fault/timingfault"

	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/world"
)

// Campaign configuration and execution.
type (
	// CampaignConfig parameterizes a fault-injection campaign.
	CampaignConfig = campaign.Config
	// InjectorSource names/constructs one injector column of a campaign.
	InjectorSource = campaign.InjectorSource
	// AgentSource supplies the system under test.
	AgentSource = campaign.AgentSource
	// Runner executes campaigns.
	Runner = campaign.Runner
	// ResultSet is a finished campaign.
	ResultSet = campaign.ResultSet
	// ScenarioMatrix sweeps weather x density x AEB x activation x injector.
	ScenarioMatrix = campaign.ScenarioMatrix
	// ScenarioCell is one resolved point of a scenario matrix.
	ScenarioCell = campaign.ScenarioCell
	// Density is one traffic-population level of a scenario matrix.
	Density = campaign.Density
	// EngineStats describes one persistent engine's work for a campaign
	// (and, as ResultSet.Engine, the pool aggregate).
	EngineStats = campaign.EngineStats
	// PoolConfig shards a campaign across a pool of persistent engines and
	// bounds per-episode retry after transient backend failures.
	PoolConfig = campaign.PoolConfig
	// PoolStats reports the engine pool's work: per-engine stats, episode
	// retries, and backend replacements.
	PoolStats = campaign.PoolStats
	// RecordSink consumes episode records as they complete — the streaming
	// results path for campaigns too large to retain in memory.
	RecordSink = campaign.RecordSink
	// RecordSource streams episode records one at a time (io.EOF ends the
	// stream) — the O(1)-memory resume path (CampaignConfig.ResumeFrom).
	RecordSource = campaign.RecordSource
	// RecordStream is a RecordSource over a log file or shard directory;
	// the caller must Close it (see OpenRecordsPath).
	RecordStream = campaign.RecordStream
	// RecordFormat selects the on-disk record log encoding: FormatJSONL
	// (text interchange) or FormatBinary (hot-path frames), with
	// FormatAuto detecting per file on read.
	RecordFormat = campaign.RecordFormat
	// CellProgress is one cell's running aggregate (VPK stats plus
	// violation tallies), delivered to CampaignConfig.ProgressV2.
	CellProgress = campaign.CellProgress
	// SimWorker is a standalone remote simulator backend: it accepts many
	// campaign connections over its lifetime, each served by its own
	// session-multiplexed engine (see NewSimWorker and PoolConfig.Backends).
	SimWorker = simserver.Worker
)

// Adaptive campaign orchestration (Runner.RunAdaptive): risk-driven
// episode allocation over the scenario matrix.
type (
	// AdaptiveConfig parameterizes Runner.RunAdaptive: policy, total
	// episode budget, round size.
	AdaptiveConfig = campaign.AdaptiveConfig
	// AdaptiveStats reports how an adaptive campaign spent its budget over
	// rounds and cells (ResultSet.Adaptive).
	AdaptiveStats = campaign.AdaptiveStats
	// RoundStats summarizes one adaptive round.
	RoundStats = campaign.RoundStats
	// CellBudget is one cell's share of an adaptive campaign's work.
	CellBudget = campaign.CellBudget
	// AdaptivePolicy decides each round's episode allocation; implement it
	// to plug a custom sampling strategy into RunAdaptive.
	AdaptivePolicy = adaptive.Policy
	// AdaptiveCellStats is the per-cell posterior a policy allocates from.
	AdaptiveCellStats = adaptive.CellStats
)

// Metrics.
type (
	// Report aggregates one injector's resilience metrics (MSR, VPK, APK,
	// TTV) — one bar of the paper's figures.
	Report = metrics.Report
	// EpisodeRecord is one mission's outcome.
	EpisodeRecord = metrics.EpisodeRecord
	// ViolationRecord is one safety violation within an episode.
	ViolationRecord = metrics.ViolationRecord
	// Comparison is a bootstrap-backed baseline-vs-treatment contrast.
	Comparison = metrics.Comparison
	// ReportBuilder aggregates one scenario column incrementally; its Build
	// matches batch BuildReport exactly, in any record-completion order.
	ReportBuilder = metrics.ReportBuilder
)

// World and agent.
type (
	// WorldConfig selects the town and camera.
	WorldConfig = sim.WorldConfig
	// World is a generated simulation arena.
	World = sim.World
	// EpisodeConfig parameterizes one mission.
	EpisodeConfig = sim.EpisodeConfig
	// Agent is the imitation-learning driving agent.
	Agent = agent.Agent
	// AgentConfig sizes the agent's networks.
	AgentConfig = agent.Config
	// PretrainSpec is a (data, training) recipe for the agent.
	PretrainSpec = agent.PretrainSpec
	// TownConfig parameterizes procedural town generation.
	TownConfig = world.TownConfig
	// Weather is the episode's ambient condition.
	Weather = world.Weather
)

// Fault-injection extension points: implement these to plug custom fault
// models into a campaign (see examples/customfault).
type (
	// InputInjector corrupts sensor data before the agent sees it.
	InputInjector = fault.InputInjector
	// OutputInjector corrupts control commands after the agent.
	OutputInjector = fault.OutputInjector
	// LidarInjector is the optional extra role for input injectors that
	// corrupt the LIDAR scan the AEB safety monitor watches.
	LidarInjector = fault.LidarInjector
	// TimingInjector reshapes the control stream in time.
	TimingInjector = fault.TimingInjector
	// ModelInjector corrupts the agent's network parameters.
	ModelInjector = fault.ModelInjector
	// Window is a fault activation interval in frames.
	Window = fault.Window
	// Image is the camera frame fault models operate on.
	Image = render.Image
	// Control is a vehicle actuation command.
	Control = physics.Control
	// Rand is the deterministic random stream handed to injectors.
	Rand = rng.Stream
	// TopDownConfig parameterizes the spectator (bird's-eye) view.
	TopDownConfig = render.TopDownConfig
)

// Weather presets.
const (
	WeatherClear = world.WeatherClear
	WeatherRain  = world.WeatherRain
	WeatherFog   = world.WeatherFog
)

// Campaign service: the long-lived control plane that owns one shared
// engine fleet, lets workers announce themselves (mid-campaign included),
// and schedules many concurrent campaigns fairly over it (avfi -service
// is this, as a process; see NewCampaignService).
type (
	// CampaignService is the control plane: worker registry, campaign
	// submission, fair multi-campaign scheduling, results buffering.
	CampaignService = campaign.Service
	// CampaignServiceConfig parameterizes a CampaignService.
	CampaignServiceConfig = campaign.ServiceConfig
	// CampaignSpec is one declarative campaign submission (the JSON body
	// of POST /campaigns).
	CampaignSpec = campaign.CampaignSpec
	// MatrixSpec is CampaignSpec's scenario-matrix form.
	MatrixSpec = campaign.MatrixSpec
	// AdaptiveSpec is CampaignSpec's adaptive-allocation form.
	AdaptiveSpec = campaign.AdaptiveSpec
	// CampaignInfo is one submitted campaign's API view (spec, buffered
	// record count, live status).
	CampaignInfo = campaign.CampaignInfo
	// WorkerInfo is one registered worker's API view.
	WorkerInfo = campaign.WorkerInfo
	// WorldMismatchError reports a dialed worker serving a different
	// world configuration than the campaign's (check with errors.As).
	WorldMismatchError = campaign.WorldMismatchError
)

// NewCampaignService starts the campaign control plane: it resolves the
// agent once, fingerprints the world for the worker handshake, and begins
// re-dialing registered workers that are down. Mount svc.Handler() on a
// TelemetryServer (srv.Handle("/campaigns", ...) — or just use avfi
// -service) to expose the HTTP API, and Close it to tear the fleet down.
func NewCampaignService(cfg CampaignServiceConfig) (*CampaignService, error) {
	return campaign.NewService(cfg)
}

// Telemetry and observability: every AVFI process can expose its live
// metrics (Prometheus text), a JSON status snapshot, health, and pprof on
// one address (cmd/avfi's -status-addr does exactly this).
type (
	// TelemetryServer is the status/metrics/pprof HTTP endpoint returned
	// by ServeTelemetry; attach JSON sections with SetStatus and stop it
	// with Close.
	TelemetryServer = telemetry.Server
	// CampaignStatus is Runner.Status's snapshot: campaign progress,
	// per-engine health, per-cell timing, adaptive round state.
	CampaignStatus = campaign.CampaignStatus
	// CellStatus is one scenario cell's live progress within a
	// CampaignStatus.
	CellStatus = campaign.CellStatus
	// AdaptiveStatus is the adaptive round loop's live state within a
	// CampaignStatus.
	AdaptiveStatus = campaign.AdaptiveStatus
	// WorkerStatus is SimWorker.Status's snapshot: connections served and
	// active.
	WorkerStatus = simserver.WorkerStatus
	// LogLevel selects the process-wide logging verbosity (see
	// SetLogLevel).
	LogLevel = telemetry.Level
)

// Log levels for SetLogLevel, most to least verbose.
const (
	LogDebug = telemetry.LevelDebug
	LogInfo  = telemetry.LevelInfo
	LogWarn  = telemetry.LevelWarn
	LogError = telemetry.LevelError
	LogOff   = telemetry.LevelOff
)

// ServeTelemetry starts the observability endpoint on addr (":0" picks a
// port; see TelemetryServer.Addr) serving /metrics (Prometheus text
// exposition), /statusz (JSON), /healthz, and /debug/pprof/*. It also
// enables metric collection process-wide, so the instruments the endpoint
// exposes are live. Campaigns attach their progress with
// srv.SetStatus("campaign", func() any { return runner.Status() }).
func ServeTelemetry(addr string) (*TelemetryServer, error) {
	return telemetry.Serve(addr, nil)
}

// SetTelemetryEnabled turns metric collection on or off process-wide
// without serving an endpoint (ServeTelemetry enables it implicitly).
// Collection is off by default and costs one predicted branch per
// instrument when disabled.
func SetTelemetryEnabled(on bool) { telemetry.SetEnabled(on) }

// TelemetryEnabled reports whether metric collection is on.
func TelemetryEnabled() bool { return telemetry.Enabled() }

// SetLogLevel sets the process-wide log verbosity. The default is LogWarn:
// quiet operation, with engine deaths, slow episodes and dropped sessions
// still surfaced.
func SetLogLevel(l LogLevel) { telemetry.SetLogLevel(l) }

// WriteMetrics writes the process's metrics as Prometheus text exposition
// — the /metrics payload, for callers that want it without an HTTP server.
func WriteMetrics(w io.Writer) error {
	return telemetry.Default.WritePrometheus(w)
}

// LintPrometheusText validates a Prometheus text exposition payload —
// what CI uses to fail on a malformed /metrics scrape.
func LintPrometheusText(body []byte) error { return telemetry.LintPrometheus(body) }

// NoInject is the canonical name of the fault-free baseline column.
const NoInject = fault.NoopName

// FPS is the simulation frame rate (the paper's 15 frames per second).
const FPS = sim.FPS

// NewCampaign builds a campaign runner: it generates the world, resolves
// (and if necessary trains) the agent, and samples the missions.
func NewCampaign(cfg CampaignConfig) (*Runner, error) {
	return campaign.NewRunner(cfg)
}

// NewWorld generates a simulation world.
func NewWorld(cfg WorldConfig) (*World, error) { return sim.NewWorld(cfg) }

// DefaultWorldConfig returns the town/camera used by the paper-figure
// experiments.
func DefaultWorldConfig() WorldConfig { return sim.DefaultWorldConfig() }

// DefaultPretrainSpec returns the training recipe behind the experiments'
// pretrained agent.
func DefaultPretrainSpec() PretrainSpec { return agent.DefaultPretrainSpec() }

// NewAgent builds an untrained agent (use TrainAgent or Agent.Train to fit
// it; an untrained agent drives, badly).
func NewAgent(cfg AgentConfig) (*Agent, error) { return agent.New(cfg) }

// DefaultAgentConfig sizes the agent for the default camera.
func DefaultAgentConfig() AgentConfig { return agent.DefaultConfig() }

// TrainAgent trains a fresh agent on the world per the spec (no caching).
func TrainAgent(w *World, spec PretrainSpec) (*Agent, error) {
	return agent.TrainNew(w, spec)
}

// PretrainedAgent returns the process-cached trained agent for the spec.
func PretrainedAgent(w *World, spec PretrainSpec) (*Agent, error) {
	return agent.Pretrained(w, spec)
}

// LoadAgent reads an agent saved with Agent.Save.
func LoadAgent(r io.Reader) (*Agent, error) { return agent.Load(r) }

// Injector resolves a registered injector name into a campaign column.
// See RegisteredInjectors for the available names.
func Injector(name string) InjectorSource { return campaign.Registry(name) }

// Instantiate builds one injector instance from a source (for driving
// episodes outside the campaign runner; the runner instantiates per episode
// itself).
func Instantiate(src InjectorSource) (interface{}, error) {
	return campaign.Instantiate(src)
}

// NewRand returns a deterministic random stream for hand-rolled episode
// loops; campaigns derive their own streams from the campaign seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Compare bootstraps the MSR and VPK differences between two injectors'
// records (95% intervals, deterministic given the stream).
func Compare(baseline, treatment []EpisodeRecord, iters int, r *Rand) (Comparison, error) {
	return metrics.Compare(baseline, treatment, iters, r)
}

// RegisteredInjectors lists every built-in injector name.
func RegisteredInjectors() []string { return fault.Names() }

// FaultClasses lists every fault class name ("data", "hardware", "timing",
// "ml", "comm", "actuator", "localization", "perception", "none").
func FaultClasses() []string {
	classes := fault.Classes()
	out := make([]string, 0, len(classes))
	for _, c := range classes {
		out = append(out, c.String())
	}
	return out
}

// InjectorsByClass lists the registered injector names of one fault class
// (see FaultClasses for the class names), sorted.
func InjectorsByClass(class string) ([]string, error) {
	c, err := fault.ParseClass(class)
	if err != nil {
		return nil, err
	}
	return fault.NamesByClass(c), nil
}

// FaultTaxonomySuite returns one representative injector per fault class
// plus the fault-free baseline — the cross-family campaign sweep.
func FaultTaxonomySuite() []InjectorSource { return campaign.TaxonomySuite() }

// InputFaultSuite returns the paper's Figure 2/3 columns: the baseline plus
// the five camera faults (gaussian, salt & pepper, solid occlusion,
// transparent occlusion, water drop).
func InputFaultSuite() []InjectorSource { return campaign.InputFaultSuite() }

// DelaySweep returns the paper's Figure 4 columns: output delay of k frames
// between decision and actuation for each k.
func DelaySweep(frames []int) []InjectorSource { return campaign.DelaySweep(frames) }

// Fig4Frames is the paper's Figure 4 x-axis: {0, 5, 10, 20, 30} frames.
func Fig4Frames() []int { return append([]int(nil), campaign.Fig4Frames...) }

// Windowed delays an injector's activation to startFrame (frames at FPS),
// enabling mid-episode injection and meaningful Time-To-Violation
// measurement.
func Windowed(src InjectorSource, startFrame int) InjectorSource {
	return campaign.Windowed(src, startFrame)
}

// PrintTable renders per-injector reports as an aligned text table.
func PrintTable(w io.Writer, title string, reports []Report) {
	campaign.PrintTable(w, title, reports)
}

// WriteRecordsCSV emits one CSV row per episode.
func WriteRecordsCSV(w io.Writer, records []EpisodeRecord) error {
	return campaign.WriteRecordsCSV(w, records)
}

// WriteReportsCSV emits one CSV row per injector aggregate.
func WriteReportsCSV(w io.Writer, reports []Report) error {
	return campaign.WriteReportsCSV(w, reports)
}

// WriteJSON emits a full result set as JSON.
func WriteJSON(w io.Writer, rs *ResultSet) error { return campaign.WriteJSON(w, rs) }

// NewJSONLSink returns a RecordSink streaming one JSON object per episode
// to w as records complete — a durable per-episode log whose memory
// footprint is independent of campaign size. Set it as
// CampaignConfig.Sink (typically with DiscardRecords) for million-episode
// sweeps. The caller keeps ownership of w.
func NewJSONLSink(w io.Writer) RecordSink { return campaign.NewJSONLSink(w) }

// NewBinarySink returns a RecordSink streaming one compact binary frame
// per episode to w — the hot-path counterpart of NewJSONLSink (several
// times cheaper to encode and decode, and auto-detected by every record
// reader). JSONL remains the interchange form; convert losslessly with
// avfi-records or MergeRecords. The caller keeps ownership of w.
func NewBinarySink(w io.Writer) RecordSink { return campaign.NewBinarySink(w) }

// Record log formats (see RecordFormat).
const (
	// FormatAuto detects per file on read; writers treat it as binary.
	FormatAuto = campaign.FormatAuto
	// FormatJSONL is the text interchange encoding.
	FormatJSONL = campaign.FormatJSONL
	// FormatBinary is the compact hot-path encoding.
	FormatBinary = campaign.FormatBinary
)

// ParseRecordFormat parses a record-format flag value: "auto", "jsonl",
// or "binary".
func ParseRecordFormat(s string) (RecordFormat, error) {
	return campaign.ParseRecordFormat(s)
}

// SniffRecordFormat reports a record log's format from its leading bytes:
// FormatBinary on the frame magic, FormatAuto on an empty prefix,
// FormatJSONL otherwise.
func SniffRecordFormat(prefix []byte) RecordFormat {
	return campaign.SniffRecordFormat(prefix)
}

// NewSimWorker builds a standalone simulator worker serving w's episodes
// to remote campaigns: Listen/Serve accept campaign connections for the
// worker's whole lifetime (avfi -serve is this, as a process). A campaign
// whose PoolConfig.Backends lists the worker's address produces results
// bit-identical to an in-process run, provided the worker's world
// configuration matches the campaign's. The worker announces that
// configuration's fingerprint in its capability hello, so a mismatched
// campaign (or CampaignService) rejects the pairing at dial time instead
// of silently producing divergent results.
func NewSimWorker(w *World) *SimWorker {
	wk := simserver.NewWorker(simserver.WorldFactory(w))
	wk.SetWorldHash(w.Config().Hash())
	return wk
}

// ShardLogName names shard i's JSONL record log inside a sharded
// -stream-records directory ("records-<i>.jsonl").
func ShardLogName(i int) string { return campaign.ShardLogName(i) }

// BinaryShardLogName names shard i's binary record log inside a sharded
// -stream-records directory ("records-<i>.bin").
func BinaryShardLogName(i int) string { return campaign.BinaryShardLogName(i) }

// LoadRecordsDir reads every shard log (records-*.jsonl and
// records-*.bin, format auto-detected per file) in a sharded record
// directory, in the canonical campaign order — the directory counterpart
// of LoadRecordsJSONL for CampaignConfig.Resume.
func LoadRecordsDir(dir string) ([]EpisodeRecord, error) {
	return campaign.LoadRecordsDir(dir)
}

// MergeRecordsJSONL merges any set of episode logs — shard logs, single
// logs, or a mix, in either record format — into the canonical sorted
// JSONL record stream on w, returning the record count. Sharded and
// single-sink runs of the same campaign merge to byte-identical output.
func MergeRecordsJSONL(w io.Writer, sources ...io.Reader) (int, error) {
	return campaign.MergeRecordsJSONL(w, sources...)
}

// MergeRecords merges any set of episode logs (formats auto-detected per
// source) into the canonical sorted record stream on w in the chosen
// output format — the format-general MergeRecordsJSONL, and the engine of
// the avfi-records converter. Merging streams one sorted run per source;
// memory is O(records) per source, never a combined copy.
func MergeRecords(w io.Writer, format RecordFormat, sources ...io.Reader) (int, error) {
	return campaign.MergeRecords(w, format, sources...)
}

// OpenRecordsPath opens an episode record log for streaming: a file
// streams its records, a directory streams every shard log it holds, one
// file descriptor and one record of memory at a time. Format is
// auto-detected per file. Set the stream as CampaignConfig.ResumeFrom to
// resume a campaign of any size in O(1) memory, and Close it after the
// run.
func OpenRecordsPath(path string) (*RecordStream, error) {
	return campaign.OpenRecordsPath(path)
}

// LoadRecords reads every record from one log in either format — the
// auto-detecting counterpart of LoadRecordsJSONL, with the same
// truncated-tail tolerance.
func LoadRecords(r io.Reader) ([]EpisodeRecord, error) {
	return campaign.LoadRecords(r)
}

// CompleteBinaryPrefixLen returns the byte length of the longest prefix
// of a binary record log holding only complete frames — what to truncate
// to before appending to a log that may end in a crash-truncated frame
// (the binary counterpart of clamping JSONL to its last newline).
func CompleteBinaryPrefixLen(r io.Reader) (int64, error) {
	return campaign.CompleteBinaryPrefixLen(r)
}

// LoadRecordsJSONL reads the episode records of a JSONL record sink — the
// durable log of a partial campaign. A truncated final line (crash
// mid-write) is tolerated and dropped. Feed the result to
// CampaignConfig.Resume to continue the campaign without re-running
// recorded episodes.
func LoadRecordsJSONL(r io.Reader) ([]EpisodeRecord, error) {
	return campaign.LoadRecordsJSONL(r)
}

// UniformPolicy spreads every adaptive round's budget evenly over all
// cells with remaining capacity — the exhaustive-sweep baseline.
func UniformPolicy() AdaptivePolicy { return adaptive.Uniform{} }

// SuccessiveHalvingPolicy prunes the scenario space geometrically: round k
// spends its budget on only the ceil(n/2^k) riskiest cells.
func SuccessiveHalvingPolicy() AdaptivePolicy { return adaptive.SuccessiveHalving{} }

// UCBPolicy allocates by upper confidence bound on each cell's violation
// rate; c scales the exploration bonus (0 means the default).
func UCBPolicy(c float64) AdaptivePolicy { return adaptive.UCB{C: c} }

// ParseAdaptivePolicy resolves a policy name (uniform|halving|ucb).
func ParseAdaptivePolicy(name string) (AdaptivePolicy, error) {
	return adaptive.ParsePolicy(name)
}

// AdaptivePolicies lists the built-in adaptive policy names.
func AdaptivePolicies() []string { return adaptive.Policies() }

// NewReportBuilder starts an empty incremental aggregator for one scenario
// column — for hand-rolled episode loops that want campaign-grade reports
// without retaining records.
func NewReportBuilder(injector string) *ReportBuilder {
	return metrics.NewReportBuilder(injector)
}

// DefaultTopDownConfig views the whole town at 256x256.
func DefaultTopDownConfig() TopDownConfig { return render.DefaultTopDownConfig() }

// WritePPM writes an image as binary PPM (P6) — works for camera frames and
// spectator views alike.
func WritePPM(w io.Writer, im *Image) error { return render.WritePPM(w, im) }
