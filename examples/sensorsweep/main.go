// Sensorsweep reproduces the paper's Figures 2 and 3: the full camera
// input-fault suite (Gaussian, salt & pepper, solid occlusion, transparent
// occlusion, water drop) against the fault-free baseline, reporting mission
// success rate and violations per km for each injector.
//
//	go run ./examples/sensorsweep
//	go run ./examples/sensorsweep -missions 8 -reps 3 -csv results.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/avfi/avfi"
)

func main() {
	missions := flag.Int("missions", 6, "navigation missions per injector")
	reps := flag.Int("reps", 2, "repetitions per mission")
	csvPath := flag.String("csv", "", "write per-episode records CSV here")
	flag.Parse()

	spec := avfi.DefaultPretrainSpec()
	cfg := avfi.CampaignConfig{
		World:       avfi.DefaultWorldConfig(),
		Agent:       avfi.AgentSource{Pretrain: &spec},
		Injectors:   avfi.InputFaultSuite(),
		Missions:    *missions,
		Repetitions: *reps,
		Seed:        42,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping %d input-fault injectors over %d missions x %d reps...\n",
		len(cfg.Injectors), *missions, *reps)
	rs, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Figure 2: mission success rate ==")
	for _, r := range rs.Reports {
		bar := ""
		for i := 0.0; i < r.MSR; i += 5 {
			bar += "#"
		}
		fmt.Printf("%-12s %5.1f%% %s\n", r.Injector, r.MSR, bar)
	}

	fmt.Println("\n== Figure 3: violations per km (median [q1, q3]) ==")
	for _, r := range rs.Reports {
		fmt.Printf("%-12s %6.2f [%5.2f, %5.2f]  (mean %.2f over %.2f km)\n",
			r.Injector, r.VPK.Median, r.VPK.Q1, r.VPK.Q3, r.MeanVPK, r.TotalKM)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := avfi.WriteRecordsCSV(f, rs.Records); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}
