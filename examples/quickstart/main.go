// Quickstart: train the driving agent, run a minimal fault-injection
// campaign (fault-free baseline vs Gaussian camera noise) and print the
// resilience metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/avfi/avfi"
)

func main() {
	// The agent trains in-process by imitating the built-in oracle
	// autopilot (about a minute); the result is cached for the process.
	spec := avfi.DefaultPretrainSpec()

	cfg := avfi.CampaignConfig{
		World: avfi.DefaultWorldConfig(),
		Agent: avfi.AgentSource{Pretrain: &spec},
		Injectors: []avfi.InjectorSource{
			avfi.Injector(avfi.NoInject),
			avfi.Injector("gaussian"),
		},
		Missions:    3,
		Repetitions: 1,
		Seed:        1,
	}

	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the agent and driving 6 episodes...")
	rs, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	avfi.PrintTable(os.Stdout, "quickstart campaign", rs.Reports)

	baseline, _ := rs.ReportFor(avfi.NoInject)
	noisy, _ := rs.ReportFor("gaussian")
	fmt.Printf("\nGaussian camera noise moved MSR from %.0f%% to %.0f%% and VPK from %.2f to %.2f\n",
		baseline.MSR, noisy.MSR, baseline.MeanVPK, noisy.MeanVPK)
}
