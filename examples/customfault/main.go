// Customfault shows how to extend AVFI with a user-defined fault model and
// run it in a campaign next to the built-ins — the extension path a
// downstream user takes to study a failure mode the library doesn't ship.
//
// The example implements two custom injectors:
//
//   - RollingShutterTear: an input fault that vertically shifts a band of
//     the camera image (a damaged imager's rolling-shutter artifact);
//
//   - BrakeFade: an output fault that attenuates brake commands over time
//     (overheating brakes), a classic creeping actuator fault.
//
//     go run ./examples/customfault
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/avfi/avfi"
)

// RollingShutterTear shifts a horizontal band of the image sideways by a
// few pixels each frame, tearing the geometry the lane detector relies on.
type RollingShutterTear struct {
	// BandFrac is the torn fraction of the image height.
	BandFrac float64
	// MaxShift is the maximum horizontal tear in pixels.
	MaxShift int
}

var _ avfi.InputInjector = (*RollingShutterTear)(nil)

// Name implements avfi.InputInjector.
func (*RollingShutterTear) Name() string { return "shuttertear" }

// InjectImage implements avfi.InputInjector.
func (f *RollingShutterTear) InjectImage(img *avfi.Image, frame int, r *avfi.Rand) {
	bandH := int(float64(img.H) * f.BandFrac)
	if bandH < 1 {
		bandH = 1
	}
	y0 := r.Intn(img.H - bandH + 1)
	shift := 1 + r.Intn(f.MaxShift)
	if r.Bool(0.5) {
		shift = -shift
	}
	for y := y0; y < y0+bandH; y++ {
		for x := 0; x < img.W; x++ {
			src := x + shift
			if src < 0 || src >= img.W {
				img.SetRGB(y, x, 0, 0, 0)
				continue
			}
			rr, gg, bb := img.RGB(y, src)
			img.SetRGB(y, x, rr, gg, bb)
		}
	}
}

// InjectMeasurements implements avfi.InputInjector (camera-only fault).
func (*RollingShutterTear) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *avfi.Rand) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// BrakeFade attenuates the brake channel progressively: after FadeFrames
// frames the brakes deliver only MinEffect of the commanded force.
type BrakeFade struct {
	FadeFrames int
	MinEffect  float64
}

var _ avfi.OutputInjector = (*BrakeFade)(nil)

// Name implements avfi.OutputInjector.
func (*BrakeFade) Name() string { return "brakefade" }

// InjectControl implements avfi.OutputInjector.
func (f *BrakeFade) InjectControl(ctl avfi.Control, frame int, _ *avfi.Rand) avfi.Control {
	t := float64(frame) / float64(f.FadeFrames)
	if t > 1 {
		t = 1
	}
	effect := 1 - t*(1-f.MinEffect)
	ctl.Brake *= effect
	return ctl
}

func main() {
	spec := avfi.DefaultPretrainSpec()
	cfg := avfi.CampaignConfig{
		World: avfi.DefaultWorldConfig(),
		Agent: avfi.AgentSource{Pretrain: &spec},
		Injectors: []avfi.InjectorSource{
			avfi.Injector(avfi.NoInject),
			{
				Name: "shuttertear",
				New: func() interface{} {
					return &RollingShutterTear{BandFrac: 0.3, MaxShift: 6}
				},
			},
			{
				Name: "brakefade",
				New: func() interface{} {
					return &BrakeFade{FadeFrames: 150, MinEffect: 0.15}
				},
			},
		},
		Missions:    4,
		Repetitions: 2,
		Seed:        7,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running custom fault models against the baseline...")
	rs, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	avfi.PrintTable(os.Stdout, "custom fault campaign", rs.Reports)
	fmt.Println("\nAny type implementing avfi.InputInjector / OutputInjector /")
	fmt.Println("TimingInjector / ModelInjector can be swept the same way.")
}
