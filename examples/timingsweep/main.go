// Timingsweep reproduces the paper's Figure 4: the effect of delaying the
// driving agent's output by k frames before actuation. At the simulator's
// 15 FPS, the paper's worst case of 30 frames is a 2-second lag between
// decision and actuation — enough to make the vehicle uncontrollable.
//
//	go run ./examples/timingsweep
//	go run ./examples/timingsweep -frames 0,3,6,12,24,45
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/avfi/avfi"
)

func main() {
	framesFlag := flag.String("frames", "0,5,10,20,30", "comma-separated delay values in frames")
	missions := flag.Int("missions", 6, "navigation missions per delay")
	reps := flag.Int("reps", 2, "repetitions per mission")
	flag.Parse()

	frames, err := parseFrames(*framesFlag)
	if err != nil {
		log.Fatal(err)
	}

	spec := avfi.DefaultPretrainSpec()
	cfg := avfi.CampaignConfig{
		World:       avfi.DefaultWorldConfig(),
		Agent:       avfi.AgentSource{Pretrain: &spec},
		Injectors:   avfi.DelaySweep(frames),
		Missions:    *missions,
		Repetitions: *reps,
		Seed:        42,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping output delays %v frames (%.2fs .. %.2fs at %d FPS)...\n",
		frames, float64(frames[0])/avfi.FPS, float64(frames[len(frames)-1])/avfi.FPS, avfi.FPS)
	rs, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Figure 4: violations per km vs output delay ==")
	fmt.Printf("%-10s %-8s %-40s\n", "delay", "med VPK", "")
	for i, r := range rs.Reports {
		bar := strings.Repeat("#", int(r.VPK.Median))
		fmt.Printf("%2d frames %7.2f  %s\n", frames[i], r.VPK.Median, bar)
	}
	fmt.Println("\nMission success collapses as the lag grows:")
	for i, r := range rs.Reports {
		fmt.Printf("%2d frames (%.2fs lag): MSR %5.1f%%, mean APK %.2f\n",
			frames[i], float64(frames[i])/avfi.FPS, r.MSR, r.MeanAPK)
	}
}

func parseFrames(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad frame count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no delay values given")
	}
	return out, nil
}
