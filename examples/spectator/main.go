// Spectator drives one mission with the trained agent and saves what both
// the agent and a bird's-eye observer see: the hood camera frames (with a
// fault injector optionally applied) and top-down spectator views, as PPM
// images any viewer opens.
//
//	go run ./examples/spectator -out /tmp/avfi-frames
//	go run ./examples/spectator -out /tmp/avfi-frames -fault solidocc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/avfi/avfi"
)

func main() {
	outDir := flag.String("out", "avfi-frames", "output directory for PPM frames")
	faultName := flag.String("fault", "", "optional camera fault to visualize (e.g. gaussian, solidocc)")
	every := flag.Int("every", 15, "save every Nth frame (15 = once per simulated second)")
	flag.Parse()

	if err := run(*outDir, *faultName, *every); err != nil {
		log.Fatal(err)
	}
}

func run(outDir, faultName string, every int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	w, err := avfi.NewWorld(avfi.DefaultWorldConfig())
	if err != nil {
		return err
	}
	spec := avfi.DefaultPretrainSpec()
	fmt.Println("training the driving agent (cached per process)...")
	driver, err := avfi.PretrainedAgent(w, spec)
	if err != nil {
		return err
	}
	agent := driver.Clone()
	agent.Reset()

	// One mission across town.
	from, to, err := w.Town().RandomMission(avfi.NewRand(7), 200)
	if err != nil {
		return err
	}
	episode, err := w.NewEpisode(avfi.EpisodeConfig{
		From: from, To: to, Seed: 7, NumNPCs: 4, NumPedestrians: 4,
	})
	if err != nil {
		return err
	}

	// Optional camera fault between the sensor and the agent.
	var inject avfi.InputInjector
	if faultName != "" {
		src := avfi.Injector(faultName)
		inst, err := avfi.Instantiate(src)
		if err != nil {
			return err
		}
		in, ok := inst.(avfi.InputInjector)
		if !ok {
			return fmt.Errorf("%s is not an input fault", faultName)
		}
		inject = in
	}
	frand := avfi.NewRand(99)

	saved := 0
	for !episode.Done() {
		obs := episode.Observe()
		img := obs.Image
		if inject != nil {
			img = img.Clone()
			inject.InjectImage(img, obs.Frame, frand)
		}
		if obs.Frame%every == 0 {
			camPath := filepath.Join(outDir, fmt.Sprintf("cam_%04d.ppm", obs.Frame))
			if err := savePPM(camPath, img); err != nil {
				return err
			}
			top := episode.TopDownView(avfi.DefaultTopDownConfig())
			topPath := filepath.Join(outDir, fmt.Sprintf("top_%04d.ppm", obs.Frame))
			if err := savePPM(topPath, top); err != nil {
				return err
			}
			saved += 2
		}
		ctl, err := agent.Act(img, obs.Speed, obs.Command)
		if err != nil {
			return err
		}
		episode.Step(ctl)
	}

	res := episode.Result()
	fmt.Printf("mission %d->%d: %v after %.1f s, %.0f m, %d violations\n",
		from, to, res.Status, res.DurationS, res.DistanceM, len(res.Violations))
	fmt.Printf("wrote %d PPM frames to %s\n", saved, outDir)
	return nil
}

func savePPM(path string, img *avfi.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := avfi.WritePPM(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
