package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
)

// scripted is a Driver returning preset controls.
type scripted struct {
	steers []float64
	i      int
	resets int
}

func (s *scripted) Reset() { s.resets++; s.i = 0 }
func (s *scripted) Drive(f *proto.SensorFrame) (physics.Control, error) {
	steer := s.steers[s.i%len(s.steers)]
	s.i++
	return physics.Control{Steer: steer, Throttle: 0.5}, nil
}

func frame(n uint32, speed float64) *proto.SensorFrame {
	return &proto.SensorFrame{Frame: n, TimeSec: float64(n) / 15, Speed: speed, Command: 1}
}

func TestRecorderCapturesRows(t *testing.T) {
	r := New(&scripted{steers: []float64{0.1, -0.2, 0.3}})
	r.Reset()
	for i := uint32(0); i < 3; i++ {
		if _, err := r.Drive(frame(i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rows := r.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Steer != -0.2 || rows[1].Frame != 1 || rows[1].Speed != 1 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}

func TestRecorderResetClears(t *testing.T) {
	inner := &scripted{steers: []float64{0.5}}
	r := New(inner)
	r.Reset()
	_, _ = r.Drive(frame(0, 0))
	r.Reset()
	if len(r.Rows()) != 0 {
		t.Error("Reset kept old rows")
	}
	if inner.resets != 2 {
		t.Errorf("inner resets = %d", inner.resets)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(&scripted{steers: []float64{0.25}})
	r.Reset()
	_, _ = r.Drive(frame(0, 5))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,time_s") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "0.2500") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSteerStats(t *testing.T) {
	r := New(&scripted{steers: []float64{1, -1}})
	r.Reset()
	for i := uint32(0); i < 10; i++ {
		_, _ = r.Drive(frame(i, 0))
	}
	mean, variance := r.SteerStats()
	if mean != 0 {
		t.Errorf("mean = %v", mean)
	}
	if variance != 1 {
		t.Errorf("variance = %v", variance)
	}
	empty := New(&scripted{steers: []float64{0}})
	if m, v := empty.SteerStats(); m != 0 || v != 0 {
		t.Error("empty stats not zero")
	}
}
