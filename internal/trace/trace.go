// Package trace records per-frame telemetry of an episode — the raw
// material for the paper's "methods for statistical analysis of traffic
// violations". A Recorder wraps any simclient.Driver and logs what the
// agent saw and commanded each frame; traces export to CSV for offline
// analysis (steering distributions under faults, control latency effects,
// per-frame speed profiles).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/simclient"
)

// Row is one frame of telemetry.
type Row struct {
	Frame   int
	TimeSec float64
	// Sensor side (as the agent saw it, post-fault).
	Speed      float64
	GPSX, GPSY float64
	Command    uint8
	// Actuation side (as delivered to the simulator).
	Steer    float64
	Throttle float64
	Brake    float64
}

// Recorder wraps a Driver and accumulates rows. Not safe for concurrent
// use; record one episode per Recorder.
type Recorder struct {
	inner simclient.Driver
	rows  []Row
}

var _ simclient.Driver = (*Recorder)(nil)

// New wraps a driver.
func New(inner simclient.Driver) *Recorder { return &Recorder{inner: inner} }

// Reset implements simclient.Driver; it clears the trace.
func (r *Recorder) Reset() {
	r.rows = r.rows[:0]
	r.inner.Reset()
}

// Drive implements simclient.Driver.
func (r *Recorder) Drive(frame *proto.SensorFrame) (physics.Control, error) {
	ctl, err := r.inner.Drive(frame)
	if err != nil {
		return ctl, err
	}
	r.rows = append(r.rows, Row{
		Frame:    int(frame.Frame),
		TimeSec:  frame.TimeSec,
		Speed:    frame.Speed,
		GPSX:     frame.GPSX,
		GPSY:     frame.GPSY,
		Command:  frame.Command,
		Steer:    ctl.Steer,
		Throttle: ctl.Throttle,
		Brake:    ctl.Brake,
	})
	return ctl, nil
}

// Rows returns the recorded telemetry (shared slice; copy before mutating).
func (r *Recorder) Rows() []Row { return r.rows }

// WriteCSV emits the trace with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"frame", "time_s", "speed", "gps_x", "gps_y", "command",
		"steer", "throttle", "brake",
	}); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }
	for _, row := range r.rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.Frame), f(row.TimeSec), f(row.Speed),
			f(row.GPSX), f(row.GPSY), strconv.Itoa(int(row.Command)),
			f(row.Steer), f(row.Throttle), f(row.Brake),
		}); err != nil {
			return fmt.Errorf("trace: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SteerStats summarizes the steering signal — a quick fault signature
// (faults typically inflate steering variance well before a violation).
func (r *Recorder) SteerStats() (mean, variance float64) {
	if len(r.rows) == 0 {
		return 0, 0
	}
	for _, row := range r.rows {
		mean += row.Steer
	}
	mean /= float64(len(r.rows))
	for _, row := range r.rows {
		d := row.Steer - mean
		variance += d * d
	}
	variance /= float64(len(r.rows))
	return mean, variance
}
