// Package adaptive allocates fault-injection episodes across scenario
// cells by observed risk, instead of sweeping the scenario matrix
// exhaustively.
//
// AVFI's campaigns measure resilience by counting safety violations, but
// an exhaustive sweep spends almost all of its episodes on benign cells;
// Jha et al. ("ML-based Fault Injection for Autonomous Vehicles: A Case
// for Bayesian Fault Injection", arXiv 1907.01051) show that steering
// injection toward high-risk regions of the scenario space finds orders of
// magnitude more violations per episode. This package is the allocation
// half of that loop: given per-cell posteriors (episodes observed,
// violation counts, running VPK statistics), a Policy decides how the next
// round's episode budget is split across cells. The campaign orchestrator
// (internal/campaign.RunAdaptive) owns the other half — dispatching the
// allocated episodes and folding their results back into the posteriors.
//
// Every policy is a pure function of (round, budget, cells, stream):
// allocation uses no global randomness, so a campaign's episode schedule
// is reproducible bit-for-bit from its seed — at any engine-pool size,
// because the posteriors it reads are folded in a deterministic order.
package adaptive

import (
	"fmt"
	"math"
	"sort"

	"github.com/avfi/avfi/internal/rng"
)

// CellStats is the orchestrator's posterior summary for one scenario cell
// — everything a policy may condition its allocation on.
type CellStats struct {
	// Index is the cell's position in the campaign's cell order.
	Index int
	// Key is the cell's column label (diagnostics only; policies must not
	// condition on it).
	Key string
	// Episodes is how many episodes the cell has run so far (including any
	// resumed from a prior partial campaign).
	Episodes int
	// Remaining is how many episodes the cell can still run — its
	// (mission, repetition) pairs not yet consumed. Allocations beyond it
	// are clamped by the orchestrator.
	Remaining int
	// Violations is the total violation count observed in the cell.
	Violations int
	// ViolationEpisodes is how many of the cell's episodes had at least
	// one violation.
	ViolationEpisodes int
	// MeanVPK and StdVPK are the cell's running per-episode
	// violations-per-km statistics.
	MeanVPK float64
	StdVPK  float64
}

// ViolationRate is the fraction of the cell's episodes with at least one
// violation — the bounded [0, 1] risk signal bandit-style policies reward.
func (c CellStats) ViolationRate() float64 {
	if c.Episodes == 0 {
		return 0
	}
	return float64(c.ViolationEpisodes) / float64(c.Episodes)
}

// Policy decides one round's episode allocation.
//
// Allocate returns one count per cell (len(cells) entries, cell order),
// summing to at most budget, with each count within [0, cells[i].Remaining].
// It must be deterministic given its arguments: r is a stream derived from
// the campaign seed and round, and is the only admissible source of
// randomness (tie-breaking, posterior sampling).
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	Allocate(round, budget int, cells []CellStats, r *rng.Stream) []int
}

// Uniform spreads every round's budget evenly over all cells with
// remaining capacity — the exhaustive-sweep baseline. A campaign run with
// Uniform and a full-grid budget executes exactly the episodes of the
// classic static job list.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Policy.
func (Uniform) Allocate(round, budget int, cells []CellStats, r *rng.Stream) []int {
	capacity := make([]int, len(cells))
	for i, c := range cells {
		capacity[i] = c.Remaining
	}
	return spread(budget, capacity)
}

// spread hands out budget one episode at a time, round-robin in cell-index
// order, skipping exhausted cells — an even split up to per-cell capacity.
func spread(budget int, capacity []int) []int {
	alloc := make([]int, len(capacity))
	for budget > 0 {
		assigned := false
		for i := range capacity {
			if budget == 0 {
				break
			}
			if alloc[i] < capacity[i] {
				alloc[i]++
				budget--
				assigned = true
			}
		}
		if !assigned {
			break // every cell exhausted
		}
	}
	return alloc
}

// SuccessiveHalving prunes the scenario space geometrically: round k
// spreads its budget over only the ceil(n/2^k) riskiest cells, so
// low-risk cells stop consuming episodes after the first rounds while
// surviving cells are measured ever more precisely. Cells never explored
// rank ahead of everything (a cell must be observed before it can be
// pruned); explored cells rank by violation rate, then mean VPK, then
// index.
type SuccessiveHalving struct{}

// Name implements Policy.
func (SuccessiveHalving) Name() string { return "halving" }

// Allocate implements Policy.
func (SuccessiveHalving) Allocate(round, budget int, cells []CellStats, r *rng.Stream) []int {
	// Geometric schedule: k(0)=n, k(1)=ceil(n/2), ... floor 1.
	keep := len(cells)
	for i := 0; i < round && keep > 1; i++ {
		keep = (keep + 1) / 2
	}

	order := riskOrder(cells)
	alloc := make([]int, len(cells))
	capacity := make([]int, 0, keep)
	chosen := make([]int, 0, keep)
	for _, idx := range order {
		if len(chosen) == keep {
			break
		}
		if cells[idx].Remaining > 0 {
			chosen = append(chosen, idx)
			capacity = append(capacity, cells[idx].Remaining)
		}
	}
	for i, n := range spread(budget, capacity) {
		alloc[chosen[i]] = n
	}
	return alloc
}

// riskOrder returns cell indices sorted riskiest-first: unexplored cells
// lead (index order), then by violation rate, mean VPK, and index — a
// total, deterministic order.
func riskOrder(cells []CellStats) []int {
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cells[order[a]], cells[order[b]]
		if (ca.Episodes == 0) != (cb.Episodes == 0) {
			return ca.Episodes == 0
		}
		if ra, rb := ca.ViolationRate(), cb.ViolationRate(); ra != rb {
			return ra > rb
		}
		if ca.MeanVPK != cb.MeanVPK {
			return ca.MeanVPK > cb.MeanVPK
		}
		return ca.Index < cb.Index
	})
	return order
}

// UCB allocates by upper confidence bound on the per-cell violation rate
// (UCB1): each episode of the round goes to the cell maximizing
//
//	rate + C * sqrt(2 ln N / n)
//
// with n the cell's (virtual) episode count and N the running total, so
// unexplored and under-explored cells get optimistic scores and proven
// high-risk cells absorb the bulk of the budget. Within a round the counts
// advance virtually after each assignment — a batch of B episodes lands
// where B sequential UCB pulls would have.
type UCB struct {
	// C scales the exploration bonus; 0 means DefaultUCBC.
	C float64
}

// DefaultUCBC is the default exploration constant — tighter than the
// classic sqrt(2), favoring exploitation at campaign-scale budgets where
// every cell still gets its confidence-driven due.
const DefaultUCBC = 1.0

// Name implements Policy.
func (UCB) Name() string { return "ucb" }

// Allocate implements Policy.
func (p UCB) Allocate(round, budget int, cells []CellStats, r *rng.Stream) []int {
	c := p.C
	if c == 0 {
		c = DefaultUCBC
	}
	alloc := make([]int, len(cells))
	n := make([]float64, len(cells))
	total := 1.0 // avoid ln(0) before anything has run
	for i, cell := range cells {
		n[i] = float64(cell.Episodes)
		total += n[i]
	}
	best := make([]int, 0, len(cells))
	for e := 0; e < budget; e++ {
		bestScore := math.Inf(-1)
		best = best[:0]
		for i, cell := range cells {
			if alloc[i] >= cell.Remaining {
				continue
			}
			score := math.Inf(1)
			if n[i] > 0 {
				score = cell.ViolationRate() + c*math.Sqrt(2*math.Log(total)/n[i])
			}
			if score > bestScore {
				bestScore = score
				best = best[:0]
			}
			if score == bestScore {
				best = append(best, i)
			}
		}
		if len(best) == 0 {
			break // every cell exhausted
		}
		// Deterministic given the campaign seed: ties split via the
		// round's stream, not iteration luck.
		pick := best[0]
		if len(best) > 1 {
			pick = best[r.Intn(len(best))]
		}
		alloc[pick]++
		n[pick]++
		total++
	}
	return alloc
}

// Policies lists the built-in policy names ParsePolicy accepts.
func Policies() []string { return []string{"uniform", "halving", "ucb"} }

// ParsePolicy resolves a CLI policy name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "halving", "successive-halving":
		return SuccessiveHalving{}, nil
	case "ucb":
		return UCB{}, nil
	default:
		return nil, fmt.Errorf("adaptive: unknown policy %q (want uniform|halving|ucb)", name)
	}
}
