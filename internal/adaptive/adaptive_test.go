package adaptive

import (
	"reflect"
	"testing"

	"github.com/avfi/avfi/internal/rng"
)

// mkCells builds a synthetic posterior set: per cell, episodes run,
// violation episodes, and remaining capacity.
func mkCells(eps, violEps, remaining []int) []CellStats {
	cells := make([]CellStats, len(eps))
	for i := range cells {
		cells[i] = CellStats{
			Index:             i,
			Episodes:          eps[i],
			ViolationEpisodes: violEps[i],
			Violations:        violEps[i] * 2,
			Remaining:         remaining[i],
			MeanVPK:           float64(violEps[i]),
		}
	}
	return cells
}

func total(alloc []int) int {
	t := 0
	for _, n := range alloc {
		t += n
	}
	return t
}

func TestUniformSpreadsEvenly(t *testing.T) {
	cells := mkCells([]int{0, 0, 0, 0}, []int{0, 0, 0, 0}, []int{10, 10, 10, 10})
	alloc := Uniform{}.Allocate(0, 8, cells, rng.New(1))
	if !reflect.DeepEqual(alloc, []int{2, 2, 2, 2}) {
		t.Errorf("alloc = %v, want even split", alloc)
	}
	// Uneven budget: extras go to the lowest indices, deterministically.
	alloc = Uniform{}.Allocate(0, 6, cells, rng.New(1))
	if !reflect.DeepEqual(alloc, []int{2, 2, 1, 1}) {
		t.Errorf("alloc = %v, want {2,2,1,1}", alloc)
	}
}

func TestUniformRespectsCapacity(t *testing.T) {
	cells := mkCells([]int{0, 0, 0}, []int{0, 0, 0}, []int{1, 10, 0})
	alloc := Uniform{}.Allocate(0, 9, cells, rng.New(1))
	if alloc[0] != 1 || alloc[2] != 0 {
		t.Errorf("alloc = %v ignored capacity", alloc)
	}
	if total(alloc) != 9 {
		t.Errorf("alloc = %v sums to %d, want 9", alloc, total(alloc))
	}
	// Budget beyond total capacity: allocate what exists, stop.
	alloc = Uniform{}.Allocate(0, 100, cells, rng.New(1))
	if total(alloc) != 11 {
		t.Errorf("alloc = %v sums to %d, want full capacity 11", alloc, total(alloc))
	}
}

func TestSuccessiveHalvingSchedule(t *testing.T) {
	// 8 cells, cell 5 is the one with violations. Round 0 must cover all
	// cells; by round 3 only the riskiest survives.
	eps := []int{4, 4, 4, 4, 4, 4, 4, 4}
	viol := []int{0, 0, 0, 0, 0, 4, 0, 0}
	rem := []int{20, 20, 20, 20, 20, 20, 20, 20}
	p := SuccessiveHalving{}

	r0 := p.Allocate(0, 8, mkCells(eps, viol, rem), rng.New(1))
	for i, n := range r0 {
		if n != 1 {
			t.Errorf("round 0 cell %d got %d, want 1 (full coverage)", i, n)
		}
	}

	r1 := p.Allocate(1, 8, mkCells(eps, viol, rem), rng.New(1))
	if active := len(nonZero(r1)); active != 4 {
		t.Errorf("round 1 active cells = %d, want 4", active)
	}
	if r1[5] == 0 {
		t.Error("round 1 pruned the violating cell")
	}

	r3 := p.Allocate(3, 8, mkCells(eps, viol, rem), rng.New(1))
	if !reflect.DeepEqual(nonZero(r3), []int{5}) {
		t.Errorf("round 3 active cells = %v, want only the violating cell 5", nonZero(r3))
	}
	if r3[5] != 8 {
		t.Errorf("round 3 gave the survivor %d episodes, want the full budget 8", r3[5])
	}
}

func TestSuccessiveHalvingExploresUnseenBeforePruning(t *testing.T) {
	// Cell 2 has never run; even in a late round it must outrank explored
	// benign cells.
	eps := []int{4, 4, 0, 4}
	viol := []int{0, 1, 0, 0}
	rem := []int{10, 10, 10, 10}
	alloc := SuccessiveHalving{}.Allocate(1, 4, mkCells(eps, viol, rem), rng.New(1))
	if alloc[2] == 0 {
		t.Errorf("alloc = %v starved the unexplored cell", alloc)
	}
	if alloc[1] == 0 {
		t.Errorf("alloc = %v starved the violating cell", alloc)
	}
}

func TestSuccessiveHalvingSkipsExhaustedCells(t *testing.T) {
	// The riskiest cell has no capacity left: its slot falls to the next
	// survivor instead of being wasted.
	eps := []int{4, 4, 4, 4}
	viol := []int{4, 1, 0, 0}
	rem := []int{0, 10, 10, 10}
	alloc := SuccessiveHalving{}.Allocate(2, 6, mkCells(eps, viol, rem), rng.New(1))
	if alloc[0] != 0 {
		t.Errorf("alloc = %v gave episodes to an exhausted cell", alloc)
	}
	if alloc[1] != 6 {
		t.Errorf("alloc = %v, want the full budget on cell 1", alloc)
	}
}

func TestUCBExploresUnvisitedFirst(t *testing.T) {
	// Three unvisited cells, one heavily-visited violating cell: the first
	// three episodes must cover the unvisited cells.
	eps := []int{0, 20, 0, 0}
	viol := []int{0, 20, 0, 0}
	rem := []int{10, 10, 10, 10}
	alloc := UCB{}.Allocate(0, 3, mkCells(eps, viol, rem), rng.New(7))
	for _, i := range []int{0, 2, 3} {
		if alloc[i] != 1 {
			t.Errorf("alloc = %v: unvisited cell %d not explored first", alloc, i)
		}
	}
}

func TestUCBConcentratesOnHighRiskCell(t *testing.T) {
	// After an even exploration round, the always-violating cell 3 must
	// absorb the plurality of a large budget.
	eps := []int{2, 2, 2, 2, 2, 2}
	viol := []int{0, 0, 0, 2, 0, 0}
	rem := []int{50, 50, 50, 50, 50, 50}
	alloc := UCB{}.Allocate(1, 48, mkCells(eps, viol, rem), rng.New(7))
	for i, n := range alloc {
		if i != 3 && n >= alloc[3] {
			t.Fatalf("alloc = %v: benign cell %d got %d >= violating cell's %d", alloc, i, n, alloc[3])
		}
	}
	if total(alloc) != 48 {
		t.Errorf("alloc = %v sums to %d, want 48", alloc, total(alloc))
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	eps := []int{3, 0, 5, 2, 0}
	viol := []int{1, 0, 4, 0, 0}
	rem := []int{7, 9, 2, 8, 11}
	for _, p := range []Policy{Uniform{}, SuccessiveHalving{}, UCB{}} {
		a := p.Allocate(2, 13, mkCells(eps, viol, rem), rng.New(42))
		b := p.Allocate(2, 13, mkCells(eps, viol, rem), rng.New(42))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same inputs allocated %v then %v", p.Name(), a, b)
		}
		if total(a) > 13 {
			t.Errorf("%s: allocated %d over budget 13", p.Name(), total(a))
		}
		for i, n := range a {
			if n < 0 || n > rem[i] {
				t.Errorf("%s: cell %d allocation %d outside [0, %d]", p.Name(), i, n, rem[i])
			}
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range Policies() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParsePolicy("successive-halving"); err != nil || p.Name() != "halving" {
		t.Errorf("ParsePolicy(successive-halving) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// nonZero returns the indices with a non-zero allocation.
func nonZero(alloc []int) []int {
	var out []int
	for i, n := range alloc {
		if n > 0 {
			out = append(out, i)
		}
	}
	return out
}
