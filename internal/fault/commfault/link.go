package commfault

import (
	"sync"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// Link faults the wire path itself: it wraps a transport.Conn and holds a
// random subset of outgoing messages in flight, releasing them a bounded
// number of sends later. Encoded envelopes cross the link unmodified —
// only their timing and relative order change, so every byte the peer
// decodes is still exactly what the sender encoded.
//
// Link never discards a message: the simulator protocol is lock-step
// request/response, so a genuinely lost message would deadlock both ends
// rather than degrade them. Loss is modeled above the wire by the Drop
// injector (the actuator holds its setpoint), and on the wire as
// unbounded-but-finite delay. Close flushes everything still held.
//
// Determinism: hold decisions and release deadlines come from the Link's
// own rng.Stream, so a given message sequence faults identically on every
// run regardless of scheduling.
type Link struct {
	// HoldProb is the probability a message is held instead of sent.
	HoldProb float64
	// Horizon bounds both the in-flight hold count and the extra sends a
	// held message may wait before release.
	Horizon int

	mu    sync.Mutex
	inner transport.Conn
	r     *rng.Stream
	seq   int
	held  []heldMsg
}

// heldMsg is one message parked on the link: release is the seq at which
// it must go out at the latest.
type heldMsg struct {
	seq     int
	release int
	buf     []byte
}

var _ transport.Conn = (*Link)(nil)

// NewLink wraps conn with the default wire fault (30% of messages held,
// horizon 4). The Link owns r; callers must not share the stream.
func NewLink(conn transport.Conn, r *rng.Stream) *Link {
	return &Link{HoldProb: 0.3, Horizon: 4, inner: conn, r: r}
}

// MaxDisplacement bounds how many positions a message can move in the
// delivered order relative to the sent order: a held message waits at most
// Horizon+1 further sends, each of which may itself flush up to Horizon
// earlier holds ahead of it.
func (l *Link) MaxDisplacement() int { return 2*l.Horizon + 1 }

// Send implements transport.Conn.
func (l *Link) Send(msg []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	if l.r.Bool(l.HoldProb) && len(l.held) < l.Horizon {
		// Park a copy — the caller may reuse msg immediately, like any
		// transport Send.
		cp := make([]byte, len(msg))
		copy(cp, msg)
		l.held = append(l.held, heldMsg{
			seq:     l.seq,
			release: l.seq + 1 + l.r.Intn(l.Horizon),
			buf:     cp,
		})
		telemetry.CommLinkHeld.Inc()
		return l.flushDueLocked()
	}
	if err := l.inner.Send(msg); err != nil {
		return err
	}
	return l.flushDueLocked()
}

// SendBatch implements transport.Conn; each message of the batch is
// faulted independently, exactly as if sent one by one.
func (l *Link) SendBatch(msgs [][]byte) error {
	for _, msg := range msgs {
		if err := l.Send(msg); err != nil {
			return err
		}
	}
	return nil
}

// flushDueLocked sends every held message whose release deadline has
// passed, oldest first.
func (l *Link) flushDueLocked() error {
	kept := l.held[:0]
	for i, h := range l.held {
		if h.release > l.seq {
			kept = append(kept, h)
			continue
		}
		if err := l.inner.Send(h.buf); err != nil {
			kept = append(kept, l.held[i:]...)
			l.held = kept
			return err
		}
		telemetry.CommLinkFlushed.Inc()
	}
	l.held = kept
	return nil
}

// Flush releases every held message immediately, oldest first.
func (l *Link) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushAllLocked()
}

func (l *Link) flushAllLocked() error {
	for i, h := range l.held {
		if err := l.inner.Send(h.buf); err != nil {
			l.held = append(l.held[:0], l.held[i:]...)
			return err
		}
		telemetry.CommLinkFlushed.Inc()
	}
	l.held = l.held[:0]
	return nil
}

// Recv implements transport.Conn (the fault is send-side only).
func (l *Link) Recv() ([]byte, error) { return l.inner.Recv() }

// Close implements transport.Conn: held messages are flushed first so the
// peer never loses the tail of a conversation.
func (l *Link) Close() error {
	l.mu.Lock()
	flushErr := l.flushAllLocked()
	l.mu.Unlock()
	closeErr := l.inner.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
