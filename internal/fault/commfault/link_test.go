package commfault

import (
	"testing"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/transport"
)

// envMsg encodes control i wrapped in envelope session i+1 (session 0 is
// the protocol's hello channel).
func envMsg(i int) []byte {
	ctl := &proto.Control{Frame: uint32(i), Steer: float64(i) * 0.01, Throttle: 0.5}
	return proto.EncodeEnvelope(uint32(i+1), proto.EncodeControl(ctl))
}

// sendThroughLink pushes n enveloped controls through a faulted link
// (concurrently — the pipe transport is shallow) and returns the session
// IDs in delivered order, verifying each envelope decodes intact.
func sendThroughLink(t *testing.T, link *Link, far transport.Conn, n int, closeAfter bool) []uint32 {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := link.Send(envMsg(i)); err != nil {
				errc <- err
				return
			}
		}
		if closeAfter {
			errc <- link.Close()
			return
		}
		errc <- link.Flush()
	}()
	var order []uint32
	for i := 0; i < n; i++ {
		msg, err := far.Recv()
		if err != nil {
			t.Fatalf("lost message %d/%d: %v", i, n, err)
		}
		session, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			t.Fatalf("delivery %d: corrupted envelope: %v", i, err)
		}
		ctl, err := proto.DecodeControl(inner)
		if err != nil {
			t.Fatalf("delivery %d: corrupted control: %v", i, err)
		}
		if ctl.Frame != session-1 {
			t.Fatalf("delivery %d: payload %d does not match envelope %d", i, ctl.Frame, session)
		}
		transport.Recycle(msg)
		order = append(order, session)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return order
}

func TestLinkDeliversEverythingWithinHorizon(t *testing.T) {
	near, far := transport.Pipe()
	link := NewLink(near, rng.New(21))
	link.HoldProb = 0.5
	const n = 200

	order := sendThroughLink(t, link, far, n, false)

	seen := map[uint32]int{}
	reordered := false
	for pos, session := range order {
		seen[session]++
		disp := pos - int(session-1)
		if disp < 0 {
			disp = -disp
		}
		if disp > link.MaxDisplacement() {
			t.Errorf("session %d displaced %d positions, bound %d", session, disp, link.MaxDisplacement())
		}
		if disp != 0 {
			reordered = true
		}
	}
	for i := 1; i <= n; i++ {
		if seen[uint32(i)] != 1 {
			t.Fatalf("session %d delivered %d times", i, seen[uint32(i)])
		}
	}
	if !reordered {
		t.Error("link with HoldProb 0.5 never reordered over 200 sends")
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDeterministicDeliveryOrder(t *testing.T) {
	run := func() []uint32 {
		near, far := transport.Pipe()
		link := NewLink(near, rng.New(33))
		link.HoldProb = 0.5
		return sendThroughLink(t, link, far, 100, true)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLinkCloseFlushesHeld(t *testing.T) {
	near, far := transport.Pipe()
	link := NewLink(near, rng.New(5))
	link.HoldProb = 1 // park everything the horizon allows
	order := sendThroughLink(t, link, far, 4, true)
	if len(order) != 4 {
		t.Fatalf("received %d of 4 messages after Close", len(order))
	}
}

// FuzzLinkAgainstCodec drives arbitrary hold probabilities, horizons and
// message counts through the wire fault and checks the codec's invariants
// survive: every envelope decodes to exactly the bytes sent, nothing is
// lost or duplicated, and displacement stays within the link's bound.
func FuzzLinkAgainstCodec(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(3), uint8(50))
	f.Add(uint64(7), uint8(100), uint8(1), uint8(100))
	f.Add(uint64(42), uint8(0), uint8(7), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, count, horizon, probPct uint8) {
		near, far := transport.Pipe()
		link := NewLink(near, rng.New(seed))
		link.Horizon = 1 + int(horizon%8)
		link.HoldProb = float64(probPct%101) / 100

		n := int(count)
		errc := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := link.Send(envMsg(i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- link.Close()
		}()

		seen := map[uint32]bool{}
		for pos := 0; pos < n; pos++ {
			msg, err := far.Recv()
			if err != nil {
				t.Fatalf("lost message %d/%d: %v", pos, n, err)
			}
			session, inner, err := proto.DecodeEnvelope(msg)
			if err != nil {
				t.Fatalf("corrupted envelope at delivery %d: %v", pos, err)
			}
			ctl, err := proto.DecodeControl(inner)
			if err != nil {
				t.Fatalf("corrupted control at delivery %d: %v", pos, err)
			}
			if session == 0 || session > uint32(n) || seen[session] {
				t.Fatalf("delivery %d: unexpected or duplicate session %d", pos, session)
			}
			seen[session] = true
			if ctl.Frame != session-1 {
				t.Fatalf("delivery %d: payload %d does not match envelope %d", pos, ctl.Frame, session)
			}
			disp := pos - int(session-1)
			if disp < 0 {
				disp = -disp
			}
			if disp > link.MaxDisplacement() {
				t.Fatalf("session %d displaced %d, bound %d (horizon %d)", session, disp, link.MaxDisplacement(), link.Horizon)
			}
			transport.Recycle(msg)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	})
}
