// Package commfault implements communication faults on the control link
// between the driving agent and the actuators: jittered latency with
// stale-command supersession, bursty (Gilbert-Elliott) loss, and bounded
// out-of-order delivery. They extend the paper's timing-fault class to the
// failure modes real vehicle networks exhibit — congested buses, lossy
// radio links, and multipath reordering — while staying deterministic:
// every injector is a pure function of the control sequence and its
// rng.Stream, so campaigns are bit-identical at any pool size.
//
// The injectors here model the link at the frame granularity the campaign
// pipeline sees (fault.TimingInjector). The Link type in this package
// additionally faults the wire path itself, wrapping a transport.Conn so
// the encoded bytes — envelopes, controls, frames — cross a perturbed
// link.
package commfault

import (
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	DelayName   = "commdelay"
	DropName    = "commdrop"
	ReorderName = "commreorder"
)

// Delay models a congested control link: every command is assigned a
// jittered transit latency, and the actuator always executes the newest
// command that has arrived — a command overtaken in flight by a fresher
// one is superseded and never applied (sequence-number supersession).
// Until the first command arrives the actuator holds a neutral setpoint,
// the way a drive-by-wire unit coasts before its first valid message.
type Delay struct {
	// BaseFrames is the minimum transit latency.
	BaseFrames int
	// JitterFrames widens the latency to BaseFrames..BaseFrames+JitterFrames.
	JitterFrames int
	Window       fault.Window

	pending    []inFlight
	current    physics.Control
	hasCurrent bool
	currentSeq int
}

// inFlight is one command in transit on the faulted link.
type inFlight struct {
	seq     int
	arrival int
	ctl     physics.Control
}

var _ fault.TimingInjector = (*Delay)(nil)

// NewDelay returns the default link-latency fault (4-8 frames of transit).
func NewDelay() *Delay { return &Delay{BaseFrames: 4, JitterFrames: 4} }

// Name implements fault.TimingInjector.
func (d *Delay) Name() string { return DelayName }

// Reset implements fault.TimingInjector.
func (d *Delay) Reset() {
	d.pending = d.pending[:0]
	d.current = physics.Control{}
	d.hasCurrent = false
	d.currentSeq = 0
}

// Transform implements fault.TimingInjector.
func (d *Delay) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !d.Window.Active(frame) {
		// Healthy link: commands pass through and in-flight state drains.
		d.pending = d.pending[:0]
		d.current, d.hasCurrent, d.currentSeq = ctl, true, frame
		return ctl
	}
	lat := d.BaseFrames
	if d.JitterFrames > 0 {
		lat += r.Intn(d.JitterFrames + 1)
	}
	d.pending = append(d.pending, inFlight{seq: frame, arrival: frame + lat, ctl: ctl})

	// Apply the newest arrived command; discard everything that arrived
	// (older late arrivals are stale and superseded).
	arrived := false
	best := inFlight{}
	keep := d.pending[:0]
	for _, p := range d.pending {
		if p.arrival > frame {
			keep = append(keep, p)
			continue
		}
		if !arrived || p.seq > best.seq {
			best = p
			arrived = true
		}
	}
	d.pending = keep
	if arrived && (!d.hasCurrent || best.seq >= d.currentSeq) {
		d.current, d.hasCurrent, d.currentSeq = best.ctl, true, best.seq
	}
	if d.hasCurrent {
		return d.current
	}
	return physics.Control{}
}

// Drop models bursty packet loss with a Gilbert-Elliott two-state channel:
// a good state with rare loss and a bad state (fade, congestion burst)
// with near-total loss. On a lost command the actuator holds its last
// delivered setpoint.
type Drop struct {
	// PGoodBad and PBadGood are the per-frame state transition probabilities.
	PGoodBad, PBadGood float64
	// PLossGood and PLossBad are the per-frame loss probabilities in each state.
	PLossGood, PLossBad float64
	Window              fault.Window

	bad     bool
	last    physics.Control
	hasLast bool
}

var _ fault.TimingInjector = (*Drop)(nil)

// NewDrop returns the default bursty-loss fault: ~5-frame loss bursts,
// near-lossless in between.
func NewDrop() *Drop {
	return &Drop{PGoodBad: 0.05, PBadGood: 0.2, PLossGood: 0.01, PLossBad: 0.95}
}

// Name implements fault.TimingInjector.
func (d *Drop) Name() string { return DropName }

// Reset implements fault.TimingInjector.
func (d *Drop) Reset() {
	d.bad = false
	d.last = physics.Control{}
	d.hasLast = false
}

// Transform implements fault.TimingInjector.
func (d *Drop) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !d.Window.Active(frame) {
		d.last, d.hasLast = ctl, true
		return ctl
	}
	if d.bad {
		d.bad = !r.Bool(d.PBadGood)
	} else {
		d.bad = r.Bool(d.PGoodBad)
	}
	loss := d.PLossGood
	if d.bad {
		loss = d.PLossBad
	}
	if r.Bool(loss) && d.hasLast {
		return d.last
	}
	d.last, d.hasLast = ctl, true
	return ctl
}

// Reorder models multipath out-of-order delivery: commands pass through a
// small in-flight buffer and leave it in random order, with a hard
// freshness bound — a command that has waited Depth frames is delivered
// unconditionally, so displacement never exceeds Depth. While the buffer
// fills, the actuator holds its last setpoint.
type Reorder struct {
	// Depth is the in-flight buffer size and the displacement bound.
	Depth  int
	Window fault.Window

	buf     []buffered
	last    physics.Control
	hasLast bool
}

// buffered is one command waiting in the reorder buffer.
type buffered struct {
	seq int
	ctl physics.Control
}

var _ fault.TimingInjector = (*Reorder)(nil)

// NewReorder returns the default reorder fault (4-command horizon).
func NewReorder() *Reorder { return &Reorder{Depth: 4} }

// Name implements fault.TimingInjector.
func (d *Reorder) Name() string { return ReorderName }

// Reset implements fault.TimingInjector.
func (d *Reorder) Reset() {
	d.buf = d.buf[:0]
	d.last = physics.Control{}
	d.hasLast = false
}

// Transform implements fault.TimingInjector.
func (d *Reorder) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !d.Window.Active(frame) {
		d.buf = d.buf[:0]
		d.last, d.hasLast = ctl, true
		return ctl
	}
	d.buf = append(d.buf, buffered{seq: frame, ctl: ctl})
	if len(d.buf) < d.Depth {
		if d.hasLast {
			return d.last
		}
		return physics.Control{}
	}
	// The oldest command expires after Depth frames in flight; otherwise
	// delivery order is random within the buffer.
	i := 0
	if frame-d.buf[0].seq < d.Depth {
		i = r.Intn(len(d.buf))
	}
	out := d.buf[i].ctl
	d.buf = append(d.buf[:i], d.buf[i+1:]...)
	d.last, d.hasLast = out, true
	return out
}

func init() {
	fault.Register(fault.Spec{
		Name: DelayName, Class: fault.ClassComm,
		Description: "control-link latency 4-8 frames with stale-command supersession",
		New:         func() interface{} { return NewDelay() },
	})
	fault.Register(fault.Spec{
		Name: DropName, Class: fault.ClassComm,
		Description: "bursty Gilbert-Elliott control loss (last setpoint held)",
		New:         func() interface{} { return NewDrop() },
	})
	fault.Register(fault.Spec{
		Name: ReorderName, Class: fault.ClassComm,
		Description: "out-of-order control delivery, displacement bounded by 4",
		New:         func() interface{} { return NewReorder() },
	})
}
