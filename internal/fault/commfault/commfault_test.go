package commfault

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

func ctlSeq(n int) []physics.Control {
	seq := make([]physics.Control, n)
	for i := range seq {
		seq[i] = physics.Control{Steer: float64(i) / float64(n), Throttle: 0.5}
	}
	return seq
}

// runTiming drives a control sequence through a fresh injector.
func runTiming(inj fault.TimingInjector, seed uint64, in []physics.Control) []physics.Control {
	inj.Reset()
	r := rng.New(seed)
	out := make([]physics.Control, len(in))
	for i, c := range in {
		out[i] = inj.Transform(c, i, r)
	}
	return out
}

func TestDelayNeverDeliversFresh(t *testing.T) {
	d := NewDelay()
	in := ctlSeq(100)
	out := runTiming(d, 1, in)
	for i, got := range out {
		// With BaseFrames >= 1 the delivered command is always older than
		// the one computed this frame.
		if got == in[i] {
			t.Fatalf("frame %d delivered the fresh command through a 4-frame link", i)
		}
	}
	// Commands do eventually arrive: late in the episode the delivered
	// command is a recent one, not the neutral setpoint.
	if out[99] == (physics.Control{}) {
		t.Error("link never delivered any command")
	}
}

func TestDelaySupersedesStaleCommands(t *testing.T) {
	// The applied sequence number must never go backwards: a late arrival
	// older than the currently applied command is discarded.
	d := NewDelay()
	d.Reset()
	r := rng.New(2)
	lastSeq := -1
	for i := 0; i < 200; i++ {
		// Encode the frame number in the steer channel to recover the seq.
		out := d.Transform(physics.Control{Steer: float64(i)}, i, r)
		if !d.hasCurrent {
			continue
		}
		seq := int(out.Steer)
		if seq < lastSeq {
			t.Fatalf("frame %d applied stale command %d after %d", i, seq, lastSeq)
		}
		lastSeq = seq
	}
	if lastSeq < 0 {
		t.Fatal("no command ever applied")
	}
}

func TestDropHoldsLastSetpointInBursts(t *testing.T) {
	d := NewDrop()
	in := ctlSeq(300)
	out := runTiming(d, 3, in)
	held := 0
	for i := range out {
		// Every output is either this frame's command or a replay of an
		// earlier one (hold) — never fabricated.
		if out[i] == in[i] {
			continue
		}
		found := false
		for j := 0; j < i; j++ {
			if out[i] == in[j] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("frame %d delivered a fabricated command %+v", i, out[i])
		}
		held++
	}
	if held == 0 {
		t.Error("bursty loss never held a setpoint over 300 frames")
	}
}

func TestReorderBoundedDisplacement(t *testing.T) {
	d := NewReorder()
	in := ctlSeq(200)
	out := runTiming(d, 4, in)
	seen := map[physics.Control]bool{}
	reordered := false
	for i, got := range out {
		if seen[got] {
			continue // hold replay while the buffer fills
		}
		seen[got] = true
		// Find the input index of this command; displacement is bounded by
		// the buffer depth.
		for j, c := range in {
			if c == got {
				if disp := j - i; disp > 0 || disp < -d.Depth {
					t.Fatalf("frame %d delivered command %d: displacement %d beyond depth %d", i, j, disp, d.Depth)
				}
				if j != i {
					reordered = true
				}
				break
			}
		}
	}
	if !reordered {
		t.Error("reorder link never reordered anything over 200 frames")
	}
}

func TestCommInjectorsDeterministic(t *testing.T) {
	in := ctlSeq(150)
	for _, name := range []string{DelayName, DropName, ReorderName} {
		spec, err := fault.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := runTiming(spec.New().(fault.TimingInjector), 7, in)
		b := runTiming(spec.New().(fault.TimingInjector), 7, in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: frame %d differs across identical runs", name, i)
			}
		}
	}
}

func TestCommInjectorsPassThroughOutsideWindow(t *testing.T) {
	in := ctlSeq(50)
	for _, inj := range []fault.TimingInjector{
		&Delay{BaseFrames: 4, JitterFrames: 4, Window: fault.Window{StartFrame: 1000}},
		&Drop{PGoodBad: 1, PLossBad: 1, Window: fault.Window{StartFrame: 1000}},
		&Reorder{Depth: 4, Window: fault.Window{StartFrame: 1000}},
	} {
		out := runTiming(inj, 8, in)
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("%s altered the stream outside its window", inj.Name())
			}
		}
	}
}
