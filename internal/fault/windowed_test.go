package fault

import (
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// blackout is a test InputInjector that zeroes the image and measurements.
type blackout struct{}

func (blackout) Name() string { return "blackout" }
func (blackout) InjectImage(img *render.Image, _ int, _ *rng.Stream) {
	for i := range img.Pix {
		img.Pix[i] = 0
	}
}
func (blackout) InjectMeasurements(_, _, _ float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return 0, 0, 0
}

// slam is a test OutputInjector forcing full brake.
type slam struct{}

func (slam) Name() string { return "slam" }
func (slam) InjectControl(ctl physics.Control, _ int, _ *rng.Stream) physics.Control {
	ctl.Brake = 1
	return ctl
}

// hold is a test TimingInjector that always replays the first control.
type hold struct {
	first    physics.Control
	hasFirst bool
}

func (h *hold) Name() string { return "hold" }
func (h *hold) Reset()       { h.hasFirst = false }
func (h *hold) Transform(ctl physics.Control, _ int, _ *rng.Stream) physics.Control {
	if !h.hasFirst {
		h.first = ctl
		h.hasFirst = true
	}
	return h.first
}

func TestWindowedInputGates(t *testing.T) {
	w := &WindowedInput{Inner: blackout{}, Window: Window{StartFrame: 10, EndFrame: 20}}
	r := rng.New(1)

	img := render.NewImage(2, 2)
	img.Pix[0] = 0.7
	w.InjectImage(img, 5, r)
	if img.Pix[0] != 0.7 {
		t.Error("input fault fired before window")
	}
	w.InjectImage(img, 15, r)
	if img.Pix[0] != 0 {
		t.Error("input fault inactive inside window")
	}

	s, x, y := w.InjectMeasurements(5, 1, 2, 25, r)
	if s != 5 || x != 1 || y != 2 {
		t.Error("measurement fault fired after window")
	}
	s, _, _ = w.InjectMeasurements(5, 1, 2, 15, r)
	if s != 0 {
		t.Error("measurement fault inactive inside window")
	}
	if w.Name() != "blackout" {
		t.Error("wrapper hides inner name")
	}
}

func TestWindowedOutputGates(t *testing.T) {
	w := &WindowedOutput{Inner: slam{}, Window: Window{StartFrame: 100}}
	r := rng.New(2)
	ctl := physics.Control{Throttle: 1}
	if got := w.InjectControl(ctl, 50, r); got.Brake != 0 {
		t.Error("output fault fired before window")
	}
	if got := w.InjectControl(ctl, 150, r); got.Brake != 1 {
		t.Error("output fault inactive inside window")
	}
}

func TestWindowedTimingGates(t *testing.T) {
	inner := &hold{}
	w := &WindowedTiming{Inner: inner, Window: Window{StartFrame: 2}}
	r := rng.New(3)
	w.Reset()

	c0 := physics.Control{Steer: 0.1}
	c1 := physics.Control{Steer: 0.2}
	c2 := physics.Control{Steer: 0.3}

	// Before the window: passthrough (inner still sees frames).
	if got := w.Transform(c0, 0, r); got != c0 {
		t.Error("timing fault altered stream before window")
	}
	if got := w.Transform(c1, 1, r); got != c1 {
		t.Error("timing fault altered stream before window")
	}
	// Inside: inner's behaviour (replay of its first-seen control).
	if got := w.Transform(c2, 2, r); got != c0 {
		t.Errorf("timing fault inside window returned %+v, want inner's replay %+v", got, c0)
	}
	// Reset propagates.
	w.Reset()
	if inner.hasFirst {
		t.Error("Reset did not reach the inner injector")
	}
}

func TestWindowedImplementInterfaces(t *testing.T) {
	var _ InputInjector = &WindowedInput{Inner: Noop{}}
	var _ OutputInjector = &WindowedOutput{Inner: Noop{}}
	var _ TimingInjector = &WindowedTiming{Inner: Noop{}}
}

// zapLidar is a test injector carrying the LIDAR role: it slams every beam
// to zero (point-blank returns in all directions).
type zapLidar struct{ blackout }

func (zapLidar) Name() string { return "zaplidar" }
func (zapLidar) InjectLidar(ranges []float64, _ int, _ *rng.Stream) {
	for i := range ranges {
		ranges[i] = 0
	}
}

func cleanScan(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 60
	}
	return s
}

func TestWindowedInputForwardsLidarRole(t *testing.T) {
	// Regression: WindowedInput used to drop the optional LidarInjector
	// role, so windowed lidar faults never reached the scan.
	w := &WindowedInput{Inner: zapLidar{}, Window: Window{StartFrame: 10, EndFrame: 20}}
	r := rng.New(7)

	scan := cleanScan(4)
	w.InjectLidar(scan, 5, r)
	if scan[0] != 60 {
		t.Error("lidar fault fired before window")
	}
	w.InjectLidar(scan, 15, r)
	if scan[0] != 0 {
		t.Error("lidar fault inactive inside window")
	}
	scan = cleanScan(4)
	w.InjectLidar(scan, 25, r)
	if scan[0] != 60 {
		t.Error("lidar fault fired after window")
	}

	// An inner injector without the role stays a safe no-op.
	wn := &WindowedInput{Inner: blackout{}, Window: Window{}}
	scan = cleanScan(4)
	wn.InjectLidar(scan, 15, r)
	if scan[0] != 60 {
		t.Error("lidar-less inner mutated the scan")
	}
}

func TestMultiForwardsLidarRole(t *testing.T) {
	// Regression: Multi (the campaign layer's windowed bundle) used to hide
	// the input slot's LidarInjector role from the client's type assertion.
	m := &Multi{
		InjectorName: "zaplidar@10",
		Input:        &WindowedInput{Inner: zapLidar{}, Window: Window{StartFrame: 10}},
	}
	var li LidarInjector = m
	r := rng.New(8)

	scan := cleanScan(4)
	li.InjectLidar(scan, 5, r)
	if scan[0] != 60 {
		t.Error("bundled lidar fault fired before window")
	}
	li.InjectLidar(scan, 10, r)
	if scan[0] != 0 {
		t.Error("bundled lidar fault inactive inside window")
	}

	// Empty and lidar-less bundles are safe no-ops.
	scan = cleanScan(4)
	(&Multi{InjectorName: "empty"}).InjectLidar(scan, 10, r)
	(&Multi{InjectorName: "img", Input: blackout{}}).InjectLidar(scan, 10, r)
	if scan[0] != 60 {
		t.Error("lidar-less bundle mutated the scan")
	}
}
