package sensorfault

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

func TestGPSDriftGrows(t *testing.T) {
	g := NewGPSDrift()
	r := rng.New(1)
	_, x1, y1 := g.InjectMeasurements(5, 0, 0, 0, r)
	_, x2, y2 := g.InjectMeasurements(5, 0, 0, 100, r)
	d1 := math.Hypot(x1, y1)
	d2 := math.Hypot(x2, y2)
	if d1 == 0 {
		t.Error("no drift on first faulty frame")
	}
	if d2 <= d1 {
		t.Errorf("drift did not grow: %v then %v", d1, d2)
	}
	// Rate: frame 100 gives ~101*0.05 = 5.05m.
	if math.Abs(d2-5.05) > 0.01 {
		t.Errorf("drift magnitude %v, want ~5.05", d2)
	}
}

func TestGPSDriftDirectionStable(t *testing.T) {
	g := NewGPSDrift()
	r := rng.New(2)
	_, x1, y1 := g.InjectMeasurements(0, 0, 0, 10, r)
	_, x2, y2 := g.InjectMeasurements(0, 0, 0, 20, r)
	// Same direction: cross product ~0, dot positive.
	cross := x1*y2 - y1*x2
	dot := x1*x2 + y1*y2
	if math.Abs(cross) > 1e-9 || dot <= 0 {
		t.Error("drift direction wandered")
	}
}

func TestGPSDriftRespectsWindow(t *testing.T) {
	g := NewGPSDrift()
	g.Window = fault.Window{StartFrame: 50}
	r := rng.New(3)
	_, x, y := g.InjectMeasurements(5, 1, 2, 10, r)
	if x != 1 || y != 2 {
		t.Error("drift before window start")
	}
}

func TestGPSDriftSpeedUntouched(t *testing.T) {
	g := NewGPSDrift()
	s, _, _ := g.InjectMeasurements(7.5, 0, 0, 0, rng.New(4))
	if s != 7.5 {
		t.Error("GPS fault modified speed")
	}
}

func TestSpeedCorruptScales(t *testing.T) {
	s := NewSpeedCorrupt()
	s.Jitter = 0
	r := rng.New(5)
	v, x, y := s.InjectMeasurements(10, 3, 4, 0, r)
	if v != 5 {
		t.Errorf("scaled speed = %v, want 5", v)
	}
	if x != 3 || y != 4 {
		t.Error("speed fault modified GPS")
	}
}

func TestSpeedCorruptNeverNegative(t *testing.T) {
	s := NewSpeedCorrupt()
	s.Scale = 0
	s.Jitter = 5
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		v, _, _ := s.InjectMeasurements(0.1, 0, 0, i, r)
		if v < 0 {
			t.Fatal("corrupted speed went negative")
		}
	}
}

func TestSpeedCorruptWindow(t *testing.T) {
	s := NewSpeedCorrupt()
	s.Window = fault.Window{StartFrame: 10, EndFrame: 20}
	r := rng.New(7)
	if v, _, _ := s.InjectMeasurements(8, 0, 0, 5, r); v != 8 {
		t.Error("corrupt before window")
	}
	if v, _, _ := s.InjectMeasurements(8, 0, 0, 25, r); v != 8 {
		t.Error("corrupt after window")
	}
}

func TestImagesUntouched(t *testing.T) {
	im := render.NewImage(8, 6)
	im.Pix[0] = 0.5
	NewGPSDrift().InjectImage(im, 0, rng.New(8))
	NewSpeedCorrupt().InjectImage(im, 0, rng.New(9))
	if im.Pix[0] != 0.5 {
		t.Error("measurement fault touched the image")
	}
}

func TestRegistered(t *testing.T) {
	for _, name := range []string{GPSDriftName, SpeedCorruptName} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if _, ok := s.New().(fault.InputInjector); !ok {
			t.Errorf("%s not an InputInjector", name)
		}
	}
}
