package sensorfault

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/rng"
)

func fullScan(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestLidarDropoutSilencesBeams(t *testing.T) {
	d := NewLidarDropout()
	ranges := fullScan(36, 8) // everything 8 m away
	d.InjectLidar(ranges, 0, rng.New(1))
	dropped := 0
	for _, v := range ranges {
		switch v {
		case d.MaxRange:
			dropped++
		case 8:
		default:
			t.Fatalf("beam has unexpected value %v", v)
		}
	}
	if dropped < 25 { // p=0.9 over 36 beams
		t.Errorf("only %d/36 beams dropped at p=0.9", dropped)
	}
}

func TestLidarDropoutWindow(t *testing.T) {
	d := NewLidarDropout()
	d.Window = fault.Window{StartFrame: 100}
	ranges := fullScan(36, 8)
	d.InjectLidar(ranges, 5, rng.New(2))
	for _, v := range ranges {
		if v != 8 {
			t.Fatal("dropout fired outside window")
		}
	}
}

func TestLidarGhostInjectsShortEchoes(t *testing.T) {
	g := NewLidarGhost()
	ranges := fullScan(360, 60)
	g.InjectLidar(ranges, 0, rng.New(3))
	ghosts := 0
	for _, v := range ranges {
		if v < 60 {
			ghosts++
			if v < g.MinRange || v > g.MaxRange {
				t.Fatalf("ghost echo %v outside [%v, %v]", v, g.MinRange, g.MaxRange)
			}
		}
	}
	frac := float64(ghosts) / 360
	if frac < 0.03 || frac > 0.15 {
		t.Errorf("ghost fraction %v, want ~0.08", frac)
	}
}

func TestLidarFaultsLeaveOtherSensorsAlone(t *testing.T) {
	for _, inj := range []fault.InputInjector{NewLidarDropout(), NewLidarGhost()} {
		s, x, y := inj.InjectMeasurements(5, 1, 2, 0, rng.New(4))
		if s != 5 || x != 1 || y != 2 {
			t.Errorf("%s touched scalar measurements", inj.Name())
		}
	}
}

func TestLidarFaultsRegistered(t *testing.T) {
	for _, name := range []string{LidarDropoutName, LidarGhostName} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered", name)
			continue
		}
		inst := s.New()
		if _, ok := inst.(fault.InputInjector); !ok {
			t.Errorf("%s not an InputInjector", name)
		}
		if _, ok := inst.(fault.LidarInjector); !ok {
			t.Errorf("%s not a LidarInjector", name)
		}
	}
}
