// Package sensorfault implements AVFI's non-camera data faults: GPS drift,
// speedometer corruption, and weather-type perturbation of the rendered
// scene — the paper's "world measurements (such as car speed or weather
// type)" fault surface.
package sensorfault

import (
	"math"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	GPSDriftName     = "gpsdrift"
	SpeedCorruptName = "speedcorrupt"
)

// GPSDrift adds a growing bias to GPS fixes — a satellite-geometry fault
// that worsens the longer it is active.
type GPSDrift struct {
	// RatePerFrame is the bias growth in meters per frame.
	RatePerFrame float64
	Window       fault.Window

	dirX, dirY float64
	started    bool
	startFrame int
}

var _ fault.InputInjector = (*GPSDrift)(nil)

// NewGPSDrift returns the default drift fault (~0.8 m/s of drift at 15 FPS).
func NewGPSDrift() *GPSDrift { return &GPSDrift{RatePerFrame: 0.05} }

// Name implements fault.InputInjector.
func (g *GPSDrift) Name() string { return GPSDriftName }

// InjectImage implements fault.InputInjector (measurement-only fault).
func (g *GPSDrift) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector.
func (g *GPSDrift) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if !g.Window.Active(frame) {
		return speed, gpsX, gpsY
	}
	if !g.started {
		angle := r.Range(0, 2*math.Pi)
		g.dirX, g.dirY = math.Cos(angle), math.Sin(angle)
		g.started = true
		g.startFrame = frame
	}
	mag := g.RatePerFrame * float64(frame-g.startFrame+1)
	return speed, gpsX + g.dirX*mag, gpsY + g.dirY*mag
}

// SpeedCorrupt scales and jitters the speedometer reading; an under-reading
// speedometer makes the speed-branch controller drive too fast.
type SpeedCorrupt struct {
	// Scale multiplies the true reading (0.5 = reads half the true speed).
	Scale float64
	// Jitter is additive Gaussian noise stddev, m/s.
	Jitter float64
	Window fault.Window
}

var _ fault.InputInjector = (*SpeedCorrupt)(nil)

// NewSpeedCorrupt returns the default speed-corruption fault.
func NewSpeedCorrupt() *SpeedCorrupt { return &SpeedCorrupt{Scale: 0.5, Jitter: 0.5} }

// Name implements fault.InputInjector.
func (s *SpeedCorrupt) Name() string { return SpeedCorruptName }

// InjectImage implements fault.InputInjector (measurement-only fault).
func (s *SpeedCorrupt) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector.
func (s *SpeedCorrupt) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if !s.Window.Active(frame) {
		return speed, gpsX, gpsY
	}
	v := speed*s.Scale + r.NormScaled(0, s.Jitter)
	if v < 0 {
		v = 0
	}
	return v, gpsX, gpsY
}

func init() {
	fault.Register(fault.Spec{
		Name: GPSDriftName, Class: fault.ClassData,
		Description: "GPS bias drift (0.05 m/frame)",
		New:         func() interface{} { return NewGPSDrift() },
	})
	fault.Register(fault.Spec{
		Name: SpeedCorruptName, Class: fault.ClassData,
		Description: "speedometer under-reads at 50% with jitter",
		New:         func() interface{} { return NewSpeedCorrupt() },
	})
}
