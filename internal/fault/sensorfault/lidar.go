package sensorfault

import (
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical LIDAR injector names.
const (
	LidarDropoutName = "lidardropout"
	LidarGhostName   = "lidarghost"
)

// LidarInjector is the optional injector role for corrupting LIDAR scans;
// the client driver applies it when an input injector also implements it.
// (Defined here rather than in package fault because LIDAR faults arrived
// with the AEB extension; the alias below re-exports it for symmetry.)
type LidarInjector = fault.LidarInjector

// LidarDropout silences beams: dropped beams read maximum range, as a
// receiver losing returns would. A blind AEB never triggers.
type LidarDropout struct {
	// Prob is the per-beam dropout probability per frame.
	Prob float64
	// MaxRange is the sensor's configured maximum (reported for lost beams).
	MaxRange float64
	Window   fault.Window
}

var (
	_ fault.InputInjector = (*LidarDropout)(nil)
	_ fault.LidarInjector = (*LidarDropout)(nil)
)

// NewLidarDropout returns the default dropout fault.
func NewLidarDropout() *LidarDropout { return &LidarDropout{Prob: 0.9, MaxRange: 60} }

// Name implements fault.InputInjector.
func (l *LidarDropout) Name() string { return LidarDropoutName }

// InjectImage implements fault.InputInjector (LIDAR-only fault).
func (l *LidarDropout) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector (LIDAR-only fault).
func (l *LidarDropout) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// InjectLidar implements fault.LidarInjector.
func (l *LidarDropout) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if !l.Window.Active(frame) {
		return
	}
	for i := range ranges {
		if r.Bool(l.Prob) {
			ranges[i] = l.MaxRange
		}
	}
}

// LidarGhost injects spurious short echoes — interference or retro-
// reflector artifacts that make the AEB see phantom obstacles and brake
// for nothing.
type LidarGhost struct {
	// Prob is the per-beam ghost probability per frame.
	Prob float64
	// MinRange, MaxRange bound the phantom return distance.
	MinRange, MaxRange float64
	Window             fault.Window
}

var (
	_ fault.InputInjector = (*LidarGhost)(nil)
	_ fault.LidarInjector = (*LidarGhost)(nil)
)

// NewLidarGhost returns the default ghost-echo fault.
func NewLidarGhost() *LidarGhost { return &LidarGhost{Prob: 0.08, MinRange: 2, MaxRange: 10} }

// Name implements fault.InputInjector.
func (l *LidarGhost) Name() string { return LidarGhostName }

// InjectImage implements fault.InputInjector (LIDAR-only fault).
func (l *LidarGhost) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector (LIDAR-only fault).
func (l *LidarGhost) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// InjectLidar implements fault.LidarInjector.
func (l *LidarGhost) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if !l.Window.Active(frame) {
		return
	}
	for i := range ranges {
		if r.Bool(l.Prob) {
			ranges[i] = r.Range(l.MinRange, l.MaxRange)
		}
	}
}

func init() {
	fault.Register(fault.Spec{
		Name: LidarDropoutName, Class: fault.ClassData,
		Description: "LIDAR beams drop to max range (p=0.9/beam) — blinds AEB",
		New:         func() interface{} { return NewLidarDropout() },
	})
	fault.Register(fault.Spec{
		Name: LidarGhostName, Class: fault.ClassData,
		Description: "spurious short LIDAR echoes (p=0.08/beam) — phantom braking",
		New:         func() interface{} { return NewLidarGhost() },
	})
}
