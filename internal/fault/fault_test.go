package fault

import (
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

func TestWindowActive(t *testing.T) {
	cases := []struct {
		w     Window
		frame int
		want  bool
	}{
		{Always, 0, true},
		{Always, 1 << 20, true},
		{Window{StartFrame: 10}, 9, false},
		{Window{StartFrame: 10}, 10, true},
		{Window{StartFrame: 10, EndFrame: 20}, 19, true},
		{Window{StartFrame: 10, EndFrame: 20}, 20, false},
	}
	for _, c := range cases {
		if got := c.w.Active(c.frame); got != c.want {
			t.Errorf("%+v.Active(%d) = %v", c.w, c.frame, got)
		}
	}
}

func TestNoopChangesNothing(t *testing.T) {
	n := Noop{}
	img := render.NewImage(4, 4)
	img.Pix[0] = 0.5
	r := rng.New(1)
	n.InjectImage(img, 0, r)
	if img.Pix[0] != 0.5 {
		t.Error("noop changed image")
	}
	s, x, y := n.InjectMeasurements(1, 2, 3, 0, r)
	if s != 1 || x != 2 || y != 3 {
		t.Error("noop changed measurements")
	}
	ctl := physics.Control{Steer: 0.5}
	if n.InjectControl(ctl, 0, r) != ctl {
		t.Error("noop changed control")
	}
	if n.Transform(ctl, 0, r) != ctl {
		t.Error("noop transformed control")
	}
}

func TestRegistryLookup(t *testing.T) {
	s, err := Lookup(NoopName)
	if err != nil {
		t.Fatal(err)
	}
	if s.Class != ClassNone {
		t.Errorf("noop class = %v", s.Class)
	}
	inst := s.New()
	if _, ok := inst.(InputInjector); !ok {
		t.Error("noop instance is not an InputInjector")
	}
	if _, err := Lookup("definitely-not-registered"); err == nil {
		t.Error("unknown lookup did not error")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty", Spec{})
	mustPanic("duplicate", Spec{Name: NoopName, New: func() interface{} { return nil }})
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassNone: "none", ClassData: "data", ClassHardware: "hardware",
		ClassTiming: "timing", ClassML: "ml", ClassInvalid: "invalid",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestNamesSortedAndContainsNoop(t *testing.T) {
	names := Names()
	found := false
	for i, n := range names {
		if n == NoopName {
			found = true
		}
		if i > 0 && names[i-1] > n {
			t.Error("Names not sorted")
		}
	}
	if !found {
		t.Error("noop not registered")
	}
}
