package fault

import (
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// The Windowed* wrappers gate any injector behind an activation window
// without the injector's cooperation — the campaign-level form of the
// paper's fault localizer choosing *when* a fault strikes. They make
// mid-episode injection (and therefore meaningful Time-To-Violation
// measurement) available for every fault model, including user-defined
// ones that don't expose a Window field.

// Multi bundles up to three injector roles under one name, delegating each
// role to its slot (nil slots are no-ops). The campaign layer uses it to
// re-assemble a windowed injector that keeps every role of the original.
type Multi struct {
	InjectorName string
	Input        InputInjector
	Output       OutputInjector
	Timing       TimingInjector
}

var (
	_ InputInjector  = (*Multi)(nil)
	_ LidarInjector  = (*Multi)(nil)
	_ OutputInjector = (*Multi)(nil)
	_ TimingInjector = (*Multi)(nil)
)

// Name implements the injector interfaces.
func (m *Multi) Name() string { return m.InjectorName }

// InjectImage implements InputInjector.
func (m *Multi) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if m.Input != nil {
		m.Input.InjectImage(img, frame, r)
	}
}

// InjectMeasurements implements InputInjector.
func (m *Multi) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if m.Input != nil {
		return m.Input.InjectMeasurements(speed, gpsX, gpsY, frame, r)
	}
	return speed, gpsX, gpsY
}

// InjectLidar implements LidarInjector, delegating to the input slot when
// it carries the LIDAR role. The client driver type-asserts its single
// Input injector for this role, so the bundle must keep forwarding it —
// dropping it here is what silently disarmed windowed lidar faults.
func (m *Multi) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if li, ok := m.Input.(LidarInjector); ok {
		li.InjectLidar(ranges, frame, r)
	}
}

// InjectControl implements OutputInjector.
func (m *Multi) InjectControl(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if m.Output != nil {
		return m.Output.InjectControl(ctl, frame, r)
	}
	return ctl
}

// Transform implements TimingInjector.
func (m *Multi) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if m.Timing != nil {
		return m.Timing.Transform(ctl, frame, r)
	}
	return ctl
}

// Reset implements TimingInjector.
func (m *Multi) Reset() {
	if m.Timing != nil {
		m.Timing.Reset()
	}
}

// Chain composes several input injectors into one: each stage sees the
// previous stage's output, modeling simultaneous faults (e.g. a camera
// occlusion together with LIDAR dropout — the combination that defeats
// both the driving agent and its AEB safety monitor).
type Chain struct {
	ChainName string
	Stages    []InputInjector
}

var (
	_ InputInjector = (*Chain)(nil)
	_ LidarInjector = (*Chain)(nil)
)

// NewChain composes input injectors under a campaign column name.
func NewChain(name string, stages ...InputInjector) *Chain {
	return &Chain{ChainName: name, Stages: stages}
}

// Name implements InputInjector.
func (c *Chain) Name() string { return c.ChainName }

// InjectImage implements InputInjector.
func (c *Chain) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	for _, s := range c.Stages {
		s.InjectImage(img, frame, r)
	}
}

// InjectMeasurements implements InputInjector.
func (c *Chain) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	for _, s := range c.Stages {
		speed, gpsX, gpsY = s.InjectMeasurements(speed, gpsX, gpsY, frame, r)
	}
	return speed, gpsX, gpsY
}

// InjectLidar implements LidarInjector, delegating to stages that corrupt
// LIDAR.
func (c *Chain) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	for _, s := range c.Stages {
		if li, ok := s.(LidarInjector); ok {
			li.InjectLidar(ranges, frame, r)
		}
	}
}

// WindowedInput gates an InputInjector.
type WindowedInput struct {
	Inner  InputInjector
	Window Window
}

var (
	_ InputInjector = (*WindowedInput)(nil)
	_ LidarInjector = (*WindowedInput)(nil)
)

// Name implements InputInjector.
func (w *WindowedInput) Name() string { return w.Inner.Name() }

// InjectImage implements InputInjector.
func (w *WindowedInput) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !w.Window.Active(frame) {
		return
	}
	w.Inner.InjectImage(img, frame, r)
}

// InjectMeasurements implements InputInjector.
func (w *WindowedInput) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if !w.Window.Active(frame) {
		return speed, gpsX, gpsY
	}
	return w.Inner.InjectMeasurements(speed, gpsX, gpsY, frame, r)
}

// InjectLidar implements LidarInjector, gating the inner injector's LIDAR
// role (when it has one) behind the window like the other input roles.
func (w *WindowedInput) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if !w.Window.Active(frame) {
		return
	}
	if li, ok := w.Inner.(LidarInjector); ok {
		li.InjectLidar(ranges, frame, r)
	}
}

// WindowedOutput gates an OutputInjector.
type WindowedOutput struct {
	Inner  OutputInjector
	Window Window
}

var _ OutputInjector = (*WindowedOutput)(nil)

// Name implements OutputInjector.
func (w *WindowedOutput) Name() string { return w.Inner.Name() }

// InjectControl implements OutputInjector.
func (w *WindowedOutput) InjectControl(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !w.Window.Active(frame) {
		return ctl
	}
	return w.Inner.InjectControl(ctl, frame, r)
}

// WindowedTiming gates a TimingInjector. Outside the window the control
// stream passes through untouched; the inner injector still observes every
// frame so its queues stay causally consistent when the window opens.
type WindowedTiming struct {
	Inner  TimingInjector
	Window Window
}

var _ TimingInjector = (*WindowedTiming)(nil)

// Name implements TimingInjector.
func (w *WindowedTiming) Name() string { return w.Inner.Name() }

// Reset implements TimingInjector.
func (w *WindowedTiming) Reset() { w.Inner.Reset() }

// Transform implements TimingInjector.
func (w *WindowedTiming) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	out := w.Inner.Transform(ctl, frame, r)
	if !w.Window.Active(frame) {
		return ctl
	}
	return out
}
