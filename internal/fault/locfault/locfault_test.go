package locfault

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/rng"
)

func TestGPSWalkAccumulates(t *testing.T) {
	g := NewGPSWalk()
	r := rng.New(1)
	var maxErr float64
	for i := 0; i < 200; i++ {
		_, x, y := g.InjectMeasurements(5, 100, 200, i, r)
		if e := math.Hypot(x-100, y-200); e > maxErr {
			maxErr = e
		}
	}
	if maxErr < g.StepSigma {
		t.Errorf("random walk never wandered past one step (max error %v)", maxErr)
	}
	// Speed is untouched.
	s, _, _ := g.InjectMeasurements(5, 0, 0, 200, r)
	if s != 5 {
		t.Error("GPS walk corrupted the speed channel")
	}
}

func TestFusionDivergeGrows(t *testing.T) {
	f := NewFusionDiverge()
	r := rng.New(2)
	_, x0, y0 := f.InjectMeasurements(5, 0, 0, 0, r)
	early := math.Hypot(x0, y0)
	var late float64
	var lateSpeed float64
	for i := 1; i <= 60; i++ {
		s, x, y := f.InjectMeasurements(5, 0, 0, i, r)
		late = math.Hypot(x, y)
		lateSpeed = s
	}
	if late <= early*10 {
		t.Errorf("divergence did not grow: %v m at frame 0 vs %v m at frame 60", early, late)
	}
	if lateSpeed <= 5 {
		t.Error("fused speed estimate did not inflate")
	}
}

func TestLocFaultsDeterministicAndRegistered(t *testing.T) {
	for _, name := range []string{GPSWalkName, FusionDivergeName} {
		spec, err := fault.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Class != fault.ClassLocalization {
			t.Errorf("%s class = %v", name, spec.Class)
		}
		run := func() [][3]float64 {
			inj := spec.New().(fault.InputInjector)
			r := rng.New(9)
			var out [][3]float64
			for i := 0; i < 50; i++ {
				s, x, y := inj.InjectMeasurements(3, 10, 20, i, r)
				out = append(out, [3]float64{s, x, y})
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: frame %d differs across identical runs", name, i)
			}
		}
	}
}

func TestLocFaultsGateOnWindow(t *testing.T) {
	g := &GPSWalk{StepSigma: 1, Window: fault.Window{StartFrame: 100}}
	f := &FusionDiverge{InitialMeters: 5, GrowthPerFrame: 0.5, Window: fault.Window{StartFrame: 100}}
	r := rng.New(3)
	for _, inj := range []fault.InputInjector{g, f} {
		s, x, y := inj.InjectMeasurements(5, 1, 2, 10, r)
		if s != 5 || x != 1 || y != 2 {
			t.Errorf("%s fired before its window", inj.Name())
		}
	}
}
