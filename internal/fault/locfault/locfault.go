// Package locfault implements localization faults: errors in the
// vehicle's estimate of where it is and how fast it moves. GPSWalk models
// a receiver random-walking away from truth (multipath, ionospheric
// error); FusionDiverge models a state-estimation filter whose error
// feeds back on itself and grows without bound — the silent failure mode
// of an unmonitored Kalman-style fusion stack. Both corrupt the measured
// pose handed to the agent, complementing sensorfault's fixed-direction
// GPS bias drift.
package locfault

import (
	"math"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	GPSWalkName       = "gpswalk"
	FusionDivergeName = "fusiondiverge"
)

// GPSWalk perturbs the GPS fix with an unbiased random walk: each active
// frame the reported position steps by Gaussian noise that accumulates,
// so the error wanders rather than growing in a straight line.
type GPSWalk struct {
	// StepSigma is the per-frame step stddev in meters (per axis).
	StepSigma float64
	Window    fault.Window

	offX, offY float64
}

var (
	_ fault.InputInjector = (*GPSWalk)(nil)
)

// NewGPSWalk returns the default random-walk fault (~1 m RMS after 4 s at
// 15 FPS).
func NewGPSWalk() *GPSWalk { return &GPSWalk{StepSigma: 0.15} }

// Name implements fault.InputInjector.
func (g *GPSWalk) Name() string { return GPSWalkName }

// InjectImage implements fault.InputInjector (measurement-only fault).
func (g *GPSWalk) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector.
func (g *GPSWalk) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if !g.Window.Active(frame) {
		return speed, gpsX, gpsY
	}
	g.offX += r.NormScaled(0, g.StepSigma)
	g.offY += r.NormScaled(0, g.StepSigma)
	return speed, gpsX + g.offX, gpsY + g.offY
}

// FusionDiverge models sensor-fusion divergence: once triggered, the pose
// estimate drifts in a random direction with exponentially growing
// magnitude, and the fused speed estimate inflates with it — the
// characteristic signature of a filter whose innovation gate has failed
// open.
type FusionDiverge struct {
	// InitialMeters is the error magnitude on the first faulty frame.
	InitialMeters float64
	// GrowthPerFrame is the exponential growth rate (0.08 doubles the
	// error roughly every 9 frames).
	GrowthPerFrame float64
	// SpeedDriftPerFrame linearly inflates the fused speed estimate.
	SpeedDriftPerFrame float64
	Window             fault.Window

	dirX, dirY float64
	started    bool
	startFrame int
}

var (
	_ fault.InputInjector = (*FusionDiverge)(nil)
)

// NewFusionDiverge returns the default divergence fault.
func NewFusionDiverge() *FusionDiverge {
	return &FusionDiverge{InitialMeters: 0.5, GrowthPerFrame: 0.08, SpeedDriftPerFrame: 0.01}
}

// Name implements fault.InputInjector.
func (f *FusionDiverge) Name() string { return FusionDivergeName }

// InjectImage implements fault.InputInjector (measurement-only fault).
func (f *FusionDiverge) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector.
func (f *FusionDiverge) InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64) {
	if !f.Window.Active(frame) {
		return speed, gpsX, gpsY
	}
	if !f.started {
		angle := r.Range(0, 2*math.Pi)
		f.dirX, f.dirY = math.Cos(angle), math.Sin(angle)
		f.started = true
		f.startFrame = frame
	}
	k := float64(frame - f.startFrame)
	mag := f.InitialMeters * math.Pow(1+f.GrowthPerFrame, k)
	speed *= 1 + f.SpeedDriftPerFrame*k
	return speed, gpsX + f.dirX*mag, gpsY + f.dirY*mag
}

func init() {
	fault.Register(fault.Spec{
		Name: GPSWalkName, Class: fault.ClassLocalization,
		Description: "GPS random walk (0.15 m/frame step stddev)",
		New:         func() interface{} { return NewGPSWalk() },
	})
	fault.Register(fault.Spec{
		Name: FusionDivergeName, Class: fault.ClassLocalization,
		Description: "fusion divergence: pose error grows 8%/frame, speed inflates",
		New:         func() interface{} { return NewFusionDiverge() },
	})
}
