// Package imagefault implements AVFI's camera data-fault models — the
// input-fault suite of the paper's Figures 2 and 3: Gaussian sensor noise,
// salt & pepper noise, solid occlusions, transparent occlusions, and water
// droplets on the lens.
//
// Each injector corrupts the RGB frame between the simulator's camera and
// the driving agent ("AVFI intercepts the RGB camera sensor data from the
// server, modifies the image according to a sensor-specific fault model,
// and then forwards it to the IL-CNN"). Injectors are deterministic given
// the campaign's rng stream; occlusion geometry is sampled once per
// episode (a sticker or droplet stays put frame to frame).
package imagefault

import (
	"math"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names (the x-axis labels of Figures 2 and 3).
const (
	GaussianName   = "gaussian"
	SaltPepperName = "saltpepper"
	SolidOccName   = "solidocc"
	TranspOccName  = "transpocc"
	WaterDropName  = "waterdrop"
)

// Gaussian adds zero-mean Gaussian noise to every channel.
type Gaussian struct {
	// Sigma is the noise stddev in intensity units ([0,1] scale).
	Sigma  float64
	Window fault.Window
}

var _ fault.InputInjector = (*Gaussian)(nil)

// NewGaussian returns the paper-default Gaussian camera fault.
func NewGaussian() *Gaussian { return &Gaussian{Sigma: 0.28} }

// Name implements fault.InputInjector.
func (g *Gaussian) Name() string { return GaussianName }

// InjectImage implements fault.InputInjector.
func (g *Gaussian) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !g.Window.Active(frame) {
		return
	}
	for i := range img.Pix {
		img.Pix[i] = geom.Clamp(img.Pix[i]+r.NormScaled(0, g.Sigma), 0, 1)
	}
}

// InjectMeasurements implements fault.InputInjector (camera-only fault).
func (g *Gaussian) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// SaltPepper flips a fraction of pixels to pure black or white.
type SaltPepper struct {
	// Prob is the per-pixel corruption probability.
	Prob   float64
	Window fault.Window
}

var _ fault.InputInjector = (*SaltPepper)(nil)

// NewSaltPepper returns the paper-default salt & pepper fault.
func NewSaltPepper() *SaltPepper { return &SaltPepper{Prob: 0.20} }

// Name implements fault.InputInjector.
func (s *SaltPepper) Name() string { return SaltPepperName }

// InjectImage implements fault.InputInjector.
func (s *SaltPepper) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !s.Window.Active(frame) {
		return
	}
	n := img.W * img.H
	for p := 0; p < n; p++ {
		if !r.Bool(s.Prob) {
			continue
		}
		v := 0.0
		if r.Bool(0.5) {
			v = 1.0
		}
		y, x := p/img.W, p%img.W
		img.SetRGB(y, x, v, v, v)
	}
}

// InjectMeasurements implements fault.InputInjector (camera-only fault).
func (s *SaltPepper) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// SolidOcclusion blacks out a rectangular region — debris or a sticker on
// the lens. The rectangle is sampled on first use per episode and persists.
type SolidOcclusion struct {
	// FracW, FracH are the occluded fraction of each image dimension.
	FracW, FracH float64
	Window       fault.Window

	placed         bool
	x0, y0, x1, y1 int
}

var _ fault.InputInjector = (*SolidOcclusion)(nil)

// NewSolidOcclusion returns the paper-default solid occlusion.
func NewSolidOcclusion() *SolidOcclusion { return &SolidOcclusion{FracW: 0.4, FracH: 0.5} }

// Name implements fault.InputInjector.
func (s *SolidOcclusion) Name() string { return SolidOccName }

// InjectImage implements fault.InputInjector.
func (s *SolidOcclusion) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !s.Window.Active(frame) {
		return
	}
	if !s.placed {
		s.place(img, r)
	}
	for y := s.y0; y < s.y1; y++ {
		for x := s.x0; x < s.x1; x++ {
			img.SetRGB(y, x, 0, 0, 0)
		}
	}
}

func (s *SolidOcclusion) place(img *render.Image, r *rng.Stream) {
	w := int(float64(img.W) * s.FracW)
	h := int(float64(img.H) * s.FracH)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	s.x0 = r.Intn(img.W - w + 1)
	s.y0 = r.Intn(img.H - h + 1)
	s.x1 = s.x0 + w
	s.y1 = s.y0 + h
	s.placed = true
}

// InjectMeasurements implements fault.InputInjector (camera-only fault).
func (s *SolidOcclusion) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// TransparentOcclusion overlays a translucent gray film over a region —
// dirt or condensation that attenuates rather than blocks.
type TransparentOcclusion struct {
	FracW, FracH float64
	// Alpha is the film opacity in [0,1].
	Alpha  float64
	Window fault.Window

	placed         bool
	x0, y0, x1, y1 int
}

var _ fault.InputInjector = (*TransparentOcclusion)(nil)

// NewTransparentOcclusion returns the paper-default transparent occlusion.
func NewTransparentOcclusion() *TransparentOcclusion {
	return &TransparentOcclusion{FracW: 0.6, FracH: 0.6, Alpha: 0.65}
}

// Name implements fault.InputInjector.
func (t *TransparentOcclusion) Name() string { return TranspOccName }

// InjectImage implements fault.InputInjector.
func (t *TransparentOcclusion) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !t.Window.Active(frame) {
		return
	}
	if !t.placed {
		w := int(float64(img.W) * t.FracW)
		h := int(float64(img.H) * t.FracH)
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
		t.x0 = r.Intn(img.W - w + 1)
		t.y0 = r.Intn(img.H - h + 1)
		t.x1, t.y1 = t.x0+w, t.y0+h
		t.placed = true
	}
	const film = 0.5
	for y := t.y0; y < t.y1; y++ {
		for x := t.x0; x < t.x1; x++ {
			rr, gg, bb := img.RGB(y, x)
			img.SetRGB(y, x,
				rr*(1-t.Alpha)+film*t.Alpha,
				gg*(1-t.Alpha)+film*t.Alpha,
				bb*(1-t.Alpha)+film*t.Alpha,
			)
		}
	}
}

// InjectMeasurements implements fault.InputInjector (camera-only fault).
func (t *TransparentOcclusion) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// WaterDrop renders lens water droplets. A droplet on a lens acts as a
// strong fisheye element: inside each droplet the image is sampled from a
// flipped, magnified source region (real droplets invert the scene),
// lightly blurred and brightened. Droplets are sampled once per episode and
// slowly slide down the lens.
type WaterDrop struct {
	// Drops is the droplet count.
	Drops int
	// RadiusFrac is each droplet's radius as a fraction of image width.
	RadiusFrac float64
	// Refraction is the source-displacement factor inside a droplet:
	// -1 samples the mirror image across the droplet center.
	Refraction float64
	Window     fault.Window

	placed bool
	cx, cy []float64
	rad    []float64
}

var _ fault.InputInjector = (*WaterDrop)(nil)

// NewWaterDrop returns the paper-default water droplet fault.
func NewWaterDrop() *WaterDrop {
	return &WaterDrop{Drops: 10, RadiusFrac: 0.14, Refraction: -0.8}
}

// Name implements fault.InputInjector.
func (w *WaterDrop) Name() string { return WaterDropName }

// InjectImage implements fault.InputInjector.
func (w *WaterDrop) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !w.Window.Active(frame) {
		return
	}
	if !w.placed {
		for i := 0; i < w.Drops; i++ {
			w.cx = append(w.cx, r.Range(0, float64(img.W)))
			w.cy = append(w.cy, r.Range(0, float64(img.H)))
			w.rad = append(w.rad, r.Range(0.6, 1.4)*w.RadiusFrac*float64(img.W))
		}
		w.placed = true
	}
	src := img.Clone()
	for i := range w.cx {
		// Droplets slide slowly down the lens.
		cy := w.cy[i] + float64(frame)*0.03
		w.refractDisk(img, src, w.cx[i], cy, w.rad[i])
	}
}

// refractDisk replaces the disk's pixels with a refracted (flipped and
// magnified around the droplet center), blurred and brightened sample of
// the source image.
func (w *WaterDrop) refractDisk(dst, src *render.Image, cx, cy, rad float64) {
	x0 := int(math.Max(0, cx-rad))
	x1 := int(math.Min(float64(dst.W-1), cx+rad))
	y0 := int(math.Max(0, cy-rad))
	y1 := int(math.Min(float64(dst.H-1), cy+rad))
	const k = 1 // blur kernel half-size
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy > rad*rad {
				continue
			}
			// Refracted source coordinate: displaced across the center.
			sx := int(cx + dx*w.Refraction)
			sy := int(cy + dy*w.Refraction)
			var sr, sg, sb float64
			n := 0
			for yy := sy - k; yy <= sy+k; yy++ {
				for xx := sx - k; xx <= sx+k; xx++ {
					if yy < 0 || yy >= src.H || xx < 0 || xx >= src.W {
						continue
					}
					rr, gg, bb := src.RGB(yy, xx)
					sr += rr
					sg += gg
					sb += bb
					n++
				}
			}
			if n == 0 {
				// Refraction pointed outside the frame: droplet renders as
				// bright sky-colored glare.
				dst.SetRGB(y, x, 0.85, 0.88, 0.92)
				continue
			}
			brighten := 1.2
			dst.SetRGB(y, x,
				geom.Clamp(sr/float64(n)*brighten, 0, 1),
				geom.Clamp(sg/float64(n)*brighten, 0, 1),
				geom.Clamp(sb/float64(n)*brighten, 0, 1),
			)
		}
	}
}

// InjectMeasurements implements fault.InputInjector (camera-only fault).
func (w *WaterDrop) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

func init() {
	fault.Register(fault.Spec{
		Name: GaussianName, Class: fault.ClassData,
		Description: "Gaussian camera noise (sigma 0.28)",
		New:         func() interface{} { return NewGaussian() },
	})
	fault.Register(fault.Spec{
		Name: SaltPepperName, Class: fault.ClassData,
		Description: "salt & pepper pixel corruption (p=0.20)",
		New:         func() interface{} { return NewSaltPepper() },
	})
	fault.Register(fault.Spec{
		Name: SolidOccName, Class: fault.ClassData,
		Description: "solid lens occlusion (40% x 50% rectangle)",
		New:         func() interface{} { return NewSolidOcclusion() },
	})
	fault.Register(fault.Spec{
		Name: TranspOccName, Class: fault.ClassData,
		Description: "transparent lens film (60% x 60%, alpha 0.65)",
		New:         func() interface{} { return NewTransparentOcclusion() },
	})
	fault.Register(fault.Spec{
		Name: WaterDropName, Class: fault.ClassData,
		Description: "refracting water droplets on the lens (10 drops)",
		New:         func() interface{} { return NewWaterDrop() },
	})
}
