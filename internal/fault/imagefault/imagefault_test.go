package imagefault

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// gradientImage returns a deterministic non-trivial test frame.
func gradientImage(w, h int) *render.Image {
	im := render.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64(x+y) / float64(w+h)
			im.SetRGB(y, x, v, v/2, 1-v)
		}
	}
	return im
}

func countDiff(a, b *render.Image) int {
	n := 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			n++
		}
	}
	return n
}

func TestAllRegistered(t *testing.T) {
	for _, name := range []string{GaussianName, SaltPepperName, SolidOccName, TranspOccName, WaterDropName} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered: %v", name, err)
			continue
		}
		if s.Class != fault.ClassData {
			t.Errorf("%s class = %v, want data", name, s.Class)
		}
		if _, ok := s.New().(fault.InputInjector); !ok {
			t.Errorf("%s instance is not an InputInjector", name)
		}
	}
}

func TestGaussianStatistics(t *testing.T) {
	im := gradientImage(32, 24)
	orig := im.Clone()
	g := NewGaussian()
	g.InjectImage(im, 0, rng.New(1))

	diff := countDiff(orig, im)
	if diff < len(im.Pix)/2 {
		t.Errorf("gaussian changed only %d/%d values", diff, len(im.Pix))
	}
	// Mean shift should be small (zero-mean noise, modulo clamping).
	if d := math.Abs(im.Mean() - orig.Mean()); d > 0.05 {
		t.Errorf("gaussian shifted mean by %v", d)
	}
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatal("gaussian left pixels out of range")
		}
	}
}

func TestGaussianWindowGates(t *testing.T) {
	im := gradientImage(16, 12)
	orig := im.Clone()
	g := NewGaussian()
	g.Window = fault.Window{StartFrame: 100}
	g.InjectImage(im, 5, rng.New(2))
	if countDiff(orig, im) != 0 {
		t.Error("windowed injector fired outside its window")
	}
}

func TestSaltPepperFraction(t *testing.T) {
	im := gradientImage(64, 48)
	orig := im.Clone()
	s := NewSaltPepper()
	s.InjectImage(im, 0, rng.New(3))

	// Corrupted pixels are pure black or white in all channels.
	corrupted := 0
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.RGB(y, x)
			or, og, ob := orig.RGB(y, x)
			if r != or || g != og || b != ob {
				corrupted++
				if !(r == 0 && g == 0 && b == 0) && !(r == 1 && g == 1 && b == 1) {
					t.Fatalf("corrupted pixel (%d,%d) is %v,%v,%v — not salt or pepper", x, y, r, g, b)
				}
			}
		}
	}
	frac := float64(corrupted) / float64(im.W*im.H)
	if frac < 0.13 || frac > 0.28 {
		t.Errorf("salt&pepper hit fraction %v, want ~0.20", frac)
	}
}

func TestSolidOcclusionGeometry(t *testing.T) {
	im := gradientImage(40, 30)
	s := NewSolidOcclusion()
	s.InjectImage(im, 0, rng.New(4))

	// Count black pixels: must be ~FracW*FracH of the frame.
	black := 0
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.RGB(y, x)
			if r == 0 && g == 0 && b == 0 {
				black++
			}
		}
	}
	want := int(0.4 * 0.5 * float64(im.W*im.H))
	if black < want*8/10 || black > want*13/10 {
		t.Errorf("occluded pixels %d, want ~%d", black, want)
	}
}

func TestSolidOcclusionStableAcrossFrames(t *testing.T) {
	s := NewSolidOcclusion()
	r := rng.New(5)
	a := gradientImage(40, 30)
	s.InjectImage(a, 0, r)
	b := gradientImage(40, 30)
	s.InjectImage(b, 1, r)
	if countDiff(a, b) != 0 {
		t.Error("occlusion rectangle moved between frames")
	}
}

func TestTransparentOcclusionAttenuates(t *testing.T) {
	im := gradientImage(40, 30)
	orig := im.Clone()
	o := NewTransparentOcclusion()
	o.InjectImage(im, 0, rng.New(6))

	diff := countDiff(orig, im)
	if diff == 0 {
		t.Fatal("transparent occlusion changed nothing")
	}
	// Unlike solid occlusion, no pixel should be forced to pure black.
	for i := range im.Pix {
		if orig.Pix[i] > 0.2 && im.Pix[i] == 0 {
			t.Fatal("transparent occlusion blacked out a pixel")
		}
	}
}

func TestWaterDropBlursLocally(t *testing.T) {
	// High-frequency checkerboard: blur must reduce local variance.
	im := render.NewImage(48, 36)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float64((x + y) % 2)
			im.SetRGB(y, x, v, v, v)
		}
	}
	orig := im.Clone()
	w := NewWaterDrop()
	w.InjectImage(im, 0, rng.New(7))

	if countDiff(orig, im) == 0 {
		t.Fatal("water drop changed nothing")
	}
	// Changed pixels should be blurred toward the local mean (0.5-ish),
	// brightened by 1.15.
	blurred := 0
	for i := range im.Pix {
		if im.Pix[i] != orig.Pix[i] && im.Pix[i] > 0.3 && im.Pix[i] < 0.8 {
			blurred++
		}
	}
	if blurred < 20 {
		t.Errorf("only %d pixels look blurred", blurred)
	}
}

func TestWaterDropSlidesOverTime(t *testing.T) {
	w := NewWaterDrop()
	r := rng.New(8)
	a := gradientImage(48, 36)
	w.InjectImage(a, 0, r)
	b := gradientImage(48, 36)
	w.InjectImage(b, 200, r) // 200 frames later the droplets moved
	if countDiff(a, b) == 0 {
		t.Error("droplets did not slide across frames")
	}
}

func TestInjectorsDeterministic(t *testing.T) {
	mks := map[string]func() fault.InputInjector{
		GaussianName:   func() fault.InputInjector { return NewGaussian() },
		SaltPepperName: func() fault.InputInjector { return NewSaltPepper() },
		SolidOccName:   func() fault.InputInjector { return NewSolidOcclusion() },
		TranspOccName:  func() fault.InputInjector { return NewTransparentOcclusion() },
		WaterDropName:  func() fault.InputInjector { return NewWaterDrop() },
	}
	for name, mk := range mks {
		run := func() *render.Image {
			im := gradientImage(32, 24)
			mk().InjectImage(im, 3, rng.New(42))
			return im
		}
		if countDiff(run(), run()) != 0 {
			t.Errorf("%s not deterministic", name)
		}
	}
}

func TestMeasurementsUntouchedByCameraFaults(t *testing.T) {
	injs := []fault.InputInjector{
		NewGaussian(), NewSaltPepper(), NewSolidOcclusion(),
		NewTransparentOcclusion(), NewWaterDrop(),
	}
	for _, inj := range injs {
		s, x, y := inj.InjectMeasurements(5, 10, 20, 0, rng.New(1))
		if s != 5 || x != 10 || y != 20 {
			t.Errorf("%s modified measurements", inj.Name())
		}
	}
}
