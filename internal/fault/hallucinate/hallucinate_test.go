package hallucinate

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/rng"
)

func clearScan(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 60
	}
	return s
}

func TestPhantomAheadPersistsAtOneDistance(t *testing.T) {
	p := NewPhantomAhead()
	r := rng.New(1)
	var dist float64
	for i := 0; i < 20; i++ {
		scan := clearScan(36)
		p.InjectLidar(scan, i, r)
		if scan[0] < p.MinRange || scan[0] > p.MaxRange {
			t.Fatalf("frame %d: forward beam %v outside phantom bounds", i, scan[0])
		}
		if i == 0 {
			dist = scan[0]
		} else if scan[0] != dist {
			t.Fatalf("phantom moved: %v then %v", dist, scan[0])
		}
		// The cone covers WidthBeams each side (wrapping), nothing else.
		if scan[p.WidthBeams] != dist || scan[36-p.WidthBeams] != dist {
			t.Fatal("phantom cone edge missing")
		}
		if scan[p.WidthBeams+1] != 60 {
			t.Fatal("phantom wider than its cone")
		}
	}
}

func TestPhantomKeepsCloserRealReturns(t *testing.T) {
	p := NewPhantomAhead()
	r := rng.New(2)
	scan := clearScan(36)
	scan[0] = 0.5 // a real object closer than any phantom
	p.InjectLidar(scan, 0, r)
	if scan[0] != 0.5 {
		t.Error("phantom overwrote a closer real return")
	}
}

func TestPhantomFlickerIntermittent(t *testing.T) {
	p := NewPhantomFlicker()
	r := rng.New(3)
	appeared, clear := 0, 0
	for i := 0; i < 100; i++ {
		scan := clearScan(36)
		p.InjectLidar(scan, i, r)
		if scan[0] < 60 {
			appeared++
		} else {
			clear++
		}
	}
	if appeared == 0 || clear == 0 {
		t.Errorf("flicker not intermittent: %d phantom / %d clear frames", appeared, clear)
	}
}

func TestHallucinationsRegisteredWindowedDeterministic(t *testing.T) {
	for _, name := range []string{PhantomAheadName, PhantomFlickerName} {
		spec, err := fault.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Class != fault.ClassPerception {
			t.Errorf("%s class = %v", name, spec.Class)
		}
		if _, ok := spec.New().(fault.LidarInjector); !ok {
			t.Fatalf("%s is not a LidarInjector", name)
		}
		run := func() []float64 {
			inj := spec.New().(fault.LidarInjector)
			r := rng.New(11)
			var out []float64
			for i := 0; i < 40; i++ {
				scan := clearScan(36)
				inj.InjectLidar(scan, i, r)
				out = append(out, scan...)
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: output differs across identical runs", name)
			}
		}
	}
	// Window gating.
	p := &PhantomAhead{MinRange: 1, MaxRange: 2, WidthBeams: 1, Window: fault.Window{StartFrame: 5}}
	r := rng.New(4)
	scan := clearScan(8)
	p.InjectLidar(scan, 0, r)
	if scan[0] != 60 {
		t.Error("phantom appeared before its window")
	}
}
