// Package hallucinate implements perception hallucinations: phantom
// obstacles injected into the LIDAR scan, after the CARLA fake-points
// technique — spurious returns placed where nothing exists. Where
// sensorfault's LidarGhost scatters uncorrelated short echoes, these
// faults fabricate a *coherent* obstacle (a contiguous cone of beams at a
// consistent distance), which is what defeats plausibility filtering and
// turns a safety monitor against the vehicle: the AEB slams the brakes
// for an object that was never there.
package hallucinate

import (
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	PhantomAheadName   = "phantomahead"
	PhantomFlickerName = "phantomflicker"
)

// paintCone writes a phantom return at dist into the beams within width of
// the forward beam (index 0; the scan wraps). Real returns closer than the
// phantom win, as they would in a point cloud merge.
func paintCone(ranges []float64, width int, dist float64) {
	n := len(ranges)
	if n == 0 {
		return
	}
	for off := -width; off <= width; off++ {
		i := ((off % n) + n) % n
		if ranges[i] > dist {
			ranges[i] = dist
		}
	}
}

// PhantomAhead fabricates a persistent obstacle dead ahead: a cone of
// beams reads a consistent short range for as long as the fault is
// active. The distance is drawn once per episode, so the "object" holds
// still — indistinguishable from a real stalled car to a range-only
// monitor.
type PhantomAhead struct {
	// MinRange, MaxRange bound the once-per-episode distance draw.
	MinRange, MaxRange float64
	// WidthBeams is the phantom's half-width in beams around forward.
	WidthBeams int
	Window     fault.Window

	dist    float64
	started bool
}

var (
	_ fault.InputInjector = (*PhantomAhead)(nil)
	_ fault.LidarInjector = (*PhantomAhead)(nil)
)

// NewPhantomAhead returns the default persistent phantom (1.5-2.5 m ahead,
// inside the AEB's minimum trigger distance).
func NewPhantomAhead() *PhantomAhead {
	return &PhantomAhead{MinRange: 1.5, MaxRange: 2.5, WidthBeams: 2}
}

// Name implements fault.InputInjector.
func (p *PhantomAhead) Name() string { return PhantomAheadName }

// InjectImage implements fault.InputInjector (LIDAR-only fault).
func (p *PhantomAhead) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector (LIDAR-only fault).
func (p *PhantomAhead) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// InjectLidar implements fault.LidarInjector.
func (p *PhantomAhead) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if !p.Window.Active(frame) {
		return
	}
	if !p.started {
		p.dist = r.Range(p.MinRange, p.MaxRange)
		p.started = true
	}
	paintCone(ranges, p.WidthBeams, p.dist)
}

// PhantomFlicker fabricates an intermittent obstacle: on a fraction of
// frames the phantom cone appears at a fresh random distance, then
// vanishes — the flickering false positive that stutter-brakes a vehicle
// and teaches its passengers to distrust the AEB.
type PhantomFlicker struct {
	// Prob is the per-frame probability the phantom appears.
	Prob float64
	// MinRange, MaxRange bound the per-appearance distance draw.
	MinRange, MaxRange float64
	// WidthBeams is the phantom's half-width in beams around forward.
	WidthBeams int
	Window     fault.Window
}

var (
	_ fault.InputInjector = (*PhantomFlicker)(nil)
	_ fault.LidarInjector = (*PhantomFlicker)(nil)
)

// NewPhantomFlicker returns the default flickering phantom.
func NewPhantomFlicker() *PhantomFlicker {
	return &PhantomFlicker{Prob: 0.3, MinRange: 1.5, MaxRange: 2.5, WidthBeams: 2}
}

// Name implements fault.InputInjector.
func (p *PhantomFlicker) Name() string { return PhantomFlickerName }

// InjectImage implements fault.InputInjector (LIDAR-only fault).
func (p *PhantomFlicker) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements fault.InputInjector (LIDAR-only fault).
func (p *PhantomFlicker) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// InjectLidar implements fault.LidarInjector.
func (p *PhantomFlicker) InjectLidar(ranges []float64, frame int, r *rng.Stream) {
	if !p.Window.Active(frame) {
		return
	}
	if !r.Bool(p.Prob) {
		return
	}
	paintCone(ranges, p.WidthBeams, r.Range(p.MinRange, p.MaxRange))
}

func init() {
	fault.Register(fault.Spec{
		Name: PhantomAheadName, Class: fault.ClassPerception,
		Description: "persistent phantom obstacle 1.5-2.5 m ahead (5-beam cone)",
		New:         func() interface{} { return NewPhantomAhead() },
	})
	fault.Register(fault.Spec{
		Name: PhantomFlickerName, Class: fault.ClassPerception,
		Description: "flickering phantom obstacle (p=0.3/frame) — stutter braking",
		New:         func() interface{} { return NewPhantomFlicker() },
	})
}
