package actuatorfault

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

func TestStuckThrottleOverridesCommand(t *testing.T) {
	s := NewStuckThrottle()
	r := rng.New(1)
	ctl := s.InjectControl(physics.Control{Throttle: 0, Brake: 1}, 0, r)
	if ctl.Throttle != s.Value {
		t.Errorf("throttle = %v, want stuck %v", ctl.Throttle, s.Value)
	}
	if ctl.Brake != 1 {
		t.Error("stuck throttle must not disable the independent brake channel")
	}
}

func TestBrakeFadeScalesBrakeOnly(t *testing.T) {
	b := NewBrakeFade()
	r := rng.New(2)
	in := physics.Control{Steer: 0.2, Throttle: 0.4, Brake: 1}
	ctl := b.InjectControl(in, 0, r)
	if ctl.Brake != b.Gain {
		t.Errorf("brake = %v, want faded %v", ctl.Brake, b.Gain)
	}
	if ctl.Steer != in.Steer || ctl.Throttle != in.Throttle {
		t.Error("brake fade altered non-brake channels")
	}
}

func TestSteerBiasShiftsAndClamps(t *testing.T) {
	s := NewSteerBias()
	r := rng.New(3)
	ctl := s.InjectControl(physics.Control{Steer: 0}, 0, r)
	if ctl.Steer == 0 {
		t.Error("steer bias left the command untouched")
	}
	s2 := &SteerBias{Bias: 5}
	ctl = s2.InjectControl(physics.Control{Steer: 0.9}, 0, r)
	if ctl.Steer != 1 {
		t.Errorf("steer = %v, want clamped 1", ctl.Steer)
	}
}

func TestActuatorFaultsWindowAndRegistry(t *testing.T) {
	r := rng.New(4)
	in := physics.Control{Steer: 0.1, Throttle: 0.2, Brake: 0.3}
	for _, name := range []string{StuckThrottleName, BrakeFadeName, SteerBiasName} {
		spec, err := fault.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Class != fault.ClassActuator {
			t.Errorf("%s class = %v", name, spec.Class)
		}
		inj, ok := spec.New().(fault.OutputInjector)
		if !ok {
			t.Fatalf("%s is not an OutputInjector", name)
		}
		if inj.InjectControl(in, 0, r) == in {
			t.Errorf("%s was a no-op inside its window", name)
		}
	}
	// Windowed variants pass through before activation.
	gated := []fault.OutputInjector{
		&StuckThrottle{Value: 0.7, Window: fault.Window{StartFrame: 10}},
		&BrakeFade{Gain: 0.3, Window: fault.Window{StartFrame: 10}},
		&SteerBias{Bias: 0.5, Window: fault.Window{StartFrame: 10}},
	}
	for _, inj := range gated {
		if inj.InjectControl(in, 5, r) != in {
			t.Errorf("%s fired before its window", inj.Name())
		}
	}
}
