// Package actuatorfault implements faults in the actuation hardware
// itself: a throttle stuck open, brake pads faded to a fraction of their
// commanded force, and a steering channel with a standing bias. Where the
// paper's output faults corrupt the command *bytes* (hwfault) or their
// *timing* (timingfault), these corrupt the mechanical response — the
// command arrives intact and the actuator does something else.
package actuatorfault

import (
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	StuckThrottleName = "stuckthrottle"
	BrakeFadeName     = "brakefade"
	SteerBiasName     = "steerbias"
)

// StuckThrottle pins the throttle open at a fixed position regardless of
// the commanded value — the classic unintended-acceleration fault. The
// brake channel is mechanically independent and keeps working, so the AEB
// can still fight the runaway.
type StuckThrottle struct {
	// Value is the stuck pedal position in [0, 1].
	Value  float64
	Window fault.Window
}

var _ fault.OutputInjector = (*StuckThrottle)(nil)

// NewStuckThrottle returns the default stuck-open throttle.
func NewStuckThrottle() *StuckThrottle { return &StuckThrottle{Value: 0.7} }

// Name implements fault.OutputInjector.
func (s *StuckThrottle) Name() string { return StuckThrottleName }

// InjectControl implements fault.OutputInjector.
func (s *StuckThrottle) InjectControl(ctl physics.Control, frame int, _ *rng.Stream) physics.Control {
	if !s.Window.Active(frame) {
		return ctl
	}
	ctl.Throttle = s.Value
	return ctl
}

// BrakeFade degrades braking force to a fraction of the commanded value —
// overheated pads or a failing booster. Commands pass through otherwise
// intact, so the fault only shows when the vehicle needs to stop.
type BrakeFade struct {
	// Gain scales the commanded brake (0.3 = 30% of commanded force).
	Gain   float64
	Window fault.Window
}

var _ fault.OutputInjector = (*BrakeFade)(nil)

// NewBrakeFade returns the default faded brake.
func NewBrakeFade() *BrakeFade { return &BrakeFade{Gain: 0.3} }

// Name implements fault.OutputInjector.
func (b *BrakeFade) Name() string { return BrakeFadeName }

// InjectControl implements fault.OutputInjector.
func (b *BrakeFade) InjectControl(ctl physics.Control, frame int, _ *rng.Stream) physics.Control {
	if !b.Window.Active(frame) {
		return ctl
	}
	ctl.Brake *= b.Gain
	return ctl
}

// SteerBias adds a standing offset plus mechanical jitter to the steering
// command — a misaligned rack or a degraded servo. The agent's lane
// correction continually fights the bias, which is precisely what makes
// the fault slow-burning rather than instantly fatal.
type SteerBias struct {
	// Bias is the standing offset added to every steering command.
	Bias float64
	// Jitter is additive Gaussian noise stddev on the steering channel.
	Jitter float64
	Window fault.Window
}

var _ fault.OutputInjector = (*SteerBias)(nil)

// NewSteerBias returns the default biased steering channel.
func NewSteerBias() *SteerBias { return &SteerBias{Bias: 0.15, Jitter: 0.02} }

// Name implements fault.OutputInjector.
func (s *SteerBias) Name() string { return SteerBiasName }

// InjectControl implements fault.OutputInjector.
func (s *SteerBias) InjectControl(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !s.Window.Active(frame) {
		return ctl
	}
	v := ctl.Steer + s.Bias
	if s.Jitter > 0 {
		v += r.NormScaled(0, s.Jitter)
	}
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	ctl.Steer = v
	return ctl
}

func init() {
	fault.Register(fault.Spec{
		Name: StuckThrottleName, Class: fault.ClassActuator,
		Description: "throttle stuck open at 0.7 (unintended acceleration)",
		New:         func() interface{} { return NewStuckThrottle() },
	})
	fault.Register(fault.Spec{
		Name: BrakeFadeName, Class: fault.ClassActuator,
		Description: "brake force faded to 30% of commanded",
		New:         func() interface{} { return NewBrakeFade() },
	})
	fault.Register(fault.Spec{
		Name: SteerBiasName, Class: fault.ClassActuator,
		Description: "standing steering bias +0.15 with servo jitter",
		New:         func() interface{} { return NewSteerBias() },
	})
}
