package timingfault

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

func ctlAt(i int) physics.Control {
	return physics.Control{Steer: float64(i) / 100}
}

func TestDelayZeroIsIdentity(t *testing.T) {
	d := NewDelay(0)
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if got := d.Transform(ctlAt(i), i, r); got != ctlAt(i) {
			t.Fatalf("Delay(0) altered frame %d", i)
		}
	}
}

func TestDelayShiftsByK(t *testing.T) {
	const k = 5
	d := NewDelay(k)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		got := d.Transform(ctlAt(i), i, r)
		want := ctlAt(0) // pipeline filling: oldest replayed
		if i >= k {
			want = ctlAt(i - k)
		}
		if got != want {
			t.Fatalf("frame %d: got steer %v, want %v", i, got.Steer, want.Steer)
		}
	}
}

func TestDelayResetClearsQueue(t *testing.T) {
	d := NewDelay(3)
	r := rng.New(3)
	for i := 0; i < 10; i++ {
		d.Transform(ctlAt(i), i, r)
	}
	d.Reset()
	if got := d.Transform(ctlAt(100), 0, r); got != ctlAt(100) {
		t.Errorf("after reset, first output = %v (stale queue)", got.Steer)
	}
}

func TestDelayWindowGates(t *testing.T) {
	d := NewDelay(5)
	d.Window = fault.Window{StartFrame: 1000}
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		if got := d.Transform(ctlAt(i), i, r); got != ctlAt(i) {
			t.Fatal("delay active outside window")
		}
	}
}

func TestDropHoldsLastSetpoint(t *testing.T) {
	d := NewDrop(1.0) // every frame dropped
	r := rng.New(5)
	first := d.Transform(ctlAt(0), 0, r)
	if first != ctlAt(0) {
		t.Fatal("first command (nothing to hold) was dropped")
	}
	for i := 1; i < 10; i++ {
		if got := d.Transform(ctlAt(i), i, r); got != ctlAt(0) {
			t.Fatalf("frame %d: got %v, want held setpoint 0", i, got.Steer)
		}
	}
}

func TestDropZeroProbIsIdentity(t *testing.T) {
	d := NewDrop(0)
	r := rng.New(6)
	for i := 0; i < 20; i++ {
		if got := d.Transform(ctlAt(i), i, r); got != ctlAt(i) {
			t.Fatal("Drop(0) altered stream")
		}
	}
}

func TestDropStatisticalRate(t *testing.T) {
	d := NewDrop(0.5)
	r := rng.New(7)
	dropped := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if d.Transform(ctlAt(i), i, r) != ctlAt(i) {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("drop rate %v, want ~0.5", frac)
	}
}

func TestReorderDeliversLateCommand(t *testing.T) {
	d := NewReorder(1.0) // always delay once primed
	r := rng.New(8)
	out0 := d.Transform(ctlAt(0), 0, r) // nothing to replay: passes
	if out0 != ctlAt(0) {
		t.Fatal("first command altered")
	}
	out1 := d.Transform(ctlAt(1), 1, r) // delayed: replay 0
	if out1 != ctlAt(0) {
		t.Fatalf("frame 1: got %v, want replay of 0", out1.Steer)
	}
	out2 := d.Transform(ctlAt(2), 2, r) // late command 1 arrives; 2 superseded
	if out2 != ctlAt(1) {
		t.Fatalf("frame 2: got %v, want late command 1", out2.Steer)
	}
}

func TestReorderZeroProbIsIdentity(t *testing.T) {
	d := NewReorder(0)
	r := rng.New(9)
	for i := 0; i < 20; i++ {
		if got := d.Transform(ctlAt(i), i, r); got != ctlAt(i) {
			t.Fatal("Reorder(0) altered stream")
		}
	}
}

func TestReorderResetsClean(t *testing.T) {
	d := NewReorder(1.0)
	r := rng.New(10)
	d.Transform(ctlAt(0), 0, r)
	d.Transform(ctlAt(1), 1, r)
	d.Reset()
	if got := d.Transform(ctlAt(5), 0, r); got != ctlAt(5) {
		t.Errorf("after reset: got %v", got.Steer)
	}
}

func TestRegistered(t *testing.T) {
	for _, name := range []string{DelayName, DropName, ReorderName} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if s.Class != fault.ClassTiming {
			t.Errorf("%s class = %v", name, s.Class)
		}
		inst, ok := s.New().(fault.TimingInjector)
		if !ok {
			t.Errorf("%s not a TimingInjector", name)
			continue
		}
		inst.Reset()
	}
}
