// Package timingfault implements AVFI's timing faults on the agent-to-
// actuation path: output delay (the paper's Figure 4 experiment), message
// drop, and out-of-order delivery.
//
// Paper §II: "AVFI injects timing faults into the communication paths of
// the network, resulting in (a) delays in flow of data from one component
// of the AV system to another, (b) loss of data, or (c) out-of-order
// delivery of the data packets. For example, AVFI pauses the output of
// IL-CNN for k frames and either replays or drops the outputs."
//
// All injectors here transform the per-frame control stream: they receive
// the control the agent just computed and return the control actually
// delivered to the actuators this frame.
package timingfault

import (
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	DelayName   = "outputdelay"
	DropName    = "outputdrop"
	ReorderName = "outputreorder"
)

// Delay holds the agent's output back k frames: the actuators execute the
// command computed k frames ago (the last known command is replayed while
// the pipeline fills). Delay(0) is the identity. This is exactly the
// paper's Figure 4 fault: at 15 FPS, k=30 is a 2-second decision-to-
// actuation lag.
type Delay struct {
	// Frames is the delay k.
	Frames int
	Window fault.Window

	queue []physics.Control
}

var _ fault.TimingInjector = (*Delay)(nil)

// NewDelay returns a delay injector of k frames.
func NewDelay(k int) *Delay { return &Delay{Frames: k} }

// Name implements fault.TimingInjector.
func (d *Delay) Name() string { return DelayName }

// Reset implements fault.TimingInjector.
func (d *Delay) Reset() { d.queue = d.queue[:0] }

// Transform implements fault.TimingInjector.
func (d *Delay) Transform(ctl physics.Control, frame int, _ *rng.Stream) physics.Control {
	if d.Frames <= 0 || !d.Window.Active(frame) {
		return ctl
	}
	d.queue = append(d.queue, ctl)
	if len(d.queue) <= d.Frames {
		// Pipeline still filling: replay the oldest known output.
		return d.queue[0]
	}
	out := d.queue[0]
	d.queue = d.queue[1:]
	return out
}

// Drop loses the agent's output with probability P each frame; actuation
// replays the last successfully delivered command (a real actuator holds
// its last setpoint when a packet is lost).
type Drop struct {
	P      float64
	Window fault.Window

	last    physics.Control
	hasLast bool
}

var _ fault.TimingInjector = (*Drop)(nil)

// NewDrop returns a drop injector with loss probability p.
func NewDrop(p float64) *Drop { return &Drop{P: p} }

// Name implements fault.TimingInjector.
func (d *Drop) Name() string { return DropName }

// Reset implements fault.TimingInjector.
func (d *Drop) Reset() {
	d.last = physics.Control{}
	d.hasLast = false
}

// Transform implements fault.TimingInjector.
func (d *Drop) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !d.Window.Active(frame) {
		d.last = ctl
		d.hasLast = true
		return ctl
	}
	if r.Bool(d.P) && d.hasLast {
		return d.last
	}
	d.last = ctl
	d.hasLast = true
	return ctl
}

// Reorder models out-of-order delivery on the control path. With
// probability P a command is delayed in flight by one frame: its slot is
// filled by replaying the previous setpoint (the actuator holds), the late
// command is applied one frame later — by which time it is stale — and the
// command that should have owned that slot is superseded and never applied
// (sequence-number supersession, as a real actuator firmware would do).
type Reorder struct {
	P      float64
	Window fault.Window

	held    physics.Control
	holding bool
	last    physics.Control
	hasLast bool
}

var _ fault.TimingInjector = (*Reorder)(nil)

// NewReorder returns a reorder injector with per-frame delay probability p.
func NewReorder(p float64) *Reorder { return &Reorder{P: p} }

// Name implements fault.TimingInjector.
func (d *Reorder) Name() string { return ReorderName }

// Reset implements fault.TimingInjector.
func (d *Reorder) Reset() {
	d.held = physics.Control{}
	d.holding = false
	d.last = physics.Control{}
	d.hasLast = false
}

// Transform implements fault.TimingInjector.
func (d *Reorder) Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !d.Window.Active(frame) {
		d.holding = false
		d.last = ctl
		d.hasLast = true
		return ctl
	}
	if d.holding {
		// The late command arrives now, superseding the fresh one.
		out := d.held
		d.holding = false
		d.last = out
		return out
	}
	if d.hasLast && r.Bool(d.P) {
		// Delay this command one frame; the actuator holds its setpoint.
		d.held = ctl
		d.holding = true
		return d.last
	}
	d.last = ctl
	d.hasLast = true
	return ctl
}

func init() {
	fault.Register(fault.Spec{
		Name: DelayName, Class: fault.ClassTiming,
		Description: "output delayed 10 frames between ADA and actuation",
		New:         func() interface{} { return NewDelay(10) },
	})
	fault.Register(fault.Spec{
		Name: DropName, Class: fault.ClassTiming,
		Description: "output commands dropped with p=0.5 (last setpoint held)",
		New:         func() interface{} { return NewDrop(0.5) },
	})
	fault.Register(fault.Spec{
		Name: ReorderName, Class: fault.ClassTiming,
		Description: "adjacent output commands swapped with p=0.3",
		New:         func() interface{} { return NewReorder(0.3) },
	})
}
