package hwfault

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

func TestFlipBitInvolution(t *testing.T) {
	err := quick.Check(func(v float64, k uint) bool {
		k %= 64
		return FlipBit(FlipBit(v, k), k) == v || math.IsNaN(v)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestFlipBitChangesValue(t *testing.T) {
	v := 0.5
	for k := uint(0); k < 64; k++ {
		if FlipBit(v, k) == v {
			t.Errorf("bit %d flip did not change 0.5", k)
		}
	}
}

func TestFlipBitsDistinct(t *testing.T) {
	// Flipping n distinct bits then flipping the same stream again isn't
	// guaranteed inverse (different random picks), but n flips must change
	// the value for a non-degenerate input.
	r := rng.New(1)
	v := 1.25
	for i := 0; i < 100; i++ {
		if FlipBits(v, 3, r) == v {
			t.Fatal("3 distinct bit flips left value unchanged")
		}
	}
}

func TestControlBitFlipRate(t *testing.T) {
	c := NewControlBitFlip()
	r := rng.New(2)
	ctl := physics.Control{Steer: 0.5, Throttle: 0.5, Brake: 0.5}
	changed := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if c.InjectControl(ctl, i, r) != ctl {
			changed++
		}
	}
	frac := float64(changed) / n
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("bit-flip rate %v, want ~0.10", frac)
	}
}

func TestControlBitFlipWindow(t *testing.T) {
	c := NewControlBitFlip()
	c.Prob = 1
	c.Window = fault.Window{StartFrame: 50}
	ctl := physics.Control{Steer: 0.5}
	if got := c.InjectControl(ctl, 10, rng.New(3)); got != ctl {
		t.Error("flip fired before window")
	}
	if got := c.InjectControl(ctl, 60, rng.New(3)); got == ctl {
		t.Error("flip did not fire inside window")
	}
}

func TestControlStuck(t *testing.T) {
	c := NewControlStuck()
	ctl := physics.Control{Steer: -0.8, Throttle: 0.3}
	got := c.InjectControl(ctl, 0, rng.New(4))
	if got.Steer != 0.3 {
		t.Errorf("stuck steer = %v, want 0.3", got.Steer)
	}
	if got.Throttle != 0.3 {
		t.Errorf("throttle altered: %v", got.Throttle)
	}

	c2 := &ControlStuck{Field: StuckBrake, Value: 1}
	got = c2.InjectControl(physics.Control{}, 0, rng.New(5))
	if got.Brake != 1 {
		t.Errorf("stuck brake = %v", got.Brake)
	}
	c3 := &ControlStuck{Field: StuckThrottle, Value: 0.9}
	got = c3.InjectControl(physics.Control{}, 0, rng.New(6))
	if got.Throttle != 0.9 {
		t.Errorf("stuck throttle = %v", got.Throttle)
	}
}

func TestPixelBitFlipChangesImage(t *testing.T) {
	im := render.NewImage(16, 12)
	for i := range im.Pix {
		im.Pix[i] = 0.5
	}
	// Baseline must include the quantize/dequantize the injector performs,
	// which shifts every value slightly.
	quantized, err := render.ImageFromBytes(im.W, im.H, im.ToBytes())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPixelBitFlip()
	p.InjectImage(im, 0, rng.New(7))
	diff := 0
	for i := range im.Pix {
		if im.Pix[i] != quantized.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("pixel bit flips changed nothing")
	}
	// At most FlipsPerFrame channel values change (flips may collide).
	if diff > p.FlipsPerFrame {
		t.Errorf("%d channel values changed from %d flips", diff, p.FlipsPerFrame)
	}
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatal("bit flip left pixel out of [0,1]")
		}
	}
}

func TestPixelBitFlipMeasurementsUntouched(t *testing.T) {
	p := NewPixelBitFlip()
	s, x, y := p.InjectMeasurements(1, 2, 3, 0, rng.New(8))
	if s != 1 || x != 2 || y != 3 {
		t.Error("pixel fault touched measurements")
	}
}

func TestSanitizerTamesFlippedControls(t *testing.T) {
	// Whatever monster a bit flip creates, the physics boundary clamps it:
	// this is the property the end-to-end system relies on.
	c := NewControlBitFlip()
	c.Prob = 1
	c.Bits = 3
	r := rng.New(9)
	for i := 0; i < 1000; i++ {
		bad := c.InjectControl(physics.Control{Steer: 0.1, Throttle: 0.9}, i, r)
		s := bad.Sanitize()
		if s.Steer < -1 || s.Steer > 1 || math.IsNaN(s.Steer) ||
			s.Throttle < 0 || s.Throttle > 1 || math.IsNaN(s.Throttle) ||
			s.Brake < 0 || s.Brake > 1 || math.IsNaN(s.Brake) {
			t.Fatalf("sanitizer let through %+v", s)
		}
	}
}

func TestRegistered(t *testing.T) {
	for name, class := range map[string]fault.Class{
		ControlBitFlipName: fault.ClassHardware,
		ControlStuckName:   fault.ClassHardware,
		PixelBitFlipName:   fault.ClassHardware,
	} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if s.Class != class {
			t.Errorf("%s class = %v", name, s.Class)
		}
	}
}
