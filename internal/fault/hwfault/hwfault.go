// Package hwfault implements AVFI's hardware fault models: single-bit,
// multi-bit, and stuck-at faults in the processing fabric and communication
// path — "AVFI can intercept and corrupt a control command from the IL-CNN
// and then forward it to the server".
//
// Bit-level faults operate on the IEEE-754 representation of the float64
// values flowing through the system (control commands, sensor scalars) and
// on the uint8 pixels of camera payloads, matching the bit widths real
// hardware would flip.
package hwfault

import (
	"math"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	ControlBitFlipName = "ctrlbitflip"
	ControlStuckName   = "ctrlstuck"
	PixelBitFlipName   = "pixelbitflip"
)

// FlipBit flips bit k (0 = LSB of the mantissa) of a float64.
func FlipBit(v float64, k uint) float64 {
	if k > 63 {
		k %= 64
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << k))
}

// FlipBits flips n distinct random bits of a float64.
func FlipBits(v float64, n int, r *rng.Stream) float64 {
	bits := math.Float64bits(v)
	flipped := map[uint]bool{}
	for i := 0; i < n; i++ {
		k := uint(r.Intn(64))
		for flipped[k] {
			k = uint(r.Intn(64))
		}
		flipped[k] = true
		bits ^= 1 << k
	}
	return math.Float64frombits(bits)
}

// ControlBitFlip flips bits in the steering command with a per-frame
// probability — a transient fault in the actuation datapath. The physics
// layer's sanitizer then clamps whatever monster value results, exactly as
// a drive-by-wire ECU would saturate an insane input.
type ControlBitFlip struct {
	// Prob is the per-frame probability of a flip event.
	Prob float64
	// Bits is how many bits flip per event.
	Bits   int
	Window fault.Window
}

var _ fault.OutputInjector = (*ControlBitFlip)(nil)

// NewControlBitFlip returns the default transient control fault.
func NewControlBitFlip() *ControlBitFlip { return &ControlBitFlip{Prob: 0.10, Bits: 1} }

// Name implements fault.OutputInjector.
func (c *ControlBitFlip) Name() string { return ControlBitFlipName }

// InjectControl implements fault.OutputInjector.
func (c *ControlBitFlip) InjectControl(ctl physics.Control, frame int, r *rng.Stream) physics.Control {
	if !c.Window.Active(frame) || !r.Bool(c.Prob) {
		return ctl
	}
	// Pick one of the three command fields uniformly.
	switch r.Intn(3) {
	case 0:
		ctl.Steer = FlipBits(ctl.Steer, c.Bits, r)
	case 1:
		ctl.Throttle = FlipBits(ctl.Throttle, c.Bits, r)
	default:
		ctl.Brake = FlipBits(ctl.Brake, c.Bits, r)
	}
	return ctl
}

// ControlStuck is a stuck-at fault: from its first activation, the chosen
// field is frozen at the stuck value — e.g. a steering register stuck at
// full lock.
type ControlStuck struct {
	// Field selects which command channel sticks.
	Field StuckField
	// Value is the stuck reading.
	Value  float64
	Window fault.Window
}

// StuckField enumerates control channels. Enums start at one.
type StuckField int

// Stuck-at channels.
const (
	StuckInvalid StuckField = iota
	StuckSteer
	StuckThrottle
	StuckBrake
)

var _ fault.OutputInjector = (*ControlStuck)(nil)

// NewControlStuck returns the default stuck fault: steering stuck 30% left.
func NewControlStuck() *ControlStuck { return &ControlStuck{Field: StuckSteer, Value: 0.3} }

// Name implements fault.OutputInjector.
func (c *ControlStuck) Name() string { return ControlStuckName }

// InjectControl implements fault.OutputInjector.
func (c *ControlStuck) InjectControl(ctl physics.Control, frame int, _ *rng.Stream) physics.Control {
	if !c.Window.Active(frame) {
		return ctl
	}
	switch c.Field {
	case StuckSteer:
		ctl.Steer = c.Value
	case StuckThrottle:
		ctl.Throttle = c.Value
	case StuckBrake:
		ctl.Brake = c.Value
	}
	return ctl
}

// PixelBitFlip flips random bits in the camera payload — memory faults in
// the frame buffer. It implements InputInjector because it corrupts data
// on the sensor side of the agent.
type PixelBitFlip struct {
	// FlipsPerFrame is how many byte-level bit flips strike each frame.
	FlipsPerFrame int
	Window        fault.Window
}

var _ fault.InputInjector = (*PixelBitFlip)(nil)

// NewPixelBitFlip returns the default frame-buffer fault.
func NewPixelBitFlip() *PixelBitFlip { return &PixelBitFlip{FlipsPerFrame: 96} }

// Name implements fault.InputInjector.
func (p *PixelBitFlip) Name() string { return PixelBitFlipName }

// InjectImage implements fault.InputInjector. The image is quantized to
// bytes, bit-flipped, and dequantized — the same transformation the frame
// experiences on the wire.
func (p *PixelBitFlip) InjectImage(img *render.Image, frame int, r *rng.Stream) {
	if !p.Window.Active(frame) {
		return
	}
	data := img.ToBytes()
	for i := 0; i < p.FlipsPerFrame; i++ {
		idx := r.Intn(len(data))
		bit := uint(r.Intn(8))
		data[idx] ^= 1 << bit
	}
	restored, err := render.ImageFromBytes(img.W, img.H, data)
	if err != nil {
		return // cannot happen: same geometry
	}
	copy(img.Pix, restored.Pix)
}

// InjectMeasurements implements fault.InputInjector (frame-buffer only).
func (p *PixelBitFlip) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

func init() {
	fault.Register(fault.Spec{
		Name: ControlBitFlipName, Class: fault.ClassHardware,
		Description: "transient single-bit flips in control commands (p=0.10/frame)",
		New:         func() interface{} { return NewControlBitFlip() },
	})
	fault.Register(fault.Spec{
		Name: ControlStuckName, Class: fault.ClassHardware,
		Description: "steering register stuck at +0.3",
		New:         func() interface{} { return NewControlStuck() },
	})
	fault.Register(fault.Spec{
		Name: PixelBitFlipName, Class: fault.ClassHardware,
		Description: "frame-buffer bit flips (96 bits/frame)",
		New:         func() interface{} { return NewPixelBitFlip() },
	})
}
