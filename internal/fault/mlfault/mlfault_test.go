package mlfault

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

// testAgent builds a small agent whose VisitParams we can bridge.
func testAgent(t *testing.T) *agent.Agent {
	t.Helper()
	a, err := agent.New(agent.Config{
		ImageW: 16, ImageH: 12, Conv1: 4, Conv2: 4,
		FeatDim: 8, MeasDim: 4, HeadHidden: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// visitOf adapts agent.VisitParams to the fault.ModelInjector signature.
func visitOf(a *agent.Agent) func(fn func(string, int, string, fault.ParamTensor)) {
	return func(fn func(string, int, string, fault.ParamTensor)) {
		a.VisitParams(func(component string, layer int, name string, v *tensor.Tensor) {
			fn(component, layer, name, v)
		})
	}
}

// snapshot copies all parameters for later comparison.
func snapshot(a *agent.Agent) []float64 {
	var out []float64
	a.VisitParams(func(_ string, _ int, _ string, v *tensor.Tensor) {
		out = append(out, v.Data()...)
	})
	return out
}

func countChanged(a, b []float64) int {
	n := 0
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			n++
		}
	}
	return n
}

func TestWeightNoisePerturbsEverything(t *testing.T) {
	a := testAgent(t)
	before := snapshot(a)
	NewWeightNoise().InjectModel(visitOf(a), rng.New(2))
	after := snapshot(a)
	changed := countChanged(before, after)
	if changed < len(before)*9/10 {
		t.Errorf("weight noise changed %d/%d params", changed, len(before))
	}
}

func TestWeightNoiseComponentTargeting(t *testing.T) {
	a := testAgent(t)
	w := NewWeightNoise()
	w.Component = "meas"
	var measBefore, trunkBefore []float64
	a.VisitParams(func(c string, _ int, _ string, v *tensor.Tensor) {
		if c == "meas" {
			measBefore = append(measBefore, v.Data()...)
		}
		if c == "trunk" {
			trunkBefore = append(trunkBefore, v.Data()...)
		}
	})
	w.InjectModel(visitOf(a), rng.New(3))
	var measAfter, trunkAfter []float64
	a.VisitParams(func(c string, _ int, _ string, v *tensor.Tensor) {
		if c == "meas" {
			measAfter = append(measAfter, v.Data()...)
		}
		if c == "trunk" {
			trunkAfter = append(trunkAfter, v.Data()...)
		}
	})
	if countChanged(measBefore, measAfter) == 0 {
		t.Error("targeted component unchanged")
	}
	if countChanged(trunkBefore, trunkAfter) != 0 {
		t.Error("untargeted component changed")
	}
}

func TestWeightNoiseFraction(t *testing.T) {
	a := testAgent(t)
	w := NewWeightNoise()
	w.Fraction = 0.1
	before := snapshot(a)
	w.InjectModel(visitOf(a), rng.New(4))
	after := snapshot(a)
	frac := float64(countChanged(before, after)) / float64(len(before))
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("fractional noise hit %v of params, want ~0.1", frac)
	}
}

func TestWeightBitFlipCount(t *testing.T) {
	a := testAgent(t)
	before := snapshot(a)
	w := NewWeightBitFlip()
	w.Flips = 25
	w.InjectModel(visitOf(a), rng.New(5))
	after := snapshot(a)
	changed := countChanged(before, after)
	// Each flip hits one weight; collisions can re-flip (restoring), so
	// changed <= 25 and > 0 with overwhelming probability.
	if changed == 0 || changed > 25 {
		t.Errorf("bit flips changed %d weights, want (0, 25]", changed)
	}
}

func TestWeightBitFlipMantissaOnlyIsSubtle(t *testing.T) {
	a := testAgent(t)
	w := NewWeightBitFlip()
	w.Flips = 10
	w.MantissaOnly = true
	before := snapshot(a)
	w.InjectModel(visitOf(a), rng.New(6))
	after := snapshot(a)
	for i := range after {
		if math.IsInf(after[i], 0) || math.IsNaN(after[i]) {
			t.Fatal("mantissa-only flip produced Inf/NaN")
		}
		// Sign cannot change from a mantissa flip.
		if before[i] != 0 && math.Signbit(before[i]) != math.Signbit(after[i]) {
			t.Fatal("mantissa-only flip changed sign")
		}
	}
}

func TestNeuronStuckZeroesColumns(t *testing.T) {
	a := testAgent(t)
	n := NewNeuronStuck()
	n.Count = 4
	n.InjectModel(visitOf(a), rng.New(7))

	// Find at least one fully zeroed column among 2-d weights.
	zeroCols := 0
	a.VisitParams(func(_ string, _ int, name string, v *tensor.Tensor) {
		shape := v.Shape()
		if len(shape) != 2 || (name != "weight" && name != "filter") {
			return
		}
		rows, cols := shape[0], shape[1]
		for c := 0; c < cols; c++ {
			allZero := true
			for r := 0; r < rows; r++ {
				if v.At(r, c) != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				zeroCols++
			}
		}
	})
	if zeroCols == 0 {
		t.Error("no dead neuron columns found")
	}
}

func TestInjectionDeterministic(t *testing.T) {
	run := func() []float64 {
		a := testAgent(t)
		NewWeightNoise().InjectModel(visitOf(a), rng.New(42))
		return snapshot(a)
	}
	a, b := run(), run()
	if countChanged(a, b) != 0 {
		t.Error("ML injection not deterministic")
	}
}

func TestRegistered(t *testing.T) {
	for _, name := range []string{WeightNoiseName, WeightBitFlipName, NeuronStuckName} {
		s, err := fault.Lookup(name)
		if err != nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if s.Class != fault.ClassML {
			t.Errorf("%s class = %v", name, s.Class)
		}
		if _, ok := s.New().(fault.ModelInjector); !ok {
			t.Errorf("%s not a ModelInjector", name)
		}
	}
}

func TestEmptyVisitIsSafe(t *testing.T) {
	empty := func(fn func(string, int, string, fault.ParamTensor)) {}
	NewWeightNoise().InjectModel(empty, rng.New(1))
	NewWeightBitFlip().InjectModel(empty, rng.New(1))
	NewNeuronStuck().InjectModel(empty, rng.New(1))
}
