// Package mlfault implements AVFI's machine-learning fault models: noise
// and bit flips injected into the parameters of the driving agent's neural
// networks — "AVFI injects faults into the neural network by adding noise
// into the parameters of the machine learning model (e.g., weights of the
// neural network), which is modeled on real-world hardware failures."
//
// Localization follows the paper's two-step scheme: the localizer selects
// which component/layer/weights to strike (uniformly across all parameters
// by default, or targeted at a named component), then the fault model
// corrupts them. Injection happens on a per-episode clone of the agent, so
// campaigns never contaminate the shared pretrained model.
package mlfault

import (
	"math"
	"strings"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/rng"
)

// Canonical injector names.
const (
	WeightNoiseName   = "weightnoise"
	WeightBitFlipName = "weightbitflip"
	NeuronStuckName   = "neuronstuck"
)

// WeightNoise adds Gaussian noise to a fraction of the model's weights.
type WeightNoise struct {
	// Sigma is the noise stddev relative to each tensor's RMS weight
	// magnitude, so the same setting perturbs conv filters and dense
	// layers proportionally.
	Sigma float64
	// Fraction of weights hit (1 = all).
	Fraction float64
	// Component restricts injection to components whose name contains the
	// string (empty = all components).
	Component string
}

var _ fault.ModelInjector = (*WeightNoise)(nil)

// NewWeightNoise returns the default weight-noise fault.
func NewWeightNoise() *WeightNoise { return &WeightNoise{Sigma: 0.5, Fraction: 1} }

// Name implements fault.ModelInjector.
func (w *WeightNoise) Name() string { return WeightNoiseName }

// InjectModel implements fault.ModelInjector.
func (w *WeightNoise) InjectModel(visit func(fn func(component string, layer int, name string, t fault.ParamTensor)), r *rng.Stream) {
	visit(func(component string, _ int, _ string, t fault.ParamTensor) {
		if w.Component != "" && !strings.Contains(component, w.Component) {
			return
		}
		data := t.Data()
		rms := rmsOf(data)
		if rms == 0 {
			rms = 1e-3
		}
		for i := range data {
			if w.Fraction < 1 && !r.Bool(w.Fraction) {
				continue
			}
			data[i] += r.NormScaled(0, w.Sigma*rms)
		}
	})
}

// WeightBitFlip flips random bits in randomly chosen weights — SEUs in
// weight memory.
type WeightBitFlip struct {
	// Flips is the total number of single-bit upsets.
	Flips int
	// Component restricts injection (empty = all).
	Component string
	// MantissaOnly restricts flips to the low 52 bits; exponent/sign flips
	// are catastrophically visible, mantissa flips are the subtle ones.
	MantissaOnly bool
}

var _ fault.ModelInjector = (*WeightBitFlip)(nil)

// NewWeightBitFlip returns the default SEU fault.
func NewWeightBitFlip() *WeightBitFlip { return &WeightBitFlip{Flips: 40} }

// Name implements fault.ModelInjector.
func (w *WeightBitFlip) Name() string { return WeightBitFlipName }

// InjectModel implements fault.ModelInjector.
func (w *WeightBitFlip) InjectModel(visit func(fn func(component string, layer int, name string, t fault.ParamTensor)), r *rng.Stream) {
	// Collect eligible tensors first so flips distribute weight-uniformly.
	var tensors []fault.ParamTensor
	var sizes []float64
	visit(func(component string, _ int, _ string, t fault.ParamTensor) {
		if w.Component != "" && !strings.Contains(component, w.Component) {
			return
		}
		tensors = append(tensors, t)
		sizes = append(sizes, float64(t.Len()))
	})
	if len(tensors) == 0 {
		return
	}
	for i := 0; i < w.Flips; i++ {
		t := tensors[r.Pick(sizes)]
		data := t.Data()
		idx := r.Intn(len(data))
		bitRange := 64
		if w.MantissaOnly {
			bitRange = 52
		}
		bit := uint(r.Intn(bitRange))
		data[idx] = math.Float64frombits(math.Float64bits(data[idx]) ^ (1 << bit))
	}
}

// NeuronStuck zeroes entire output units of a layer — stuck-at-0 neurons
// (dead outputs after a hardware defect in an accelerator lane). For a
// dense layer's (in, out) weight matrix it zeroes whole columns plus the
// matching bias entries.
type NeuronStuck struct {
	// Count is how many neurons die.
	Count int
	// Component restricts injection (empty = all dense/conv layers).
	Component string
}

var _ fault.ModelInjector = (*NeuronStuck)(nil)

// NewNeuronStuck returns the default dead-neuron fault.
func NewNeuronStuck() *NeuronStuck { return &NeuronStuck{Count: 8} }

// Name implements fault.ModelInjector.
func (n *NeuronStuck) Name() string { return NeuronStuckName }

// InjectModel implements fault.ModelInjector.
func (n *NeuronStuck) InjectModel(visit func(fn func(component string, layer int, name string, t fault.ParamTensor)), r *rng.Stream) {
	// Gather 2-d weight tensors (dense weights, conv filter matrices).
	type target struct {
		t    fault.ParamTensor
		cols int
	}
	var targets []target
	var weights []float64
	visit(func(component string, _ int, name string, t fault.ParamTensor) {
		if n.Component != "" && !strings.Contains(component, n.Component) {
			return
		}
		shape := t.Shape()
		if len(shape) != 2 || (name != "weight" && name != "filter") {
			return
		}
		targets = append(targets, target{t: t, cols: shape[1]})
		weights = append(weights, float64(shape[1]))
	})
	if len(targets) == 0 {
		return
	}
	for i := 0; i < n.Count; i++ {
		tg := targets[r.Pick(weights)]
		col := r.Intn(tg.cols)
		data := tg.t.Data()
		for row := 0; row*tg.cols+col < len(data); row++ {
			data[row*tg.cols+col] = 0
		}
	}
}

func rmsOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

func init() {
	fault.Register(fault.Spec{
		Name: WeightNoiseName, Class: fault.ClassML,
		Description: "Gaussian noise on all weights (sigma 0.5x RMS)",
		New:         func() interface{} { return NewWeightNoise() },
	})
	fault.Register(fault.Spec{
		Name: WeightBitFlipName, Class: fault.ClassML,
		Description: "40 single-bit upsets across weight memory",
		New:         func() interface{} { return NewWeightBitFlip() },
	})
	fault.Register(fault.Spec{
		Name: NeuronStuckName, Class: fault.ClassML,
		Description: "8 stuck-at-0 neurons across layers",
		New:         func() interface{} { return NewNeuronStuck() },
	})
}
