// Package fault is AVFI's core contribution: the fault localizer and
// injector framework for end-to-end resilience assessment of autonomous
// vehicles (Jha et al., DSN 2018).
//
// AVFI runs fault-injection campaigns in two steps (paper §II): first the
// *localizer* selects where and when faults strike (which sensor, which
// network layer/weight, which message window); then the *injectors* corrupt
// the chosen location using one of four fault classes:
//
//   - Data faults (subpackage imagefault, sensorfault): corrupt sensor
//     measurements — camera noise and occlusions, GPS drift, speed
//     corruption, weather flips.
//   - Hardware faults (subpackage hwfault): single-bit, multi-bit, and
//     stuck-at faults in sensor payloads and control commands.
//   - Timing faults (subpackage timingfault): delay, drop, reorder and
//     replay on the agent<->simulator message path.
//   - Machine-learning faults (subpackage mlfault): noise and bit flips in
//     the driving network's parameters.
//
// Beyond the paper's four classes, the taxonomy has grown the fault
// families its follow-ups (Bayesian FI, DriveFI, resilience assessment)
// and real AV incident reports name:
//
//   - Communication faults (subpackage commfault): jittered latency,
//     bursty loss and bounded reordering on the control link, plus a
//     transport-layer wrapper that perturbs the wire path itself.
//   - Actuator faults (subpackage actuatorfault): stuck, degraded and
//     biased throttle, brake and steering channels.
//   - Localization faults (subpackage locfault): GPS random-walk drift
//     and Kalman-style fusion divergence.
//   - Perception hallucinations (subpackage hallucinate): phantom
//     obstacles injected into the LIDAR scan — the fault family that
//     turns the AEB safety monitor against the vehicle.
//
// This parent package defines the injector interfaces, the activation
// windows ("fault plans") shared by all classes, and the registry the
// campaign runner and CLI use to instantiate injectors by name.
package fault

import (
	"fmt"
	"sort"
	"sync"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// Window is when a fault is active, in frames since episode start. The
// zero Window means "always active" (whole-episode campaigns, as in the
// paper's Figures 2-4).
type Window struct {
	// StartFrame is the first faulty frame.
	StartFrame int
	// EndFrame is exclusive; 0 means "until episode end".
	EndFrame int
}

// Always is the whole-episode window.
var Always = Window{}

// Active reports whether the window covers the frame.
func (w Window) Active(frame int) bool {
	if frame < w.StartFrame {
		return false
	}
	return w.EndFrame == 0 || frame < w.EndFrame
}

// InputInjector corrupts the observation path (data faults and hardware
// faults on sensor payloads): it rewrites the camera image, the speed
// reading and the GPS fix before the agent sees them.
type InputInjector interface {
	// Name identifies the injector in campaign reports (e.g. "gaussian").
	Name() string
	// InjectImage corrupts the camera frame in place.
	InjectImage(img *render.Image, frame int, r *rng.Stream)
	// InjectMeasurements corrupts scalar sensor readings, returning the
	// possibly-modified values.
	InjectMeasurements(speed, gpsX, gpsY float64, frame int, r *rng.Stream) (float64, float64, float64)
}

// LidarInjector is an optional extra role for input injectors: corrupting
// the planar LIDAR scan in place. The client driver applies it when the
// episode's input injector also implements this interface.
type LidarInjector interface {
	// InjectLidar corrupts the scan in place (beam 0 = forward).
	InjectLidar(ranges []float64, frame int, r *rng.Stream)
}

// OutputInjector corrupts the actuation path: the control command after
// the agent computes it and before the world applies it.
type OutputInjector interface {
	Name() string
	// InjectControl corrupts one control command.
	InjectControl(ctl physics.Control, frame int, r *rng.Stream) physics.Control
}

// TimingInjector reshapes the control stream in time: it receives the
// agent's control each frame and returns the control actually delivered to
// actuation (delayed, replayed, or dropped).
type TimingInjector interface {
	Name() string
	// Transform consumes this frame's computed control and returns the
	// delivered one.
	Transform(ctl physics.Control, frame int, r *rng.Stream) physics.Control
	// Reset clears internal queues at episode start.
	Reset()
}

// ModelInjector corrupts the agent's neural networks before or during an
// episode (the paper's ML faults).
type ModelInjector interface {
	Name() string
	// InjectModel corrupts the parameter tensors reachable through visit.
	// It is called once at episode start (runtime-periodic variants wrap
	// their own windows).
	InjectModel(visit func(fn func(component string, layer int, name string, t ParamTensor)), r *rng.Stream)
}

// ParamTensor is the mutable view of one parameter tensor handed to model
// injectors; it matches *tensor.Tensor's relevant surface without binding
// this package to the tensor implementation.
type ParamTensor interface {
	Len() int
	Data() []float64
	Shape() []int
}

// NoopName is the canonical name of the fault-free baseline.
const NoopName = "noinject"

// Noop is the fault-free baseline injector: it implements every injector
// interface and changes nothing. Campaigns use it for the paper's
// "NoInject" reference bars.
type Noop struct{}

var (
	_ InputInjector  = Noop{}
	_ OutputInjector = Noop{}
	_ TimingInjector = Noop{}
	_ ModelInjector  = Noop{}
)

// Name implements all injector interfaces.
func (Noop) Name() string { return NoopName }

// InjectImage implements InputInjector.
func (Noop) InjectImage(*render.Image, int, *rng.Stream) {}

// InjectMeasurements implements InputInjector.
func (Noop) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

// InjectControl implements OutputInjector.
func (Noop) InjectControl(ctl physics.Control, _ int, _ *rng.Stream) physics.Control { return ctl }

// Transform implements TimingInjector.
func (Noop) Transform(ctl physics.Control, _ int, _ *rng.Stream) physics.Control { return ctl }

// Reset implements TimingInjector.
func (Noop) Reset() {}

// InjectModel implements ModelInjector.
func (Noop) InjectModel(func(fn func(string, int, string, ParamTensor)), *rng.Stream) {}

// --- Registry ---

// Spec is a named injector factory with a one-line description, the unit
// the campaign CLI and experiment harness instantiate by name.
type Spec struct {
	Name        string
	Class       Class
	Description string
	// New builds a fresh injector instance (injectors may be stateful).
	New func() interface{}
}

// Class groups injectors by fault family: the paper's four classes (plus
// none), and the families the taxonomy grew afterwards.
type Class int

// Fault classes. Enums start at one; new families append so existing
// numeric values stay stable.
const (
	ClassInvalid Class = iota
	ClassNone
	ClassData
	ClassHardware
	ClassTiming
	ClassML
	ClassComm
	ClassActuator
	ClassLocalization
	ClassPerception
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassData:
		return "data"
	case ClassHardware:
		return "hardware"
	case ClassTiming:
		return "timing"
	case ClassML:
		return "ml"
	case ClassComm:
		return "comm"
	case ClassActuator:
		return "actuator"
	case ClassLocalization:
		return "localization"
	case ClassPerception:
		return "perception"
	default:
		return "invalid"
	}
}

// Classes lists every valid fault class in declaration order.
func Classes() []Class {
	return []Class{
		ClassNone, ClassData, ClassHardware, ClassTiming, ClassML,
		ClassComm, ClassActuator, ClassLocalization, ClassPerception,
	}
}

// ParseClass resolves a class name (as printed by Class.String).
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return ClassInvalid, fmt.Errorf("fault: unknown class %q (have %v)", s, Classes())
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds an injector spec; duplicate names panic (registration is
// package-init time wiring, so a duplicate is a programming error).
func Register(s Spec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if s.Name == "" || s.New == nil {
		panic("fault: registering invalid spec")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("fault: duplicate injector %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the spec for a name.
func Lookup(name string) (Spec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("fault: unknown injector %q (have %v)", name, registeredNamesLocked())
	}
	return s, nil
}

// Names returns all registered injector names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registeredNamesLocked()
}

// NamesByClass returns the registered injector names of one fault class,
// sorted — the expansion behind the CLI's class:FAMILY injector selector.
func NamesByClass(c Class) []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	var names []string
	for n, s := range registry {
		if s.Class == c {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func registeredNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(Spec{
		Name:        NoopName,
		Class:       ClassNone,
		Description: "fault-free baseline",
		New:         func() interface{} { return Noop{} },
	})
}
