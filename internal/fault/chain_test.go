package fault

import (
	"testing"

	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
)

// addHalf is a test InputInjector adding 0.5 to every pixel and 1 to speed.
type addHalf struct{}

func (addHalf) Name() string { return "addhalf" }
func (addHalf) InjectImage(img *render.Image, _ int, _ *rng.Stream) {
	for i := range img.Pix {
		img.Pix[i] += 0.5
	}
}
func (addHalf) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed + 1, gpsX, gpsY
}

// lidarZero is a test injector zeroing the scan.
type lidarZero struct{ addHalf }

func (lidarZero) InjectLidar(ranges []float64, _ int, _ *rng.Stream) {
	for i := range ranges {
		ranges[i] = 0
	}
}

func TestChainAppliesStagesInOrder(t *testing.T) {
	c := NewChain("double", addHalf{}, addHalf{})
	img := render.NewImage(2, 2)
	c.InjectImage(img, 0, rng.New(1))
	if img.Pix[0] != 1.0 {
		t.Errorf("two +0.5 stages gave %v", img.Pix[0])
	}
	speed, _, _ := c.InjectMeasurements(5, 0, 0, 0, rng.New(1))
	if speed != 7 {
		t.Errorf("two +1 stages gave speed %v", speed)
	}
	if c.Name() != "double" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestChainDelegatesLidarOnlyToCapableStages(t *testing.T) {
	c := NewChain("mix", addHalf{}, lidarZero{})
	ranges := []float64{10, 20, 30}
	c.InjectLidar(ranges, 0, rng.New(2))
	for i, v := range ranges {
		if v != 0 {
			t.Errorf("beam %d = %v, want 0", i, v)
		}
	}
}

func TestChainEmpty(t *testing.T) {
	c := NewChain("empty")
	img := render.NewImage(2, 2)
	img.Pix[0] = 0.25
	c.InjectImage(img, 0, rng.New(3))
	if img.Pix[0] != 0.25 {
		t.Error("empty chain modified image")
	}
	s, x, y := c.InjectMeasurements(1, 2, 3, 0, rng.New(3))
	if s != 1 || x != 2 || y != 3 {
		t.Error("empty chain modified measurements")
	}
}
