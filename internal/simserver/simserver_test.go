package simserver

import (
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/autopilot"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

func testWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultWorldConfig()
	cfg.Town.GridW, cfg.Town.GridH = 3, 3
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	w, err := sim.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mission(t *testing.T, w *sim.World, seed uint64) (world.NodeID, world.NodeID) {
	t.Helper()
	from, to, err := w.Town().RandomMission(rng.New(seed), 120)
	if err != nil {
		t.Fatal(err)
	}
	return from, to
}

// runOverPipe serves an episode over an in-process pipe with an autopilot
// client and returns both sides' results.
func runOverPipe(t *testing.T, w *sim.World, seed uint64) (sim.Result, *proto.EpisodeEnd) {
	t.Helper()
	from, to := mission(t, w, seed)
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())

	serverConn, clientConn := transport.Pipe()
	defer serverConn.Close()
	defer clientConn.Close()

	var (
		wg        sync.WaitGroup
		serverRes sim.Result
		serverErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverRes, serverErr = ServeEpisode(e, serverConn)
	}()

	driver := &simclient.AutopilotDriver{
		Fn: func(frame *proto.SensorFrame) physics.Control {
			// Ground-truth controller: the protocol carries sensor frames,
			// but the expert uses episode state (legitimate server-side
			// oracle for tests).
			return pilot.Control(e.EgoState(), nil)
		},
	}
	end, err := simclient.RunEpisode(clientConn, driver)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	return serverRes, end
}

func TestEpisodeOverInProcPipe(t *testing.T) {
	w := testWorld(t)
	res, end := runOverPipe(t, w, 1)
	if !res.Success {
		t.Errorf("autopilot over pipe failed: %+v", res.Status)
	}
	if end.Status != uint8(res.Status) {
		t.Errorf("client saw status %d, server %d", end.Status, res.Status)
	}
	if int(end.Frames) != res.Frames {
		t.Errorf("frame count mismatch: %d vs %d", end.Frames, res.Frames)
	}
	if end.DistanceM != res.DistanceM {
		t.Errorf("distance mismatch: %v vs %v", end.DistanceM, res.DistanceM)
	}
}

// lockstepConn materializes the happens-before edges the request/response
// protocol already guarantees. TCP tests drive the client with a
// ground-truth oracle reading the server's episode, which is safe only
// because exactly one side acts at a time — but the race detector cannot
// see alternation through a socket (the pipe transport's channels provide
// these edges for free). Wrapping both ends over one mutex — acquired
// before a send and after a receive, never held across I/O — turns each
// message into a visible synchronization point.
type lockstepConn struct {
	transport.Conn
	mu *sync.Mutex
}

func (c lockstepConn) Send(msg []byte) error {
	c.mu.Lock()
	//lint:ignore SA2001 the empty critical section is the point: an edge, not exclusion
	c.mu.Unlock()
	return c.Conn.Send(msg)
}

func (c lockstepConn) Recv() ([]byte, error) {
	msg, err := c.Conn.Recv()
	c.mu.Lock()
	//lint:ignore SA2001 see Send
	c.mu.Unlock()
	return msg, err
}

func TestEpisodeOverTCP(t *testing.T) {
	w := testWorld(t)
	from, to := mission(t, w, 2)
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var (
		wg        sync.WaitGroup
		step      sync.Mutex // lockstep edges for the e.EgoState oracle
		serverRes sim.Result
		serverErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		serverRes, serverErr = ServeEpisode(e, lockstepConn{conn, &step})
	}()

	clientConn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()

	driver := &simclient.AutopilotDriver{
		Fn: func(frame *proto.SensorFrame) physics.Control {
			return pilot.Control(e.EgoState(), nil)
		},
	}
	end, err := simclient.RunEpisode(lockstepConn{clientConn, &step}, driver)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	if !serverRes.Success {
		t.Errorf("TCP episode failed: %v", serverRes.Status)
	}
	if end.Frames == 0 {
		t.Error("client saw zero frames")
	}
}

func TestTransportEquivalence(t *testing.T) {
	// The same mission must produce identical results over pipe and TCP:
	// the transports are interchangeable, so timing faults measured on the
	// pipe transfer to the network deployment.
	w := testWorld(t)

	resPipe, _ := runOverPipe(t, w, 3)

	// TCP run of the same mission and seed.
	from, to := mission(t, w, 3)
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	var step sync.Mutex // lockstep edges for the e.EgoState oracle
	var resTCP sim.Result
	var serverErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		resTCP, serverErr = ServeEpisode(e, lockstepConn{conn, &step})
	}()
	clientConn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()
	_, err = simclient.RunEpisode(lockstepConn{clientConn, &step}, &simclient.AutopilotDriver{
		Fn: func(frame *proto.SensorFrame) physics.Control {
			return pilot.Control(e.EgoState(), nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}

	if resPipe.Frames != resTCP.Frames || resPipe.DistanceM != resTCP.DistanceM ||
		resPipe.Success != resTCP.Success {
		t.Errorf("pipe vs TCP diverged: %+v vs %+v", resPipe, resTCP)
	}
}

func TestServerFailsOnClosedConn(t *testing.T) {
	w := testWorld(t)
	from, to := mission(t, w, 4)
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	serverConn, clientConn := transport.Pipe()
	clientConn.Close()
	serverConn.Close()
	if _, err := ServeEpisode(e, serverConn); err == nil {
		t.Error("serving over closed conn did not error")
	}
}

func TestClientRejectsGarbage(t *testing.T) {
	serverConn, clientConn := transport.Pipe()
	defer serverConn.Close()
	defer clientConn.Close()
	go func() { _ = serverConn.Send([]byte{1, 2, 3}) }()
	_, err := simclient.RunEpisode(clientConn, &simclient.AutopilotDriver{
		Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
	})
	if err == nil {
		t.Error("garbage message did not error")
	}
}
