package simserver

import (
	"strings"
	"testing"
	"time"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/transport"
)

// idleWorker returns a listening worker whose factory is never exercised.
func idleWorker(t *testing.T) *Worker {
	t.Helper()
	w := NewWorker(func(*proto.OpenEpisode) (*sim.Episode, error) {
		t.Error("factory called by a test that opens no episode")
		return nil, nil
	})
	if _, err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkerServeBeforeListen(t *testing.T) {
	w := NewWorker(nil)
	if err := w.Serve(); err == nil || !strings.Contains(err.Error(), "Serve before Listen") {
		t.Errorf("Serve before Listen = %v, want an error saying so", err)
	}
}

// TestWorkerCloseDrainsToNil: Close is the clean shutdown — Serve returns
// nil, even with a connection mid-flight (its teardown is part of Close).
func TestWorkerCloseDrainsToNil(t *testing.T) {
	w := idleWorker(t)
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	conn, err := transport.Dial(w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The connection must be accepted before Close for ConnsServed to see
	// it; poll rather than race the accept loop.
	for deadline := time.Now().Add(10 * time.Second); w.ConnsServed() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never accepted the dialed connection")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after Close = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if w.ConnsServed() != 1 || w.ActiveConns() != 0 {
		t.Errorf("served=%d active=%d after shutdown, want 1 and 0", w.ConnsServed(), w.ActiveConns())
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v, want idempotent nil", err)
	}
}

// TestWorkerExternalListenerCloseIsAnError: the listener dying without
// Close is a failure Serve must report promptly — not retry forever, and
// not wedge behind live connections.
func TestWorkerExternalListenerCloseIsAnError(t *testing.T) {
	w := idleWorker(t)
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	// A live connection must not delay the error return.
	conn, err := transport.Dial(w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w.mu.Lock()
	l := w.listener
	w.mu.Unlock()
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Serve returned nil after its listener died without Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve wedged behind a live connection after listener death")
	}
}
