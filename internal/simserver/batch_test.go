package simserver

import (
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/transport"
)

// TestBatchOpenFansOutSessions: one OpenEpisodeBatch envelope opens every
// entry as an ordinary independent session — both episodes run to their
// EpisodeEnd over the shared connection.
func TestBatchOpenFansOutSessions(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	const sidA, sidB = 7, 9
	var entries []proto.OpenBatchEntry
	for _, sid := range []uint32{sidA, sidB} {
		from, to := mission(t, w, uint64(sid))
		entries = append(entries, proto.OpenBatchEntry{
			SID: sid,
			Open: &proto.OpenEpisode{
				From: uint32(from), To: uint32(to),
				Seed: uint64(sid), TimeoutSec: 2.0,
			},
		})
	}
	if err := clientConn.Send(proto.EncodeEnvelope(0, proto.EncodeOpenEpisodeBatch(entries))); err != nil {
		t.Fatal(err)
	}

	ended := map[uint32]bool{}
	for len(ended) < 2 {
		msg, err := clientConn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		sid, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if sid == 0 {
			continue // capability hello
		}
		if sid != sidA && sid != sidB {
			t.Fatalf("message for unopened session %d", sid)
		}
		kind, err := proto.Kind(inner)
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case proto.KindSensorFrame:
			frame, err := proto.DecodeSensorFrame(inner)
			if err != nil {
				t.Fatal(err)
			}
			if frame.Done {
				continue // EpisodeEnd follows
			}
			ctl := proto.EncodeControl(&proto.Control{Frame: frame.Frame})
			if err := clientConn.Send(proto.EncodeEnvelope(sid, ctl)); err != nil {
				t.Fatal(err)
			}
		case proto.KindEpisodeEnd:
			ended[sid] = true
		case proto.KindSessionError:
			se, _ := proto.DecodeSessionError(inner)
			t.Fatalf("session %d error: %v", sid, se)
		default:
			t.Fatalf("session %d: unexpected kind %d", sid, kind)
		}
	}

	clientConn.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
	if got := srv.TotalSessions(); got != 2 {
		t.Errorf("TotalSessions = %d, want 2", got)
	}
	if got := srv.CompletedSessions(); got != 2 {
		t.Errorf("CompletedSessions = %d, want 2", got)
	}
}

// legacyWorkerConn simulates a worker that predates the capability hello:
// its Serve-side sends on session 0 (the hello) vanish, exactly as if the
// server never produced them.
type legacyWorkerConn struct {
	transport.Conn
}

func (c legacyWorkerConn) Send(msg []byte) error {
	if sid, _, err := proto.DecodeEnvelope(msg); err == nil && sid == 0 {
		return nil
	}
	return c.Conn.Send(msg)
}

// TestLegacyWorkerFallback is the wire-compatibility contract: a client
// configured for batched opens, talking to a worker that never announces
// the capability, must complete every episode via single-open envelopes —
// no probing, no errors, zero batches on the wire.
func TestLegacyWorkerFallback(t *testing.T) {
	const n = 4
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(legacyWorkerConn{serverConn}) }()

	client := simclient.NewClient(clientConn)
	client.SetBatchOpens(8)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := mission(t, w, uint64(i+1))
			open := &proto.OpenEpisode{
				From: uint32(from), To: uint32(to),
				Seed: uint64(i + 1), TimeoutSec: 1.0,
			}
			driver := &simclient.AutopilotDriver{
				Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
			}
			_, _, errs[i] = client.RunEpisode(open, driver)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("episode %d against legacy worker: %v", i, err)
		}
	}
	if got := client.OpenBatches(); got != 0 {
		t.Errorf("client sent %d batches to a worker that never announced the capability", got)
	}
	if got := srv.CompletedSessions(); got != n {
		t.Errorf("CompletedSessions = %d, want %d", got, n)
	}
	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
}
