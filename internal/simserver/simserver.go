// Package simserver runs the world-simulator side of the CARLA-style
// client/server split: it owns a sim.Episode and speaks the proto protocol
// over any transport.Conn — each frame it ships the sensor payload, waits
// for the agent's control, and steps the world.
//
// The server is deliberately fault-free: all of AVFI's injectors instrument
// the client side (the ADA process), matching the paper's deployment where
// AVFI hooks the CARLA *client*.
package simserver

import (
	"errors"
	"fmt"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/transport"
)

// obsFrame converts one observation into its wire form (shared by the
// legacy single-episode loop and the multiplexed session loop, so the two
// paths cannot drift apart).
func obsFrame(obs sim.Observation) *proto.SensorFrame {
	var f proto.SensorFrame
	obsFrameInto(&f, obs)
	return &f
}

// obsFrameInto fills a reused scratch frame with one observation's wire
// form, appending pixels and lidar into the scratch's existing capacity —
// the allocation-free shape the session frame loop needs.
func obsFrameInto(f *proto.SensorFrame, obs sim.Observation) {
	f.Frame = uint32(obs.Frame)
	f.TimeSec = obs.TimeSec
	f.ImageW = uint16(obs.Image.W)
	f.ImageH = uint16(obs.Image.H)
	f.Pixels = obs.Image.AppendBytes(f.Pixels[:0])
	f.Speed = obs.Speed
	f.GPSX = obs.GPS.X
	f.GPSY = obs.GPS.Y
	f.Lidar = append(f.Lidar[:0], obs.Lidar...)
	f.Command = uint8(obs.Command)
	f.Done = obs.Done
	f.Status = uint8(obs.Status)
}

// resultEnd converts a final sim result into its summary wire form.
func resultEnd(res sim.Result) *proto.EpisodeEnd {
	return &proto.EpisodeEnd{
		Status:    uint8(res.Status),
		Frames:    uint32(res.Frames),
		DistanceM: res.DistanceM,
	}
}

// WireResult converts a final sim result into its full wire form — the
// EpisodeResult message sessions opt into with OpenEpisode.WantResult.
// simclient.SimResult is the inverse; the pair round-trips bit-exactly.
func WireResult(res sim.Result) *proto.EpisodeResult {
	out := &proto.EpisodeResult{
		Status:       uint8(res.Status),
		Success:      res.Success,
		Frames:       uint32(res.Frames),
		DistanceM:    res.DistanceM,
		DurationS:    res.DurationS,
		RouteLengthM: res.RouteLengthM,
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, proto.WireViolation{
			Kind:    uint8(v.Kind),
			TimeSec: v.TimeSec,
			PosX:    v.Pos.X,
			PosY:    v.Pos.Y,
		})
	}
	return out
}

// ServeEpisode drives one episode over the connection until the mission
// terminates, then sends EpisodeEnd and returns the result. The connection
// is left open (the caller owns its lifecycle).
func ServeEpisode(e *sim.Episode, conn transport.Conn) (sim.Result, error) {
	for {
		obs := e.Observe()
		if err := conn.Send(proto.EncodeSensorFrame(obsFrame(obs))); err != nil {
			return sim.Result{}, fmt.Errorf("simserver: send frame %d: %w", obs.Frame, err)
		}
		if obs.Done {
			break
		}

		msg, err := conn.Recv()
		if err != nil {
			return sim.Result{}, fmt.Errorf("simserver: recv control for frame %d: %w", obs.Frame, err)
		}
		ctl, err := proto.DecodeControl(msg)
		if err != nil {
			return sim.Result{}, fmt.Errorf("simserver: frame %d: %w", obs.Frame, err)
		}
		e.Step(physics.Control{Steer: ctl.Steer, Throttle: ctl.Throttle, Brake: ctl.Brake})
	}

	res := e.Result()
	if err := conn.Send(proto.EncodeEpisodeEnd(resultEnd(res))); err != nil {
		// The episode finished; a lost end-notification is non-fatal.
		if !errors.Is(err, transport.ErrClosed) {
			return res, fmt.Errorf("simserver: send episode end: %w", err)
		}
	}
	return res, nil
}
