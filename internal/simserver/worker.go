package simserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

// WorldFactory is the canonical OpenEpisode -> sim.Episode mapping: every
// scenario parameter an episode needs rides the wire, so a factory built
// from the same world configuration produces bit-identical episodes whether
// the server runs in the campaign's process or on a remote worker.
func WorldFactory(w *sim.World) EpisodeFactory {
	return func(open *proto.OpenEpisode) (*sim.Episode, error) {
		return w.NewEpisode(sim.EpisodeConfig{
			From: world.NodeID(open.From), To: world.NodeID(open.To),
			Seed:           open.Seed,
			Weather:        world.Weather(open.Weather),
			NumNPCs:        int(open.NumNPCs),
			NumPedestrians: int(open.NumPedestrians),
			TimeoutSec:     open.TimeoutSec,
			GoalRadius:     open.GoalRadius,
		})
	}
}

// Worker is a standalone simulation backend: it accepts campaign
// connections on one TCP listener for its whole lifetime and serves each
// connection with a fresh session-multiplexed Server over the shared
// episode factory. This is the far side of campaign.PoolConfig.Backends —
// a campaign dials N workers instead of spawning in-process engines, and
// many campaigns (sequential or concurrent) may share one worker.
type Worker struct {
	factory EpisodeFactory

	mu           sync.Mutex
	listener     *transport.Listener
	conns        map[transport.Conn]struct{}
	served       int
	closed       bool
	worldHash    uint64
	hasWorldHash bool

	wg sync.WaitGroup
}

// NewWorker builds an idle worker around an episode factory (see
// WorldFactory for the canonical one).
func NewWorker(factory EpisodeFactory) *Worker {
	return &Worker{factory: factory, conns: make(map[transport.Conn]struct{})}
}

// SetWorldHash sets the world-configuration fingerprint every per-connection
// Server announces in its capability hello (see Server.SetWorldHash), so
// campaigns dialing this worker can verify world identity before
// dispatching episodes. Call before Serve accepts connections.
func (w *Worker) SetWorldHash(hash uint64) {
	w.mu.Lock()
	w.worldHash = hash
	w.hasWorldHash = true
	w.mu.Unlock()
}

// Listen binds the worker's listener and returns the bound address (useful
// with ":0"). It does not accept yet; call Serve.
func (w *Worker) Listen(addr string) (string, error) {
	l, err := transport.Listen(addr)
	if err != nil {
		return "", fmt.Errorf("simserver: worker: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		l.Close()
		return "", fmt.Errorf("simserver: worker already closed")
	}
	if w.listener != nil {
		l.Close()
		return "", fmt.Errorf("simserver: worker already listening on %s", w.listener.Addr())
	}
	w.listener = l
	return l.Addr(), nil
}

// Addr returns the bound address ("" before Listen).
func (w *Worker) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.listener == nil {
		return ""
	}
	return w.listener.Addr()
}

// Accept-failure bounds: transient errors (fd exhaustion under many
// campaigns, a refused handshake) must not kill a long-lived worker, so
// Serve retries them after a short pause; a run of consecutive failures
// means the listener is genuinely broken and Serve gives up.
const (
	maxConsecutiveAcceptFailures = 10
	acceptRetryDelay             = 100 * time.Millisecond
)

// Serve accepts campaign connections until Close, giving each its own
// Server (session IDs are per-connection, so concurrent campaigns cannot
// collide). Transient accept errors are retried (bounded, paused); after
// Close, Serve returns nil once every in-flight connection's sessions have
// drained. A persistent accept failure is returned immediately — without
// waiting behind live connections, which their goroutines keep serving
// until Close tears them down.
func (w *Worker) Serve() error {
	w.mu.Lock()
	l := w.listener
	w.mu.Unlock()
	if l == nil {
		return fmt.Errorf("simserver: worker: Serve before Listen")
	}
	failures := 0
	for {
		conn, err := l.Accept()
		if err != nil {
			if w.isClosed() {
				w.wg.Wait()
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				// The listener is gone without Close: nothing to retry.
				return fmt.Errorf("simserver: worker: %w", err)
			}
			failures++
			if failures >= maxConsecutiveAcceptFailures {
				return fmt.Errorf("simserver: worker: %d consecutive accept failures: %w", failures, err)
			}
			telemetry.Warnf("simserver: worker accept failed (%d/%d), retrying: %v",
				failures, maxConsecutiveAcceptFailures, err)
			time.Sleep(acceptRetryDelay)
			continue
		}
		failures = 0
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			w.wg.Wait()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.served++
		w.mu.Unlock()
		telemetry.WorkerConns.Inc()
		telemetry.WorkerActiveConns.Add(1)
		telemetry.Infof("simserver: worker accepted campaign connection (%d served)", w.ConnsServed())
		w.wg.Add(1)
		go func(conn transport.Conn) {
			defer w.wg.Done()
			defer telemetry.WorkerActiveConns.Add(-1)
			srv := NewServer(w.factory)
			w.mu.Lock()
			if w.hasWorldHash {
				srv.SetWorldHash(w.worldHash)
			}
			w.mu.Unlock()
			_ = srv.Serve(conn)
			conn.Close()
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (w *Worker) ListenAndServe(addr string) error {
	if _, err := w.Listen(addr); err != nil {
		return err
	}
	return w.Serve()
}

// Close stops the worker: the listener closes and every active connection
// is torn down, so in-flight sessions on the other side fail immediately —
// the kill switch chaos tests lean on, and the prompt path for a
// signal-driven shutdown. Safe to call more than once, and before Listen.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l := w.listener
	conns := make([]transport.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

// ConnsServed reports how many campaign connections the worker has accepted
// over its lifetime.
func (w *Worker) ConnsServed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.served
}

// ActiveConns reports how many campaign connections are being served now.
func (w *Worker) ActiveConns() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.conns)
}

// isClosed reports whether Close ran.
func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// WorkerStatus is a point-in-time view of a worker for /statusz.
type WorkerStatus struct {
	Addr        string `json:"addr"`
	ConnsServed int    `json:"conns_served"`
	ActiveConns int    `json:"active_conns"`
	Closed      bool   `json:"closed"`
	// WorldHash is the announced world fingerprint in hex ("" when the
	// worker does not announce one).
	WorldHash string `json:"world_hash,omitempty"`
}

// Status snapshots the worker; safe to call from any goroutine.
func (w *Worker) Status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	addr := ""
	if w.listener != nil {
		addr = w.listener.Addr()
	}
	st := WorkerStatus{
		Addr:        addr,
		ConnsServed: w.served,
		ActiveConns: len(w.conns),
		Closed:      w.closed,
	}
	if w.hasWorldHash {
		st.WorldHash = fmt.Sprintf("%016x", w.worldHash)
	}
	return st
}
