package simserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// EpisodeFactory builds the episode for one OpenEpisode request. The server
// owns the world; clients only ship scenario parameters over the wire.
type EpisodeFactory func(open *proto.OpenEpisode) (*sim.Episode, error)

// Server is the persistent, session-multiplexed simulation engine: one
// Server serves many concurrent episodes over a single transport.Conn. Each
// OpenEpisode envelope spawns a session goroutine running the same
// frame/control loop as ServeEpisode, with all sessions' traffic
// interleaved on the shared connection.
//
// This is the campaign-throughput shape the paper's sweeps need: episode
// dispatch is O(1) in connections (one conn and, over TCP, one listener per
// campaign) instead of a listener + dial + goroutine per episode.
type Server struct {
	factory EpisodeFactory

	mu        sync.Mutex
	sessions  map[uint32]chan *proto.Control
	results   map[uint32]sim.Result
	active    int
	maxActive int
	total     int
	completed int
	failed    int
	serveErr  error
	served    bool
	// deltaOK is set when the peer replies to our hello announcing it can
	// decode delta frames; until then every frame goes out as a keyframe.
	deltaOK     bool
	deltaFrames int
	// worldHash, when hasWorldHash, is announced in the capability hello so
	// clients can verify the server simulates the world they expect.
	worldHash    uint64
	hasWorldHash bool

	wg sync.WaitGroup
}

// NewServer builds an idle engine around an episode factory.
func NewServer(factory EpisodeFactory) *Server {
	return &Server{
		factory:  factory,
		sessions: make(map[uint32]chan *proto.Control),
		results:  make(map[uint32]sim.Result),
	}
}

// SetWorldHash adds a world-configuration fingerprint (sim.WorldConfig.Hash)
// to the server's capability hello, letting dial-time verification reject a
// campaign/worker world mismatch before any episode runs. Set it before
// Serve; legacy clients ignore the extra token.
func (s *Server) SetWorldHash(hash uint64) {
	s.mu.Lock()
	s.worldHash = hash
	s.hasWorldHash = true
	s.mu.Unlock()
}

// Serve multiplexes episodes over conn until the peer closes it. Every
// received envelope either opens sessions (KindOpenEpisode, or many at
// once via KindOpenEpisodeBatch) or routes a control to its session
// goroutine. Serve returns nil on a clean shutdown (peer closed the
// connection) after all in-flight sessions drain.
func (s *Server) Serve(conn transport.Conn) error {
	// Announce capabilities on session 0 — never allocated, so legacy
	// clients drop the hello unread while new ones turn on batched opens.
	// A send failure here means the connection is already dead; the demux
	// loop's first Recv reports it.
	caps := []string{proto.CapBatchOpen, proto.CapDeltaFrame}
	s.mu.Lock()
	if s.hasWorldHash {
		caps = append(caps, proto.WorldCapToken(s.worldHash))
	}
	s.mu.Unlock()
	_ = conn.Send(proto.EncodeEnvelope(0, proto.EncodeCapabilityHello(caps...)))
	err := s.demux(conn)
	// Unblock any session still waiting for a control (the peer is gone),
	// then drain the episode goroutines.
	s.mu.Lock()
	for sid, ch := range s.sessions {
		close(ch)
		delete(s.sessions, sid)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.serveErr = err
	s.served = true
	s.mu.Unlock()
	return err
}

// demux is Serve's receive loop.
func (s *Server) demux(conn transport.Conn) error {
	for {
		msg, err := conn.Recv()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return fmt.Errorf("simserver: serve recv: %w", err)
		}
		sid, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			return fmt.Errorf("simserver: serve: %w", err)
		}
		kind, err := proto.Kind(inner)
		if err != nil {
			return fmt.Errorf("simserver: session %d: %w", sid, err)
		}
		switch kind {
		case proto.KindOpenEpisode:
			open, err := proto.DecodeOpenEpisode(inner)
			if err != nil {
				return fmt.Errorf("simserver: session %d: %w", sid, err)
			}
			if err := s.open(conn, sid, open); err != nil {
				return err
			}

		case proto.KindOpenEpisodeBatch:
			// One group-committed message fans out into ordinary sessions:
			// past this point a batched episode is indistinguishable from a
			// singly-opened one.
			entries, err := proto.DecodeOpenEpisodeBatch(inner)
			if err != nil {
				return fmt.Errorf("simserver: batch: %w", err)
			}
			for _, e := range entries {
				if err := s.open(conn, e.SID, e.Open); err != nil {
					return err
				}
			}

		case proto.KindControl:
			ctl, err := proto.DecodeControl(inner)
			if err != nil {
				return fmt.Errorf("simserver: session %d: %w", sid, err)
			}
			s.mu.Lock()
			ch, ok := s.sessions[sid]
			s.mu.Unlock()
			if !ok {
				// Session already ended (e.g. control raced EpisodeEnd).
				continue
			}
			select {
			case ch <- ctl:
			default:
				// The episode protocol is strictly request/response, so a
				// control beyond the buffered depth means the peer is
				// broken for this session. Drop the session (its goroutine
				// sees the closed channel and exits) rather than letting
				// one session's backpressure stall the demux loop — the
				// mirror of the client-side head-of-line guard.
				s.mu.Lock()
				if cur, live := s.sessions[sid]; live && cur == ch {
					close(cur)
					delete(s.sessions, sid)
					s.failed++
					telemetry.ServerSessionsFailed.Inc()
					telemetry.Warnf("simserver: session %d dropped: control overflow", sid)
					// Tell the peer, so its episode loop fails instead of
					// waiting forever for a frame that will never come —
					// from a goroutine, so that even a backpressured
					// connection cannot stall the demux loop. Serve's
					// final wg.Wait covers this sender.
					s.wg.Add(1)
					go func() {
						defer s.wg.Done()
						msg := proto.EncodeSessionError(&proto.SessionError{Reason: "control overflow (session not consuming)"})
						_ = conn.Send(proto.EncodeEnvelope(sid, msg))
					}()
				}
				s.mu.Unlock()
			}

		case proto.KindSessionError:
			// Session 0 carries the peer's capability hello: a delta-capable
			// client answers our announcement with its own (and only then —
			// legacy clients drop session-0 traffic unread, legacy servers
			// never announce, so no peer ever receives a message it cannot
			// handle). Any other SessionError from a client is protocol abuse.
			if sid != 0 {
				return fmt.Errorf("simserver: session %d: unexpected session error from client", sid)
			}
			se, err := proto.DecodeSessionError(inner)
			if err != nil {
				return fmt.Errorf("simserver: client hello: %w", err)
			}
			caps, ok := proto.ParseCapabilityHello(se.Reason)
			if !ok {
				continue
			}
			for _, c := range caps {
				if c == proto.CapDeltaFrame {
					s.mu.Lock()
					s.deltaOK = true
					s.mu.Unlock()
				}
			}

		default:
			return fmt.Errorf("simserver: session %d: unexpected kind %d", sid, kind)
		}
	}
}

// deltaAllowed reports whether the peer has announced delta-frame decode
// support. Checked per frame: the client hello can race the first opens,
// and a mid-episode switch is safe because every frame message is
// self-describing (keyframe or delta) and ordered within its session.
func (s *Server) deltaAllowed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaOK
}

// open registers a session and spawns its episode goroutine. Episode
// construction happens inside the goroutine so heavy scenario setup never
// blocks the demux loop, and many episodes build concurrently.
func (s *Server) open(conn transport.Conn, sid uint32, open *proto.OpenEpisode) error {
	// A control per in-flight frame plus the strictly request/response
	// loop means one slot never blocks the demux loop.
	ch := make(chan *proto.Control, 1)
	s.mu.Lock()
	if _, dup := s.sessions[sid]; dup {
		s.mu.Unlock()
		return fmt.Errorf("simserver: session %d already open", sid)
	}
	s.sessions[sid] = ch
	s.active++
	s.total++
	if s.active > s.maxActive {
		s.maxActive = s.active
	}
	s.mu.Unlock()
	telemetry.ServerSessionsOpened.Inc()
	telemetry.ServerInFlight.Add(1)

	s.wg.Add(1)
	go s.runSession(conn, sid, open, ch)
	return nil
}

// runSession builds and drives one episode: send enveloped sensor frames,
// wait for the routed control, step — the ServeEpisode loop,
// multiplex-aware. A factory failure is reported to the client as a
// SessionError, not a server error: one bad scenario must not tear down the
// whole campaign engine.
func (s *Server) runSession(conn transport.Conn, sid uint32, open *proto.OpenEpisode, controls <-chan *proto.Control) {
	defer s.wg.Done()
	defer s.closeSession(sid)

	e, err := s.factory(open)
	if err != nil {
		telemetry.ServerSessionsFailed.Inc()
		telemetry.Infof("simserver: session %d rejected by episode factory: %v", sid, err)
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		msg := proto.EncodeSessionError(&proto.SessionError{Reason: err.Error()})
		_ = conn.Send(proto.EncodeEnvelope(sid, msg))
		return
	}

	// One stream codec per session: frames reuse the encoder's scratch and
	// send buffer (zero steady-state allocations), and delta-compress
	// against the session's previous frame once the peer has said it can
	// decode them.
	var enc proto.FrameEncoder
	defer func() {
		s.mu.Lock()
		s.deltaFrames += enc.Deltas()
		s.mu.Unlock()
	}()
	for {
		obs := e.Observe()
		obsFrameInto(enc.Next(), obs)
		if err := conn.Send(enc.Encode(sid, s.deltaAllowed())); err != nil {
			return
		}
		if obs.Done {
			break
		}
		ctl, ok := <-controls
		if !ok {
			return
		}
		e.Step(physics.Control{Steer: ctl.Steer, Throttle: ctl.Throttle, Brake: ctl.Brake})
	}

	res := e.Result()
	telemetry.ServerSessionsCompleted.Inc()
	s.mu.Lock()
	if !open.WantResult {
		// Record before announcing the end so a client that queries Result
		// immediately after its EpisodeEnd always finds it. Sessions that
		// asked for the result on the wire get it there instead — no
		// server-side stash to consume (or leak when nobody does).
		s.results[sid] = res
	}
	s.completed++
	s.mu.Unlock()
	if open.WantResult {
		_ = conn.Send(proto.EncodeEnvelope(sid, proto.EncodeEpisodeResult(WireResult(res))))
	}
	_ = conn.Send(proto.EncodeEnvelope(sid, proto.EncodeEpisodeEnd(resultEnd(res))))
}

// closeSession removes a session's routing entry.
func (s *Server) closeSession(sid uint32) {
	telemetry.ServerInFlight.Add(-1)
	s.mu.Lock()
	delete(s.sessions, sid)
	s.active--
	s.mu.Unlock()
}

// Result returns the finished sim result for a session, consuming it. It
// is an in-process API: the wire EpisodeEnd carries only a summary, so
// legacy clients (which need the violation list for metrics) read the full
// result here, on the server side of the engine. Sessions whose OpenEpisode
// set WantResult received the result on the wire instead and are never
// stashed here.
func (s *Server) Result(sid uint32) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[sid]
	if ok {
		delete(s.results, sid)
	}
	return res, ok
}

// MaxConcurrent reports the high-water mark of simultaneously active
// sessions — the multiplexing factor actually achieved on the connection.
func (s *Server) MaxConcurrent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxActive
}

// TotalSessions reports how many episodes the engine has served.
func (s *Server) TotalSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// CompletedSessions reports how many sessions ran their episode to the end
// and recorded a result — sessions aborted by factory failures, overflow
// drops, or a dying connection are excluded, so campaign stats can count
// finished episodes, not attempts.
func (s *Server) CompletedSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// FailedSessions reports how many sessions aborted server-side (episode
// factory failures, demux control overflow) — per-engine health for pool
// supervision.
func (s *Server) FailedSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// DeltaFramesSent reports how many sensor frames went out delta-encoded
// across finished sessions — zero against a legacy client, which never
// announces decode support.
func (s *Server) DeltaFramesSent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaFrames
}

// Err reports why Serve exited: nil while it is still running or after a
// clean peer-initiated shutdown, non-nil when the engine's backend died.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Done reports whether Serve has returned.
func (s *Server) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// isClosed reports whether err means the peer hung up — the engine's normal
// end-of-campaign signal on either transport.
func isClosed(err error) bool {
	return errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed)
}
