package simserver

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

// worldFactory builds episodes from OpenEpisode requests against w, with a
// short timeout so protocol tests stay fast.
func worldFactory(w *sim.World) EpisodeFactory {
	return func(open *proto.OpenEpisode) (*sim.Episode, error) {
		return w.NewEpisode(sim.EpisodeConfig{
			From: world.NodeID(open.From), To: world.NodeID(open.To),
			Seed:       open.Seed,
			TimeoutSec: open.TimeoutSec,
		})
	}
}

// openMsg encodes an enveloped OpenEpisode for a session.
func openMsg(t *testing.T, w *sim.World, sid uint32, seed uint64, timeoutSec float64) []byte {
	t.Helper()
	from, to := mission(t, w, seed)
	open := &proto.OpenEpisode{
		From: uint32(from), To: uint32(to),
		Seed: seed, TimeoutSec: timeoutSec,
	}
	return proto.EncodeEnvelope(sid, proto.EncodeOpenEpisode(open))
}

// TestTwoSessionsInterleaved drives two episodes over one raw connection in
// strict alternation: the test withholds session A's control until session
// B has produced a frame and vice versa, so passing requires the server to
// advance each session independently mid-episode — true multiplexing, not
// serialized episode turns. (Client-driven alternation keeps the schedule
// deterministic even on GOMAXPROCS=1, where free-running sessions
// serialize.)
func TestTwoSessionsInterleaved(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	const sidA, sidB = 1, 2
	for _, sid := range []uint32{sidA, sidB} {
		if err := clientConn.Send(openMsg(t, w, sid, uint64(sid), 2.0)); err != nil {
			t.Fatal(err)
		}
	}

	// recvEnvelope returns the next message, asserting protocol validity.
	// Session-0 traffic (the capability hello) is dropped, exactly as a
	// legacy client's demux would.
	recvEnvelope := func() (uint32, proto.MsgKind, []byte) {
		t.Helper()
		var sid uint32
		var inner []byte
		for {
			msg, err := clientConn.Recv()
			if err != nil {
				t.Fatal(err)
			}
			sid, inner, err = proto.DecodeEnvelope(msg)
			if err != nil {
				t.Fatal(err)
			}
			if sid != 0 {
				break
			}
		}
		if sid != sidA && sid != sidB {
			t.Fatalf("message for unopened session %d", sid)
		}
		kind, err := proto.Kind(inner)
		if err != nil {
			t.Fatal(err)
		}
		if kind == proto.KindSessionError {
			se, _ := proto.DecodeSessionError(inner)
			t.Fatalf("session %d error: %v", sid, se)
		}
		return sid, kind, inner
	}

	// Phase 1: both sessions send their first frame unprompted, in either
	// arrival order.
	lastFrame := map[uint32]uint32{}
	for i := 0; i < 2; i++ {
		sid, kind, inner := recvEnvelope()
		if kind != proto.KindSensorFrame {
			t.Fatalf("first message of session %d has kind %d", sid, kind)
		}
		if _, dup := lastFrame[sid]; dup {
			t.Fatalf("two first-frames from session %d: sessions are serialized", sid)
		}
		frame, err := proto.DecodeSensorFrame(inner)
		if err != nil {
			t.Fatal(err)
		}
		lastFrame[sid] = frame.Frame
	}

	// Phase 2: strict alternation. After a control for session X, the only
	// possible next message is from X (the other session is stalled waiting
	// for its own control) — each session must advance while its peer sits
	// mid-episode on the same connection.
	ended := map[uint32]bool{}
	for turn := 0; len(ended) < 2; turn++ {
		sid := uint32(sidA)
		if turn%2 == 1 {
			sid = sidB
		}
		if ended[sid] {
			continue
		}
		ctl := proto.EncodeControl(&proto.Control{Frame: lastFrame[sid]})
		if err := clientConn.Send(proto.EncodeEnvelope(sid, ctl)); err != nil {
			t.Fatal(err)
		}
		gotSid, kind, inner := recvEnvelope()
		if gotSid != sid {
			t.Fatalf("turn %d: control for session %d answered by session %d", turn, sid, gotSid)
		}
		if kind != proto.KindSensorFrame {
			t.Fatalf("turn %d: kind %d", turn, kind)
		}
		frame, err := proto.DecodeSensorFrame(inner)
		if err != nil {
			t.Fatal(err)
		}
		if frame.Frame <= lastFrame[sid] {
			t.Fatalf("session %d frame %d did not advance past %d", sid, frame.Frame, lastFrame[sid])
		}
		lastFrame[sid] = frame.Frame
		if frame.Done {
			// The episode-end summary follows back-to-back.
			gotSid, kind, _ := recvEnvelope()
			if gotSid != sid || kind != proto.KindEpisodeEnd {
				t.Fatalf("after done frame: session %d kind %d", gotSid, kind)
			}
			ended[sid] = true
		}
	}

	if lastFrame[sidA] == 0 || lastFrame[sidB] == 0 {
		t.Errorf("sessions did not both progress: %v", lastFrame)
	}
	clientConn.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
	if got := srv.TotalSessions(); got != 2 {
		t.Errorf("TotalSessions = %d, want 2", got)
	}
}

// TestFourEpisodesMultiplexedOneConn holds every episode factory at a
// barrier until four sessions have opened, proving >= 4 concurrent episodes
// are multiplexed over a single transport.Conn.
func TestFourEpisodesMultiplexedOneConn(t *testing.T) {
	const n = 4
	w := testWorld(t)

	var opened int32
	barrier := make(chan struct{})
	inner := worldFactory(w)
	srv := NewServer(func(open *proto.OpenEpisode) (*sim.Episode, error) {
		if atomic.AddInt32(&opened, 1) == n {
			close(barrier)
		}
		<-barrier
		return inner(open)
	})

	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()
	client := simclient.NewClient(clientConn)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := mission(t, w, uint64(i+1))
			open := &proto.OpenEpisode{
				From: uint32(from), To: uint32(to),
				Seed: uint64(i + 1), TimeoutSec: 1.0,
			}
			driver := &simclient.AutopilotDriver{
				Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
			}
			_, _, errs[i] = client.RunEpisode(open, driver)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("episode %d: %v", i, err)
		}
	}
	if got := srv.MaxConcurrent(); got < n {
		t.Errorf("MaxConcurrent = %d, want >= %d", got, n)
	}
	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
}

// TestSessionErrorPropagates turns a factory failure into a client-visible
// episode error without tearing down the engine.
func TestSessionErrorPropagates(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(func(open *proto.OpenEpisode) (*sim.Episode, error) {
		if open.Seed == 666 {
			return nil, errors.New("factory boom")
		}
		return worldFactory(w)(open)
	})
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()
	client := simclient.NewClient(clientConn)

	from, to := mission(t, w, 5)
	driver := &simclient.AutopilotDriver{
		Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
	}
	_, _, err := client.RunEpisode(&proto.OpenEpisode{
		From: uint32(from), To: uint32(to), Seed: 666,
	}, driver)
	if err == nil || !strings.Contains(err.Error(), "factory boom") {
		t.Errorf("error = %v, want factory boom", err)
	}

	// The engine survives: a later session on the same conn succeeds.
	_, end, err := client.RunEpisode(&proto.OpenEpisode{
		From: uint32(from), To: uint32(to), Seed: 5, TimeoutSec: 1.0,
	}, driver)
	if err != nil {
		t.Fatalf("engine dead after session error: %v", err)
	}
	if end == nil || end.Frames == 0 {
		t.Errorf("follow-up episode made no progress: %+v", end)
	}

	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}

// TestServerDrainsOnMidEpisodeHangup closes the client connection with an
// episode in flight; Serve must unblock the session and return cleanly.
func TestServerDrainsOnMidEpisodeHangup(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	if err := clientConn.Send(openMsg(t, w, 9, 9, 30.0)); err != nil {
		t.Fatal(err)
	}
	// One frame proves the session is live, then hang up.
	if _, err := clientConn.Recv(); err != nil {
		t.Fatal(err)
	}
	clientConn.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after hangup", err)
	}
}

// TestServeHealthAccessors pins the health-plumbing contract the campaign
// engine pool relies on: Err is nil and Done false while Serve runs, Done
// flips once Serve returns, and a clean peer-initiated shutdown leaves Err
// nil. FailedSessions counts factory aborts.
func TestServeHealthAccessors(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(func(open *proto.OpenEpisode) (*sim.Episode, error) {
		if open.Seed == 666 {
			return nil, errors.New("factory boom")
		}
		return worldFactory(w)(open)
	})
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	if srv.Done() {
		t.Error("Done true before Serve returned")
	}
	if err := srv.Err(); err != nil {
		t.Errorf("Err = %v while serving", err)
	}
	if got := srv.FailedSessions(); got != 0 {
		t.Errorf("FailedSessions = %d before any session", got)
	}

	// One failing session increments FailedSessions without ending Serve.
	if err := clientConn.Send(proto.EncodeEnvelope(1, proto.EncodeOpenEpisode(&proto.OpenEpisode{Seed: 666}))); err != nil {
		t.Fatal(err)
	}
	// Wait for the SessionError reply, dropping the session-0 capability
	// hello like a legacy client's demux would.
	for {
		msg, err := clientConn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if sid, _, err := proto.DecodeEnvelope(msg); err == nil && sid != 0 {
			break
		}
	}
	if got := srv.FailedSessions(); got != 1 {
		t.Errorf("FailedSessions = %d after factory abort, want 1", got)
	}
	if srv.Done() {
		t.Error("Done true after a mere session failure")
	}

	clientConn.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
	if !srv.Done() {
		t.Error("Done false after Serve returned")
	}
	if err := srv.Err(); err != nil {
		t.Errorf("Err = %v after clean shutdown, want nil", err)
	}
}

// TestDemuxControlOverflowDropsSession is the server-side mirror of the
// client's head-of-line regression test: a session whose control buffer is
// full (its goroutine stopped consuming) is dropped, and the demux loop
// keeps serving every other session on the connection.
func TestDemuxControlOverflowDropsSession(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	// Handcraft a wedged session: registered, buffer already full, nobody
	// consuming.
	wedged := make(chan *proto.Control, 1)
	wedged <- &proto.Control{}
	srv.mu.Lock()
	srv.sessions[99] = wedged
	srv.mu.Unlock()

	// Overflow it; the demux loop must drop the session, not park on it.
	if err := clientConn.Send(proto.EncodeEnvelope(99, proto.EncodeControl(&proto.Control{Throttle: 1}))); err != nil {
		t.Fatal(err)
	}

	// The peer is told its session died — no silent drop that would leave
	// a client episode loop waiting forever. (Session-0 hello traffic is
	// dropped first, as any legacy client would.)
	var sid uint32
	var inner []byte
	for {
		reply, err := clientConn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		sid, inner, err = proto.DecodeEnvelope(reply)
		if err != nil {
			t.Fatalf("reply envelope err=%v", err)
		}
		if sid != 0 {
			break
		}
	}
	if sid != 99 {
		t.Fatalf("reply envelope sid=%d, want sid=99", sid)
	}
	if kind, err := proto.Kind(inner); err != nil || kind != proto.KindSessionError {
		t.Fatalf("reply kind=%v err=%v, want SessionError", kind, err)
	}

	// The connection still serves real episodes end-to-end.
	client := simclient.NewClient(clientConn)
	from, to := mission(t, w, 5)
	driver := &simclient.AutopilotDriver{
		Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
	}
	_, end, err := client.RunEpisode(&proto.OpenEpisode{
		From: uint32(from), To: uint32(to), Seed: 5, TimeoutSec: 1.0,
	}, driver)
	if err != nil {
		t.Fatalf("demux stalled by wedged session: %v", err)
	}
	if end == nil || end.Frames == 0 {
		t.Errorf("episode made no progress: %+v", end)
	}

	// The wedged session was closed out and counted.
	srv.mu.Lock()
	_, still := srv.sessions[99]
	srv.mu.Unlock()
	if still {
		t.Error("overflowed session still registered")
	}
	<-wedged // drain the buffered control
	if _, open := <-wedged; open {
		t.Error("wedged session channel not closed")
	}
	if got := srv.FailedSessions(); got != 1 {
		t.Errorf("FailedSessions = %d, want 1", got)
	}

	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}

// TestFullResultOverWire pins the EpisodeResult path: a session opened
// with WantResult receives the complete sim.Result on the wire —
// bit-identical to what the legacy Server.Result side channel returns for
// the same seed — and leaves nothing stashed server-side.
func TestFullResultOverWire(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()
	client := simclient.NewClient(clientConn)

	from, to := mission(t, w, 9)
	open := &proto.OpenEpisode{
		From: uint32(from), To: uint32(to), Seed: 9, TimeoutSec: 1.0,
	}
	driver := func() *simclient.AutopilotDriver {
		return &simclient.AutopilotDriver{
			Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{Steer: 0.3, Throttle: 1} },
		}
	}

	// Legacy path: summary on the wire, full result from the stash.
	legacySID, legacyEnd, err := client.RunEpisode(open, driver())
	if err != nil {
		t.Fatal(err)
	}
	legacyRes, ok := srv.Result(legacySID)
	if !ok {
		t.Fatal("legacy session left no stashed result")
	}

	// Wire path: the same episode (same seed) with the result requested.
	wireSID, wireRes, wireEnd, err := client.RunEpisodeResult(open, driver())
	if err != nil {
		t.Fatal(err)
	}
	if wireRes == nil {
		t.Fatal("RunEpisodeResult returned no wire result")
	}
	if !reflect.DeepEqual(simclient.SimResult(wireRes), legacyRes) {
		t.Errorf("wire result diverged from stash:\n wire  %+v\n stash %+v",
			simclient.SimResult(wireRes), legacyRes)
	}
	if wireEnd.Frames != legacyEnd.Frames || wireEnd.DistanceM != legacyEnd.DistanceM {
		t.Errorf("episode summaries diverged: %+v vs %+v", wireEnd, legacyEnd)
	}
	// No stash for WantResult sessions: nothing to consume or leak.
	if _, ok := srv.Result(wireSID); ok {
		t.Error("WantResult session also stashed its result server-side")
	}

	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
}
