package simserver

import (
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/transport"
)

// runDeltaEpisodes drives n concurrent episodes through client and
// returns the per-episode errors.
func runDeltaEpisodes(t *testing.T, client *simclient.Client, w *sim.World, n int) []error {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := mission(t, w, uint64(i+1))
			open := &proto.OpenEpisode{
				From: uint32(from), To: uint32(to),
				Seed: uint64(i + 1), TimeoutSec: 1.0,
			}
			driver := &simclient.AutopilotDriver{
				Fn: func(*proto.SensorFrame) physics.Control { return physics.Control{} },
			}
			_, _, errs[i] = client.RunEpisode(open, driver)
		}(i)
	}
	wg.Wait()
	return errs
}

// TestDeltaFramesNegotiated: a delta-capable client against a delta-capable
// server answers the hello, after which the session frame streams switch to
// delta encoding — and both ends agree on how many frames rode it.
func TestDeltaFramesNegotiated(t *testing.T) {
	const n = 3
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	client := simclient.NewClient(clientConn)
	client.SetDeltaFrames(true)

	for i, err := range runDeltaEpisodes(t, client, w, n) {
		if err != nil {
			t.Errorf("episode %d: %v", i, err)
		}
	}
	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
	if got := srv.CompletedSessions(); got != n {
		t.Errorf("CompletedSessions = %d, want %d", got, n)
	}
	if srv.DeltaFramesSent() == 0 {
		t.Error("no frames were delta-encoded between two delta-capable peers")
	}
	if got, want := client.DeltaFrames(), srv.DeltaFramesSent(); got != want {
		t.Errorf("client decoded %d delta frames, server sent %d", got, want)
	}
}

// TestLegacyClientGetsFullFrames is the downgrade contract from the
// server's side: a client that never announces delta decode support (it
// drops session-0 traffic, as pre-capability clients do) must receive
// every frame as a plain KindSensorFrame keyframe.
func TestLegacyClientGetsFullFrames(t *testing.T) {
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	const sid = 5
	from, to := mission(t, w, 1)
	open := &proto.OpenEpisode{From: uint32(from), To: uint32(to), Seed: 1, TimeoutSec: 1.0}
	if err := clientConn.Send(proto.EncodeEnvelope(sid, proto.EncodeOpenEpisode(open))); err != nil {
		t.Fatal(err)
	}
	frames := 0
	for done := false; !done; {
		msg, err := clientConn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		gotSID, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if gotSID == 0 {
			continue // capability hello: a legacy client ignores it
		}
		kind, err := proto.Kind(inner)
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case proto.KindSensorFrame:
			frames++
			frame, err := proto.DecodeSensorFrame(inner)
			if err != nil {
				t.Fatal(err)
			}
			if frame.Done {
				continue
			}
			ctl := proto.EncodeControl(&proto.Control{Frame: frame.Frame})
			if err := clientConn.Send(proto.EncodeEnvelope(sid, ctl)); err != nil {
				t.Fatal(err)
			}
		case proto.KindSensorFrameDelta:
			t.Fatal("server sent a delta frame to a client that never announced support")
		case proto.KindEpisodeEnd:
			done = true
		default:
			t.Fatalf("unexpected kind %d", kind)
		}
	}
	if frames == 0 {
		t.Fatal("episode produced no frames")
	}
	clientConn.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
	if got := srv.DeltaFramesSent(); got != 0 {
		t.Errorf("DeltaFramesSent = %d against a legacy client, want 0", got)
	}
}

// TestLegacyWorkerDeltaFallback mirrors TestLegacyWorkerFallback for the
// frame path: a client configured for delta frames, talking to a worker
// that never announces the capability, must never reply on session 0 and
// must complete every episode on full keyframes.
func TestLegacyWorkerDeltaFallback(t *testing.T) {
	const n = 3
	w := testWorld(t)
	srv := NewServer(worldFactory(w))
	serverConn, clientConn := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(legacyWorkerConn{serverConn}) }()

	client := simclient.NewClient(clientConn)
	client.SetDeltaFrames(true)

	for i, err := range runDeltaEpisodes(t, client, w, n) {
		if err != nil {
			t.Errorf("episode %d against legacy worker: %v", i, err)
		}
	}
	if got := srv.CompletedSessions(); got != n {
		t.Errorf("CompletedSessions = %d, want %d", got, n)
	}
	if got := srv.DeltaFramesSent(); got != 0 {
		t.Errorf("legacy worker delta-encoded %d frames", got)
	}
	if got := client.DeltaFrames(); got != 0 {
		t.Errorf("client decoded %d delta frames from a legacy worker", got)
	}
	client.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after clean close", err)
	}
}
