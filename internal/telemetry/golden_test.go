package telemetry

import (
	"reflect"
	"testing"
)

// TestGoldenMetricNames pins the exported metric set. Dashboards and
// scrape configs key on these exact names, so a rename must show up in
// this diff and be deliberate — update the list alongside the metric.
func TestGoldenMetricNames(t *testing.T) {
	want := []string{
		"avfi_campaign_engine_replacements_total",
		"avfi_campaign_episode_seconds",
		"avfi_campaign_episodes_total",
		`avfi_campaign_phase_seconds{phase="dispatch"}`,
		`avfi_campaign_phase_seconds{phase="frames"}`,
		`avfi_campaign_phase_seconds{phase="open"}`,
		`avfi_campaign_phase_seconds{phase="queue_wait"}`,
		`avfi_campaign_phase_seconds{phase="result"}`,
		`avfi_campaign_phase_seconds{phase="sink"}`,
		"avfi_campaign_retries_total",
		"avfi_campaign_sink_queue_depth",
		"avfi_client_open_batch_size",
		"avfi_client_sessions_completed_total",
		"avfi_client_sessions_failed_total",
		"avfi_client_sessions_in_flight",
		"avfi_client_sessions_opened_total",
		"avfi_commfault_msgs_flushed_total",
		"avfi_commfault_msgs_held_total",
		`avfi_frames_decoded_total{kind="delta"}`,
		`avfi_frames_decoded_total{kind="key"}`,
		"avfi_frames_encoded_bytes_total",
		`avfi_frames_encoded_total{kind="delta"}`,
		`avfi_frames_encoded_total{kind="key"}`,
		"avfi_frames_raw_bytes_total",
		"avfi_server_sessions_completed_total",
		"avfi_server_sessions_failed_total",
		"avfi_server_sessions_in_flight",
		"avfi_server_sessions_opened_total",
		"avfi_service_campaigns_active",
		`avfi_service_campaigns_finished_total{state="done"}`,
		`avfi_service_campaigns_finished_total{state="failed"}`,
		"avfi_service_campaigns_submitted_total",
		"avfi_service_worker_dial_failures_total",
		"avfi_service_worker_dials_total",
		"avfi_service_workers",
		"avfi_service_workers_up",
		"avfi_transport_buf_gets_total",
		"avfi_transport_buf_hits_total",
		"avfi_transport_buf_recycles_total",
		"avfi_transport_bytes_recv_total",
		"avfi_transport_bytes_sent_total",
		"avfi_transport_msgs_recv_total",
		"avfi_transport_msgs_sent_total",
		"avfi_transport_writev_batch_size",
		"avfi_worker_conns_active",
		"avfi_worker_conns_total",
	}
	got := Default.Names()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("exported metric set changed.\ngot:\n  %q\nwant:\n  %q", got, want)
	}
}
