// The status endpoint: one HTTP listener per process serving /metrics
// (Prometheus text), /statusz (JSON snapshot assembled from registered
// sections), /healthz, and net/http/pprof — so every member of a
// distributed campaign fleet is individually inspectable while it runs.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"time"
)

// A Server is a live telemetry endpoint. Status sections are attached
// with SetStatus and evaluated at scrape time, so /statusz always
// reflects the moment of the request.
type Server struct {
	reg *Registry
	lis net.Listener
	srv *http.Server
	mux *http.ServeMux

	mu       sync.Mutex
	order    []string
	sections map[string]func() any
	started  time.Time
}

// Serve starts a telemetry endpoint on addr (host:port; port 0 picks a
// free one) over reg, or the Default registry if reg is nil. It also
// flips metric collection on: exposing an endpoint without collecting
// would serve zeros forever.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	SetEnabled(true)
	s := &Server{
		reg:      reg,
		lis:      lis,
		sections: map[string]func() any{},
		started:  time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(lis) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Handle mounts an additional handler on the endpoint's mux, sharing the
// listener with /metrics, /statusz and pprof — how the campaign service's
// submit/status/results API rides the telemetry endpoint instead of
// needing a second port. Patterns follow net/http.ServeMux semantics;
// registering a pattern twice panics (as ServeMux does).
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetStatus attaches (or, with a nil fn, detaches) a named /statusz
// section. fn runs on the HTTP goroutine at scrape time and must be
// safe to call concurrently with the workload; its result is rendered
// as JSON.
func (s *Server) SetStatus(name string, fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fn == nil {
		delete(s.sections, name)
		for i, n := range s.order {
			if n == name {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		return
	}
	if _, ok := s.sections[name]; !ok {
		s.order = append(s.order, name)
	}
	s.sections[name] = fn
}

// Close stops serving and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; the truncated body is all we can signal with.
		Errorf("telemetry: /metrics write: %v", err)
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := append([]string(nil), s.order...)
	fns := make([]func() any, len(names))
	for i, n := range names {
		fns[i] = s.sections[n]
	}
	s.mu.Unlock()

	status := map[string]any{
		"process": map[string]any{
			"pid":        os.Getpid(),
			"go":         runtime.Version(),
			"goroutines": runtime.NumGoroutine(),
			"uptime_sec": time.Since(s.started).Seconds(),
		},
	}
	for i, n := range names {
		status[n] = fns[i]()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(status); err != nil {
		Errorf("telemetry: /statusz encode: %v", err)
	}
}
