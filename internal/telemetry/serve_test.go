package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	prev := Enabled()
	t.Cleanup(func() { SetEnabled(prev) })

	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !Enabled() {
		t.Error("Serve did not enable collection")
	}
	base := "http://" + srv.Addr()

	code, ctype, body := get(t, base+"/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	TransportBytesSent.Add(123)
	code, ctype, body = get(t, base+"/metrics")
	if code != 200 {
		t.Errorf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "avfi_transport_bytes_sent_total") {
		t.Errorf("/metrics missing transport counter:\n%s", body)
	}
	if err := LintPrometheus([]byte(body)); err != nil {
		t.Errorf("/metrics exposition malformed: %v", err)
	}

	srv.SetStatus("campaign", func() any {
		return map[string]any{"episodes_done": 7}
	})
	code, ctype, body = get(t, base+"/statusz")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/statusz = %d %q", code, ctype)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if _, ok := status["process"]; !ok {
		t.Error("/statusz missing process section")
	}
	camp, ok := status["campaign"].(map[string]any)
	if !ok || camp["episodes_done"] != float64(7) {
		t.Errorf("/statusz campaign section = %#v", status["campaign"])
	}
	srv.SetStatus("campaign", nil)
	_, _, body = get(t, base+"/statusz")
	if strings.Contains(body, "episodes_done") {
		t.Error("detached status section still served")
	}

	code, _, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
