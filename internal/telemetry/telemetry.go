// Package telemetry is the fleet's flight recorder: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms), a Prometheus text exposition writer, a status/pprof HTTP
// endpoint, and a small leveled logger. Every AVFI process — orchestrator
// or standalone simulator worker — carries the same instruments, so a
// distributed campaign is inspectable per process while it runs.
//
// Collection is off by default and enabled with SetEnabled (or
// implicitly by Serve): a disabled instrument costs one atomic load and
// a predicted branch, and never allocates, which keeps the frame hot
// path at zero allocations whether telemetry is on or off.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every instrument write. Package-global rather than
// per-registry: instruments are reached from hot paths that cannot
// afford a pointer chase, and a process either observes itself or
// doesn't.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide. Enable
// before the workload starts; flipping mid-run leaves gauges that pair
// increments with decrements (in-flight counts) skewed.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on. Callers with
// multi-step observations (phase spans needing timestamps) check it
// once up front instead of paying for time.Now on every message.
func Enabled() bool { return enabled.Load() }

// A Counter is a monotonically increasing count. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a programming error; they wrap).
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is an instantaneous signed value (queue depths, in-flight
// session counts). Safe for concurrent use, allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if enabled.Load() {
		g.v.Store(n)
	}
}

// Add moves the value by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if enabled.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed buckets chosen at
// registration. Semantics mirror stats.Histogram: NaN observations are
// skipped and out-of-range values clamp into the end buckets (the last
// bucket is unbounded, so only the low end truly clamps). Buckets hold
// atomic counts and the sum is a CAS loop over float64 bits, so a
// snapshot taken during writes is internally consistent: the count is
// derived from the bucket counts, never from a separately raced total.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent view of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending; final +Inf bucket implied
	Counts []uint64  // len(Bounds)+1: per-bucket (non-cumulative) counts
	Sum    float64
	Total  uint64
}

// Snapshot copies out bucket counts, sum, and total. Total is the sum
// of bucket counts, so it can never disagree with them.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Total += n
	}
	return s
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGaugeFunc, kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered time series: a metric family name plus an
// optional fixed label set.
type series struct {
	family string
	labels string // rendered `k="v",...` without braces; "" if unlabeled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the series sharing a metric name for exposition.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// A Registry owns a set of metric families. Registration is
// collision-checked and panics on misuse (duplicate series, kind
// mismatch within a family, invalid names): metric registration is
// centralized in this package at init time, so a collision is a build
// bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	seen     map[string]bool // family name + rendered labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}, seen: map[string]bool{}}
}

// Default is the process-wide registry every AVFI instrument registers
// into; Serve exposes it when handed a nil registry.
var Default = NewRegistry()

// validName enforces the Prometheus metric/label name charset:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels turns alternating key, value pairs into the canonical
// `k="v",...` form, keys sorted so equivalent label sets collide.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := ""
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return out
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// register adds a series, creating its family on first sight.
func (r *Registry) register(name, help string, kind metricKind, s *series, labels []string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.family = name
	s.kind = kind
	s.labels = renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + s.labels + "}"
	if r.seen[key] {
		panic(fmt.Sprintf("telemetry: duplicate metric registration %s", key))
	}
	r.seen[key] = true
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series. Labels are
// alternating key, value pairs fixed at registration.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{counter: c}, labels)
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{gauge: g}, labels)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGaugeFunc, &series{fn: fn}, labels)
}

// Histogram registers and returns a histogram series with the given
// ascending bucket upper bounds (a final +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, help, kindHistogram, &series{hist: h}, labels)
	return h
}

// Names returns every registered series as "family{labels}" (braces
// omitted when unlabeled), sorted — the stable surface the golden-name
// test pins so renames are deliberate.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, f := range r.families {
		for _, s := range f.series {
			if s.labels == "" {
				out = append(out, f.name)
			} else {
				out = append(out, f.name+"{"+s.labels+"}")
			}
		}
	}
	sort.Strings(out)
	return out
}

// LatencyBuckets is the default span histogram layout: 100µs to 60s,
// roughly exponential, matching the spread between a pipe-transport
// episode phase and a pathological remote stall.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the default layout for small cardinalities: writev
// batch sizes, open-batch coalescing.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
