// A small leveled logger: quiet by default (warnings and errors only),
// raised to info/debug by cmd/avfi's -v. One logger per process keeps
// diagnostics — engine replacements, accept retries, slow episodes —
// on a single stream with a single format, instead of ad-hoc prints
// scattered through internal packages.
package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. The zero value is LevelDebug; the
// package default is LevelWarn.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return "OFF"
}

var (
	logLevel atomic.Int32 // holds a Level; default set in init
	logMu    sync.Mutex
	logOut   io.Writer = os.Stderr
)

func init() { logLevel.Store(int32(LevelWarn)) }

// SetLogLevel sets the minimum severity that is written.
func SetLogLevel(l Level) { logLevel.Store(int32(l)) }

// LogLevel returns the current minimum severity.
func LogLevel() Level { return Level(logLevel.Load()) }

// SetLogOutput redirects log output (os.Stderr by default). A nil w
// restores stderr.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	logOut = w
}

func logf(l Level, format string, args ...any) {
	if l < Level(logLevel.Load()) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(logOut, "%s %-5s avfi: %s\n", ts, l, msg)
}

// Debugf logs at debug severity (hidden unless -v -v territory).
func Debugf(format string, args ...any) { logf(LevelDebug, format, args...) }

// Infof logs at info severity (shown with cmd/avfi -v).
func Infof(format string, args ...any) { logf(LevelInfo, format, args...) }

// Warnf logs at warn severity (shown by default).
func Warnf(format string, args ...any) { logf(LevelWarn, format, args...) }

// Errorf logs at error severity (shown by default).
func Errorf(format string, args ...any) { logf(LevelError, format, args...) }
