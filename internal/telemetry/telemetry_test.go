package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// withEnabled flips collection on for one test and restores the prior
// state afterward, so tests compose regardless of order.
func withEnabled(t *testing.T, on bool) {
	t.Helper()
	prev := Enabled()
	SetEnabled(on)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterGauge(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestDisabledInstrumentsAreInert(t *testing.T) {
	withEnabled(t, false)
	r := NewRegistry()
	c := r.Counter("test_off_total", "off")
	g := r.Gauge("test_off_depth", "off")
	h := r.Histogram("test_off_seconds", "off", []float64{1})
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(9)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Total != 0 {
		t.Error("disabled instruments recorded values")
	}
}

// TestHistogramSemantics pins the stats.Histogram-compatible contract:
// NaN skipped, low outliers clamp into the first bucket, high outliers
// land in the unbounded final bucket, and Total always equals the sum
// of bucket counts.
func TestHistogramSemantics(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{math.NaN(), -5, 0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: le=1 gets -5 (clamped), 0.5, 1; le=2 gets 1.5; le=4
	// gets 3; +Inf gets 100. NaN is skipped.
	want := []uint64{3, 1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Total != 6 {
		t.Errorf("total = %d, want 6", s.Total)
	}
	if got := s.Sum; got != -5+0.5+1+1.5+3+100 {
		t.Errorf("sum = %v", got)
	}
}

func TestHistogramConcurrentSnapshotConsistent(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "latency", LatencyBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(seed * float64(i%100))
			}
		}(0.001 * float64(w+1))
	}
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		var sum uint64
		for _, n := range s.Counts {
			sum += n
		}
		if sum != s.Total {
			t.Fatalf("snapshot total %d != bucket sum %d", s.Total, sum)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrationCollisionsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "dup")
	mustPanic("duplicate series", func() { r.Counter("test_dup_total", "dup") })
	mustPanic("kind mismatch", func() { r.Gauge("test_dup_total", "dup", "k", "v") })
	mustPanic("invalid name", func() { r.Counter("bad-name", "x") })
	mustPanic("invalid label", func() { r.Counter("test_l_total", "x", "bad-label", "v") })
	mustPanic("odd labels", func() { r.Counter("test_o_total", "x", "k") })
	mustPanic("no buckets", func() { r.Histogram("test_h_seconds", "x", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("test_h2_seconds", "x", []float64{2, 1}) })
	// Same family, different labels: allowed, not a collision.
	r.Counter("test_kind_total", "k", "kind", "a")
	r.Counter("test_kind_total", "k", "kind", "b")
}

func TestWritePrometheusAndLint(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	a := r.Counter("test_frames_total", "frames", "kind", "delta")
	b := r.Counter("test_frames_total", "frames", "kind", "key")
	g := r.Gauge("test_in_flight", "in flight")
	r.GaugeFunc("test_tuned", "computed", func() float64 { return 2.5 })
	h := r.Histogram("test_span_seconds", "span", []float64{0.1, 1}, "phase", "open")
	a.Add(3)
	b.Inc()
	g.Set(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_frames_total counter\n",
		`test_frames_total{kind="delta"} 3`,
		`test_frames_total{kind="key"} 1`,
		"test_in_flight -2",
		"test_tuned 2.5",
		`test_span_seconds_bucket{phase="open",le="0.1"} 1`,
		`test_span_seconds_bucket{phase="open",le="1"} 2`,
		`test_span_seconds_bucket{phase="open",le="+Inf"} 3`,
		`test_span_seconds_sum{phase="open"} 9.55`,
		`test_span_seconds_count{phase="open"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE appear once per family even with multiple series.
	if n := strings.Count(out, "# TYPE test_frames_total"); n != 1 {
		t.Errorf("TYPE emitted %d times for one family", n)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Errorf("lint rejected our own exposition: %v", err)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "orphan_metric 3\n",
		"bad value":        "# TYPE m counter\nm hello\n",
		"bad name":         "# TYPE m counter\n2m 1\n",
		"unquoted label":   "# TYPE m counter\nm{k=v} 1\n",
		"bad comment":      "# NOPE m counter\n",
		"count != +Inf":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"duplicate TYPE":   "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"unbalanced brace": "# TYPE m counter\nm{k=\"v\" 1\n",
	}
	for name, body := range cases {
		if err := LintPrometheus([]byte(body)); err == nil {
			t.Errorf("lint accepted %s:\n%s", name, body)
		}
	}
	good := "# HELP m things\n# TYPE m counter\nm{k=\"v\"} 1\nm 2 1700000000\n"
	if err := LintPrometheus([]byte(good)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

func TestLogLevels(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	t.Cleanup(func() { SetLogOutput(nil) })
	prev := LogLevel()
	t.Cleanup(func() { SetLogLevel(prev) })

	SetLogLevel(LevelWarn)
	Debugf("hidden %d", 1)
	Infof("hidden %d", 2)
	Warnf("visible %d", 3)
	Errorf("visible %d", 4)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("quiet level leaked info/debug lines:\n%s", out)
	}
	if !strings.Contains(out, "WARN  avfi: visible 3") || !strings.Contains(out, "ERROR avfi: visible 4") {
		t.Errorf("warn/error lines missing:\n%s", out)
	}

	buf.Reset()
	SetLogLevel(LevelInfo)
	Infof("now shown")
	if !strings.Contains(buf.String(), "INFO  avfi: now shown") {
		t.Errorf("-v level did not show info:\n%s", buf.String())
	}

	buf.Reset()
	SetLogLevel(LevelOff)
	Errorf("silenced")
	if buf.Len() != 0 {
		t.Errorf("LevelOff still wrote: %s", buf.String())
	}
}
