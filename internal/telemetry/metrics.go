// Central registration of every AVFI instrument. Names live here and
// nowhere else, so the exported metric set is stable, collision-checked
// at init, and pinned by a golden test. Naming scheme:
// avfi_<subsystem>_<quantity>_<unit>, counters suffixed _total,
// histogram units in seconds.
package telemetry

// Transport: the byte pipe under every engine connection.
var (
	TransportBytesSent = Default.Counter("avfi_transport_bytes_sent_total",
		"Bytes written to transport connections, including frame headers.")
	TransportBytesRecv = Default.Counter("avfi_transport_bytes_recv_total",
		"Bytes read from transport connections, including frame headers.")
	TransportMsgsSent = Default.Counter("avfi_transport_msgs_sent_total",
		"Messages written to transport connections.")
	TransportMsgsRecv = Default.Counter("avfi_transport_msgs_recv_total",
		"Messages read from transport connections.")
	TransportWritevBatch = Default.Histogram("avfi_transport_writev_batch_size",
		"Messages coalesced per vectored write (1 = unbatched send).", SizeBuckets)
	TransportBufGets = Default.Counter("avfi_transport_buf_gets_total",
		"Receive-buffer requests served by the transport pool.")
	TransportBufHits = Default.Counter("avfi_transport_buf_hits_total",
		"Receive-buffer requests satisfied by a recycled buffer of sufficient capacity.")
	TransportBufRecycles = Default.Counter("avfi_transport_buf_recycles_total",
		"Buffers returned to the transport pool via Recycle.")
)

// Communication-fault injection: the transport-layer wire fault (Link).
var (
	CommLinkHeld = Default.Counter("avfi_commfault_msgs_held_total",
		"Messages parked in flight by comm-fault transport links.")
	CommLinkFlushed = Default.Counter("avfi_commfault_msgs_flushed_total",
		"Held messages released to the wire by comm-fault transport links.")
)

// Frame codec: delta negotiation and wire cost. The compression ratio
// is derived at scrape time as encoded bytes over raw pixel bytes.
var (
	FramesEncodedKey = Default.Counter("avfi_frames_encoded_total",
		"Sensor frames encoded, by wire kind.", "kind", "key")
	FramesEncodedDelta = Default.Counter("avfi_frames_encoded_total",
		"Sensor frames encoded, by wire kind.", "kind", "delta")
	FramesDecodedKey = Default.Counter("avfi_frames_decoded_total",
		"Sensor frames decoded, by wire kind.", "kind", "key")
	FramesDecodedDelta = Default.Counter("avfi_frames_decoded_total",
		"Sensor frames decoded, by wire kind.", "kind", "delta")
	FramesEncodedBytes = Default.Counter("avfi_frames_encoded_bytes_total",
		"Encoded frame bytes produced (envelope included).")
	FramesRawBytes = Default.Counter("avfi_frames_raw_bytes_total",
		"Raw pixel payload bytes covered by encoded frames (compression denominator).")
)

// Simulator client/server: session lifecycle on both ends of the wire.
var (
	ClientSessionsOpened = Default.Counter("avfi_client_sessions_opened_total",
		"Episode sessions opened by simulator clients.")
	ClientSessionsCompleted = Default.Counter("avfi_client_sessions_completed_total",
		"Episode sessions completed by simulator clients.")
	ClientSessionsFailed = Default.Counter("avfi_client_sessions_failed_total",
		"Episode sessions that died under simulator clients (server error or lost connection).")
	ClientInFlight = Default.Gauge("avfi_client_sessions_in_flight",
		"Episode sessions currently multiplexed on client connections.")
	ClientOpenBatch = Default.Histogram("avfi_client_open_batch_size",
		"Episode opens coalesced per batched OpenEpisode flush.", SizeBuckets)
	ServerSessionsOpened = Default.Counter("avfi_server_sessions_opened_total",
		"Episode sessions opened by simulator servers.")
	ServerSessionsCompleted = Default.Counter("avfi_server_sessions_completed_total",
		"Episode sessions run to completion by simulator servers.")
	ServerSessionsFailed = Default.Counter("avfi_server_sessions_failed_total",
		"Episode sessions that failed on simulator servers.")
	ServerInFlight = Default.Gauge("avfi_server_sessions_in_flight",
		"Episode sessions currently live on simulator servers.")
	WorkerConns = Default.Counter("avfi_worker_conns_total",
		"Connections accepted by standalone simulator workers.")
	WorkerActiveConns = Default.Gauge("avfi_worker_conns_active",
		"Connections currently served by standalone simulator workers.")
)

// Campaign: per-phase episode spans (queue-wait -> dispatch -> open ->
// frames -> result -> sink), episode totals, and fleet health.
var (
	PhaseQueueWait = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "queue_wait")
	PhaseDispatch = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "dispatch")
	PhaseOpen = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "open")
	PhaseFrames = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "frames")
	PhaseResult = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "result")
	PhaseSink = Default.Histogram("avfi_campaign_phase_seconds",
		"Episode phase latency.", LatencyBuckets, "phase", "sink")
	EpisodeSeconds = Default.Histogram("avfi_campaign_episode_seconds",
		"Wall-clock duration of completed episodes (dispatch through result).", LatencyBuckets)
	CampaignEpisodes = Default.Counter("avfi_campaign_episodes_total",
		"Episodes completed by campaign runners.")
	CampaignRetries = Default.Counter("avfi_campaign_retries_total",
		"Episode attempts retried after a transient engine failure.")
	CampaignReplacements = Default.Counter("avfi_campaign_engine_replacements_total",
		"Dead pool engines replaced mid-campaign.")
	CampaignSinkQueue = Default.Gauge("avfi_campaign_sink_queue_depth",
		"Episode records enqueued to sink shards and not yet drained.")
)

// Campaign service: the long-lived control plane — worker registry churn
// and campaign lifecycle. Per-campaign episode counters are registered
// dynamically at submit time (avfi_service_campaign_episodes_total with a
// campaign label), so they are not listed here.
var (
	ServiceWorkers = Default.Gauge("avfi_service_workers",
		"Workers currently registered with the campaign service.")
	ServiceWorkersUp = Default.Gauge("avfi_service_workers_up",
		"Registered workers currently serving at least one live engine slot.")
	ServiceWorkerDials = Default.Counter("avfi_service_worker_dials_total",
		"Worker dial attempts by the campaign service (announce-time and periodic re-dials).")
	ServiceWorkerDialFailures = Default.Counter("avfi_service_worker_dial_failures_total",
		"Worker dial attempts that failed (connection refused, world mismatch, timeout).")
	ServiceCampaignsSubmitted = Default.Counter("avfi_service_campaigns_submitted_total",
		"Campaigns accepted by the service's submit API.")
	ServiceCampaignsActive = Default.Gauge("avfi_service_campaigns_active",
		"Submitted campaigns currently running.")
	ServiceCampaignsDone = Default.Counter("avfi_service_campaigns_finished_total",
		"Campaigns finished, by terminal state.", "state", "done")
	ServiceCampaignsFailed = Default.Counter("avfi_service_campaigns_finished_total",
		"Campaigns finished, by terminal state.", "state", "failed")
)
