// Prometheus text exposition (format 0.0.4), hand-rolled: one HELP and
// TYPE line per family, then each series, with histograms expanded to
// cumulative le-buckets plus _sum and _count. LintPrometheus is the
// inverse-direction checker CI points at a live scrape.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in registration
// order. Values are read through the same atomics the instruments
// write, so a scrape during a run is a consistent point-in-time view
// per series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				writeSample(bw, f.name, s.labels, "", float64(s.counter.Value()))
			case kindGauge:
				writeSample(bw, f.name, s.labels, "", float64(s.gauge.Value()))
			case kindGaugeFunc:
				writeSample(bw, f.name, s.labels, "", s.fn())
			case kindHistogram:
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					le := formatFloat(bound)
					writeSample(bw, f.name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), "", float64(cum))
				}
				cum += snap.Counts[len(snap.Bounds)]
				writeSample(bw, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), "", float64(cum))
				writeSample(bw, f.name+"_sum", s.labels, "", snap.Sum)
				writeSample(bw, f.name+"_count", s.labels, "", float64(cum))
			}
		}
	}
	return bw.Flush()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels, suffix string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	} else {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	}
}

// formatFloat renders integers without an exponent or trailing zeros so
// counters read naturally, and everything else in shortest-form 'g'.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LintPrometheus validates a text exposition body: every line is a
// well-formed comment or sample, every sample's family has a TYPE
// declared before it, metric and label names are legal, values parse,
// and histogram _count equals the +Inf bucket. It is deliberately a
// structural linter, not a full parser — enough for CI to fail on a
// malformed scrape instead of shipping one to a real Prometheus.
func LintPrometheus(body []byte) error {
	typed := map[string]string{} // family -> type
	infBucket := map[string]float64{}
	counts := map[string]float64{}
	lineNo := 0
	for _, line := range strings.Split(string(body), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		if fam != name { // histogram component
			key := fam + "{" + stripLe(labels) + "}"
			switch {
			case strings.HasSuffix(name, "_bucket") && strings.Contains(labels, `le="+Inf"`):
				infBucket[key] = value
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	for key, n := range counts {
		if inf, ok := infBucket[key]; !ok {
			return fmt.Errorf("histogram %s has a _count but no +Inf bucket", key)
		} else if inf != n {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, n, inf)
		}
	}
	return nil
}

// stripLe removes the le label so bucket and count lines key together.
func stripLe(labels string) string {
	var kept []string
	for _, part := range splitLabels(labels) {
		if !strings.HasPrefix(part, "le=") {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// parseSample splits `name{labels} value` or `name value`.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		for _, part := range splitLabels(labels) {
			eq := strings.IndexByte(part, '=')
			if eq < 0 || !validName(part[:eq]) {
				return "", "", 0, fmt.Errorf("malformed label %q", part)
			}
			v := part[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", 0, fmt.Errorf("unquoted label value %q", part)
			}
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, value, nil
}
