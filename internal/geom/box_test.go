package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABBContains(t *testing.T) {
	b := NewAABB(V(2, 3), V(0, 1)) // corners given out of order
	if b.Min != V(0, 1) || b.Max != V(2, 3) {
		t.Fatalf("NewAABB normalization failed: %+v", b)
	}
	if !b.Contains(V(1, 2)) {
		t.Error("interior point not contained")
	}
	if !b.Contains(V(0, 1)) {
		t.Error("boundary point not contained")
	}
	if b.Contains(V(3, 2)) {
		t.Error("exterior point contained")
	}
}

func TestAABBIntersects(t *testing.T) {
	a := NewAABB(V(0, 0), V(2, 2))
	if !a.Intersects(NewAABB(V(1, 1), V(3, 3))) {
		t.Error("overlapping boxes reported disjoint")
	}
	if a.Intersects(NewAABB(V(3, 3), V(4, 4))) {
		t.Error("disjoint boxes reported overlapping")
	}
	if !a.Intersects(NewAABB(V(2, 0), V(3, 1))) {
		t.Error("edge-touching boxes reported disjoint")
	}
}

func TestAABBUnionExpandCenter(t *testing.T) {
	a := NewAABB(V(0, 0), V(1, 1))
	b := NewAABB(V(2, 2), V(3, 3))
	u := a.Union(b)
	if u.Min != V(0, 0) || u.Max != V(3, 3) {
		t.Errorf("Union = %+v", u)
	}
	e := a.Expand(1)
	if e.Min != V(-1, -1) || e.Max != V(2, 2) {
		t.Errorf("Expand = %+v", e)
	}
	if c := u.Center(); c != V(1.5, 1.5) {
		t.Errorf("Center = %v", c)
	}
	if s := a.Size(); s != V(1, 1) {
		t.Errorf("Size = %v", s)
	}
}

func TestOBBCorners(t *testing.T) {
	o := NewOBB(P(0, 0, 0), 4, 2) // axis-aligned
	want := map[Vec]bool{
		V(2, 1): true, V(-2, 1): true, V(-2, -1): true, V(2, -1): true,
	}
	for _, c := range o.Corners() {
		found := false
		for w := range want {
			if c.Eq(w, 1e-9) {
				found = true
				delete(want, w)
				break
			}
		}
		if !found {
			t.Errorf("unexpected corner %v", c)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing corners: %v", want)
	}
}

func TestOBBContains(t *testing.T) {
	o := NewOBB(P(10, 10, math.Pi/4), 4, 2)
	if !o.Contains(V(10, 10)) {
		t.Error("center not contained")
	}
	// Point 1.9m along the heading is inside (half length 2).
	p := V(10, 10).Add(FromAngle(math.Pi / 4).Scale(1.9))
	if !o.Contains(p) {
		t.Error("point along axis not contained")
	}
	// Point 2.1m along the heading is outside.
	p = V(10, 10).Add(FromAngle(math.Pi / 4).Scale(2.1))
	if o.Contains(p) {
		t.Error("point beyond half-length contained")
	}
}

func TestOBBIntersectsSAT(t *testing.T) {
	a := NewOBB(P(0, 0, 0), 4, 2)
	cases := []struct {
		name string
		b    OBB
		want bool
	}{
		{"overlapping parallel", NewOBB(P(3, 0, 0), 4, 2), true},
		{"disjoint parallel", NewOBB(P(5, 0, 0), 4, 2), false},
		{"rotated overlapping", NewOBB(P(2.5, 0, math.Pi/4), 4, 2), true},
		{"rotated disjoint corner gap", NewOBB(P(3.5, 2.4, math.Pi/4), 2, 1), false},
		{"perpendicular crossing", NewOBB(P(0, 0, math.Pi/2), 4, 2), true},
		{"far away", NewOBB(P(100, 100, 1), 4, 2), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		// Symmetry.
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s: reverse Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOBBIntersectsCircle(t *testing.T) {
	o := NewOBB(P(0, 0, 0), 4, 2)
	if !o.IntersectsCircle(V(0, 0), 0.1) {
		t.Error("circle at center not intersecting")
	}
	if !o.IntersectsCircle(V(2.5, 0), 0.6) {
		t.Error("circle touching front edge not intersecting")
	}
	if o.IntersectsCircle(V(2.5, 0), 0.4) {
		t.Error("circle short of front edge intersecting")
	}
	// Corner case: circle near corner.
	if !o.IntersectsCircle(V(2.3, 1.3), 0.5) {
		t.Error("circle overlapping corner not intersecting")
	}
	if o.IntersectsCircle(V(2.5, 1.5), 0.5) {
		t.Error("circle diagonal from corner intersecting")
	}
}

func TestOBBAABBContainsCorners(t *testing.T) {
	err := quick.Check(func(x, y, th, l, w float64) bool {
		o := NewOBB(
			P(math.Mod(clampFinite(x), 100), math.Mod(clampFinite(y), 100), math.Mod(clampFinite(th), 2*math.Pi)),
			1+math.Abs(math.Mod(clampFinite(l), 10)),
			1+math.Abs(math.Mod(clampFinite(w), 10)),
		)
		b := o.AABB()
		for _, c := range o.Corners() {
			if !b.Expand(1e-9).Contains(c) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestOBBSelfIntersects(t *testing.T) {
	err := quick.Check(func(x, y, th float64) bool {
		o := NewOBB(P(math.Mod(clampFinite(x), 100), math.Mod(clampFinite(y), 100), math.Mod(clampFinite(th), 2*math.Pi)), 4, 2)
		return o.Intersects(o)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
