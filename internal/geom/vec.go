// Package geom provides the 2D geometric primitives used by the AVFI world
// simulator: vectors, poses, segments, rays, axis-aligned and oriented
// bounding boxes, and the projection/intersection queries the physics and
// rendering engines are built on.
//
// The simulator world is two-dimensional (a top-down urban plane); the
// renderer lifts it into a pseudo-3D camera view. All angles are radians,
// all distances meters, following the conventions of the CARLA simulator the
// paper builds on.
package geom

import (
	"fmt"
	"math"
)

// Vec is a 2D vector (or point) in world coordinates, in meters.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the 2D cross product (z-component of the 3D cross product).
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v; cheaper than Len when only
// comparisons are needed.
func (v Vec) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// DistSq returns the squared distance between v and w.
func (v Vec) DistSq(w Vec) float64 { return v.Sub(w).LenSq() }

// Norm returns the unit vector in the direction of v. The zero vector
// normalizes to the zero vector rather than NaN so downstream control code
// never propagates NaNs from degenerate geometry.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// Angle returns the heading of v in radians in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counterclockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Perp returns v rotated 90 degrees counterclockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Lerp linearly interpolates from v to w by t in [0, 1].
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Eq reports whether v and w are within eps of each other componentwise.
func (v Vec) Eq(w Vec, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps
}

// IsFinite reports whether both components are finite (no NaN/Inf). Fault
// injectors can legitimately produce non-finite values; physics clamps them
// at the boundary and this predicate is the guard.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// FromAngle returns the unit vector with heading theta.
func FromAngle(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{c, s}
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WrapAngle normalizes theta to (-pi, pi].
func WrapAngle(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the signed smallest rotation from a to b, in (-pi, pi].
func AngleDiff(a, b float64) float64 { return WrapAngle(b - a) }
