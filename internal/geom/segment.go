package geom

import "math"

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Vec
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Len returns the segment's length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction from A to B.
func (s Segment) Dir() Vec { return s.B.Sub(s.A).Norm() }

// At returns the point at parameter t in [0, 1] along the segment.
func (s Segment) At(t float64) Vec { return s.A.Lerp(s.B, t) }

// Project returns the parameter t of the closest point on the (clamped)
// segment to p, and the closest point itself.
func (s Segment) Project(p Vec) (t float64, closest Vec) {
	d := s.B.Sub(s.A)
	l2 := d.LenSq()
	if l2 == 0 {
		return 0, s.A
	}
	t = Clamp(p.Sub(s.A).Dot(d)/l2, 0, 1)
	return t, s.At(t)
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Vec) float64 {
	_, c := s.Project(p)
	return c.Dist(p)
}

// SideOf returns +1 if p is left of the directed segment, -1 if right,
// 0 if (numerically) collinear.
func (s Segment) SideOf(p Vec) int {
	c := s.B.Sub(s.A).Cross(p.Sub(s.A))
	switch {
	case c > 1e-12:
		return 1
	case c < -1e-12:
		return -1
	default:
		return 0
	}
}

// Intersect reports whether segments s and o properly intersect, and if so
// the intersection point. Collinear overlap is reported as no intersection;
// the physics engine treats touching geometry with OBB tests instead.
func (s Segment) Intersect(o Segment) (Vec, bool) {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	denom := r.Cross(q)
	if math.Abs(denom) < 1e-12 {
		return Vec{}, false
	}
	d := o.A.Sub(s.A)
	t := d.Cross(q) / denom
	u := d.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Vec{}, false
	}
	return s.A.Add(r.Scale(t)), true
}

// Ray is a half-infinite line from Origin along unit Dir. LIDAR beams and
// renderer visibility queries are rays.
type Ray struct {
	Origin Vec
	Dir    Vec // unit
}

// NewRay constructs a ray, normalizing dir.
func NewRay(origin, dir Vec) Ray { return Ray{Origin: origin, Dir: dir.Norm()} }

// At returns the point t meters along the ray.
func (r Ray) At(t float64) Vec { return r.Origin.Add(r.Dir.Scale(t)) }

// IntersectSegment returns the ray parameter t >= 0 where the ray crosses
// segment s, if it does.
func (r Ray) IntersectSegment(s Segment) (t float64, ok bool) {
	d := s.B.Sub(s.A)
	denom := r.Dir.Cross(d)
	if math.Abs(denom) < 1e-12 {
		return 0, false
	}
	ao := s.A.Sub(r.Origin)
	t = ao.Cross(d) / denom
	u := ao.Cross(r.Dir) / denom
	if t < 0 || u < 0 || u > 1 {
		return 0, false
	}
	return t, true
}
