package geom

import "math"

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec
}

// NewAABB returns the AABB spanning the two corners in any order.
func NewAABB(a, b Vec) AABB {
	return AABB{
		Min: Vec{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Vec{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside (or on the boundary of) the box.
func (b AABB) Contains(p Vec) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Intersects reports whether the two boxes overlap.
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y
}

// Center returns the box center.
func (b AABB) Center() Vec { return b.Min.Lerp(b.Max, 0.5) }

// Size returns the box dimensions.
func (b AABB) Size() Vec { return b.Max.Sub(b.Min) }

// Expand returns the box grown by m meters on every side.
func (b AABB) Expand(m float64) AABB {
	return AABB{Min: b.Min.Sub(Vec{m, m}), Max: b.Max.Add(Vec{m, m})}
}

// Union returns the smallest AABB containing both boxes.
func (b AABB) Union(o AABB) AABB {
	return AABB{
		Min: Vec{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y)},
		Max: Vec{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y)},
	}
}

// OBB is an oriented bounding box: a rectangle of half-extents HalfLen
// (along heading) and HalfWid (across), centered and rotated by Pose.
// Vehicles and pedestrians are OBBs for collision purposes.
type OBB struct {
	Pose    Pose
	HalfLen float64
	HalfWid float64
}

// NewOBB constructs an OBB from a center pose and full dimensions.
func NewOBB(pose Pose, length, width float64) OBB {
	return OBB{Pose: pose, HalfLen: length / 2, HalfWid: width / 2}
}

// Corners returns the four corners in counterclockwise order.
func (o OBB) Corners() [4]Vec {
	f := o.Pose.Forward().Scale(o.HalfLen)
	r := o.Pose.Forward().Perp().Scale(o.HalfWid)
	c := o.Pose.Pos
	return [4]Vec{
		c.Add(f).Add(r),
		c.Sub(f).Add(r),
		c.Sub(f).Sub(r),
		c.Add(f).Sub(r),
	}
}

// AABB returns the axis-aligned bound of the OBB.
func (o OBB) AABB() AABB {
	cs := o.Corners()
	b := NewAABB(cs[0], cs[1])
	for _, c := range cs[2:] {
		b = b.Union(NewAABB(c, c))
	}
	return b
}

// Contains reports whether p is inside the OBB.
func (o OBB) Contains(p Vec) bool {
	l := o.Pose.ToLocal(p)
	return math.Abs(l.X) <= o.HalfLen && math.Abs(l.Y) <= o.HalfWid
}

// Intersects reports whether two OBBs overlap, by the separating axis
// theorem over the four candidate axes.
func (o OBB) Intersects(q OBB) bool {
	axes := [4]Vec{
		o.Pose.Forward(),
		o.Pose.Forward().Perp(),
		q.Pose.Forward(),
		q.Pose.Forward().Perp(),
	}
	oc := o.Corners()
	qc := q.Corners()
	for _, axis := range axes {
		oMin, oMax := projectCorners(oc, axis)
		qMin, qMax := projectCorners(qc, axis)
		if oMax < qMin || qMax < oMin {
			return false
		}
	}
	return true
}

// IntersectsCircle reports whether the OBB overlaps a circle (pedestrians
// are collision circles in some call sites).
func (o OBB) IntersectsCircle(center Vec, radius float64) bool {
	l := o.Pose.ToLocal(center)
	dx := math.Max(math.Abs(l.X)-o.HalfLen, 0)
	dy := math.Max(math.Abs(l.Y)-o.HalfWid, 0)
	return dx*dx+dy*dy <= radius*radius
}

// Edges returns the four boundary segments in counterclockwise order.
func (o OBB) Edges() [4]Segment {
	c := o.Corners()
	return [4]Segment{
		{c[0], c[1]}, {c[1], c[2]}, {c[2], c[3]}, {c[3], c[0]},
	}
}

func projectCorners(cs [4]Vec, axis Vec) (lo, hi float64) {
	lo = cs[0].Dot(axis)
	hi = lo
	for _, c := range cs[1:] {
		d := c.Dot(axis)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}
