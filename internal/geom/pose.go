package geom

import "fmt"

// Pose is a position plus heading: the configuration of a vehicle,
// pedestrian, or sensor in the world plane.
type Pose struct {
	Pos     Vec
	Heading float64 // radians, world frame, 0 = +X
}

// P is shorthand for constructing a Pose.
func P(x, y, heading float64) Pose {
	return Pose{Pos: Vec{X: x, Y: y}, Heading: heading}
}

// Forward returns the unit vector the pose faces along.
func (p Pose) Forward() Vec { return FromAngle(p.Heading) }

// Right returns the unit vector to the pose's right-hand side.
func (p Pose) Right() Vec { return FromAngle(p.Heading).Perp().Scale(-1) }

// ToLocal transforms a world-frame point into the pose's local frame,
// where +X is forward and +Y is left.
func (p Pose) ToLocal(world Vec) Vec {
	return world.Sub(p.Pos).Rotate(-p.Heading)
}

// ToWorld transforms a local-frame point (X forward, Y left) into the
// world frame.
func (p Pose) ToWorld(local Vec) Vec {
	return local.Rotate(p.Heading).Add(p.Pos)
}

// Advance returns the pose translated dist meters along its heading.
func (p Pose) Advance(dist float64) Pose {
	return Pose{Pos: p.Pos.Add(p.Forward().Scale(dist)), Heading: p.Heading}
}

// Turn returns the pose rotated in place by dTheta radians.
func (p Pose) Turn(dTheta float64) Pose {
	return Pose{Pos: p.Pos, Heading: WrapAngle(p.Heading + dTheta)}
}

// String implements fmt.Stringer.
func (p Pose) String() string {
	return fmt.Sprintf("pose{%s @ %.3frad}", p.Pos, p.Heading)
}
