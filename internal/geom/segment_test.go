package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentProject(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	cases := []struct {
		p        Vec
		wantT    float64
		wantDist float64
	}{
		{V(5, 3), 0.5, 3},
		{V(-2, 0), 0, 2},
		{V(12, 0), 1, 2},
		{V(0, 0), 0, 0},
	}
	for _, c := range cases {
		tt, closest := s.Project(c.p)
		if math.Abs(tt-c.wantT) > 1e-9 {
			t.Errorf("Project(%v) t = %v, want %v", c.p, tt, c.wantT)
		}
		if d := closest.Dist(c.p); math.Abs(d-c.wantDist) > 1e-9 {
			t.Errorf("Project(%v) dist = %v, want %v", c.p, d, c.wantDist)
		}
	}
}

func TestSegmentProjectDegenerate(t *testing.T) {
	s := Seg(V(1, 1), V(1, 1))
	tt, closest := s.Project(V(5, 5))
	if tt != 0 || closest != V(1, 1) {
		t.Errorf("degenerate Project = %v, %v", tt, closest)
	}
}

func TestSegmentSideOf(t *testing.T) {
	s := Seg(V(0, 0), V(1, 0))
	if got := s.SideOf(V(0.5, 1)); got != 1 {
		t.Errorf("left point side = %d, want 1", got)
	}
	if got := s.SideOf(V(0.5, -1)); got != -1 {
		t.Errorf("right point side = %d, want -1", got)
	}
	if got := s.SideOf(V(2, 0)); got != 0 {
		t.Errorf("collinear point side = %d, want 0", got)
	}
}

func TestSegmentIntersect(t *testing.T) {
	a := Seg(V(0, 0), V(2, 2))
	b := Seg(V(0, 2), V(2, 0))
	p, ok := a.Intersect(b)
	if !ok || !p.Eq(V(1, 1), 1e-9) {
		t.Errorf("Intersect = %v, %v; want (1,1), true", p, ok)
	}

	c := Seg(V(0, 3), V(2, 5))
	if _, ok := a.Intersect(c); ok {
		t.Error("parallel segments reported intersecting")
	}

	d := Seg(V(5, 0), V(5, 0.5)) // too short to reach
	if _, ok := a.Intersect(d); ok {
		t.Error("non-crossing segments reported intersecting")
	}
}

func TestRayIntersectSegment(t *testing.T) {
	r := NewRay(V(0, 0), V(1, 0))
	s := Seg(V(5, -1), V(5, 1))
	tt, ok := r.IntersectSegment(s)
	if !ok || math.Abs(tt-5) > 1e-9 {
		t.Errorf("ray hit = %v, %v; want 5, true", tt, ok)
	}

	// Behind the ray.
	s2 := Seg(V(-5, -1), V(-5, 1))
	if _, ok := r.IntersectSegment(s2); ok {
		t.Error("segment behind ray reported hit")
	}

	// Parallel.
	s3 := Seg(V(0, 1), V(10, 1))
	if _, ok := r.IntersectSegment(s3); ok {
		t.Error("parallel segment reported hit")
	}
}

func TestRayHitPointOnSegment(t *testing.T) {
	err := quick.Check(func(ox, oy, angle float64) bool {
		origin := V(math.Mod(clampFinite(ox), 50), math.Mod(clampFinite(oy), 50))
		th := math.Mod(clampFinite(angle), 2*math.Pi)
		r := NewRay(origin, FromAngle(th))
		s := Seg(V(100, -200), V(100, 200))
		tt, ok := r.IntersectSegment(s)
		if !ok {
			return true // may miss; fine
		}
		p := r.At(tt)
		// Hit point must lie on the segment's x = 100 line.
		return math.Abs(p.X-100) < 1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
