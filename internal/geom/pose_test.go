package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoseLocalWorldRoundTrip(t *testing.T) {
	err := quick.Check(func(px, py, heading, wx, wy float64) bool {
		p := P(clampFinite(px), clampFinite(py), math.Mod(clampFinite(heading), 2*math.Pi))
		w := V(clampFinite(wx), clampFinite(wy))
		back := p.ToWorld(p.ToLocal(w))
		return back.Eq(w, 1e-6*(1+w.Len()))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPoseForwardLocal(t *testing.T) {
	// A point one meter ahead of the pose must be local (1, 0).
	p := P(3, -2, math.Pi/3)
	ahead := p.Pos.Add(p.Forward())
	l := p.ToLocal(ahead)
	if !l.Eq(V(1, 0), 1e-9) {
		t.Errorf("local of ahead point = %v, want (1,0)", l)
	}
}

func TestPoseLeftIsPositiveY(t *testing.T) {
	p := P(0, 0, 0) // facing +X
	left := V(0, 1)
	l := p.ToLocal(left)
	if !l.Eq(V(0, 1), 1e-9) {
		t.Errorf("local of left point = %v, want (0,1)", l)
	}
	r := p.Right()
	if !r.Eq(V(0, -1), 1e-9) {
		t.Errorf("Right() = %v, want (0,-1)", r)
	}
}

func TestPoseAdvance(t *testing.T) {
	p := P(0, 0, math.Pi/2).Advance(2)
	if !p.Pos.Eq(V(0, 2), 1e-9) {
		t.Errorf("Advance = %v, want (0,2)", p.Pos)
	}
}

func TestPoseTurnWraps(t *testing.T) {
	p := P(0, 0, math.Pi-0.1).Turn(0.2)
	if math.Abs(p.Heading-(-math.Pi+0.1)) > 1e-9 {
		t.Errorf("Turn heading = %v, want %v", p.Heading, -math.Pi+0.1)
	}
}
