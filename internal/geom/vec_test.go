package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	v := V(3, 4)
	w := V(-1, 2)
	if got := v.Add(w); got != V(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := v.Sub(w); got != V(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := v.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := v.Cross(w); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.LenSq(); got != 25 {
		t.Errorf("LenSq = %v, want 25", got)
	}
}

func TestVecNormZero(t *testing.T) {
	if got := (Vec{}).Norm(); got != (Vec{}) {
		t.Errorf("zero vector Norm = %v, want zero", got)
	}
}

func TestVecNormUnitLength(t *testing.T) {
	err := quick.Check(func(x, y float64) bool {
		v := V(clampFinite(x), clampFinite(y))
		if v.Len() == 0 {
			return true
		}
		return math.Abs(v.Norm().Len()-1) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVecRotatePreservesLength(t *testing.T) {
	err := quick.Check(func(x, y, theta float64) bool {
		v := V(clampFinite(x), clampFinite(y))
		th := math.Mod(clampFinite(theta), 2*math.Pi)
		r := v.Rotate(th)
		return math.Abs(r.Len()-v.Len()) < 1e-6*(1+v.Len())
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVecRotateRoundTrip(t *testing.T) {
	err := quick.Check(func(x, y, theta float64) bool {
		v := V(clampFinite(x), clampFinite(y))
		th := math.Mod(clampFinite(theta), 2*math.Pi)
		back := v.Rotate(th).Rotate(-th)
		return back.Eq(v, 1e-6*(1+v.Len()))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVecAddCommutativeAssociative(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := V(clampFinite(ax), clampFinite(ay))
		b := V(clampFinite(bx), clampFinite(by))
		c := V(clampFinite(cx), clampFinite(cy))
		if a.Add(b) != b.Add(a) {
			return false
		}
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		return l.Eq(r, 1e-6)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVecPerpOrthogonal(t *testing.T) {
	err := quick.Check(func(x, y float64) bool {
		v := V(clampFinite(x), clampFinite(y))
		return v.Dot(v.Perp()) == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFromAngle(t *testing.T) {
	cases := []struct {
		theta float64
		want  Vec
	}{
		{0, V(1, 0)},
		{math.Pi / 2, V(0, 1)},
		{math.Pi, V(-1, 0)},
		{-math.Pi / 2, V(0, -1)},
	}
	for _, c := range cases {
		got := FromAngle(c.theta)
		if !got.Eq(c.want, 1e-12) {
			t.Errorf("FromAngle(%v) = %v, want %v", c.theta, got, c.want)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAngleRange(t *testing.T) {
	err := quick.Check(func(theta float64) bool {
		th := math.Mod(clampFinite(theta), 100)
		w := WrapAngle(th)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, 0.3); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AngleDiff = %v, want 0.2", got)
	}
	// Wrapping across the branch cut.
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AngleDiff across cut = %v, want 0.2", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0.5); got != V(5, 10) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

// clampFinite maps arbitrary quick-generated floats into a sane finite range
// so properties test real geometry, not float-overflow edge cases.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}
