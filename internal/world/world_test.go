package world

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
)

func testTown(t *testing.T, seed uint64) *Town {
	t.Helper()
	town, err := GenerateTown(DefaultTownConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return town
}

func TestGenerateTownValid(t *testing.T) {
	town := testTown(t, 1)
	if town.Net.NodeCount() != 16 {
		t.Errorf("node count = %d, want 16", town.Net.NodeCount())
	}
	if town.Net.EdgeCount() < 15 {
		t.Errorf("edge count = %d, want >= 15 (spanning tree)", town.Net.EdgeCount())
	}
	if err := town.Net.Validate(); err != nil {
		t.Errorf("network invalid: %v", err)
	}
	if len(town.Spawns) == 0 {
		t.Error("no spawn points")
	}
	if len(town.Buildings) == 0 {
		t.Error("no buildings")
	}
}

func TestGenerateTownDeterministic(t *testing.T) {
	a := testTown(t, 7)
	b := testTown(t, 7)
	if a.Net.EdgeCount() != b.Net.EdgeCount() || len(a.Buildings) != len(b.Buildings) {
		t.Fatal("same seed produced different towns")
	}
	for i := range a.Buildings {
		if a.Buildings[i].Box != b.Buildings[i].Box {
			t.Fatal("building layout differs for same seed")
		}
	}
}

func TestGenerateTownSeedsDiffer(t *testing.T) {
	a := testTown(t, 1)
	b := testTown(t, 2)
	if a.Net.EdgeCount() == b.Net.EdgeCount() && len(a.Buildings) == len(b.Buildings) {
		// Same coarse stats are possible; compare layout.
		same := len(a.Buildings) > 0
		for i := range a.Buildings {
			if a.Buildings[i].Box != b.Buildings[i].Box {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical towns")
		}
	}
}

func TestTownConfigValidate(t *testing.T) {
	bad := []TownConfig{
		{GridW: 1, GridH: 4, Spacing: 90, LaneWidth: 3.5},
		{GridW: 4, GridH: 4, Spacing: 5, LaneWidth: 3.5},
		{GridW: 4, GridH: 4, Spacing: 90, LaneWidth: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d did not error", i)
		}
	}
	if err := DefaultTownConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNetworkConnectivityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		town, err := GenerateTown(DefaultTownConfig(), rng.New(seed))
		if err != nil {
			return false
		}
		return town.Net.Validate() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestPlanRouteShortest(t *testing.T) {
	// Hand-built 2x2 grid: route 0 -> 3 has two equal paths of 2 edges.
	net := NewNetwork(3.5, 2)
	n00 := net.AddNode(geom.V(0, 0))
	n10 := net.AddNode(geom.V(100, 0))
	n01 := net.AddNode(geom.V(0, 100))
	n11 := net.AddNode(geom.V(100, 100))
	net.AddEdge(n00, n10)
	net.AddEdge(n00, n01)
	net.AddEdge(n10, n11)
	net.AddEdge(n01, n11)

	r, err := net.PlanRoute(n00, n11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NodeIDs) != 3 {
		t.Errorf("route nodes = %v, want 3 nodes", r.NodeIDs)
	}
	// Route length should be near 200 (two 100m blocks, lane offset aside).
	if r.Length() < 150 || r.Length() > 250 {
		t.Errorf("route length = %v", r.Length())
	}
}

func TestPlanRouteErrors(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)
	if _, err := net.PlanRoute(a, a); err == nil {
		t.Error("same-node route did not error")
	}
	if _, err := net.PlanRoute(a, NodeID(99)); err == nil {
		t.Error("out-of-range route did not error")
	}
	c := net.AddNode(geom.V(500, 500)) // isolated
	if _, err := net.PlanRoute(a, c); err == nil {
		t.Error("unreachable route did not error")
	}
}

func TestRouteWaypointsOnRightLane(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)
	r, err := net.PlanRoute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Driving +X, right-hand lane center is at y = -laneWidth/2.
	for _, wp := range r.Waypoints {
		if math.Abs(wp.Y-(-1.75)) > 1e-9 {
			t.Fatalf("waypoint %v not on right lane center", wp)
		}
	}
	// Reverse direction gets the opposite lane.
	r2, err := net.PlanRoute(b, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range r2.Waypoints {
		if math.Abs(wp.Y-1.75) > 1e-9 {
			t.Fatalf("reverse waypoint %v not on its right lane", wp)
		}
	}
}

func TestRouteProjectAndPointAt(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)
	r, _ := net.PlanRoute(a, b)

	// A point left of the lane center by 1m at x=50.
	s, lat, _ := r.Project(geom.V(50, -0.75))
	if math.Abs(s-50) > 1.5 {
		t.Errorf("Project s = %v, want ~50", s)
	}
	if math.Abs(lat-1) > 1e-6 {
		t.Errorf("Project lateral = %v, want 1 (left)", lat)
	}

	p := r.PointAt(s)
	if math.Abs(p.X-50) > 1.5 || math.Abs(p.Y+1.75) > 1e-6 {
		t.Errorf("PointAt = %v", p)
	}
	if h := r.HeadingAt(s); math.Abs(h) > 1e-9 {
		t.Errorf("HeadingAt = %v, want 0", h)
	}
}

func TestRouteProjectRoundTripProperty(t *testing.T) {
	town := testTown(t, 3)
	from, to, err := town.RandomMission(rng.New(4), 150)
	if err != nil {
		t.Fatal(err)
	}
	route, err := town.Net.PlanRoute(from, to)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(frac float64) bool {
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			frac = 0.5
		}
		frac = math.Abs(math.Mod(frac, 1))
		s := frac * route.Length()
		p := route.PointAt(s)
		s2, lat, _ := route.Project(p)
		// Projecting a point on the route must give ~zero lateral and ~same s.
		return math.Abs(lat) < 0.5 && math.Abs(s2-s) < 3
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestRouteCommandTurns(t *testing.T) {
	// L-shaped route: +X then +Y is a left turn.
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	c := net.AddNode(geom.V(100, 100))
	net.AddEdge(a, b)
	net.AddEdge(b, c)
	r, err := net.PlanRoute(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Command(0, 20); got != TurnFollow {
		t.Errorf("command far from junction = %v, want follow", got)
	}
	if got := r.Command(85, 30); got != TurnLeft {
		t.Errorf("command near junction = %v, want left", got)
	}
	// Right turn: +X then -Y.
	d := net.AddNode(geom.V(200, 0))
	e := net.AddNode(geom.V(200, -100))
	net.AddEdge(b, d)
	net.AddEdge(d, e)
	r2, err := net.PlanRoute(a, e)
	if err != nil {
		t.Fatal(err)
	}
	sawRight := false
	for s := 0.0; s < r2.Length(); s += 5 {
		if r2.Command(s, 30) == TurnRight {
			sawRight = true
		}
	}
	if !sawRight {
		t.Error("right turn never commanded along +X/-Y route")
	}
}

func TestTurnKindString(t *testing.T) {
	cases := map[TurnKind]string{
		TurnFollow: "follow", TurnLeft: "left", TurnRight: "right",
		TurnStraight: "straight", TurnInvalid: "invalid",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestOnRoad(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)

	if !net.OnRoad(geom.V(50, 0)) {
		t.Error("centerline not on road")
	}
	if !net.OnRoad(geom.V(50, 3.4)) {
		t.Error("lane edge not on road")
	}
	if net.OnRoad(geom.V(50, 4.5)) {
		t.Error("sidewalk on road")
	}
	if net.OnRoad(geom.V(50, 50)) {
		t.Error("field on road")
	}
}

func TestNearestRoad(t *testing.T) {
	net := NewNetwork(3.5, 2)
	if _, _, ok := net.NearestRoad(geom.V(0, 0)); ok {
		t.Error("empty network returned a road")
	}
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)
	_, d, ok := net.NearestRoad(geom.V(50, 7))
	if !ok || math.Abs(d-7) > 1e-9 {
		t.Errorf("NearestRoad dist = %v, %v", d, ok)
	}
}

func TestRandomMissionRespectsMinDist(t *testing.T) {
	town := testTown(t, 5)
	r := rng.New(6)
	for i := 0; i < 20; i++ {
		from, to, err := town.RandomMission(r, 150)
		if err != nil {
			t.Fatal(err)
		}
		if d := town.Net.Node(from).Pos.Dist(town.Net.Node(to).Pos); d < 150 {
			t.Errorf("mission distance %v < 150", d)
		}
	}
}

func TestCollidesBuilding(t *testing.T) {
	town := &Town{
		Net: NewNetwork(3.5, 2),
		Buildings: []Building{
			{Box: geom.NewAABB(geom.V(10, 10), geom.V(20, 20)), Height: 10},
		},
	}
	inside := geom.NewOBB(geom.P(15, 15, 0.3), 4, 2)
	if !town.CollidesBuilding(inside) {
		t.Error("OBB inside building not colliding")
	}
	outside := geom.NewOBB(geom.P(30, 30, 0.3), 4, 2)
	if town.CollidesBuilding(outside) {
		t.Error("distant OBB colliding")
	}
	touching := geom.NewOBB(geom.P(22, 15, 0), 4.2, 2)
	if !town.CollidesBuilding(touching) {
		t.Error("overlapping OBB not colliding")
	}
}

func TestRaycastBuildings(t *testing.T) {
	town := &Town{
		Buildings: []Building{
			{Box: geom.NewAABB(geom.V(10, -5), geom.V(20, 5)), Height: 12, Shade: 0.5},
			{Box: geom.NewAABB(geom.V(40, -5), geom.V(50, 5)), Height: 8, Shade: 0.7},
		},
	}
	ray := geom.NewRay(geom.V(0, 0), geom.V(1, 0))
	d, b, ok := town.RaycastBuildings(ray, 100)
	if !ok || math.Abs(d-10) > 1e-9 || b.Height != 12 {
		t.Errorf("raycast = %v, %+v, %v; want 10m to first building", d, b, ok)
	}
	// Max distance short of any building.
	if _, _, ok := town.RaycastBuildings(ray, 5); ok {
		t.Error("raycast beyond maxDist reported hit")
	}
	// Ray pointing away.
	away := geom.NewRay(geom.V(0, 0), geom.V(-1, 0))
	if _, _, ok := town.RaycastBuildings(away, 100); ok {
		t.Error("ray pointing away reported hit")
	}
}

func TestSpawnsAreOnRoad(t *testing.T) {
	town := testTown(t, 8)
	for i, s := range town.Spawns {
		if !town.Net.OnRoad(s.Pos) {
			t.Errorf("spawn %d at %v is off-road", i, s.Pos)
		}
	}
}

func TestNearestSpawn(t *testing.T) {
	town := testTown(t, 9)
	p := town.Spawns[0].Pos
	got, err := town.NearestSpawn(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos.Dist(p) > 1e-9 {
		t.Error("NearestSpawn of a spawn point is not itself")
	}
	empty := &Town{}
	if _, err := empty.NearestSpawn(p); err == nil {
		t.Error("empty town NearestSpawn did not error")
	}
}

func TestRemainingAt(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(100, 0))
	net.AddEdge(a, b)
	r, _ := net.PlanRoute(a, b)
	if rem := r.RemainingAt(0); math.Abs(rem-r.Length()) > 1e-9 {
		t.Errorf("RemainingAt(0) = %v", rem)
	}
	if rem := r.RemainingAt(r.Length() + 10); rem != 0 {
		t.Errorf("RemainingAt past end = %v", rem)
	}
}

func TestRouteStartHeading(t *testing.T) {
	net := NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(0, 100)) // north
	net.AddEdge(a, b)
	r, _ := net.PlanRoute(a, b)
	start := r.Start()
	if math.Abs(start.Heading-math.Pi/2) > 1e-9 {
		t.Errorf("start heading = %v, want pi/2", start.Heading)
	}
}
