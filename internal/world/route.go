package world

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/geom"
)

// TurnKind is the high-level navigation command the driving agent is
// conditioned on — the "conditional" in conditional imitation learning
// (Codevilla et al.), which the paper's ADA uses.
type TurnKind int

// Turn kinds. Enums start at one so the zero value is invalid (catching
// uninitialized commands in tests).
const (
	TurnInvalid TurnKind = iota
	// TurnFollow means no junction decision is pending: follow the lane.
	TurnFollow
	// TurnLeft, TurnRight, TurnStraight are pending junction decisions.
	TurnLeft
	TurnRight
	TurnStraight
)

// String implements fmt.Stringer.
func (t TurnKind) String() string {
	switch t {
	case TurnFollow:
		return "follow"
	case TurnLeft:
		return "left"
	case TurnRight:
		return "right"
	case TurnStraight:
		return "straight"
	default:
		return "invalid"
	}
}

// Route is a planned path through the network: the node sequence plus a
// dense polyline of lane-center waypoints (offset to the right-hand driving
// lane) with cumulative arc length for fast projection queries.
type Route struct {
	NodeIDs   []NodeID
	Waypoints []geom.Vec
	// turnAt[i] is the turn geometry at inner node i+1 of the node path.
	turns   []routeTurn
	cumDist []float64
	length  float64
}

type routeTurn struct {
	// s is the arc length along the route at which the junction sits.
	s    float64
	kind TurnKind
}

// waypointSpacing is the nominal distance between consecutive route
// waypoints, in meters.
const waypointSpacing = 2.0

// PlanRoute finds the shortest path from one intersection to another with
// uniform-cost search (Dijkstra; edge cost = Euclidean length) and expands
// it into lane-center waypoints.
func (n *Network) PlanRoute(from, to NodeID) (*Route, error) {
	if int(from) >= len(n.nodes) || int(to) >= len(n.nodes) || from < 0 || to < 0 {
		return nil, fmt.Errorf("world: plan route %d->%d: node out of range", from, to)
	}
	if from == to {
		return nil, fmt.Errorf("world: plan route %d->%d: identical endpoints", from, to)
	}

	dist := make(map[NodeID]float64, len(n.nodes))
	prev := make(map[NodeID]NodeID, len(n.nodes))
	pq := &nodeHeap{{id: from, cost: 0}}
	dist[from] = 0
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeItem)
		if cur.id == to {
			break
		}
		if cur.cost > dist[cur.id] {
			continue
		}
		for _, nb := range n.adj[cur.id] {
			c := cur.cost + n.nodes[cur.id].Pos.Dist(n.nodes[nb].Pos)
			if old, ok := dist[nb]; !ok || c < old {
				dist[nb] = c
				prev[nb] = cur.id
				heap.Push(pq, nodeItem{id: nb, cost: c})
			}
		}
	}
	if _, ok := dist[to]; !ok {
		return nil, fmt.Errorf("world: no route from %d to %d", from, to)
	}

	// Reconstruct the node path.
	var path []NodeID
	for cur := to; ; {
		path = append(path, cur)
		if cur == from {
			break
		}
		cur = prev[cur]
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return n.expandRoute(path)
}

// expandRoute converts a node path into dense right-lane waypoints. Segments
// are trimmed near junctions by the road half-width so corner waypoints do
// not overlap, and each pair of trimmed ends is joined across the junction.
func (n *Network) expandRoute(path []NodeID) (*Route, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("world: route needs >= 2 nodes")
	}
	r := &Route{NodeIDs: append([]NodeID(nil), path...)}
	trim := n.RoadHalfWidth()

	for i := 0; i+1 < len(path); i++ {
		a := n.nodes[path[i]].Pos
		b := n.nodes[path[i+1]].Pos
		d := b.Sub(a)
		segLen := d.Len()
		dir := d.Norm()
		right := dir.Perp().Scale(-1)
		off := right.Scale(n.LaneWidth / 2)

		start, end := 0.0, segLen
		if i > 0 {
			start = trim
		}
		if i+1 < len(path)-1 {
			end = segLen - trim
		}
		if end <= start {
			// Degenerate short block: keep midpoint so the polyline stays monotone.
			mid := a.Add(dir.Scale(segLen / 2)).Add(off)
			r.Waypoints = append(r.Waypoints, mid)
			continue
		}
		steps := int(math.Max(1, math.Ceil((end-start)/waypointSpacing)))
		for s := 0; s <= steps; s++ {
			t := start + (end-start)*float64(s)/float64(steps)
			r.Waypoints = append(r.Waypoints, a.Add(dir.Scale(t)).Add(off))
		}
	}

	// Cumulative arc length.
	r.cumDist = make([]float64, len(r.Waypoints))
	for i := 1; i < len(r.Waypoints); i++ {
		r.cumDist[i] = r.cumDist[i-1] + r.Waypoints[i].Dist(r.Waypoints[i-1])
	}
	r.length = r.cumDist[len(r.cumDist)-1]

	// Classify the turn at each inner node.
	for i := 1; i+1 < len(path); i++ {
		inDir := n.nodes[path[i]].Pos.Sub(n.nodes[path[i-1]].Pos).Angle()
		outDir := n.nodes[path[i+1]].Pos.Sub(n.nodes[path[i]].Pos).Angle()
		delta := geom.AngleDiff(inDir, outDir)
		kind := TurnStraight
		switch {
		case delta > math.Pi/6:
			kind = TurnLeft
		case delta < -math.Pi/6:
			kind = TurnRight
		}
		// Arc length at the junction = projection of the node onto the route.
		s, _, _ := r.Project(n.nodes[path[i]].Pos)
		r.turns = append(r.turns, routeTurn{s: s, kind: kind})
	}
	return r, nil
}

// Length returns the route's total arc length in meters.
func (r *Route) Length() float64 { return r.length }

// Start returns the first waypoint and initial heading.
func (r *Route) Start() geom.Pose {
	h := r.Waypoints[1].Sub(r.Waypoints[0]).Angle()
	return geom.Pose{Pos: r.Waypoints[0], Heading: h}
}

// Goal returns the final waypoint.
func (r *Route) Goal() geom.Vec { return r.Waypoints[len(r.Waypoints)-1] }

// Project returns the arc length s of the closest point on the route to
// pos, the signed lateral offset (positive = left of the travel direction),
// and the index of the closest polyline segment.
func (r *Route) Project(pos geom.Vec) (s, lateral float64, segIdx int) {
	best := math.MaxFloat64
	bestT := 0.0
	for i := 0; i+1 < len(r.Waypoints); i++ {
		seg := geom.Seg(r.Waypoints[i], r.Waypoints[i+1])
		t, closest := seg.Project(pos)
		if d := closest.DistSq(pos); d < best {
			best = d
			segIdx = i
			bestT = t
		}
	}
	seg := geom.Seg(r.Waypoints[segIdx], r.Waypoints[segIdx+1])
	s = r.cumDist[segIdx] + bestT*seg.Len()
	// Signed lateral: positive when pos is left of the segment direction.
	side := seg.Dir().Cross(pos.Sub(seg.A))
	lateral = side
	return s, lateral, segIdx
}

// PointAt returns the waypoint-interpolated position at arc length s,
// clamped to the route.
func (r *Route) PointAt(s float64) geom.Vec {
	if s <= 0 {
		return r.Waypoints[0]
	}
	if s >= r.length {
		return r.Goal()
	}
	i := r.searchSeg(s)
	segStart := r.cumDist[i]
	seg := geom.Seg(r.Waypoints[i], r.Waypoints[i+1])
	l := seg.Len()
	if l == 0 {
		return seg.A
	}
	return seg.At((s - segStart) / l)
}

// HeadingAt returns the path heading at arc length s.
func (r *Route) HeadingAt(s float64) float64 {
	i := r.searchSeg(geom.Clamp(s, 0, r.length))
	return r.Waypoints[i+1].Sub(r.Waypoints[i]).Angle()
}

// searchSeg returns the polyline segment index containing arc length s by
// binary search over cumDist.
func (r *Route) searchSeg(s float64) int {
	lo, hi := 0, len(r.cumDist)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.cumDist[mid] <= s {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Command returns the conditional-IL navigation command for a vehicle at
// arc length s: the turn kind of the next junction within lookahead meters,
// or TurnFollow when none is pending.
func (r *Route) Command(s, lookahead float64) TurnKind {
	for _, t := range r.turns {
		if t.s >= s-2 && t.s <= s+lookahead {
			return t.kind
		}
	}
	return TurnFollow
}

// RemainingAt returns the arc length left to the goal from arc length s.
func (r *Route) RemainingAt(s float64) float64 {
	return math.Max(0, r.length-s)
}

// nodeHeap is the priority queue for Dijkstra.
type nodeItem struct {
	id   NodeID
	cost float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
