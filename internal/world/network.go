// Package world models the urban environment the AVFI simulator drives in:
// a road network of intersections and street segments with lanes, curbs and
// sidewalks, procedurally generated towns with buildings, spawn points, and
// the route planner and lane-geometry queries that the autopilot, the
// violation detectors, and the renderer are built on.
//
// It is the Go stand-in for CARLA's town assets (the paper's "inbuilt
// library of urban layouts, buildings, pedestrians, vehicles"). Geometry is
// 2D; the renderer extrudes buildings by their Height for the camera view.
//
// Conventions: right-hand traffic; each street has one lane per direction,
// LaneWidth wide, so pavement spans ±LaneWidth around the street centerline.
// A driving lane's centerline is offset LaneWidth/2 to the right of travel.
package world

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/geom"
)

// NodeID identifies an intersection.
type NodeID int

// Node is an intersection of one or more streets.
type Node struct {
	ID  NodeID
	Pos geom.Vec
}

// Network is the road graph: intersections plus undirected street segments.
type Network struct {
	// LaneWidth is the width of one driving lane in meters.
	LaneWidth float64
	// SidewalkWidth is the width of the pedestrian strip beyond each curb.
	SidewalkWidth float64

	nodes []Node
	adj   map[NodeID][]NodeID
	// segs caches one geom.Segment per undirected edge for geometric
	// queries, deduplicated with A < B.
	segs []edgeSeg
}

type edgeSeg struct {
	a, b NodeID
	seg  geom.Segment
}

// NewNetwork constructs an empty network with the given lane geometry.
func NewNetwork(laneWidth, sidewalkWidth float64) *Network {
	return &Network{
		LaneWidth:     laneWidth,
		SidewalkWidth: sidewalkWidth,
		adj:           make(map[NodeID][]NodeID),
	}
}

// AddNode appends an intersection and returns its ID.
func (n *Network) AddNode(pos geom.Vec) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{ID: id, Pos: pos})
	return id
}

// AddEdge connects two intersections with a street. Adding an existing edge
// or a self-loop is a no-op.
func (n *Network) AddEdge(a, b NodeID) {
	if a == b {
		return
	}
	for _, x := range n.adj[a] {
		if x == b {
			return
		}
	}
	n.adj[a] = append(n.adj[a], b)
	n.adj[b] = append(n.adj[b], a)
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	n.segs = append(n.segs, edgeSeg{a: lo, b: hi, seg: geom.Seg(n.nodes[lo].Pos, n.nodes[hi].Pos)})
}

// NodeCount returns the number of intersections.
func (n *Network) NodeCount() int { return len(n.nodes) }

// EdgeCount returns the number of undirected street segments.
func (n *Network) EdgeCount() int { return len(n.segs) }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Neighbors returns the intersections adjacent to id.
func (n *Network) Neighbors(id NodeID) []NodeID { return n.adj[id] }

// Segments returns the street centerline segments (shared slice contents;
// callers must not mutate).
func (n *Network) Segments() []geom.Segment {
	out := make([]geom.Segment, len(n.segs))
	for i, e := range n.segs {
		out[i] = e.seg
	}
	return out
}

// RoadHalfWidth returns the half-width of the paved road (two lanes).
func (n *Network) RoadHalfWidth() float64 { return n.LaneWidth }

// NearestRoad returns the distance from p to the nearest street centerline
// and that street's segment. ok is false for an empty network.
func (n *Network) NearestRoad(p geom.Vec) (seg geom.Segment, dist float64, ok bool) {
	if len(n.segs) == 0 {
		return geom.Segment{}, 0, false
	}
	best := math.MaxFloat64
	for _, e := range n.segs {
		if d := e.seg.Dist(p); d < best {
			best = d
			seg = e.seg
		}
	}
	return seg, best, true
}

// OnRoad reports whether p lies on pavement: within RoadHalfWidth of a
// street centerline or within an intersection square.
func (n *Network) OnRoad(p geom.Vec) bool {
	_, d, ok := n.NearestRoad(p)
	if !ok {
		return false
	}
	if d <= n.RoadHalfWidth() {
		return true
	}
	// Intersection pads are squares slightly larger than the road width so
	// corner cutting across a junction doesn't read as off-road.
	for _, node := range n.nodes {
		if len(n.adj[node.ID]) == 0 {
			continue
		}
		dp := p.Sub(node.Pos)
		if math.Abs(dp.X) <= n.RoadHalfWidth() && math.Abs(dp.Y) <= n.RoadHalfWidth() {
			return true
		}
	}
	return false
}

// InIntersection reports whether p lies within the junction square of any
// intersection (used to suppress lane-marking rendering and lane-violation
// checks inside junctions, where there are no markings).
func (n *Network) InIntersection(p geom.Vec) bool {
	for _, node := range n.nodes {
		if len(n.adj[node.ID]) < 3 {
			// Straight-through or dead-end nodes do not form a junction box.
			continue
		}
		dp := p.Sub(node.Pos)
		if math.Abs(dp.X) <= n.RoadHalfWidth() && math.Abs(dp.Y) <= n.RoadHalfWidth() {
			return true
		}
	}
	return false
}

// NearNode reports whether p is within radius of any intersection; lane
// markings are ambiguous there, so lane-violation checks are suppressed.
func (n *Network) NearNode(p geom.Vec, radius float64) bool {
	for _, node := range n.nodes {
		if len(n.adj[node.ID]) == 0 {
			continue
		}
		if p.DistSq(node.Pos) <= radius*radius {
			return true
		}
	}
	return false
}

// AlignedRoadLateral returns the signed lateral offset of p from the
// centerline of the nearest street whose direction is within 45 degrees of
// the travel heading (either way along the street). Positive = left of the
// travel direction, so a correctly driving vehicle sits at about
// -LaneWidth/2 and a positive value means it has crossed the center line.
// ok is false when no aligned street is within the pavement width — the
// vehicle is crossing a perpendicular street or is off-road, cases the
// curb/intersection checks own.
func (n *Network) AlignedRoadLateral(p geom.Vec, heading float64) (lat float64, ok bool) {
	best := n.RoadHalfWidth()
	for _, e := range n.segs {
		d := e.seg.Dist(p)
		if d > best {
			continue
		}
		dir := e.seg.Dir()
		diff := geom.AngleDiff(dir.Angle(), heading)
		if math.Abs(diff) > math.Pi/2 {
			dir = dir.Scale(-1)
			diff = geom.AngleDiff(dir.Angle(), heading)
		}
		if math.Abs(diff) > math.Pi/4 {
			continue
		}
		best = d
		lat = dir.Cross(p.Sub(e.seg.A))
		ok = true
	}
	return lat, ok
}

// Validate checks structural invariants: every edge endpoint exists and the
// graph is connected (so every mission is plannable).
func (n *Network) Validate() error {
	if len(n.nodes) == 0 {
		return fmt.Errorf("world: empty network")
	}
	for _, e := range n.segs {
		if int(e.a) >= len(n.nodes) || int(e.b) >= len(n.nodes) {
			return fmt.Errorf("world: edge (%d,%d) references missing node", e.a, e.b)
		}
	}
	// BFS connectivity.
	seen := make([]bool, len(n.nodes))
	queue := []NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != len(n.nodes) {
		return fmt.Errorf("world: network disconnected (%d of %d reachable)", count, len(n.nodes))
	}
	return nil
}
