package world

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
)

// Weather is the ambient condition of an episode. It perturbs the rendered
// camera image (fog flattens contrast, rain adds streaks and droplets) the
// way CARLA's weather presets do.
type Weather int

// Weather presets. Enums start at one.
const (
	WeatherInvalid Weather = iota
	WeatherClear
	WeatherRain
	WeatherFog
)

// String implements fmt.Stringer.
func (w Weather) String() string {
	switch w {
	case WeatherClear:
		return "clear"
	case WeatherRain:
		return "rain"
	case WeatherFog:
		return "fog"
	default:
		return "invalid"
	}
}

// Building is a box obstacle/occluder with a render height and shade.
type Building struct {
	Box geom.AABB
	// Height in meters, used by the renderer to extrude walls.
	Height float64
	// Shade in [0,1] tints the walls so buildings are visually distinct.
	Shade float64
}

// Town is a generated world: road network, buildings, and spawn points.
type Town struct {
	Net       *Network
	Buildings []Building
	// Spawns are poses on right-lane centerlines, heading along traffic.
	Spawns []geom.Pose
	Bounds geom.AABB
}

// TownConfig parameterizes GenerateTown.
type TownConfig struct {
	// GridW, GridH are the number of intersections per axis.
	GridW, GridH int
	// Spacing is the block size in meters.
	Spacing float64
	// LaneWidth and SidewalkWidth set the street cross-section.
	LaneWidth     float64
	SidewalkWidth float64
	// EdgeKeepProb is the probability of keeping each non-tree grid edge;
	// the spanning tree is always kept so the network stays connected.
	EdgeKeepProb float64
	// BuildingDensity is the probability a block interior gets a building.
	BuildingDensity float64
}

// DefaultTownConfig returns the configuration used across the paper-figure
// experiments: a 4x4 grid town, CARLA-like 3.5 m lanes.
func DefaultTownConfig() TownConfig {
	return TownConfig{
		GridW:           4,
		GridH:           4,
		Spacing:         90,
		LaneWidth:       3.5,
		SidewalkWidth:   2,
		EdgeKeepProb:    0.85,
		BuildingDensity: 0.9,
	}
}

// Validate checks the configuration is generable.
func (c TownConfig) Validate() error {
	if c.GridW < 2 || c.GridH < 2 {
		return fmt.Errorf("world: grid %dx%d too small", c.GridW, c.GridH)
	}
	if c.Spacing < 4*c.LaneWidth {
		return fmt.Errorf("world: spacing %.1f too small for lane width %.1f", c.Spacing, c.LaneWidth)
	}
	if c.LaneWidth <= 0 {
		return fmt.Errorf("world: non-positive lane width")
	}
	return nil
}

// GenerateTown builds a procedural grid town. The same (config, stream
// state) always yields the same town; campaigns derive the stream from the
// campaign seed.
func GenerateTown(cfg TownConfig, r *rng.Stream) (*Town, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := NewNetwork(cfg.LaneWidth, cfg.SidewalkWidth)

	// Grid nodes.
	ids := make([][]NodeID, cfg.GridH)
	for y := 0; y < cfg.GridH; y++ {
		ids[y] = make([]NodeID, cfg.GridW)
		for x := 0; x < cfg.GridW; x++ {
			ids[y][x] = net.AddNode(geom.V(float64(x)*cfg.Spacing, float64(y)*cfg.Spacing))
		}
	}

	// Spanning tree (randomized DFS) keeps connectivity...
	type cell struct{ x, y int }
	visited := make(map[cell]bool)
	var stack []cell
	start := cell{r.Intn(cfg.GridW), r.Intn(cfg.GridH)}
	stack = append(stack, start)
	visited[start] = true
	inTree := make(map[[2]NodeID]bool)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		r.Shuffle(len(dirs), func(i, j int) { dirs[i], dirs[j] = dirs[j], dirs[i] })
		advanced := false
		for _, d := range dirs {
			nx, ny := cur.x+d[0], cur.y+d[1]
			if nx < 0 || ny < 0 || nx >= cfg.GridW || ny >= cfg.GridH || visited[cell{nx, ny}] {
				continue
			}
			a, b := ids[cur.y][cur.x], ids[ny][nx]
			net.AddEdge(a, b)
			key := edgeKey(a, b)
			inTree[key] = true
			visited[cell{nx, ny}] = true
			stack = append(stack, cell{nx, ny})
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}

	// ...then keep a fraction of the remaining grid edges for loops.
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			if x+1 < cfg.GridW {
				maybeKeepEdge(net, inTree, ids[y][x], ids[y][x+1], cfg.EdgeKeepProb, r)
			}
			if y+1 < cfg.GridH {
				maybeKeepEdge(net, inTree, ids[y][x], ids[y+1][x], cfg.EdgeKeepProb, r)
			}
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("world: generated network invalid: %w", err)
	}

	town := &Town{Net: net}

	// Buildings fill block interiors, set back from the sidewalks.
	setback := net.RoadHalfWidth() + cfg.SidewalkWidth + 2
	for y := 0; y+1 < cfg.GridH; y++ {
		for x := 0; x+1 < cfg.GridW; x++ {
			if !r.Bool(cfg.BuildingDensity) {
				continue
			}
			blockMin := geom.V(float64(x)*cfg.Spacing+setback, float64(y)*cfg.Spacing+setback)
			blockMax := geom.V(float64(x+1)*cfg.Spacing-setback, float64(y+1)*cfg.Spacing-setback)
			if blockMax.X-blockMin.X < 10 || blockMax.Y-blockMin.Y < 10 {
				continue
			}
			// Random sub-rectangle of the block.
			w := r.Range(0.5, 1.0) * (blockMax.X - blockMin.X)
			h := r.Range(0.5, 1.0) * (blockMax.Y - blockMin.Y)
			ox := r.Range(0, (blockMax.X-blockMin.X)-w)
			oy := r.Range(0, (blockMax.Y-blockMin.Y)-h)
			min := blockMin.Add(geom.V(ox, oy))
			town.Buildings = append(town.Buildings, Building{
				Box:    geom.NewAABB(min, min.Add(geom.V(w, h))),
				Height: r.Range(6, 25),
				Shade:  r.Range(0.3, 0.8),
			})
		}
	}

	// Spawn points: along each directed lane, every ~spacing/4, trimmed
	// away from junctions.
	for _, e := range net.segs {
		for _, dir := range [][2]NodeID{{e.a, e.b}, {e.b, e.a}} {
			a := net.nodes[dir[0]].Pos
			b := net.nodes[dir[1]].Pos
			d := b.Sub(a)
			segLen := d.Len()
			u := d.Norm()
			right := u.Perp().Scale(-1)
			off := right.Scale(cfg.LaneWidth / 2)
			for s := cfg.Spacing / 4; s < segLen-cfg.Spacing/4; s += cfg.Spacing / 4 {
				town.Spawns = append(town.Spawns, geom.Pose{
					Pos:     a.Add(u.Scale(s)).Add(off),
					Heading: u.Angle(),
				})
			}
		}
	}

	margin := cfg.Spacing / 2
	town.Bounds = geom.NewAABB(
		geom.V(-margin, -margin),
		geom.V(float64(cfg.GridW-1)*cfg.Spacing+margin, float64(cfg.GridH-1)*cfg.Spacing+margin),
	)
	return town, nil
}

func maybeKeepEdge(net *Network, inTree map[[2]NodeID]bool, a, b NodeID, p float64, r *rng.Stream) {
	if inTree[edgeKey(a, b)] {
		return
	}
	if r.Bool(p) {
		net.AddEdge(a, b)
	}
}

func edgeKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// RandomMission picks a start/goal intersection pair at least minDist apart
// (straight line) and returns them. It is how campaigns sample the paper's
// "navigating between way points in the simulated world" missions.
func (t *Town) RandomMission(r *rng.Stream, minDist float64) (from, to NodeID, err error) {
	n := t.Net.NodeCount()
	for attempt := 0; attempt < 200; attempt++ {
		from = NodeID(r.Intn(n))
		to = NodeID(r.Intn(n))
		if from == to {
			continue
		}
		if t.Net.Node(from).Pos.Dist(t.Net.Node(to).Pos) < minDist {
			continue
		}
		return from, to, nil
	}
	return 0, 0, fmt.Errorf("world: no mission pair at distance >= %.0f found", minDist)
}

// CollidesBuilding reports whether the OBB overlaps any building footprint.
func (t *Town) CollidesBuilding(box geom.OBB) bool {
	bb := box.AABB()
	for _, b := range t.Buildings {
		if !bb.Intersects(b.Box) {
			continue
		}
		// AABB-vs-OBB: treat the building as an OBB with zero rotation.
		c := b.Box.Center()
		size := b.Box.Size()
		bObb := geom.NewOBB(geom.Pose{Pos: c}, size.X, size.Y)
		if box.Intersects(bObb) {
			return true
		}
	}
	return false
}

// RaycastBuildings returns the distance to the nearest building wall hit by
// the ray, within maxDist, plus the building's shade and height. The
// renderer and the LIDAR sensor share this query. ok is false on a miss.
func (t *Town) RaycastBuildings(ray geom.Ray, maxDist float64) (dist float64, b Building, ok bool) {
	best := maxDist
	for _, bd := range t.Buildings {
		for _, s := range aabbEdges(bd.Box) {
			if tHit, hit := ray.IntersectSegment(s); hit && tHit < best {
				best = tHit
				b = bd
				ok = true
			}
		}
	}
	if !ok {
		return 0, Building{}, false
	}
	return best, b, true
}

func aabbEdges(b geom.AABB) [4]geom.Segment {
	p1 := b.Min
	p2 := geom.V(b.Max.X, b.Min.Y)
	p3 := b.Max
	p4 := geom.V(b.Min.X, b.Max.Y)
	return [4]geom.Segment{
		geom.Seg(p1, p2), geom.Seg(p2, p3), geom.Seg(p3, p4), geom.Seg(p4, p1),
	}
}

// NearestSpawn returns the spawn pose closest to p; used to place NPC
// vehicles near but not on top of the ego vehicle.
func (t *Town) NearestSpawn(p geom.Vec) (geom.Pose, error) {
	if len(t.Spawns) == 0 {
		return geom.Pose{}, fmt.Errorf("world: town has no spawn points")
	}
	best := math.MaxFloat64
	var bestPose geom.Pose
	for _, s := range t.Spawns {
		if d := s.Pos.DistSq(p); d < best {
			best = d
			bestPose = s
		}
	}
	return bestPose, nil
}
