package simclient

import (
	"strings"
	"testing"
	"time"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/transport"
)

// TestRecvLoopOverflowDoesNotStallOtherSessions is the regression test for
// the demux head-of-line hazard: a session whose inbound buffer fills (its
// episode loop stopped consuming) must be failed and dropped, while every
// other session on the connection keeps receiving. The old unconditional
// channel send parked the receive loop on the wedged session forever.
func TestRecvLoopOverflowDoesNotStallOtherSessions(t *testing.T) {
	clientEnd, serverEnd := transport.Pipe()
	defer clientEnd.Close()
	c := NewClient(clientEnd)

	wedged, wedgedSess := c.register()
	live, liveSess := c.register()

	// Stuff the wedged session past its buffer depth; nobody consumes.
	frame := proto.EncodeControl(&proto.Control{Steer: 0.1})
	for i := 0; i < cap(wedgedSess.data)+1; i++ {
		if err := serverEnd.Send(proto.EncodeEnvelope(wedged, frame)); err != nil {
			t.Fatal(err)
		}
	}

	// The demux loop must still route to the live session promptly.
	if err := serverEnd.Send(proto.EncodeEnvelope(live, frame)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-liveSess.data:
	case <-time.After(5 * time.Second):
		t.Fatal("demux loop stalled: live session starved by a wedged session")
	}

	// The wedged session was failed, not silently dropped.
	select {
	case err := <-wedgedSess.fail:
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Errorf("fail error = %v, want buffer-overflow diagnostic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged session never received its failure")
	}

	// And unregistered, so its ID no longer routes.
	c.mu.Lock()
	_, still := c.sessions[wedged]
	c.mu.Unlock()
	if still {
		t.Error("overflowed session still registered")
	}
	if got := c.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1 (the live session)", got)
	}
}
