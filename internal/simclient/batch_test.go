package simclient

import (
	"testing"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/transport"
)

// queueOpens constructs a client whose send loop has not started yet, with
// n opens already queued — the deterministic way to exercise coalescing
// (no races against the drain).
func queueOpens(conn transport.Conn, n int, batchMax int, capSeen bool) (*Client, []*openReq) {
	c := &Client{
		conn:     conn,
		sessions: make(map[uint32]*session),
		openCh:   make(chan *openReq, 256),
		done:     make(chan struct{}),
		batchMax: batchMax,
		batchCap: capSeen,
	}
	reqs := make([]*openReq, n)
	for i := range reqs {
		reqs[i] = &openReq{
			sid:  uint32(i + 1),
			open: &proto.OpenEpisode{Seed: uint64(i + 1), TimeoutSec: 1},
			errc: make(chan error, 1),
		}
		c.openCh <- reqs[i]
	}
	return c, reqs
}

// TestSendLoopCoalescesQueuedOpens: opens queued while the send loop was
// busy go out as one OpenEpisodeBatch — group commit, no artificial delay.
func TestSendLoopCoalescesQueuedOpens(t *testing.T) {
	clientEnd, serverEnd := transport.Pipe()
	defer clientEnd.Close()
	c, reqs := queueOpens(clientEnd, 3, 8, true)
	go c.sendLoop()
	defer close(c.done)

	msg, err := serverEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sid, inner, err := proto.DecodeEnvelope(msg)
	if err != nil {
		t.Fatal(err)
	}
	if sid != 0 {
		t.Fatalf("batch envelope sid = %d, want 0", sid)
	}
	entries, err := proto.DecodeOpenEpisodeBatch(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("batch carried %d opens, want 3", len(entries))
	}
	for i, e := range entries {
		if e.SID != reqs[i].sid || e.Open.Seed != reqs[i].open.Seed {
			t.Errorf("entry %d = sid %d seed %d, want sid %d seed %d",
				i, e.SID, e.Open.Seed, reqs[i].sid, reqs[i].open.Seed)
		}
	}
	for i, r := range reqs {
		if err := <-r.errc; err != nil {
			t.Errorf("open %d reported %v", i, err)
		}
	}
	if c.OpenBatches() != 1 || c.BatchedOpens() != 3 {
		t.Errorf("counters = %d batches / %d opens, want 1 / 3", c.OpenBatches(), c.BatchedOpens())
	}
}

// TestSendLoopSingleOpenStaysLegacy: a batch of one is sent as a plain
// single-open envelope, indistinguishable from an unbatched client.
func TestSendLoopSingleOpenStaysLegacy(t *testing.T) {
	clientEnd, serverEnd := transport.Pipe()
	defer clientEnd.Close()
	c, reqs := queueOpens(clientEnd, 1, 8, true)
	go c.sendLoop()
	defer close(c.done)

	msg, err := serverEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sid, inner, err := proto.DecodeEnvelope(msg)
	if err != nil {
		t.Fatal(err)
	}
	if sid != reqs[0].sid {
		t.Errorf("envelope sid = %d, want %d", sid, reqs[0].sid)
	}
	if kind, _ := proto.Kind(inner); kind != proto.KindOpenEpisode {
		t.Errorf("lone open sent as kind %d, want KindOpenEpisode", kind)
	}
	if err := <-reqs[0].errc; err != nil {
		t.Fatal(err)
	}
	if c.OpenBatches() != 0 {
		t.Errorf("lone open counted as a batch")
	}
}

// TestSendLoopSinglesBeforeHello: until the server announces the batch
// capability, every queued open goes out as a legacy single envelope —
// the no-probe fallback that keeps old workers working.
func TestSendLoopSinglesBeforeHello(t *testing.T) {
	clientEnd, serverEnd := transport.Pipe()
	defer clientEnd.Close()
	c, reqs := queueOpens(clientEnd, 3, 8, false)
	go c.sendLoop()
	defer close(c.done)

	for i := range reqs {
		msg, err := serverEnd.Recv()
		if err != nil {
			t.Fatal(err)
		}
		sid, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if sid != reqs[i].sid {
			t.Errorf("open %d envelope sid = %d, want %d", i, sid, reqs[i].sid)
		}
		if kind, _ := proto.Kind(inner); kind != proto.KindOpenEpisode {
			t.Errorf("pre-hello open %d sent as kind %d, want KindOpenEpisode", i, kind)
		}
	}
	if c.OpenBatches() != 0 || c.BatchedOpens() != 0 {
		t.Errorf("pre-hello opens counted as batched (%d/%d)", c.OpenBatches(), c.BatchedOpens())
	}
}
