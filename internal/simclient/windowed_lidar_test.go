package simclient

import (
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/fault/sensorfault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
)

// windowedDropout mirrors the exact bundle campaign.Windowed builds — the
// shape that used to lose the LIDAR role on its way to the driver.
func windowedDropout(start int) fault.InputInjector {
	return &fault.Multi{
		InjectorName: "lidardropout@window",
		Input: &fault.WindowedInput{
			Inner:  sensorfault.NewLidarDropout(),
			Window: fault.Window{StartFrame: start},
		},
	}
}

func TestWindowedLidarFaultChangesAEBOutcome(t *testing.T) {
	// Obstacle 2 m dead ahead the whole episode. Before the window the
	// scan is clean, so the AEB must brake on every frame; once the
	// dropout window opens it erases most returns and the AEB goes blind
	// on most frames. The pre-fix wrappers dropped the LIDAR role, so the
	// fault was a no-op and the AEB braked on all frames regardless.
	const (
		start  = 10
		frames = 60
	)
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), windowedDropout(start), nil, nil, rng.New(11))
	d.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	d.Reset()

	brakesBefore, brakesInside := 0, 0
	for i := 0; i < frames; i++ {
		f := frameWithLidar(t, 2)
		f.Frame = uint32(i)
		ctl, err := d.Drive(f)
		if err != nil {
			t.Fatal(err)
		}
		braked := ctl.Brake == 1 && ctl.Throttle == 0
		switch {
		case i < start && braked:
			brakesBefore++
		case i >= start && braked:
			brakesInside++
		}
	}
	if brakesBefore != start {
		t.Errorf("AEB braked on %d/%d clean frames before the window", brakesBefore, start)
	}
	if inside := frames - start; brakesInside > inside/2 {
		t.Errorf("AEB braked on %d/%d frames inside the dropout window — windowed lidar fault is a no-op",
			brakesInside, inside)
	}
}

func TestFaultedDriverLidarPathNoExtraAllocs(t *testing.T) {
	// The lidar-fault copy must reuse the driver's scratch slice: driving
	// with a lidar injector may not allocate more per frame than driving
	// without one (the shared pipeline cost — image decode, agent forward
	// pass — is identical on both sides).
	a := testAgent(t)
	plain := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(12))
	plain.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	plain.Reset()
	faulted := NewFaultedDriver(a.Clone(), windowedDropout(0), nil, nil, rng.New(12))
	faulted.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	faulted.Reset()

	f := frameWithLidar(t, 2)
	measure := func(d *FaultedDriver) float64 {
		// Warm up once so the scratch slice reaches capacity.
		if _, err := d.Drive(f); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			if _, err := d.Drive(f); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(plain)
	got := measure(faulted)
	if got > base {
		t.Errorf("lidar fault path allocates: %v allocs/frame vs %v baseline", got, base)
	}
}
