package simclient

import (
	"testing"

	"github.com/avfi/avfi/internal/fault/sensorfault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
)

// frameWithLidar builds a frame with an obstacle dead ahead in the scan.
// Speed is set to a crawl: the agent's anti-inertia creep guard then
// guarantees the un-guarded baseline control has Brake == 0, so any full
// brake in these tests is attributable to the AEB.
func frameWithLidar(t *testing.T, forward float64) *proto.SensorFrame {
	t.Helper()
	f := testFrame(t, 0)
	f.Speed = 0.5
	f.Lidar = make([]float64, 36)
	for i := range f.Lidar {
		f.Lidar[i] = 60
	}
	f.Lidar[0] = forward
	return f
}

func TestAEBOverridesAgentControl(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(1))
	d.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	d.Reset()

	ctl, err := d.Drive(frameWithLidar(t, 2)) // 2 m ahead: inside MinTrigger
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Brake != 1 || ctl.Throttle != 0 {
		t.Errorf("AEB did not override: %+v", ctl)
	}
}

func TestAEBInactiveWhenClear(t *testing.T) {
	a := testAgent(t)
	clean := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(2))
	clean.Reset()
	want, err := clean.Drive(frameWithLidar(t, 55))
	if err != nil {
		t.Fatal(err)
	}

	guarded := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(2))
	guarded.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	guarded.Reset()
	got, err := guarded.Drive(frameWithLidar(t, 55))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("AEB altered control with a clear road: %+v vs %+v", got, want)
	}
}

func TestLidarDropoutBlindsAEB(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), sensorfault.NewLidarDropout(), nil, nil, rng.New(3))
	d.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	d.Reset()

	// Obstacle 2 m ahead, but the dropout fault erases (almost) all
	// returns; run several frames — with p=0.9 per beam the forward beam
	// survives rarely, so most frames must NOT brake.
	brakes := 0
	const frames = 50
	for i := 0; i < frames; i++ {
		f := frameWithLidar(t, 2)
		f.Frame = uint32(i)
		ctl, err := d.Drive(f)
		if err != nil {
			t.Fatal(err)
		}
		if ctl.Brake == 1 && ctl.Throttle == 0 {
			brakes++
		}
	}
	if brakes > frames/2 {
		t.Errorf("AEB braked on %d/%d frames despite LIDAR dropout", brakes, frames)
	}
}

func TestLidarGhostCausesPhantomBraking(t *testing.T) {
	a := testAgent(t)
	ghost := sensorfault.NewLidarGhost()
	ghost.Prob = 0.5 // aggressive, to make the test statistical quickly
	d := NewFaultedDriver(a.Clone(), ghost, nil, nil, rng.New(4))
	d.AEB = safety.NewAEB(physics.DefaultVehicleParams())
	d.Reset()

	// Clear road — every brake is a phantom.
	brakes := 0
	const frames = 30
	for i := 0; i < frames; i++ {
		f := frameWithLidar(t, 60)
		f.Frame = uint32(i)
		ctl, err := d.Drive(f)
		if err != nil {
			t.Fatal(err)
		}
		if ctl.Brake == 1 && ctl.Throttle == 0 {
			brakes++
		}
	}
	if brakes == 0 {
		t.Error("ghost echoes never triggered phantom braking")
	}
}

func TestAEBSeesPostFaultLidarOnly(t *testing.T) {
	// The frame's original scan must not be mutated by the driver (the
	// injector works on a copy).
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), sensorfault.NewLidarDropout(), nil, nil, rng.New(5))
	d.Reset()
	f := frameWithLidar(t, 2)
	orig := append([]float64(nil), f.Lidar...)
	if _, err := d.Drive(f); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if f.Lidar[i] != orig[i] {
			t.Fatal("driver mutated the frame's lidar payload")
		}
	}
}
