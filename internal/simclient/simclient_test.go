package simclient

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/fault/imagefault"
	"github.com/avfi/avfi/internal/fault/mlfault"
	"github.com/avfi/avfi/internal/fault/timingfault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

func testAgent(t *testing.T) *agent.Agent {
	t.Helper()
	a, err := agent.New(agent.Config{
		ImageW: 16, ImageH: 12, Conv1: 4, Conv2: 4,
		FeatDim: 8, MeasDim: 4, HeadHidden: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testFrame(t *testing.T, frameNum uint32) *proto.SensorFrame {
	t.Helper()
	img := render.NewImage(16, 12)
	r := rng.New(uint64(frameNum) + 1)
	for i := range img.Pix {
		img.Pix[i] = r.Float64()
	}
	return &proto.SensorFrame{
		Frame:  frameNum,
		ImageW: 16, ImageH: 12,
		Pixels:  img.ToBytes(),
		Speed:   5,
		Command: 1, // follow
	}
}

func TestFaultedDriverNoFaultsMatchesAgent(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(1))
	d.Reset()
	frame := testFrame(t, 0)

	got, err := d.Drive(frame)
	if err != nil {
		t.Fatal(err)
	}
	img, err := render.ImageFromBytes(16, 12, frame.Pixels)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Act(img, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("driver without faults diverged: %+v vs %+v", got, want)
	}
}

func TestFaultedDriverInputFaultChangesControl(t *testing.T) {
	a := testAgent(t)
	clean := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(2))
	noisy := NewFaultedDriver(a.Clone(), imagefault.NewSolidOcclusion(), nil, nil, rng.New(2))
	clean.Reset()
	noisy.Reset()
	frame := testFrame(t, 0)

	c1, err := clean.Drive(frame)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := noisy.Drive(testFrame(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("input fault did not change the control")
	}
}

func TestFaultedDriverOutputFault(t *testing.T) {
	a := testAgent(t)
	stuck := &stuckOutput{}
	d := NewFaultedDriver(a.Clone(), nil, stuck, nil, rng.New(3))
	d.Reset()
	got, err := d.Drive(testFrame(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Steer != 0.77 {
		t.Errorf("output fault not applied: %+v", got)
	}
}

// stuckOutput is a test OutputInjector forcing steer = 0.77.
type stuckOutput struct{}

func (stuckOutput) Name() string { return "test-stuck" }
func (stuckOutput) InjectControl(ctl physics.Control, _ int, _ *rng.Stream) physics.Control {
	ctl.Steer = 0.77
	return ctl
}

func TestFaultedDriverTimingDelay(t *testing.T) {
	a := testAgent(t)
	delay := timingfault.NewDelay(2)
	d := NewFaultedDriver(a.Clone(), nil, nil, delay, rng.New(4))
	d.Reset()

	// Feed three distinct frames; with delay 2 the third output equals the
	// first frame's undelayed control.
	var controls []physics.Control
	for i := uint32(0); i < 3; i++ {
		c, err := d.Drive(testFrame(t, i))
		if err != nil {
			t.Fatal(err)
		}
		controls = append(controls, c)
	}
	ref := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(4))
	ref.Reset()
	first, err := ref.Drive(testFrame(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if controls[2] != first {
		t.Errorf("delayed control at t=2 is %+v, want t=0's %+v", controls[2], first)
	}
}

func TestApplyModelFaultCorruptsClone(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(5))
	noise := mlfault.NewWeightNoise()
	noise.Sigma = 5
	d.ApplyModelFault(noise, rng.New(6))

	// Driver's agent now differs from the original.
	frame := testFrame(t, 0)
	faulty, err := d.Drive(frame)
	if err != nil {
		t.Fatal(err)
	}
	cleanD := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(5))
	clean, err := cleanD.Drive(testFrame(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if faulty == clean {
		t.Error("model fault had no effect on the driver")
	}
	// The source agent is untouched.
	var maxAbs float64
	a.VisitParams(func(_ string, _ int, _ string, v *tensor.Tensor) {
		if m := v.MaxAbs(); m > maxAbs {
			maxAbs = m
		}
	})
	if math.IsInf(maxAbs, 0) || maxAbs > 100 {
		t.Error("model fault leaked into the shared agent")
	}
}

func TestFaultedDriverRejectsBadFrame(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(7))
	bad := testFrame(t, 0)
	bad.Pixels = bad.Pixels[:10]
	if _, err := d.Drive(bad); err == nil {
		t.Error("mismatched pixel payload did not error")
	}
}

func TestFaultedDriverUnknownCommandSafe(t *testing.T) {
	a := testAgent(t)
	d := NewFaultedDriver(a.Clone(), nil, nil, nil, rng.New(8))
	frame := testFrame(t, 0)
	frame.Command = 250 // corrupted on the wire
	if _, err := d.Drive(frame); err != nil {
		t.Errorf("corrupted command byte crashed the driver: %v", err)
	}
}

var _ fault.OutputInjector = stuckOutput{}
