// Package simclient runs the agent side of the CARLA-style client/server
// split, and is where AVFI instruments the system under test: the fault
// pipeline (input faults -> agent -> output faults -> timing faults) wraps
// the driving agent exactly as the paper's Figure 1 places the Input FI,
// NN FI, Output FI and Timing FI hooks.
package simclient

import (
	"fmt"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

// Driver computes one control per sensor frame.
type Driver interface {
	// Drive maps a decoded sensor frame to a control command.
	Drive(frame *proto.SensorFrame) (physics.Control, error)
	// Reset is called once before the first frame of an episode.
	Reset()
}

// episodeStream is one episode's inbound decode state — a stream frame
// decoder handling full and delta frames alike, plus a reused reply
// buffer — shared by the legacy single-episode loop and the session
// Client so the two paths cannot drift apart. The frame handed to the
// Driver and the returned reply are both scratch, valid only until the
// next step call.
type episodeStream struct {
	dec proto.FrameDecoder
	buf []byte
}

// step processes one inbound episode message: it returns the encoded
// control to send back (nil when no reply is due; wrapped in an envelope
// for session when session is non-zero), the final episode summary (nil
// while the episode runs), or an error.
func (st *episodeStream) step(msg []byte, session uint32, d Driver) (reply []byte, end *proto.EpisodeEnd, err error) {
	kind, err := proto.Kind(msg)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case proto.KindEpisodeEnd:
		end, err := proto.DecodeEpisodeEnd(msg)
		if err != nil {
			return nil, nil, err
		}
		return nil, end, nil

	case proto.KindSensorFrame, proto.KindSensorFrameDelta:
		frame, err := st.dec.Decode(msg)
		if err != nil {
			return nil, nil, err
		}
		if frame.Done {
			// Final frame; the episode-end summary follows.
			return nil, nil, nil
		}
		ctl, err := d.Drive(frame)
		if err != nil {
			return nil, nil, fmt.Errorf("drive frame %d: %w", frame.Frame, err)
		}
		out := proto.Control{
			Frame:    frame.Frame,
			Steer:    ctl.Steer,
			Throttle: ctl.Throttle,
			Brake:    ctl.Brake,
		}
		buf := st.buf[:0]
		if session != 0 {
			buf = proto.AppendEnvelopeHeader(buf, session)
		}
		st.buf = proto.AppendControl(buf, &out)
		return st.buf, nil, nil

	default:
		return nil, nil, fmt.Errorf("unexpected message kind %d", kind)
	}
}

// RunEpisode consumes sensor frames from the connection, drives them
// through the Driver, and sends controls back, until the server reports the
// episode done. It returns the server's final episode summary.
func RunEpisode(conn transport.Conn, d Driver) (*proto.EpisodeEnd, error) {
	d.Reset()
	var st episodeStream
	for {
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("simclient: recv: %w", err)
		}
		reply, end, err := st.step(msg, 0, d)
		if err != nil {
			return nil, fmt.Errorf("simclient: %w", err)
		}
		transport.Recycle(msg)
		if end != nil {
			return end, nil
		}
		if reply != nil {
			if err := conn.Send(reply); err != nil {
				return nil, fmt.Errorf("simclient: send control: %w", err)
			}
		}
	}
}

// FaultedDriver wraps the ADA with AVFI's client-side fault pipeline.
type FaultedDriver struct {
	// Agent is the driving network (a per-episode clone; ML faults mutate
	// it in place).
	Agent *agent.Agent
	// Input, Output, Timing are the fault hooks; nil slots are skipped.
	Input  fault.InputInjector
	Output fault.OutputInjector
	Timing fault.TimingInjector
	// AEB, when non-nil, is the independent emergency-braking monitor; it
	// watches the (possibly faulted) LIDAR and can override the final
	// control with a full brake.
	AEB *safety.AEB
	// Rand supplies the episode's fault-injection randomness.
	Rand *rng.Stream

	// lidarScratch is the reused per-frame copy of the scan handed to
	// lidar injectors, so the frame's own payload stays pristine without
	// allocating on every Drive call.
	lidarScratch []float64
}

var _ Driver = (*FaultedDriver)(nil)

// NewFaultedDriver builds the standard pipeline. Any injector may be nil.
func NewFaultedDriver(a *agent.Agent, in fault.InputInjector, out fault.OutputInjector, timing fault.TimingInjector, r *rng.Stream) *FaultedDriver {
	return &FaultedDriver{Agent: a, Input: in, Output: out, Timing: timing, Rand: r}
}

// ApplyModelFault corrupts the driver's agent with an ML fault injector
// (call once, before the episode).
func (d *FaultedDriver) ApplyModelFault(mi fault.ModelInjector, r *rng.Stream) {
	mi.InjectModel(func(fn func(component string, layer int, name string, t fault.ParamTensor)) {
		d.Agent.VisitParams(func(component string, layer int, name string, v *tensor.Tensor) {
			fn(component, layer, name, v)
		})
	}, r)
}

// Reset implements Driver.
func (d *FaultedDriver) Reset() {
	d.Agent.Reset()
	if d.Timing != nil {
		d.Timing.Reset()
	}
}

// Drive implements Driver: decode sensors, apply input faults, run the
// network, apply output and timing faults.
func (d *FaultedDriver) Drive(frame *proto.SensorFrame) (physics.Control, error) {
	img, err := render.ImageFromBytes(int(frame.ImageW), int(frame.ImageH), frame.Pixels)
	if err != nil {
		return physics.Control{}, err
	}
	speed := frame.Speed
	gpsX, gpsY := frame.GPSX, frame.GPSY
	fnum := int(frame.Frame)

	// The AEB reads the frame's scan in place unless a lidar fault needs a
	// mutable copy; the copy lives in a per-driver scratch slice so the
	// faulted path stays allocation-free after the first frame.
	lidar := frame.Lidar
	if d.Input != nil {
		d.Input.InjectImage(img, fnum, d.Rand)
		speed, gpsX, gpsY = d.Input.InjectMeasurements(speed, gpsX, gpsY, fnum, d.Rand)
		if li, ok := d.Input.(fault.LidarInjector); ok {
			d.lidarScratch = append(d.lidarScratch[:0], frame.Lidar...)
			lidar = d.lidarScratch
			li.InjectLidar(lidar, fnum, d.Rand)
		}
	}
	_ = gpsX // the IL agent does not consume GPS directly; localization
	_ = gpsY // faults matter to GPS-dependent planners (see examples)

	ctl, err := d.Agent.Act(img, speed, world.TurnKind(frame.Command))
	if err != nil {
		return physics.Control{}, err
	}
	if d.Output != nil {
		ctl = d.Output.InjectControl(ctl, fnum, d.Rand)
	}
	if d.Timing != nil {
		ctl = d.Timing.Transform(ctl, fnum, d.Rand)
	}
	if d.AEB != nil {
		// The safety monitor sits closest to the actuators: it sees the
		// post-fault control and the post-fault LIDAR.
		ctl, _ = d.AEB.Filter(ctl, lidar, speed)
	}
	return ctl, nil
}

// AutopilotDriver adapts a ground-truth controller to the Driver interface
// for protocol tests (it ignores the sensor payload and uses a callback).
type AutopilotDriver struct {
	// Fn computes the control for a frame number.
	Fn func(frame *proto.SensorFrame) physics.Control
}

var _ Driver = (*AutopilotDriver)(nil)

// Drive implements Driver.
func (d *AutopilotDriver) Drive(frame *proto.SensorFrame) (physics.Control, error) {
	return d.Fn(frame), nil
}

// Reset implements Driver.
func (d *AutopilotDriver) Reset() {}
