package simclient

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// ErrClientClosed is returned by RunEpisode when the shared connection is
// gone before the episode completed.
var ErrClientClosed = errors.New("simclient: client closed")

// SessionError is a server-side, per-session failure (e.g. the episode
// factory rejected the scenario) relayed to that session's RunEpisode call.
// The engine itself survives it: only this episode failed, so campaign
// schedulers treat it as transient and may re-dispatch the episode.
type SessionError struct {
	// SID is the failed session.
	SID uint32
	// Reason is the server's diagnostic.
	Reason string
}

// Error implements error.
func (e *SessionError) Error() string {
	return fmt.Sprintf("simclient: session %d: server: %s", e.SID, e.Reason)
}

// inbound is one routed message: the transport buffer it arrived in (so
// the consuming episode loop can Recycle it once fully decoded) and the
// enveloped payload within it.
type inbound struct {
	msg   []byte
	inner []byte
}

// session is one episode's demux entry: data carries routed inner messages,
// fail carries at most one terminal routing failure (demux overflow).
type session struct {
	data chan inbound
	fail chan error
}

// Client is the session-multiplexed agent endpoint: a worker pool of
// drivers shares one transport.Conn, each worker running episodes through
// RunEpisode with its own session ID. A single receive loop demultiplexes
// enveloped server messages to the per-session episode loops, so a whole
// campaign needs exactly one connection (and, over TCP, one dial).
type Client struct {
	conn transport.Conn

	mu            sync.Mutex
	next          uint32
	sessions      map[uint32]*session
	err           error
	completed     int
	failed        int
	maxOpen       int
	batchMax      int  // SetBatchOpens bound; <= 1 means batching is off
	batchCap      bool // peer announced OpenEpisodeBatch support
	openBatches   int
	batchedOpens  int
	deltaWant     bool // SetDeltaFrames: willing to decode delta frames
	serverDelta   bool // peer announced SensorFrameDelta support
	helloSent     bool // our capability reply has gone out
	deltaFrames   int
	helloSeen     bool   // the server's capability hello has arrived
	serverWorld   uint64 // world hash the hello announced, when serverWorldOK
	serverWorldOK bool

	openCh  chan *openReq
	done    chan struct{}
	helloCh chan struct{} // closed when the server's hello arrives
}

// openReq is one episode open queued for the coalescing send loop; errc
// (buffered) carries the send's outcome back to the episode goroutine.
type openReq struct {
	sid  uint32
	open *proto.OpenEpisode
	errc chan error
}

// NewClient wraps a connection and starts the demultiplexing receive loop.
// Callers own the connection and end the engine by closing it (or the
// Client via Close).
func NewClient(conn transport.Conn) *Client {
	c := &Client{
		conn:     conn,
		sessions: make(map[uint32]*session),
		openCh:   make(chan *openReq, 256),
		done:     make(chan struct{}),
		helloCh:  make(chan struct{}),
	}
	go c.recvLoop()
	go c.sendLoop()
	return c
}

// recvLoop routes enveloped messages to their session until the connection
// dies, then wakes every waiting session. Routing never blocks: a session
// whose inbound buffer is full is failed and dropped, because one wedged
// session stalling the demux loop would stall every other session on the
// connection (head-of-line blocking).
func (c *Client) recvLoop() {
	var loopErr error
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			loopErr = err
			break
		}
		sid, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			loopErr = err
			break
		}
		if sid == 0 {
			// Session 0 is never allocated (IDs start at 1): it carries the
			// server's capability hello, and anything else on it is dropped —
			// which is also exactly what legacy clients do with the hello.
			if kind, err := proto.Kind(inner); err == nil && kind == proto.KindSessionError {
				if se, err := proto.DecodeSessionError(inner); err == nil {
					if caps, ok := proto.ParseCapabilityHello(se.Reason); ok {
						c.noteCapabilities(caps)
					}
				}
			}
			transport.Recycle(msg)
			continue
		}
		c.mu.Lock()
		s, ok := c.sessions[sid]
		c.mu.Unlock()
		if !ok {
			// Session abandoned (its RunEpisode already returned an error).
			transport.Recycle(msg)
			continue
		}
		select {
		case s.data <- inbound{msg: msg, inner: inner}:
		default:
			// The episode protocol is strictly request/response, so an
			// overflowing buffer means this session is broken or its driver
			// wedged. Fail it and keep the demux loop moving.
			select {
			case s.fail <- fmt.Errorf("inbound buffer overflow (session not consuming)"):
			default:
			}
			telemetry.Warnf("simclient: session %d dropped: inbound buffer overflow", sid)
			c.unregister(sid)
			transport.Recycle(msg)
		}
	}
	c.mu.Lock()
	c.err = loopErr
	c.mu.Unlock()
	close(c.done)
}

// Close closes the shared connection; in-flight RunEpisode calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Err reports why the receive loop stopped (nil while it is running).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// InFlight reports the number of currently open sessions — the client's
// instantaneous protocol load. (Diagnostic: the campaign pool tracks its
// own per-engine dispatch counts, which also cover episodes still being
// set up client-side.)
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// CompletedSessions reports how many episodes ran to a clean EpisodeEnd on
// this client — the client-side mirror of simserver.Server's counter, which
// is what engine statistics use when the server is on the far side of a
// network (remote backends).
func (c *Client) CompletedSessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// FailedSessions reports how many sessions ended in a server-side abort
// (SessionError) or a demux overflow drop.
func (c *Client) FailedSessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// MaxConcurrent reports the high-water mark of sessions simultaneously open
// on the connection.
func (c *Client) MaxConcurrent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxOpen
}

// noteCompleted counts one cleanly finished episode.
func (c *Client) noteCompleted() {
	telemetry.ClientSessionsCompleted.Inc()
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
}

// noteFailed counts one session aborted by the server or the demux guard.
func (c *Client) noteFailed() {
	telemetry.ClientSessionsFailed.Inc()
	c.mu.Lock()
	c.failed++
	c.mu.Unlock()
}

// noteCapabilities records the server's capability hello, answering with
// our own when delta decoding is both wanted locally and offered by the
// peer — the only condition under which a client may write to session 0
// (a legacy server would kill the connection on it, but a legacy server
// also never announces, so it never receives the reply).
func (c *Client) noteCapabilities(caps []string) {
	c.mu.Lock()
	for _, token := range caps {
		switch token {
		case proto.CapBatchOpen:
			c.batchCap = true
		case proto.CapDeltaFrame:
			c.serverDelta = true
		default:
			if h, ok := proto.ParseWorldCap(token); ok {
				c.serverWorld = h
				c.serverWorldOK = true
			}
		}
	}
	if !c.helloSeen {
		c.helloSeen = true
		close(c.helloCh)
	}
	reply := c.deltaWant && c.serverDelta && !c.helloSent
	if reply {
		c.helloSent = true
	}
	c.mu.Unlock()
	if reply {
		_ = c.conn.Send(proto.EncodeEnvelope(0, proto.EncodeCapabilityHello(proto.CapDeltaFrame)))
	}
}

// WaitServerHello blocks until the server's capability hello has been
// seen, returning true, or until the connection dies or the timeout
// elapses, returning false. Current-generation servers send the hello as
// their very first message, so against them this resolves in one network
// round trip; only a pre-hello legacy server runs out the timeout.
func (c *Client) WaitServerHello(timeout time.Duration) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.helloCh:
		return true
	case <-c.done:
		// The hello may have raced the connection's death; prefer it.
		select {
		case <-c.helloCh:
			return true
		default:
			return false
		}
	case <-t.C:
		return false
	}
}

// ServerWorldHash returns the world-configuration fingerprint the server's
// capability hello announced; ok is false when no hello has arrived yet or
// the server predates world announcement.
func (c *Client) ServerWorldHash() (hash uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverWorld, c.serverWorldOK
}

// SetDeltaFrames lets the server delta-encode this client's sensor frames
// (campaign pools enable it unless configured for full frames). Like
// batching, the switch only engages against a capable server: the client
// announces its decode support in reply to the server's hello, so a
// legacy server — which never announces — keeps receiving nothing on
// session 0 and keeps sending full frames. Enable before running
// episodes; the announcement cannot be withdrawn once sent.
func (c *Client) SetDeltaFrames(on bool) {
	c.mu.Lock()
	c.deltaWant = on
	reply := on && c.serverDelta && !c.helloSent
	if reply {
		c.helloSent = true
	}
	c.mu.Unlock()
	if reply {
		_ = c.conn.Send(proto.EncodeEnvelope(0, proto.EncodeCapabilityHello(proto.CapDeltaFrame)))
	}
}

// DeltaFrames reports how many sensor frames arrived delta-encoded across
// finished episodes — zero against a legacy server or when delta frames
// were never enabled.
func (c *Client) DeltaFrames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deltaFrames
}

// noteDeltas accumulates one episode's delta-frame count.
func (c *Client) noteDeltas(n int) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.deltaFrames += n
	c.mu.Unlock()
}

// SetBatchOpens lets the client coalesce up to n concurrent episode opens
// into one OpenEpisodeBatch message — the campaign pool's group commit for
// remote dispatch. n <= 1 (the default) disables batching. Batching only
// engages once the server has announced the capability; until then — and
// forever against a legacy worker, which never announces it — every open
// is sent as a legacy single-open envelope, so the fallback needs no
// probing. Values beyond proto.MaxBatchOpens are clamped.
func (c *Client) SetBatchOpens(n int) {
	if n > proto.MaxBatchOpens {
		n = proto.MaxBatchOpens
	}
	c.mu.Lock()
	c.batchMax = n
	c.mu.Unlock()
}

// OpenBatches reports how many OpenEpisodeBatch messages the client has
// sent; BatchedOpens how many episode opens rode them. Singly-sent opens
// count in neither.
func (c *Client) OpenBatches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.openBatches
}

// BatchedOpens reports how many episode opens were coalesced into batch
// messages.
func (c *Client) BatchedOpens() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batchedOpens
}

// batchEnabled reports whether opens should route through the coalescing
// send loop at all; drainLimit the coalescing bound, and protoBatch
// whether drained opens may ride one OpenEpisodeBatch message (server
// capability seen) or must stay individual envelopes flushed together.
func (c *Client) batchEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batchMax > 1
}

func (c *Client) drainLimit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batchMax < 1 {
		return 1
	}
	return c.batchMax
}

func (c *Client) protoBatch() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batchCap
}

// closedErr is the terminal error for work racing the client's shutdown.
func (c *Client) closedErr() error {
	if err := c.Err(); err != nil {
		return err
	}
	return ErrClientClosed
}

// sendOpen dispatches one episode open: directly when batching is off,
// else through the coalescing send loop.
func (c *Client) sendOpen(sid uint32, open *proto.OpenEpisode) error {
	if !c.batchEnabled() {
		return c.conn.Send(proto.EncodeEnvelope(sid, proto.EncodeOpenEpisode(open)))
	}
	req := &openReq{sid: sid, open: open, errc: make(chan error, 1)}
	select {
	case c.openCh <- req:
	case <-c.done:
		return c.closedErr()
	}
	select {
	case err := <-req.errc:
		return err
	case <-c.done:
		// The send loop may have picked the request up just before the
		// shutdown; prefer its verdict when one is already waiting.
		select {
		case err := <-req.errc:
			return err
		default:
			return c.closedErr()
		}
	}
}

// sendLoop is the open coalescer: it waits for one open, then drains —
// without blocking, so an open is never delayed waiting for company —
// whatever other opens the worker pool has already queued, up to the batch
// limit, and flushes them together. Against a batch-capable server the
// flush is one OpenEpisodeBatch message; before the hello lands (and
// forever against a legacy server) it is the individual single-open
// envelopes pushed through transport.SendBatch — byte-identical on the
// wire to sequential sends, so the peer cannot tell, but one gathered
// write instead of one syscall per open. A batch of one goes out as a
// plain single-open Send either way.
func (c *Client) sendLoop() {
	for {
		select {
		case <-c.done:
			// Fail opens that raced the shutdown.
			for {
				select {
				case req := <-c.openCh:
					req.errc <- c.closedErr()
				default:
					return
				}
			}
		case req := <-c.openCh:
			batch := append(make([]*openReq, 0, 8), req)
			if limit := c.drainLimit(); limit > 1 {
			drain:
				for len(batch) < limit {
					select {
					case more := <-c.openCh:
						batch = append(batch, more)
					default:
						break drain
					}
				}
			}
			telemetry.ClientOpenBatch.Observe(float64(len(batch)))
			var err error
			switch {
			case len(batch) == 1:
				err = c.conn.Send(proto.EncodeEnvelope(req.sid, proto.EncodeOpenEpisode(req.open)))
			case c.protoBatch():
				entries := make([]proto.OpenBatchEntry, len(batch))
				for i, r := range batch {
					entries[i] = proto.OpenBatchEntry{SID: r.sid, Open: r.open}
				}
				err = c.conn.Send(proto.EncodeEnvelope(0, proto.EncodeOpenEpisodeBatch(entries)))
				c.mu.Lock()
				c.openBatches++
				c.batchedOpens += len(batch)
				c.mu.Unlock()
			default:
				msgs := make([][]byte, len(batch))
				for i, r := range batch {
					msgs[i] = proto.EncodeEnvelope(r.sid, proto.EncodeOpenEpisode(r.open))
				}
				err = c.conn.SendBatch(msgs)
			}
			for _, r := range batch {
				r.errc <- err
			}
		}
	}
}

// register allocates a session ID and its demux entry.
func (c *Client) register() (uint32, *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	sid := c.next
	s := &session{
		// Deep enough for the final done-frame, the optional full
		// EpisodeResult, and the trailing EpisodeEnd, which the server
		// sends back-to-back without an intervening control.
		data: make(chan inbound, 3),
		fail: make(chan error, 1),
	}
	c.sessions[sid] = s
	if len(c.sessions) > c.maxOpen {
		c.maxOpen = len(c.sessions)
	}
	telemetry.ClientSessionsOpened.Inc()
	telemetry.ClientInFlight.Add(1)
	return sid, s
}

// unregister drops a session's routing entry. Idempotent: the demux
// guard and RunEpisode's deferred cleanup may both call it, and the
// in-flight gauge must move once per session.
func (c *Client) unregister(sid uint32) {
	c.mu.Lock()
	if _, ok := c.sessions[sid]; ok {
		delete(c.sessions, sid)
		telemetry.ClientInFlight.Add(-1)
	}
	c.mu.Unlock()
}

// RunEpisode opens a session for the scenario, drives every sensor frame
// through the Driver, and returns the session ID (for server-side result
// lookup) with the server's final episode summary. Safe for concurrent use
// from many workers.
func (c *Client) RunEpisode(open *proto.OpenEpisode, d Driver) (uint32, *proto.EpisodeEnd, error) {
	sid, _, end, err := c.runEpisode(open, d)
	return sid, end, err
}

// RunEpisodeResult is RunEpisode with the full result requested on the
// wire: the OpenEpisode is sent with WantResult set, and the server's
// EpisodeResult (violation list included) is returned alongside the
// summary — no in-process Server.Result side channel, so it works against
// a truly remote engine. The result is nil when the server predates the
// EpisodeResult message (its stash is then still consultable in-process).
func (c *Client) RunEpisodeResult(open *proto.OpenEpisode, d Driver) (uint32, *proto.EpisodeResult, *proto.EpisodeEnd, error) {
	o := *open
	o.WantResult = true
	return c.runEpisode(&o, d)
}

// runEpisode is the shared episode loop behind RunEpisode and
// RunEpisodeResult.
func (c *Client) runEpisode(open *proto.OpenEpisode, d Driver) (uint32, *proto.EpisodeResult, *proto.EpisodeEnd, error) {
	sid, s := c.register()
	defer c.unregister(sid)
	var result *proto.EpisodeResult
	var st episodeStream
	defer func() { c.noteDeltas(st.dec.Deltas()) }()

	// Phase spans (open: open sent -> first inbound; frames: first
	// inbound -> result or end; result: wire result -> end) cost two
	// time.Now calls per message boundary, so they are skipped entirely
	// unless telemetry is collecting.
	spans := telemetry.Enabled()
	var tOpen, tFirst, tResult time.Time
	if spans {
		tOpen = time.Now()
	}
	if err := c.sendOpen(sid, open); err != nil {
		return sid, nil, nil, fmt.Errorf("simclient: session %d: open: %w", sid, err)
	}
	d.Reset()
	for {
		var in inbound
		select {
		case in = <-s.data:
		case err := <-s.fail:
			c.noteFailed()
			return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, err)
		case <-c.done:
			// Drain a message that raced the shutdown.
			select {
			case in = <-s.data:
			default:
				if err := c.Err(); err != nil {
					return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, err)
				}
				return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, ErrClientClosed)
			}
		}
		if spans && tFirst.IsZero() {
			tFirst = time.Now()
			telemetry.PhaseOpen.Observe(tFirst.Sub(tOpen).Seconds())
		}
		inner := in.inner
		// The session layer adds messages the legacy loop never sees: an
		// aborted open, and the full result preceding EpisodeEnd.
		switch kind, err := proto.Kind(inner); {
		case err == nil && kind == proto.KindSessionError:
			se, err := proto.DecodeSessionError(inner)
			if err != nil {
				return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, err)
			}
			c.noteFailed()
			return sid, nil, nil, &SessionError{SID: sid, Reason: se.Reason}
		case err == nil && kind == proto.KindEpisodeResult:
			result, err = proto.DecodeEpisodeResult(inner)
			if err != nil {
				return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, err)
			}
			if spans {
				tResult = time.Now()
			}
			transport.Recycle(in.msg)
			continue
		}
		reply, end, err := st.step(inner, sid, d)
		if err != nil {
			return sid, nil, nil, fmt.Errorf("simclient: session %d: %w", sid, err)
		}
		// Every decoder copies what it keeps, so the transport buffer can
		// go back to the pool before the reply is even sent.
		transport.Recycle(in.msg)
		if end != nil {
			if spans {
				now := time.Now()
				if tResult.IsZero() {
					telemetry.PhaseFrames.Observe(now.Sub(tFirst).Seconds())
				} else {
					telemetry.PhaseFrames.Observe(tResult.Sub(tFirst).Seconds())
					telemetry.PhaseResult.Observe(now.Sub(tResult).Seconds())
				}
			}
			c.noteCompleted()
			return sid, result, end, nil
		}
		if reply != nil {
			if err := c.conn.Send(reply); err != nil {
				return sid, nil, nil, fmt.Errorf("simclient: session %d: send control: %w", sid, err)
			}
		}
	}
}

// SimResult converts a full wire result back into the sim.Result the
// server serialized — the inverse of simserver.WireResult, bit-exact for
// every float field.
func SimResult(w *proto.EpisodeResult) sim.Result {
	res := sim.Result{
		Status:       sim.Status(w.Status),
		Success:      w.Success,
		Frames:       int(w.Frames),
		DistanceM:    w.DistanceM,
		DurationS:    w.DurationS,
		RouteLengthM: w.RouteLengthM,
	}
	for _, v := range w.Violations {
		res.Violations = append(res.Violations, sim.Violation{
			Kind:    sim.ViolationKind(v.Kind),
			TimeSec: v.TimeSec,
			Pos:     geom.Vec{X: v.PosX, Y: v.PosY},
		})
	}
	return res
}
