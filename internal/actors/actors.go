// Package actors implements the non-player traffic of the AVFI world
// simulator: NPC vehicles that drive the road network with lane keeping,
// junction choices and car following, and pedestrians that roam the
// sidewalks and occasionally cross the street.
//
// These populate the paper's simulated urban environment ("describing
// behavior of cars and pedestrians moving in that world") and are the
// collision partners behind the Accidents-Per-KM metric. Behaviour is a
// pure function of the actor's rng stream, keeping campaigns reproducible.
package actors

import (
	"math"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

// Vehicle is an NPC car: it follows the right-hand lane of its current
// edge, picks a random turn at each junction, and yields to obstacles
// ahead.
type Vehicle struct {
	State  physics.VehicleState
	Params physics.VehicleParams

	town   *world.Town
	from   world.NodeID
	to     world.NodeID
	speed  float64 // cruise target, m/s
	parked bool
	r      *rng.Stream
}

// NewVehicle spawns an NPC on the edge (from, to), at fraction frac along
// it, cruising at the given speed.
func NewVehicle(town *world.Town, from, to world.NodeID, frac, cruise float64, r *rng.Stream) *Vehicle {
	a := town.Net.Node(from).Pos
	b := town.Net.Node(to).Pos
	dir := b.Sub(a).Norm()
	lane := dir.Perp().Scale(-town.Net.LaneWidth / 2)
	pos := a.Lerp(b, geom.Clamp(frac, 0.05, 0.95)).Add(lane)
	return &Vehicle{
		State:  physics.VehicleState{Pose: geom.Pose{Pos: pos, Heading: dir.Angle()}},
		Params: physics.DefaultVehicleParams(),
		town:   town,
		from:   from,
		to:     to,
		speed:  cruise,
		r:      r,
	}
}

// NewParked spawns a stationary vehicle at the pose — a parked car. Its
// Step never moves it.
func NewParked(town *world.Town, pose geom.Pose) *Vehicle {
	return &Vehicle{
		State:  physics.VehicleState{Pose: pose},
		Params: physics.DefaultVehicleParams(),
		town:   town,
		parked: true,
	}
}

// OBB returns the vehicle's collision box.
func (v *Vehicle) OBB() geom.OBB { return physics.VehicleOBB(v.State, v.Params) }

// Edge returns the NPC's current directed edge, for tests.
func (v *Vehicle) Edge() (from, to world.NodeID) { return v.from, v.to }

// laneTarget returns the point the NPC steers toward: a lookahead down its
// current lane.
func (v *Vehicle) laneTarget() geom.Vec {
	a := v.town.Net.Node(v.from).Pos
	b := v.town.Net.Node(v.to).Pos
	seg := geom.Seg(a, b)
	t, _ := seg.Project(v.State.Pose.Pos)
	look := geom.Clamp(t+8/math.Max(seg.Len(), 1e-9), 0, 1)
	dir := seg.Dir()
	lane := dir.Perp().Scale(-v.town.Net.LaneWidth / 2)
	return seg.At(look).Add(lane)
}

// Step advances the NPC by dt. blockers are boxes it must not rear-end
// (the ego and other NPCs).
func (v *Vehicle) Step(dt float64, blockers []geom.OBB) {
	if v.parked {
		return
	}
	// Junction handoff: close to the destination node, pick the next edge.
	if v.State.Pose.Pos.Dist(v.town.Net.Node(v.to).Pos) < v.town.Net.LaneWidth*1.5 {
		v.advanceEdge()
	}

	target := v.laneTarget()
	local := v.State.Pose.ToLocal(target)
	// Pure-pursuit-style steer toward the lookahead point.
	steer := geom.Clamp(math.Atan2(local.Y, math.Max(local.X, 0.5))/v.Params.MaxSteerAngle, -1, 1)

	// Car following: brake if a blocker sits in the corridor ahead.
	throttle, brake := 0.5, 0.0
	if v.State.Speed > v.speed {
		throttle = 0
	}
	corridor := geom.NewOBB(v.State.Pose.Advance(v.Params.Length/2+6), 12, v.Params.Width+0.6)
	for _, b := range blockers {
		if corridor.Intersects(b) {
			throttle, brake = 0, 1
			break
		}
	}
	v.State = physics.StepVehicle(v.State, physics.Control{Steer: steer, Throttle: throttle, Brake: brake}, v.Params, dt)
}

// advanceEdge picks the NPC's next edge at a junction: a random neighbor,
// avoiding an immediate U-turn when any alternative exists.
func (v *Vehicle) advanceEdge() {
	nbs := v.town.Net.Neighbors(v.to)
	if len(nbs) == 0 {
		return
	}
	choices := make([]world.NodeID, 0, len(nbs))
	for _, n := range nbs {
		if n != v.from {
			choices = append(choices, n)
		}
	}
	if len(choices) == 0 {
		choices = nbs // dead end: U-turn allowed
	}
	next := choices[v.r.Intn(len(choices))]
	v.from, v.to = v.to, next
}

// Pedestrian walks sidewalks and occasionally crosses the street. While
// crossing it is on the road and can be struck (an Accident in the paper's
// taxonomy).
type Pedestrian struct {
	State physics.PedestrianState

	town     *world.Town
	from     world.NodeID
	to       world.NodeID
	side     float64 // +1 = left sidewalk of from->to, -1 = right
	crossing bool
	crossTgt geom.Vec
	r        *rng.Stream
}

// CrossingProb is the per-step probability a mid-block pedestrian starts
// crossing the street.
const CrossingProb = 0.002

// walkSpeed is a typical pedestrian pace, m/s.
const walkSpeed = 1.4

// NewPedestrian spawns a walker on the sidewalk of edge (from, to) at
// fraction frac, on the given side (+1 left, -1 right).
func NewPedestrian(town *world.Town, from, to world.NodeID, frac, side float64, r *rng.Stream) *Pedestrian {
	p := &Pedestrian{town: town, from: from, to: to, side: math.Copysign(1, side), r: r}
	pos := p.sidewalkPoint(geom.Clamp(frac, 0.05, 0.95))
	p.State = physics.PedestrianState{Pos: pos, Speed: walkSpeed}
	return p
}

// sidewalkPoint returns the sidewalk centerline point at fraction t of the
// current edge.
func (p *Pedestrian) sidewalkPoint(t float64) geom.Vec {
	a := p.town.Net.Node(p.from).Pos
	b := p.town.Net.Node(p.to).Pos
	seg := geom.Seg(a, b)
	off := p.town.Net.RoadHalfWidth() + p.town.Net.SidewalkWidth/2
	return seg.At(t).Add(seg.Dir().Perp().Scale(p.side * off))
}

// Crossing reports whether the pedestrian is mid-street.
func (p *Pedestrian) Crossing() bool { return p.crossing }

// OBB returns the pedestrian's collision/render box.
func (p *Pedestrian) OBB() geom.OBB {
	return geom.NewOBB(geom.Pose{Pos: p.State.Pos, Heading: p.State.Heading}, 0.5, 0.5)
}

// Step advances the walker by dt.
func (p *Pedestrian) Step(dt float64) {
	if p.crossing {
		dir := p.crossTgt.Sub(p.State.Pos)
		if dir.Len() < 0.5 {
			p.crossing = false
			p.side = -p.side
		} else {
			p.State.Heading = dir.Angle()
		}
		p.State = physics.StepPedestrian(p.State, dt)
		return
	}

	a := p.town.Net.Node(p.from).Pos
	b := p.town.Net.Node(p.to).Pos
	seg := geom.Seg(a, b)
	t, _ := seg.Project(p.State.Pos)

	// Maybe start crossing mid-block.
	if t > 0.25 && t < 0.75 && p.r.Bool(CrossingProb) {
		p.crossing = true
		off := p.town.Net.RoadHalfWidth() + p.town.Net.SidewalkWidth/2
		p.crossTgt = seg.At(t).Add(seg.Dir().Perp().Scale(-p.side * off))
		return
	}

	// Reached the end of the block: pick a new edge.
	if t >= 0.95 {
		p.advanceEdge()
		a = p.town.Net.Node(p.from).Pos
		b = p.town.Net.Node(p.to).Pos
		seg = geom.Seg(a, b)
		t, _ = seg.Project(p.State.Pos)
	}

	target := p.sidewalkPoint(geom.Clamp(t+2/math.Max(seg.Len(), 1e-9), 0, 1))
	p.State.Heading = target.Sub(p.State.Pos).Angle()
	p.State = physics.StepPedestrian(p.State, dt)
}

func (p *Pedestrian) advanceEdge() {
	nbs := p.town.Net.Neighbors(p.to)
	if len(nbs) == 0 {
		p.from, p.to = p.to, p.from
		return
	}
	choices := make([]world.NodeID, 0, len(nbs))
	for _, n := range nbs {
		if n != p.from {
			choices = append(choices, n)
		}
	}
	if len(choices) == 0 {
		choices = nbs
	}
	p.from, p.to = p.to, choices[p.r.Intn(len(choices))]
}
