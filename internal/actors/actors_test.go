package actors

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

const dt = 1.0 / 15

func lineTown(t *testing.T) *world.Town {
	t.Helper()
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(300, 0))
	net.AddEdge(a, b)
	return &world.Town{Net: net}
}

func gridTown(t *testing.T) *world.Town {
	t.Helper()
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return town
}

func TestNPCVehicleFollowsLane(t *testing.T) {
	town := lineTown(t)
	v := NewVehicle(town, 0, 1, 0.2, 8, rng.New(2))
	for i := 0; i < 15*10; i++ {
		v.Step(dt, nil)
	}
	// Must have advanced along +X and stayed near its lane (y = -1.75).
	if v.State.Pose.Pos.X < 80 {
		t.Errorf("NPC barely moved: %v", v.State.Pose.Pos)
	}
	if math.Abs(v.State.Pose.Pos.Y+1.75) > 1.0 {
		t.Errorf("NPC strayed from lane center: %v", v.State.Pose.Pos)
	}
	if !town.Net.OnRoad(v.State.Pose.Pos) {
		t.Error("NPC drove off-road")
	}
}

func TestNPCVehicleStaysOnRoadInGridTown(t *testing.T) {
	town := gridTown(t)
	v := NewVehicle(town, 0, 1, 0.3, 7, rng.New(3))
	offRoad := 0
	for i := 0; i < 15*60; i++ {
		v.Step(dt, nil)
		if !town.Net.OnRoad(v.State.Pose.Pos) {
			offRoad++
		}
	}
	// Junction corner-cutting may briefly leave the pad; sustained
	// off-road driving is a bug.
	if frac := float64(offRoad) / (15 * 60); frac > 0.05 {
		t.Errorf("NPC off-road %.1f%% of the time", frac*100)
	}
}

func TestNPCVehicleAdvancesEdges(t *testing.T) {
	town := gridTown(t)
	v := NewVehicle(town, 0, 1, 0.8, 8, rng.New(4))
	f0, t0 := v.Edge()
	changed := false
	for i := 0; i < 15*120 && !changed; i++ {
		v.Step(dt, nil)
		if f, tt := v.Edge(); f != f0 || tt != t0 {
			changed = true
		}
	}
	if !changed {
		t.Error("NPC never advanced past its first junction")
	}
}

func TestNPCVehicleBrakesForBlocker(t *testing.T) {
	town := lineTown(t)
	v := NewVehicle(town, 0, 1, 0.1, 10, rng.New(5))
	// Get up to speed.
	for i := 0; i < 15*5; i++ {
		v.Step(dt, nil)
	}
	speedBefore := v.State.Speed
	if speedBefore < 3 {
		t.Fatalf("NPC too slow to test braking: %v", speedBefore)
	}
	// Park a blocker directly ahead.
	blocker := geom.NewOBB(geom.Pose{Pos: v.State.Pose.Pos.Add(geom.FromAngle(v.State.Pose.Heading).Scale(8)), Heading: v.State.Pose.Heading}, 4.5, 2)
	for i := 0; i < 15*2; i++ {
		v.Step(dt, []geom.OBB{blocker})
	}
	if v.State.Speed > speedBefore/2 {
		t.Errorf("NPC did not brake: %v -> %v", speedBefore, v.State.Speed)
	}
}

func TestNPCDeterministic(t *testing.T) {
	town := gridTown(t)
	run := func() geom.Vec {
		v := NewVehicle(town, 0, 1, 0.3, 8, rng.New(9))
		for i := 0; i < 15*30; i++ {
			v.Step(dt, nil)
		}
		return v.State.Pose.Pos
	}
	if run() != run() {
		t.Error("NPC trajectory not deterministic")
	}
}

func TestPedestrianWalksSidewalk(t *testing.T) {
	town := lineTown(t)
	p := NewPedestrian(town, 0, 1, 0.2, +1, rng.New(0)) // stream chosen so no crossing occurs quickly is not guaranteed...
	// Use a stream and short horizon so crossing is unlikely; verify
	// sidewalk position while not crossing.
	for i := 0; i < 15*5; i++ {
		p.Step(dt)
		if p.Crossing() {
			return // crossing behaviour tested separately
		}
		// Left sidewalk of a +X street is at y ≈ +4.5.
		if math.Abs(p.State.Pos.Y-4.5) > 1.5 {
			t.Fatalf("pedestrian off sidewalk: %v", p.State.Pos)
		}
	}
	if p.State.Pos.X < 60+1 {
		// Started at 0.2*300 = 60 and walks at 1.4 m/s.
		t.Errorf("pedestrian did not advance: %v", p.State.Pos)
	}
}

func TestPedestrianEventuallyCrosses(t *testing.T) {
	town := lineTown(t)
	p := NewPedestrian(town, 0, 1, 0.3, +1, rng.New(11))
	crossed := false
	for i := 0; i < 15*600 && !crossed; i++ {
		p.Step(dt)
		if p.Crossing() {
			crossed = true
		}
	}
	if !crossed {
		t.Error("pedestrian never crossed in 10 simulated minutes")
	}
	// Finish the crossing: ends on the other side.
	for i := 0; i < 15*30 && p.Crossing(); i++ {
		p.Step(dt)
	}
	if p.Crossing() {
		t.Error("crossing never completed")
	}
	if p.State.Pos.Y > 0 {
		t.Errorf("pedestrian ended on original side: %v", p.State.Pos)
	}
}

func TestPedestrianOBBSize(t *testing.T) {
	town := lineTown(t)
	p := NewPedestrian(town, 0, 1, 0.5, -1, rng.New(12))
	box := p.OBB()
	if box.HalfLen != 0.25 || box.HalfWid != 0.25 {
		t.Errorf("pedestrian box = %v x %v", box.HalfLen*2, box.HalfWid*2)
	}
}

func TestPedestrianDeterministic(t *testing.T) {
	town := gridTown(t)
	run := func() geom.Vec {
		p := NewPedestrian(town, 0, 1, 0.4, +1, rng.New(13))
		for i := 0; i < 15*60; i++ {
			p.Step(dt)
		}
		return p.State.Pos
	}
	if run() != run() {
		t.Error("pedestrian trajectory not deterministic")
	}
}

func TestVehicleOBBMatchesState(t *testing.T) {
	town := lineTown(t)
	v := NewVehicle(town, 0, 1, 0.5, 8, rng.New(14))
	box := v.OBB()
	if box.Pose.Pos.Dist(v.State.Pose.Pos) > v.Params.Length {
		t.Error("vehicle OBB far from its state")
	}
}
