//go:build !race

package proto_test

// raceEnabled reports whether the race detector is on; see race_test.go.
const raceEnabled = false
