package proto

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/rng"
)

func sampleFrame() *SensorFrame {
	pix := make([]byte, 4*3*3)
	for i := range pix {
		pix[i] = byte(i * 7)
	}
	return &SensorFrame{
		Frame:   42,
		TimeSec: 2.8,
		ImageW:  4,
		ImageH:  3,
		Pixels:  pix,
		Speed:   7.25,
		GPSX:    120.5,
		GPSY:    -33.25,
		Command: 2,
		Done:    true,
		Status:  3,
	}
}

func TestSensorFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	buf := EncodeSensorFrame(f)
	got, err := DecodeSensorFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame != f.Frame || got.TimeSec != f.TimeSec || got.Speed != f.Speed ||
		got.GPSX != f.GPSX || got.GPSY != f.GPSY || got.Command != f.Command ||
		got.Done != f.Done || got.Status != f.Status ||
		got.ImageW != f.ImageW || got.ImageH != f.ImageH {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
	for i := range f.Pixels {
		if got.Pixels[i] != f.Pixels[i] {
			t.Fatal("pixel payload corrupted")
		}
	}
}

func TestControlRoundTrip(t *testing.T) {
	c := &Control{Frame: 9, Steer: -0.5, Throttle: 0.75, Brake: 0.1}
	got, err := DecodeControl(EncodeControl(c))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Errorf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestEpisodeEndRoundTrip(t *testing.T) {
	e := &EpisodeEnd{Status: 2, Frames: 1234, DistanceM: 456.5}
	got, err := DecodeEpisodeEnd(EncodeEpisodeEnd(e))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Errorf("round trip mismatch: %+v vs %+v", got, e)
	}
}

func TestKindDetection(t *testing.T) {
	if k, err := Kind(EncodeControl(&Control{})); err != nil || k != KindControl {
		t.Errorf("Kind(control) = %v, %v", k, err)
	}
	if k, err := Kind(EncodeSensorFrame(sampleFrame())); err != nil || k != KindSensorFrame {
		t.Errorf("Kind(frame) = %v, %v", k, err)
	}
	if _, err := Kind([]byte{Version}); err == nil {
		t.Error("short buffer did not error")
	}
	if _, err := Kind([]byte{99, 1}); err == nil {
		t.Error("bad version did not error")
	}
	if _, err := Kind([]byte{Version, 99}); err == nil {
		t.Error("bad kind did not error")
	}
}

func TestDecodeWrongKind(t *testing.T) {
	if _, err := DecodeControl(EncodeSensorFrame(sampleFrame())); !errors.Is(err, ErrCodec) {
		t.Error("decoding frame as control did not error")
	}
	if _, err := DecodeSensorFrame(EncodeControl(&Control{})); !errors.Is(err, ErrCodec) {
		t.Error("decoding control as frame did not error")
	}
	if _, err := DecodeEpisodeEnd(EncodeControl(&Control{})); !errors.Is(err, ErrCodec) {
		t.Error("decoding control as end did not error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := EncodeSensorFrame(sampleFrame())
	for _, cut := range []int{2, 5, 10, len(full) - 1} {
		if _, err := DecodeSensorFrame(full[:cut]); !errors.Is(err, ErrCodec) {
			t.Errorf("truncation at %d did not error", cut)
		}
	}
	ctl := EncodeControl(&Control{Frame: 1})
	if _, err := DecodeControl(ctl[:8]); !errors.Is(err, ErrCodec) {
		t.Error("truncated control did not error")
	}
}

func TestDecodeRejectsHugePixelClaim(t *testing.T) {
	f := sampleFrame()
	buf := EncodeSensorFrame(f)
	// The pixel length field sits after version(1)+kind(1)+frame(4)+time(8)+w(2)+h(2).
	off := 1 + 1 + 4 + 8 + 2 + 2
	buf[off] = 0xFF
	buf[off+1] = 0xFF
	buf[off+2] = 0xFF
	buf[off+3] = 0xFF
	if _, err := DecodeSensorFrame(buf); !errors.Is(err, ErrCodec) {
		t.Error("huge pixel claim did not error")
	}
}

func TestDecodeRejectsMismatchedImageDims(t *testing.T) {
	f := sampleFrame()
	f.ImageW = 99 // dims no longer match len(Pixels)
	buf := EncodeSensorFrame(f)
	if _, err := DecodeSensorFrame(buf); !errors.Is(err, ErrCodec) {
		t.Error("mismatched dims did not error")
	}
}

func TestControlRoundTripProperty(t *testing.T) {
	err := quick.Check(func(frame uint32, steer, throttle, brake float64) bool {
		if math.IsNaN(steer) || math.IsNaN(throttle) || math.IsNaN(brake) {
			return true // NaN != NaN; codec preserves bits but equality fails
		}
		c := &Control{Frame: frame, Steer: steer, Throttle: throttle, Brake: brake}
		got, err := DecodeControl(EncodeControl(c))
		return err == nil && *got == *c
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestControlNaNPreservesBits(t *testing.T) {
	c := &Control{Steer: math.NaN()}
	got, err := DecodeControl(EncodeControl(c))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Steer) != math.Float64bits(c.Steer) {
		t.Error("NaN bit pattern not preserved")
	}
}

func TestSensorFrameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		w := 1 + r.Intn(16)
		h := 1 + r.Intn(16)
		pix := make([]byte, 3*w*h)
		for i := range pix {
			pix[i] = byte(r.Intn(256))
		}
		f := &SensorFrame{
			Frame: uint32(r.Intn(1 << 30)), TimeSec: r.Range(0, 1000),
			ImageW: uint16(w), ImageH: uint16(h), Pixels: pix,
			Speed: r.Range(0, 30), GPSX: r.Range(-500, 500), GPSY: r.Range(-500, 500),
			Command: uint8(r.Intn(5)), Done: r.Bool(0.5), Status: uint8(r.Intn(4)),
		}
		got, err := DecodeSensorFrame(EncodeSensorFrame(f))
		if err != nil {
			return false
		}
		if got.Frame != f.Frame || got.Speed != f.Speed || len(got.Pixels) != len(f.Pixels) {
			return false
		}
		for i := range f.Pixels {
			if got.Pixels[i] != f.Pixels[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
