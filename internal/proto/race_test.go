//go:build race

package proto_test

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool deliberately drops a fraction of Puts, so pooled-buffer
// zero-allocation assertions cannot hold and are skipped.
const raceEnabled = true
