// Delta-encoded sensor frames: consecutive frames of one episode differ
// in a small fraction of their pixels (the camera pans slowly against a
// mostly static scene), yet every frame ships the full pixel payload.
// KindSensorFrameDelta encodes a frame's pixels as a sparse patch against
// the previous frame on the same session — XOR against the prior pixels,
// run-length encoding the zero (unchanged) runs — while every scalar
// field travels verbatim. Reconstruction is byte-exact: the decoded
// frame re-encodes identically to its full-frame encoding (fuzz-pinned),
// so campaigns are bit-identical whichever encoding carried them.
//
// Wire form (big-endian, after the version/kind header):
//
//	Frame   uint32
//	TimeSec float64
//	ImageW  uint16   — must equal the previous frame's geometry
//	ImageH  uint16
//	opsLen  uint32   — byte length of the pixel patch stream
//	ops     repeated (skip uvarint, lit uvarint, lit XOR bytes),
//	         covering exactly ImageW*ImageH*3 pixel bytes
//	Speed, GPSX, GPSY float64
//	beams   uint16 + beams float64 lidar ranges
//	Command, Done, Status bytes
//
// The encoder only emits a delta strictly smaller than the frame's full
// encoding and falls back to a keyframe otherwise (first frame, geometry
// change, or a patch that would not pay for itself). Both message sizes
// share every non-pixel byte, so "delta smaller than full" reduces to
// "patch stream shorter than the pixel payload" — which also proves a
// delta frame can never exceed the full frame's transport bound.
//
// Negotiation rides the session-0 capability hello (see batch.go): a
// server announces CapDeltaFrame, a delta-capable client replies with its
// own hello, and only then does the server start delta-encoding. Legacy
// peers never see a delta frame: old clients never reply (they drop
// session-0 traffic), and old servers never announce, so neither side
// needs probing or version checks.

package proto

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"github.com/avfi/avfi/internal/telemetry"
)

// KindSensorFrameDelta is server -> client: one frame of sensor data,
// pixels delta-encoded against the previous frame on the same session.
const KindSensorFrameDelta MsgKind = KindOpenEpisodeBatch + 1

// CapDeltaFrame is the capability token announcing SensorFrameDelta
// support. Servers announce it meaning "I can send deltas"; a client
// replies with it on session 0 meaning "I can decode them".
const CapDeltaFrame = "delta-frame"

// deltaMinSkip is the shortest unchanged run worth breaking a literal
// for: ending one (skip, lit) pair and opening the next costs at least
// two varint bytes, so shorter zero gaps are cheaper carried as literal
// XOR zeros. Encoder policy only — decoders accept any valid patch.
const deltaMinSkip = 3

// AppendSensorFrameDelta appends cur's delta encoding against prev (kind
// tag included) to dst. ok is false — with dst returned unchanged — when
// no delta may be emitted: mismatched geometry, or a patch stream at
// least as large as the full pixel payload (the delta would not beat
// AppendSensorFrame). prev must be the frame previously sent on the same
// stream; only its Pixels are read.
func AppendSensorFrameDelta(dst []byte, prev, cur *SensorFrame) ([]byte, bool) {
	if prev.ImageW != cur.ImageW || prev.ImageH != cur.ImageH ||
		len(prev.Pixels) != len(cur.Pixels) {
		return dst, false
	}
	base := len(dst)
	buf := append(dst, Version, byte(KindSensorFrameDelta))
	buf = binary.BigEndian.AppendUint32(buf, cur.Frame)
	buf = appendFloat(buf, cur.TimeSec)
	buf = binary.BigEndian.AppendUint16(buf, cur.ImageW)
	buf = binary.BigEndian.AppendUint16(buf, cur.ImageH)
	opsAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // opsLen, backfilled below
	var ok bool
	if buf, ok = appendPixelPatch(buf, prev.Pixels, cur.Pixels); !ok {
		return dst[:base], false
	}
	binary.BigEndian.PutUint32(buf[opsAt:], uint32(len(buf)-opsAt-4))
	buf = appendFloat(buf, cur.Speed)
	buf = appendFloat(buf, cur.GPSX)
	buf = appendFloat(buf, cur.GPSY)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(cur.Lidar)))
	for _, v := range cur.Lidar {
		buf = appendFloat(buf, v)
	}
	buf = append(buf, cur.Command, boolByte(cur.Done), cur.Status)
	return buf, true
}

// appendPixelPatch emits the (skip, lit, XOR bytes) op stream for cur
// against prev, aborting (ok false) as soon as the stream reaches the
// size of the raw pixel payload — the break-even point past which a
// keyframe is cheaper.
func appendPixelPatch(dst []byte, prev, cur []byte) ([]byte, bool) {
	n := len(cur)
	budget := len(dst) + n // strictly-smaller-than-full bound
	var varint [binary.MaxVarintLen64]byte
	i := 0
	for i < n {
		runStart := i
		i += matchLen(cur[i:], prev[i:])
		skip := i - runStart
		litStart := i
		for i < n {
			if cur[i] != prev[i] {
				i++
				continue
			}
			// An unchanged gap: absorb it into the literal when breaking
			// would cost more op bytes than it saves.
			g := i
			for g < n && g < i+deltaMinSkip && cur[g] == prev[g] {
				g++
			}
			if g == n || g-i >= deltaMinSkip {
				break
			}
			i = g + 1 // the byte at g differs; keep extending the literal
		}
		lit := i - litStart
		need := binary.PutUvarint(varint[:], uint64(skip))
		dst = append(dst, varint[:need]...)
		need = binary.PutUvarint(varint[:], uint64(lit))
		dst = append(dst, varint[:need]...)
		for j := litStart; j < i; j++ {
			dst = append(dst, cur[j]^prev[j])
		}
		if len(dst) >= budget {
			return dst, false
		}
	}
	return dst, true
}

// matchLen returns the length of the longest common prefix of a and b
// (equal lengths assumed). Unchanged runs dominate a slow-pan frame, so
// this is the encoder's hot loop: compare word-at-a-time and locate the
// first differing byte inside the mismatching word by its trailing zero
// bits (XOR is little-endian, so low bits are earlier bytes).
func matchLen(a, b []byte) int {
	i := 0
	for len(a) >= 8 && len(b) >= 8 {
		if x := binary.LittleEndian.Uint64(a) ^ binary.LittleEndian.Uint64(b); x != 0 {
			return i + bits.TrailingZeros64(x)/8
		}
		a, b = a[8:], b[8:]
		i += 8
	}
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
		i++
	}
	return i
}

// DecodeSensorFrameDelta parses an encoded delta frame against prev (the
// previous frame decoded on the same stream), returning the fully
// reconstructed frame.
func DecodeSensorFrameDelta(buf []byte, prev *SensorFrame) (*SensorFrame, error) {
	var f SensorFrame
	if err := DecodeSensorFrameDeltaInto(buf, prev, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeSensorFrameDeltaInto parses an encoded delta frame into f,
// reconstructing pixels against prev and reusing f's Pixels and Lidar
// capacity. f and prev must not be the same frame. On error f's contents
// are unspecified.
func DecodeSensorFrameDeltaInto(buf []byte, prev, f *SensorFrame) error {
	if k, err := Kind(buf); err != nil {
		return err
	} else if k != KindSensorFrameDelta {
		return fmt.Errorf("%w: kind %d is not a delta sensor frame", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	f.Frame = r.uint32()
	f.TimeSec = r.float()
	f.ImageW = r.uint16()
	f.ImageH = r.uint16()
	if r.err == nil && (f.ImageW != prev.ImageW || f.ImageH != prev.ImageH) {
		return fmt.Errorf("%w: delta geometry %dx%d against previous %dx%d",
			ErrCodec, f.ImageW, f.ImageH, prev.ImageW, prev.ImageH)
	}
	pixLen := int(f.ImageW) * int(f.ImageH) * 3
	if pixLen > MaxPayload {
		return fmt.Errorf("%w: pixel payload %d exceeds limit", ErrCodec, pixLen)
	}
	if len(prev.Pixels) != pixLen {
		return fmt.Errorf("%w: previous frame has %d pixel bytes, geometry wants %d",
			ErrCodec, len(prev.Pixels), pixLen)
	}
	opsLen := int(r.uint32())
	if opsLen > MaxPayload {
		return fmt.Errorf("%w: patch stream %d exceeds limit", ErrCodec, opsLen)
	}
	if !r.need(opsLen) {
		return fmt.Errorf("%w: delta frame: truncated patch stream", ErrCodec)
	}
	ops := r.buf[r.off : r.off+opsLen]
	r.off += opsLen
	var err error
	if f.Pixels, err = applyPixelPatch(f.Pixels[:0], prev.Pixels, ops); err != nil {
		return fmt.Errorf("%w: delta frame: %v", ErrCodec, err)
	}
	f.Speed = r.float()
	f.GPSX = r.float()
	f.GPSY = r.float()
	f.Lidar = f.Lidar[:0]
	if beams := int(r.uint16()); beams > 0 {
		if beams > 4096 {
			return fmt.Errorf("%w: %d lidar beams exceeds limit", ErrCodec, beams)
		}
		for i := 0; i < beams; i++ {
			f.Lidar = append(f.Lidar, r.float())
		}
	}
	f.Command = r.byte()
	f.Done = r.byte() != 0
	f.Status = r.byte()
	if r.err != nil {
		return fmt.Errorf("%w: delta frame: %v", ErrCodec, r.err)
	}
	return nil
}

// applyPixelPatch reconstructs the current pixels from prev and the op
// stream, appending into dst. The ops must cover prev exactly — partial
// or overlong coverage is stream corruption.
func applyPixelPatch(dst, prev, ops []byte) ([]byte, error) {
	pos := 0
	r := 0
	for r < len(ops) {
		skip, n := binary.Uvarint(ops[r:])
		if n <= 0 {
			return dst, fmt.Errorf("malformed skip varint at patch offset %d", r)
		}
		r += n
		lit, n := binary.Uvarint(ops[r:])
		if n <= 0 {
			return dst, fmt.Errorf("malformed literal varint at patch offset %d", r)
		}
		r += n
		if skip > uint64(len(prev)-pos) || lit > uint64(len(prev)-pos)-skip {
			return dst, fmt.Errorf("patch overruns %d pixel bytes at %d (+%d +%d)",
				len(prev), pos, skip, lit)
		}
		if lit > uint64(len(ops)-r) {
			return dst, fmt.Errorf("literal of %d exceeds remaining patch bytes", lit)
		}
		dst = append(dst, prev[pos:pos+int(skip)]...)
		pos += int(skip)
		for j := 0; j < int(lit); j++ {
			dst = append(dst, prev[pos+j]^ops[r+j])
		}
		pos += int(lit)
		r += int(lit)
	}
	if pos != len(prev) {
		return dst, fmt.Errorf("patch covers %d of %d pixel bytes", pos, len(prev))
	}
	return dst, nil
}

// FrameEncoder encodes one session's outbound frame stream with zero
// steady-state allocations, delta-compressing against the previously
// encoded frame whenever the caller allows it and the delta pays for
// itself. Not safe for concurrent use; one per session.
type FrameEncoder struct {
	frames [2]SensorFrame
	cur    int
	have   bool
	buf    []byte
	deltas int
}

// Next returns the scratch frame to fill with the next observation. The
// caller should append into the existing Pixels/Lidar capacity (slices
// come reset to length zero) to stay allocation-free, then call Encode.
func (e *FrameEncoder) Next() *SensorFrame {
	f := &e.frames[e.cur]
	f.Pixels = f.Pixels[:0]
	f.Lidar = f.Lidar[:0]
	return f
}

// Encode envelopes the frame last returned by Next for session and
// returns the encoded message, valid until the next Encode call. With
// allowDelta set (the peer announced CapDeltaFrame) and a previous frame
// on record, pixels go as a delta when that is strictly smaller;
// otherwise — first frame, geometry change, delta not profitable, or
// deltas disallowed — a full keyframe is sent.
func (e *FrameEncoder) Encode(session uint32, allowDelta bool) []byte {
	cur := &e.frames[e.cur]
	buf := AppendEnvelopeHeader(e.buf[:0], session)
	sent := false
	if allowDelta && e.have {
		if b, ok := AppendSensorFrameDelta(buf, &e.frames[1-e.cur], cur); ok {
			buf, sent = b, true
			e.deltas++
		}
	}
	if !sent {
		buf = AppendSensorFrame(buf, cur)
	}
	if sent {
		telemetry.FramesEncodedDelta.Inc()
	} else {
		telemetry.FramesEncodedKey.Inc()
	}
	telemetry.FramesEncodedBytes.Add(uint64(len(buf)))
	telemetry.FramesRawBytes.Add(uint64(len(cur.Pixels)))
	e.buf = buf
	e.have = true
	e.cur = 1 - e.cur
	return buf
}

// Deltas reports how many frames went out delta-encoded.
func (e *FrameEncoder) Deltas() int { return e.deltas }

// FrameDecoder decodes one session's inbound frame stream — full
// keyframes and deltas alike — with zero steady-state allocations. The
// returned frame is valid until the next Decode call. Not safe for
// concurrent use; one per session.
type FrameDecoder struct {
	frames [2]SensorFrame
	cur    int
	have   bool
	deltas int
}

// Decode parses the next frame message of the stream (KindSensorFrame or
// KindSensorFrameDelta) into a reused scratch frame.
func (d *FrameDecoder) Decode(msg []byte) (*SensorFrame, error) {
	next := 1 - d.cur
	f := &d.frames[next]
	kind, err := Kind(msg)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindSensorFrame:
		if err := DecodeSensorFrameInto(msg, f); err != nil {
			return nil, err
		}
		telemetry.FramesDecodedKey.Inc()
	case KindSensorFrameDelta:
		if !d.have {
			return nil, fmt.Errorf("%w: delta frame with no previous frame on the stream", ErrCodec)
		}
		if err := DecodeSensorFrameDeltaInto(msg, &d.frames[d.cur], f); err != nil {
			return nil, err
		}
		d.deltas++
		telemetry.FramesDecodedDelta.Inc()
	default:
		return nil, fmt.Errorf("%w: kind %d is not a frame message", ErrCodec, kind)
	}
	d.cur = next
	d.have = true
	return f, nil
}

// Deltas reports how many frames arrived delta-encoded.
func (d *FrameDecoder) Deltas() int { return d.deltas }
