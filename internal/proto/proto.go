// Package proto defines the wire protocol between the AVFI world-simulator
// server and the driving-agent client — the boundary CARLA's TCP protocol
// occupies in the paper's architecture (Figure 1's sensor-data and action
// paths).
//
// Keeping this an explicit message layer matters to AVFI: the paper's
// timing faults act on exactly this link ("delays in flow of data from one
// component of the AV system to another, loss of data, or out-of-order
// delivery of the data packets"), and its hardware faults corrupt message
// payloads in flight. Messages are encoded with a compact length-prefixed
// binary codec (encoding/binary, no reflection) shared by the in-process
// and TCP transports.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the protocol version byte; bumped on incompatible change.
const Version = 1

// MsgKind discriminates wire messages.
type MsgKind byte

// Message kinds. Enums start at one so a zero byte is detectably invalid.
const (
	KindInvalid MsgKind = iota
	// KindSensorFrame is server -> client: one frame of sensor data.
	KindSensorFrame
	// KindControl is client -> server: one actuation command.
	KindControl
	// KindEpisodeEnd is server -> client: mission over.
	KindEpisodeEnd
)

// ErrCodec is wrapped by all encode/decode failures.
var ErrCodec = errors.New("proto: codec error")

// MaxPayload bounds a message body (1 MiB); a length prefix beyond this is
// treated as stream corruption rather than an allocation request.
const MaxPayload = 1 << 20

// SensorFrame is one frame of sensor data: the camera image (8-bit
// channels, as CARLA ships them), speedometer, GPS fix, the high-level
// navigation command, and episode bookkeeping.
type SensorFrame struct {
	Frame   uint32
	TimeSec float64
	// Image geometry and packed channel-major pixels.
	ImageW, ImageH uint16
	Pixels         []byte
	Speed          float64
	GPSX, GPSY     float64
	// Lidar carries the planar scanner's ranges (beam 0 = forward,
	// counterclockwise); empty when the episode has no LIDAR.
	Lidar []float64
	// Command is the conditional-IL command (world.TurnKind numeric value).
	Command uint8
	// Done and Status close the episode (Status is sim.Status numeric).
	Done   bool
	Status uint8
}

// Control is one actuation command, normalized like CARLA's VehicleControl.
type Control struct {
	// Frame echoes the sensor frame this control answers.
	Frame    uint32
	Steer    float64
	Throttle float64
	Brake    float64
}

// EpisodeEnd reports final mission status.
type EpisodeEnd struct {
	Status    uint8
	Frames    uint32
	DistanceM float64
}

// SensorFrameSize is the exact encoded size of f — the capacity to
// reserve so AppendSensorFrame never grows the buffer.
func SensorFrameSize(f *SensorFrame) int {
	return 1 + 1 + 4 + 8 + 2 + 2 + 4 + len(f.Pixels) + 8 + 8 + 8 + 2 + 8*len(f.Lidar) + 1 + 1 + 1
}

// AppendSensorFrame appends f's encoding (kind tag included) to dst and
// returns the extended buffer — the allocation-free variant of
// EncodeSensorFrame for hot frame loops that reuse a send buffer.
func AppendSensorFrame(dst []byte, f *SensorFrame) []byte {
	buf := append(dst, Version, byte(KindSensorFrame))
	buf = binary.BigEndian.AppendUint32(buf, f.Frame)
	buf = appendFloat(buf, f.TimeSec)
	buf = binary.BigEndian.AppendUint16(buf, f.ImageW)
	buf = binary.BigEndian.AppendUint16(buf, f.ImageH)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Pixels)))
	buf = append(buf, f.Pixels...)
	buf = appendFloat(buf, f.Speed)
	buf = appendFloat(buf, f.GPSX)
	buf = appendFloat(buf, f.GPSY)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Lidar)))
	for _, v := range f.Lidar {
		buf = appendFloat(buf, v)
	}
	buf = append(buf, f.Command, boolByte(f.Done), f.Status)
	return buf
}

// EncodeSensorFrame serializes f with its kind tag.
func EncodeSensorFrame(f *SensorFrame) []byte {
	return AppendSensorFrame(make([]byte, 0, SensorFrameSize(f)), f)
}

// AppendControl appends c's encoding (kind tag included) to dst.
func AppendControl(dst []byte, c *Control) []byte {
	buf := append(dst, Version, byte(KindControl))
	buf = binary.BigEndian.AppendUint32(buf, c.Frame)
	buf = appendFloat(buf, c.Steer)
	buf = appendFloat(buf, c.Throttle)
	buf = appendFloat(buf, c.Brake)
	return buf
}

// EncodeControl serializes c with its kind tag.
func EncodeControl(c *Control) []byte {
	return AppendControl(make([]byte, 0, 1+1+4+3*8), c)
}

// EncodeEpisodeEnd serializes e with its kind tag.
func EncodeEpisodeEnd(e *EpisodeEnd) []byte {
	buf := make([]byte, 0, 1+1+1+4+8)
	buf = append(buf, Version, byte(KindEpisodeEnd))
	buf = append(buf, e.Status)
	buf = binary.BigEndian.AppendUint32(buf, e.Frames)
	buf = appendFloat(buf, e.DistanceM)
	return buf
}

// Kind peeks the message kind of an encoded buffer.
func Kind(buf []byte) (MsgKind, error) {
	if len(buf) < 2 {
		return KindInvalid, fmt.Errorf("%w: message too short (%d bytes)", ErrCodec, len(buf))
	}
	if buf[0] != Version {
		return KindInvalid, fmt.Errorf("%w: version %d, want %d", ErrCodec, buf[0], Version)
	}
	k := MsgKind(buf[1])
	switch k {
	case KindSensorFrame, KindControl, KindEpisodeEnd,
		KindEnvelope, KindOpenEpisode, KindSessionError, KindEpisodeResult,
		KindOpenEpisodeBatch, KindSensorFrameDelta:
		return k, nil
	}
	return KindInvalid, fmt.Errorf("%w: unknown kind %d", ErrCodec, buf[1])
}

// DecodeSensorFrame parses an encoded sensor frame.
func DecodeSensorFrame(buf []byte) (*SensorFrame, error) {
	var f SensorFrame
	if err := DecodeSensorFrameInto(buf, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeSensorFrameInto parses an encoded sensor frame into f, reusing
// f's Pixels and Lidar slice capacity — the allocation-free variant of
// DecodeSensorFrame for hot frame loops that recycle a scratch frame.
// On error f's contents are unspecified.
func DecodeSensorFrameInto(buf []byte, f *SensorFrame) error {
	if k, err := Kind(buf); err != nil {
		return err
	} else if k != KindSensorFrame {
		return fmt.Errorf("%w: kind %d is not a sensor frame", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	f.Frame = r.uint32()
	f.TimeSec = r.float()
	f.ImageW = r.uint16()
	f.ImageH = r.uint16()
	pixLen := int(r.uint32())
	if pixLen > MaxPayload {
		return fmt.Errorf("%w: pixel payload %d exceeds limit", ErrCodec, pixLen)
	}
	f.Pixels = r.appendBytes(f.Pixels[:0], pixLen)
	f.Speed = r.float()
	f.GPSX = r.float()
	f.GPSY = r.float()
	f.Lidar = f.Lidar[:0]
	if beams := int(r.uint16()); beams > 0 {
		if beams > 4096 {
			return fmt.Errorf("%w: %d lidar beams exceeds limit", ErrCodec, beams)
		}
		for i := 0; i < beams; i++ {
			f.Lidar = append(f.Lidar, r.float())
		}
	}
	f.Command = r.byte()
	f.Done = r.byte() != 0
	f.Status = r.byte()
	if r.err != nil {
		return fmt.Errorf("%w: sensor frame: %v", ErrCodec, r.err)
	}
	if int(f.ImageW)*int(f.ImageH)*3 != len(f.Pixels) {
		return fmt.Errorf("%w: %dx%d image with %d pixel bytes", ErrCodec, f.ImageW, f.ImageH, len(f.Pixels))
	}
	return nil
}

// DecodeControl parses an encoded control command.
func DecodeControl(buf []byte) (*Control, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindControl {
		return nil, fmt.Errorf("%w: kind %d is not a control", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	var c Control
	c.Frame = r.uint32()
	c.Steer = r.float()
	c.Throttle = r.float()
	c.Brake = r.float()
	if r.err != nil {
		return nil, fmt.Errorf("%w: control: %v", ErrCodec, r.err)
	}
	return &c, nil
}

// DecodeEpisodeEnd parses an encoded episode end.
func DecodeEpisodeEnd(buf []byte) (*EpisodeEnd, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindEpisodeEnd {
		return nil, fmt.Errorf("%w: kind %d is not an episode end", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	var e EpisodeEnd
	e.Status = r.byte()
	e.Frames = r.uint32()
	e.DistanceM = r.float()
	if r.err != nil {
		return nil, fmt.Errorf("%w: episode end: %v", ErrCodec, r.err)
	}
	return &e, nil
}

// reader is a bounds-checked cursor over an encoded message.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}

func (r *reader) byte() byte {
	if !r.need(1) {
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uint16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) float() float64 {
	if !r.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) appendBytes(dst []byte, n int) []byte {
	if n < 0 {
		r.err = fmt.Errorf("negative length %d", n)
		return dst
	}
	if !r.need(n) {
		return dst
	}
	dst = append(dst, r.buf[r.off:r.off+n]...)
	r.off += n
	return dst
}

func (r *reader) bytes(n int) []byte {
	if n < 0 {
		r.err = fmt.Errorf("negative length %d", n)
		return nil
	}
	if !r.need(n) {
		return nil
	}
	out := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return out
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendUint16(buf []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(buf, v)
}

func appendUint32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

func appendUint64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
