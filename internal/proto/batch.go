// Batched episode dispatch: opening an episode costs one enveloped
// message per session, so a campaign saturating a remote worker pays one
// transport send (and, over TCP, one syscall) per episode just to start
// it. OpenEpisodeBatch coalesces many (session, OpenEpisode) pairs into a
// single message — the scheduler's group commit — and the capability hello
// lets a new client discover whether its peer speaks it.
//
// Compatibility is one-sided by construction. The hello rides a
// SessionError enveloped on session 0, which is never allocated (client
// session IDs start at 1): legacy clients drop messages for unknown
// sessions on the floor, so a new server announcing the capability is
// invisible to them, while a new client only batches after it has seen the
// announcement — against a legacy worker it falls back to single opens
// automatically. Legacy servers kill the connection on unknown kinds,
// which is exactly why the client must never probe with the batch message
// itself.

package proto

import (
	"fmt"
	"strconv"
	"strings"
)

// KindOpenEpisodeBatch is client -> server: open many episodes, each on
// its own session, in one message.
const KindOpenEpisodeBatch MsgKind = KindEpisodeResult + 1

// MaxBatchOpens bounds one batch on the wire; a count beyond it is stream
// corruption.
const MaxBatchOpens = 1 << 10

// CapBatchOpen is the capability token announcing OpenEpisodeBatch
// support.
const CapBatchOpen = "batch-open"

// capabilityPrefix opens a capability hello's reason line.
const capabilityPrefix = "avfi-capabilities:"

// worldCapPrefix opens the world-config hash token inside a capability
// hello. Like every unknown token it is ignored by peers that predate it,
// so announcing a world hash never breaks a legacy pairing.
const worldCapPrefix = "world:"

// WorldCapToken renders a world-configuration hash (sim.WorldConfig.Hash)
// as a capability-hello token. A worker announces its world's hash at
// dial time so a campaign configured for a different world fails fast
// instead of silently producing non-bit-identical results.
func WorldCapToken(hash uint64) string {
	return fmt.Sprintf("%s%016x", worldCapPrefix, hash)
}

// ParseWorldCap recognizes a world-hash token from a capability hello.
// ok is false for every other token (including malformed hashes, which
// are treated as absent rather than fatal — the hello is advisory).
func ParseWorldCap(token string) (hash uint64, ok bool) {
	rest, found := strings.CutPrefix(token, worldCapPrefix)
	if !found {
		return 0, false
	}
	h, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return h, true
}

// OpenBatchEntry is one episode of a batch: the session to open it on and
// its scenario.
type OpenBatchEntry struct {
	SID  uint32
	Open *OpenEpisode
}

// EncodeOpenEpisodeBatch serializes entries with the batch kind tag. Each
// entry embeds a complete length-prefixed EncodeOpenEpisode message, so
// OpenEpisode extensions (like WantResult's trailing byte) flow through
// batches unchanged.
func EncodeOpenEpisodeBatch(entries []OpenBatchEntry) []byte {
	buf := make([]byte, 0, 2+2+len(entries)*(4+4+32))
	buf = append(buf, Version, byte(KindOpenEpisodeBatch))
	buf = appendUint16(buf, uint16(len(entries)))
	for _, e := range entries {
		inner := EncodeOpenEpisode(e.Open)
		buf = appendUint32(buf, e.SID)
		buf = appendUint32(buf, uint32(len(inner)))
		buf = append(buf, inner...)
	}
	return buf
}

// DecodeOpenEpisodeBatch parses an encoded batch.
func DecodeOpenEpisodeBatch(buf []byte) ([]OpenBatchEntry, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindOpenEpisodeBatch {
		return nil, fmt.Errorf("%w: kind %d is not an open-episode batch", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	n := int(r.uint16())
	if n > MaxBatchOpens {
		return nil, fmt.Errorf("%w: batch of %d opens exceeds limit", ErrCodec, n)
	}
	entries := make([]OpenBatchEntry, 0, n)
	for i := 0; i < n; i++ {
		sid := r.uint32()
		innerLen := int(r.uint32())
		if innerLen > MaxPayload {
			return nil, fmt.Errorf("%w: batch entry %d: %d-byte open exceeds limit", ErrCodec, i, innerLen)
		}
		inner := r.bytes(innerLen)
		if r.err != nil {
			return nil, fmt.Errorf("%w: open-episode batch: %v", ErrCodec, r.err)
		}
		open, err := DecodeOpenEpisode(inner)
		if err != nil {
			return nil, fmt.Errorf("%w: batch entry %d: %v", ErrCodec, i, err)
		}
		entries = append(entries, OpenBatchEntry{SID: sid, Open: open})
	}
	if r.err != nil || r.off != len(buf) {
		return nil, fmt.Errorf("%w: open-episode batch: malformed", ErrCodec)
	}
	return entries, nil
}

// EncodeCapabilityHello builds the server's capability announcement: a
// SessionError whose reason is the capability line, to be enveloped on
// session 0 by the caller. Riding an existing message kind keeps the hello
// decodable (and ignorable) by every legacy client.
func EncodeCapabilityHello(caps ...string) []byte {
	return EncodeSessionError(&SessionError{Reason: capabilityPrefix + " " + strings.Join(caps, " ")})
}

// ParseCapabilityHello recognizes a capability line in a session-0
// SessionError reason, returning the announced tokens. ok is false for
// ordinary errors.
func ParseCapabilityHello(reason string) (caps []string, ok bool) {
	rest, found := strings.CutPrefix(reason, capabilityPrefix)
	if !found {
		return nil, false
	}
	return strings.Fields(rest), true
}
