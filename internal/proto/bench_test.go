// Frame-path benchmarks: the encode -> envelope -> transport -> decode
// round trip that dominates an episode's wall clock. External test
// package so the codec benchmarks can drive a real transport.Conn.
package proto_test

import (
	"testing"

	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// benchFrame builds a camera-scale frame (w x h RGB plus lidar) with a
// structured image — flat regions with occasional edges, the shape real
// renders have and delta runs exploit.
func benchFrame(w, h int) *proto.SensorFrame {
	pix := make([]byte, w*h*3)
	for i := range pix {
		pix[i] = byte((i / 64) * 13)
	}
	return &proto.SensorFrame{
		Frame:  1,
		ImageW: uint16(w), ImageH: uint16(h),
		Pixels: pix,
		Speed:  8.5, GPSX: 120, GPSY: -45,
		Lidar:   []float64{9, 9, 9, 7.5, 6, 9, 9, 9},
		Command: 1,
	}
}

// churnPixels advances the frame one step: a sliding band of pixels
// changes (about 1%), the slow-pan workload between consecutive frames.
func churnPixels(pix []byte, step int) {
	n := len(pix) / 100
	off := (step * n) % len(pix)
	for i := 0; i < n; i++ {
		pix[(off+i)%len(pix)] += byte(step)
	}
}

// fillFrame copies src into a codec scratch frame, reusing its capacity.
func fillFrame(dst, src *proto.SensorFrame) {
	dst.Frame = src.Frame
	dst.TimeSec = src.TimeSec
	dst.ImageW, dst.ImageH = src.ImageW, src.ImageH
	dst.Pixels = append(dst.Pixels[:0], src.Pixels...)
	dst.Speed, dst.GPSX, dst.GPSY = src.Speed, src.GPSX, src.GPSY
	dst.Lidar = append(dst.Lidar[:0], src.Lidar...)
	dst.Command, dst.Done, dst.Status = src.Command, src.Done, src.Status
}

// frameServer answers each inbound message with the next frame of a
// churning stream, encoded per mode, until the connection dies.
func frameServer(l *transport.Listener, mode string) {
	conn, err := l.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	const sid = 1
	src := benchFrame(160, 120)
	var enc proto.FrameEncoder
	step := 0
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		transport.Recycle(req)
		var msg []byte
		if mode == "legacy" {
			// The pre-optimization encode path: fresh buffers per frame.
			msg = proto.EncodeEnvelope(sid, proto.EncodeSensorFrame(src))
		} else {
			fillFrame(enc.Next(), src)
			msg = enc.Encode(sid, mode == "delta")
		}
		if err := conn.Send(msg); err != nil {
			return
		}
		step++
		churnPixels(src.Pixels, step)
		src.Frame++
	}
}

// BenchmarkFrameRoundTrip measures sensor-frame throughput over loopback
// TCP — encode, envelope, send, receive, decode, control reply — in three
// shapes: the legacy allocating keyframe path, the pooled zero-allocation
// keyframe path, and the delta-encoded stream.
func BenchmarkFrameRoundTrip(b *testing.B) {
	for _, mode := range []string{"legacy", "full", "delta"} {
		b.Run(mode, func(b *testing.B) {
			l, err := transport.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go frameServer(l, mode)
			conn, err := transport.Dial(l.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()

			ctl := proto.EncodeEnvelope(1, proto.EncodeControl(&proto.Control{Frame: 1}))
			var dec proto.FrameDecoder
			wireBytes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(ctl); err != nil {
					b.Fatal(err)
				}
				msg, err := conn.Recv()
				if err != nil {
					b.Fatal(err)
				}
				wireBytes += len(msg)
				_, inner, err := proto.DecodeEnvelope(msg)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "legacy" {
					if _, err := proto.DecodeSensorFrame(inner); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := dec.Decode(inner); err != nil {
						b.Fatal(err)
					}
					transport.Recycle(msg)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
			b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/frame")
		})
	}
}

// BenchmarkSensorFrameDelta isolates the delta codec itself: patch
// encoding against the previous frame, and reconstruction.
func BenchmarkSensorFrameDelta(b *testing.B) {
	prev := benchFrame(160, 120)
	cur := benchFrame(160, 120)
	churnPixels(cur.Pixels, 1)
	buf, ok := proto.AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		b.Fatal("no delta for a 1% churned frame")
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(cur.Pixels)))
		for i := 0; i < b.N; i++ {
			if _, ok := proto.AppendSensorFrameDelta(buf[:0], prev, cur); !ok {
				b.Fatal("delta fell back")
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(cur.Pixels)))
		var f proto.SensorFrame
		for i := 0; i < b.N; i++ {
			if err := proto.DecodeSensorFrameDeltaInto(buf, prev, &f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestFrameRoundTripZeroAllocs pins the full transport round trip —
// pooled encode, vectored send, pooled receive, stream decode, recycled
// buffers — at (near) zero steady-state allocations per frame, over real
// TCP. Strictly zero is asserted for the codec alone in
// TestFrameCodecZeroAllocs; here anything below one alloc per frame on
// average proves the pools are cycling. Telemetry collection is enabled
// for the run: the hot-path instruments (transport byte/message counters,
// frame codec counters, writev batch histogram) must observe without
// allocating, or a -status-addr endpoint would cost the frame path its
// zero-allocation property.
func TestFrameRoundTripZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; pooled zero-alloc cannot hold")
	}
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go frameServer(l, "delta")
	conn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctl := proto.EncodeEnvelope(1, proto.EncodeControl(&proto.Control{Frame: 1}))
	var dec proto.FrameDecoder
	step := func() {
		if err := conn.Send(ctl); err != nil {
			t.Fatal(err)
		}
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		_, inner, err := proto.DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(inner); err != nil {
			t.Fatal(err)
		}
		transport.Recycle(msg)
	}
	// Warm the codec scratch on both ends and the transport buffer pool
	// (the first frames are keyframes and size every reusable buffer).
	for i := 0; i < 16; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs >= 1 {
		t.Errorf("frame round trip allocates %.2f times per frame, want < 1", allocs)
	}
}

// BenchmarkTelemetryOverhead measures what metric collection costs the
// frame hot path: the same delta-stream round trip as
// BenchmarkFrameRoundTrip/delta, with the process-wide telemetry gate off
// and on. The enabled path adds a handful of atomic increments and one
// histogram bucket search per message; the bench-pool CI gate fails if
// enabling collection ever costs the frame path more than its regression
// budget.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "disabled"
		if on {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			prev := telemetry.Enabled()
			telemetry.SetEnabled(on)
			defer telemetry.SetEnabled(prev)
			l, err := transport.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go frameServer(l, "delta")
			conn, err := transport.Dial(l.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()

			ctl := proto.EncodeEnvelope(1, proto.EncodeControl(&proto.Control{Frame: 1}))
			var dec proto.FrameDecoder
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(ctl); err != nil {
					b.Fatal(err)
				}
				msg, err := conn.Recv()
				if err != nil {
					b.Fatal(err)
				}
				_, inner, err := proto.DecodeEnvelope(msg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.Decode(inner); err != nil {
					b.Fatal(err)
				}
				transport.Recycle(msg)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}
