package proto

import (
	"bytes"
	"errors"
	"testing"

	"github.com/avfi/avfi/internal/rng"
)

// nextFrame derives a plausible successor of prev: most pixels unchanged,
// a few touched, scalars advanced — the shape delta encoding exists for.
func nextFrame(prev *SensorFrame, changed int, r *rng.Stream) *SensorFrame {
	cur := &SensorFrame{
		Frame:   prev.Frame + 1,
		TimeSec: prev.TimeSec + 0.1,
		ImageW:  prev.ImageW,
		ImageH:  prev.ImageH,
		Pixels:  append([]byte(nil), prev.Pixels...),
		Speed:   prev.Speed + 0.5,
		GPSX:    prev.GPSX + 1,
		GPSY:    prev.GPSY - 1,
		Lidar:   append([]float64(nil), prev.Lidar...),
		Command: prev.Command,
		Done:    prev.Done,
		Status:  prev.Status,
	}
	for i := 0; i < changed && len(cur.Pixels) > 0; i++ {
		cur.Pixels[r.Intn(len(cur.Pixels))] ^= byte(1 + r.Intn(255))
	}
	return cur
}

func frameEqualExact(t *testing.T, got, want *SensorFrame) {
	t.Helper()
	// Byte-exact reconstruction contract: the decoded frame re-encodes
	// identically to the full-frame encoding of the original.
	if !bytes.Equal(EncodeSensorFrame(got), EncodeSensorFrame(want)) {
		t.Fatalf("reconstruction not byte-exact:\n got %+v\nwant %+v", got, want)
	}
}

func TestSensorFrameDeltaRoundTrip(t *testing.T) {
	r := rng.New(7)
	prev := sampleFrame()
	prev.Lidar = []float64{1.5, 2.5, 9}
	cur := nextFrame(prev, 5, r)

	buf, ok := AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		t.Fatal("delta not emitted for a nearly identical frame")
	}
	if len(buf) >= len(EncodeSensorFrame(cur)) {
		t.Errorf("delta (%d bytes) not smaller than full frame (%d bytes)",
			len(buf), len(EncodeSensorFrame(cur)))
	}
	if k, err := Kind(buf); err != nil || k != KindSensorFrameDelta {
		t.Fatalf("Kind = %v, %v", k, err)
	}
	got, err := DecodeSensorFrameDelta(buf, prev)
	if err != nil {
		t.Fatal(err)
	}
	frameEqualExact(t, got, cur)
}

func TestSensorFrameDeltaIdenticalFrame(t *testing.T) {
	prev := sampleFrame()
	cur := nextFrame(prev, 0, rng.New(1)) // scalars differ, pixels identical
	buf, ok := AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		t.Fatal("delta not emitted for identical pixels")
	}
	got, err := DecodeSensorFrameDelta(buf, prev)
	if err != nil {
		t.Fatal(err)
	}
	frameEqualExact(t, got, cur)
}

func TestSensorFrameDeltaFallsBackWhenNotSmaller(t *testing.T) {
	r := rng.New(3)
	prev := sampleFrame()
	cur := nextFrame(prev, 0, r)
	for i := range cur.Pixels {
		cur.Pixels[i] = byte(r.Intn(256)) // every byte churned: delta cannot win
	}
	marker := []byte("prefix")
	buf, ok := AppendSensorFrameDelta(marker, prev, cur)
	if ok {
		t.Fatal("delta emitted though not smaller than a keyframe")
	}
	if !bytes.Equal(buf, marker) {
		t.Error("failed encode did not restore dst")
	}
}

func TestSensorFrameDeltaRejectsGeometryChange(t *testing.T) {
	prev := sampleFrame()
	cur := sampleFrame()
	cur.ImageW, cur.ImageH = 3, 4
	cur.Pixels = cur.Pixels[:3*4*3]
	if _, ok := AppendSensorFrameDelta(nil, prev, cur); ok {
		t.Error("delta emitted across a geometry change")
	}
}

func TestSensorFrameDeltaDecodeRejectsCorruption(t *testing.T) {
	prev := sampleFrame()
	cur := nextFrame(prev, 4, rng.New(9))
	buf, ok := AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		t.Fatal("no delta")
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":      func(b []byte) []byte { return b[:len(b)-20] },
		"patch-overrun":  func(b []byte) []byte { b[2+4+8+2+2+4] = 0xFF; return b }, // huge first skip varint payload
		"short-coverage": func(b []byte) []byte { b[2+4+8+2+2+3]--; return b },      // opsLen shrunk by one
	} {
		b := mutate(append([]byte(nil), buf...))
		if _, err := DecodeSensorFrameDelta(b, prev); err == nil {
			t.Errorf("%s: corrupted delta decoded without error", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

func TestSensorFrameDeltaDecodeRejectsWrongPrevGeometry(t *testing.T) {
	prev := sampleFrame()
	cur := nextFrame(prev, 2, rng.New(4))
	buf, ok := AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		t.Fatal("no delta")
	}
	other := sampleFrame()
	other.ImageW, other.ImageH = 3, 4
	other.Pixels = other.Pixels[:3*4*3]
	if _, err := DecodeSensorFrameDelta(buf, other); err == nil {
		t.Error("delta decoded against a previous frame of different geometry")
	}
}

// TestFrameEncoderDecoderStream drives a multi-frame episode through the
// paired stream codecs: keyframe first, deltas after, geometry change
// forcing a keyframe mid-stream, and byte-exact reconstruction throughout.
func TestFrameEncoderDecoderStream(t *testing.T) {
	r := rng.New(11)
	var enc FrameEncoder
	var dec FrameDecoder
	want := sampleFrame()
	want.Lidar = []float64{3, 4, 5}

	const session = 17
	for i := 0; i < 12; i++ {
		if i == 7 {
			// Geometry change mid-stream must fall back to a keyframe.
			want = sampleFrame()
			want.ImageW, want.ImageH = 3, 4
			want.Pixels = want.Pixels[:3*4*3]
		}
		fillSensorFrame(enc.Next(), want)
		msg := enc.Encode(session, true)
		sid, inner, err := DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if sid != session {
			t.Fatalf("frame %d enveloped for session %d", i, sid)
		}
		kind, _ := Kind(inner)
		if (i == 0 || i == 7) && kind != KindSensorFrame {
			t.Errorf("frame %d: kind %d, want keyframe", i, kind)
		}
		got, err := dec.Decode(inner)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		frameEqualExact(t, got, want)
		want = nextFrame(want, 6, r)
	}
	if enc.Deltas() == 0 || enc.Deltas() != dec.Deltas() {
		t.Errorf("delta counts: encoder %d, decoder %d", enc.Deltas(), dec.Deltas())
	}
}

// TestFrameEncoderLegacyMode pins that allowDelta=false yields only full
// keyframes — the wire a legacy peer must see.
func TestFrameEncoderLegacyMode(t *testing.T) {
	r := rng.New(5)
	var enc FrameEncoder
	want := sampleFrame()
	for i := 0; i < 4; i++ {
		fillSensorFrame(enc.Next(), want)
		_, inner, err := DecodeEnvelope(enc.Encode(1, false))
		if err != nil {
			t.Fatal(err)
		}
		if k, _ := Kind(inner); k != KindSensorFrame {
			t.Fatalf("frame %d: kind %d, want full keyframe", i, k)
		}
		if !bytes.Equal(inner, EncodeSensorFrame(want)) {
			t.Fatalf("frame %d: legacy encoding differs from EncodeSensorFrame", i)
		}
		want = nextFrame(want, 3, r)
	}
	if enc.Deltas() != 0 {
		t.Errorf("legacy mode emitted %d deltas", enc.Deltas())
	}
}

func fillSensorFrame(dst, src *SensorFrame) {
	*dst = SensorFrame{
		Frame: src.Frame, TimeSec: src.TimeSec,
		ImageW: src.ImageW, ImageH: src.ImageH,
		Pixels: append(dst.Pixels[:0], src.Pixels...),
		Speed:  src.Speed, GPSX: src.GPSX, GPSY: src.GPSY,
		Lidar:   append(dst.Lidar[:0], src.Lidar...),
		Command: src.Command, Done: src.Done, Status: src.Status,
	}
}

func TestFrameDecoderRejectsDeltaWithoutKeyframe(t *testing.T) {
	prev := sampleFrame()
	cur := nextFrame(prev, 2, rng.New(2))
	buf, ok := AppendSensorFrameDelta(nil, prev, cur)
	if !ok {
		t.Fatal("no delta")
	}
	var dec FrameDecoder
	if _, err := dec.Decode(buf); err == nil {
		t.Error("decoder accepted a delta with no previous frame")
	}
}

// TestFrameCodecZeroAllocs pins the pooled encode/decode path at zero
// steady-state allocations per frame.
func TestFrameCodecZeroAllocs(t *testing.T) {
	r := rng.New(13)
	var enc FrameEncoder
	var dec FrameDecoder
	src := sampleFrame()
	src.ImageW, src.ImageH = 64, 48
	src.Pixels = make([]byte, 64*48*3)
	for i := range src.Pixels {
		src.Pixels[i] = byte(r.Intn(256))
	}
	src.Lidar = []float64{1, 2, 3, 4, 5}

	step := func() {
		fillSensorFrame(enc.Next(), src)
		msg := enc.Encode(3, true)
		_, inner, err := DecodeEnvelope(msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(inner); err != nil {
			t.Fatal(err)
		}
		src.Frame++
		src.Pixels[int(src.Frame)%len(src.Pixels)] ^= 0x5A
	}
	// Warm both scratch frames and the encode buffer.
	for i := 0; i < 4; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("frame encode/decode allocates %.1f times per frame, want 0", allocs)
	}
}

// FuzzSensorFrameDelta fuzzes the delta codec against the byte-exactness
// contract: for arbitrary geometries and pixel contents, whenever a delta
// is emitted it decodes back to a frame whose full encoding is identical
// to the original's.
func FuzzSensorFrameDelta(f *testing.F) {
	f.Add(uint16(4), uint16(3), []byte{1, 2, 3}, []byte{0, 0, 1}, 3.5)
	f.Add(uint16(1), uint16(1), []byte{}, []byte{255}, 0.0)
	f.Add(uint16(8), uint16(2), bytes.Repeat([]byte{9}, 48), []byte{0}, -1.0)
	f.Fuzz(func(t *testing.T, w, h uint16, base, churn []byte, speed float64) {
		w, h = w%64+1, h%64+1
		pixLen := int(w) * int(h) * 3
		prev := &SensorFrame{Frame: 1, ImageW: w, ImageH: h, Pixels: make([]byte, pixLen)}
		for i := range prev.Pixels {
			if len(base) > 0 {
				prev.Pixels[i] = base[i%len(base)]
			}
		}
		cur := &SensorFrame{
			Frame: 2, TimeSec: 0.1, ImageW: w, ImageH: h,
			Pixels: append([]byte(nil), prev.Pixels...),
			Speed:  speed, Lidar: []float64{1.25},
			Command: 1, Status: 2,
		}
		for i, b := range churn {
			cur.Pixels[(i*37)%pixLen] ^= b
		}
		buf, ok := AppendSensorFrameDelta(nil, prev, cur)
		if !ok {
			return // keyframe fallback: nothing to check
		}
		if len(buf) >= SensorFrameSize(cur) {
			t.Fatalf("delta %d bytes, full frame %d", len(buf), SensorFrameSize(cur))
		}
		got, err := DecodeSensorFrameDelta(buf, prev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(EncodeSensorFrame(got), EncodeSensorFrame(cur)) {
			t.Fatal("reconstruction not byte-exact")
		}
	})
}

// FuzzDecodeSensorFrameDelta hammers the decoder with arbitrary bytes: it
// must error or succeed, never panic or read out of bounds.
func FuzzDecodeSensorFrameDelta(f *testing.F) {
	prev := sampleFrame()
	cur := nextFrame(prev, 3, rng.New(8))
	if seed, ok := AppendSensorFrameDelta(nil, prev, cur); ok {
		f.Add(seed)
	}
	f.Add([]byte{Version, byte(KindSensorFrameDelta), 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, buf []byte) {
		_, _ = DecodeSensorFrameDelta(buf, prev)
	})
}
