package proto

import (
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	inner := EncodeControl(&Control{Frame: 7, Steer: -0.25, Throttle: 0.5, Brake: 0})
	env := EncodeEnvelope(42, inner)

	if k, err := Kind(env); err != nil || k != KindEnvelope {
		t.Fatalf("Kind(envelope) = %v, %v", k, err)
	}
	sid, got, err := DecodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if sid != 42 {
		t.Errorf("session = %d, want 42", sid)
	}
	ctl, err := DecodeControl(got)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Frame != 7 || ctl.Steer != -0.25 || ctl.Throttle != 0.5 {
		t.Errorf("inner control mangled: %+v", ctl)
	}
}

func TestEnvelopeCarriesEveryKind(t *testing.T) {
	inners := map[string][]byte{
		"sensor": EncodeSensorFrame(&SensorFrame{
			Frame: 1, ImageW: 2, ImageH: 1, Pixels: make([]byte, 6),
		}),
		"end":   EncodeEpisodeEnd(&EpisodeEnd{Status: 2, Frames: 9, DistanceM: 12.5}),
		"open":  EncodeOpenEpisode(&OpenEpisode{From: 3, To: 4, Seed: 99}),
		"error": EncodeSessionError(&SessionError{Reason: "boom"}),
	}
	for name, inner := range inners {
		sid, got, err := DecodeEnvelope(EncodeEnvelope(7, inner))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sid != 7 || len(got) != len(inner) {
			t.Errorf("%s: sid=%d len=%d want 7/%d", name, sid, len(got), len(inner))
		}
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeEnvelope(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, err := DecodeEnvelope([]byte{Version, byte(KindEnvelope), 0, 0}); err == nil {
		t.Error("truncated session ID accepted")
	}
	// Envelope whose payload is not a valid message.
	env := EncodeEnvelope(1, []byte{Version})
	if _, _, err := DecodeEnvelope(env); err == nil {
		t.Error("truncated payload accepted")
	}
	// Non-envelope message.
	ctl := EncodeControl(&Control{Frame: 1})
	if _, _, err := DecodeEnvelope(ctl); err == nil {
		t.Error("bare control accepted as envelope")
	}
}

func TestOpenEpisodeRoundTrip(t *testing.T) {
	in := &OpenEpisode{
		From: 11, To: 29, Seed: 0xdeadbeefcafe,
		Weather: 2, NumNPCs: 8, NumPedestrians: 4,
		TimeoutSec: 90.5, GoalRadius: 6,
	}
	out, err := DecodeOpenEpisode(EncodeOpenEpisode(in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeOpenEpisode(EncodeControl(&Control{})); err == nil {
		t.Error("control accepted as open-episode")
	}
	if _, err := DecodeOpenEpisode(EncodeOpenEpisode(in)[:10]); err == nil {
		t.Error("truncated open-episode accepted")
	}
}

func TestSessionErrorRoundTrip(t *testing.T) {
	out, err := DecodeSessionError(EncodeSessionError(&SessionError{Reason: "no route"}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Reason != "no route" {
		t.Errorf("reason = %q", out.Reason)
	}

	// Oversized reasons are truncated on encode, not rejected.
	long := strings.Repeat("x", MaxReason+100)
	out, err = DecodeSessionError(EncodeSessionError(&SessionError{Reason: long}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reason) != MaxReason {
		t.Errorf("truncated reason len = %d, want %d", len(out.Reason), MaxReason)
	}
}
