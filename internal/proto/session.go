// Session-multiplexed framing: an Envelope tags any legacy message with a
// session ID so one transport.Conn can carry many concurrent episodes, and
// OpenEpisode/SessionError form the handshake around the existing
// SensorFrame/Control/EpisodeEnd episode body.
//
// The envelope is a regular kind-tagged message whose payload is itself an
// encoded message, so the legacy single-episode codec keeps working
// unchanged: un-enveloped streams decode exactly as before, and enveloped
// streams reuse the same inner encoders.

package proto

import (
	"fmt"
)

// Session-layer message kinds (continuing the legacy enum).
const (
	// KindEnvelope wraps an inner message with a session ID.
	KindEnvelope MsgKind = iota + KindEpisodeEnd + 1
	// KindOpenEpisode is client -> server: start an episode on a session.
	KindOpenEpisode
	// KindSessionError is server -> client: the session failed to open or
	// aborted; carries a reason and closes the session.
	KindSessionError
)

// MaxReason bounds a SessionError reason string on the wire.
const MaxReason = 1 << 12

// OpenEpisode asks the server to start an episode on the enclosing
// envelope's session. It is the wire form of sim.EpisodeConfig: the server
// owns the world and builds the episode from these parameters. By default
// the wire protocol carries only the EpisodeEnd summary back; set
// WantResult for the full EpisodeResult message (violation list included),
// which is what lets a truly remote campaign skip the in-process
// Server.Result side channel.
type OpenEpisode struct {
	// From and To are the mission's start and goal intersections (NodeIDs).
	From, To uint32
	// Seed drives all episode randomness.
	Seed uint64
	// Weather is the world.Weather numeric value.
	Weather uint8
	// NumNPCs and NumPedestrians populate the town.
	NumNPCs        uint16
	NumPedestrians uint16
	// TimeoutSec and GoalRadius override episode defaults when non-zero.
	TimeoutSec float64
	GoalRadius float64
	// WantResult asks the server to send the full EpisodeResult message
	// before EpisodeEnd. Encoded as an optional trailing byte: buffers from
	// older encoders decode with it false, and older decoders ignore it.
	WantResult bool
}

// SessionError reports a failed session (e.g. episode construction error).
type SessionError struct {
	Reason string
}

// EnvelopeOverhead is the byte cost of enveloping an inner message: the
// envelope's own version/kind header plus the session ID.
const EnvelopeOverhead = 2 + 4

// AppendEnvelope appends an envelope wrapping inner to dst — the
// allocation-free variant of EncodeEnvelope.
func AppendEnvelope(dst []byte, session uint32, inner []byte) []byte {
	dst = AppendEnvelopeHeader(dst, session)
	return append(dst, inner...)
}

// AppendEnvelopeHeader appends only the envelope framing for session, so
// hot paths can append the inner message directly behind it (via
// AppendSensorFrame and friends) without materializing it separately.
func AppendEnvelopeHeader(dst []byte, session uint32) []byte {
	dst = append(dst, Version, byte(KindEnvelope))
	return appendUint32(dst, session)
}

// EncodeEnvelope wraps an already-encoded inner message with a session ID.
func EncodeEnvelope(session uint32, inner []byte) []byte {
	return AppendEnvelope(make([]byte, 0, EnvelopeOverhead+len(inner)), session, inner)
}

// DecodeEnvelope unwraps an envelope, returning the session ID and the
// inner encoded message (a subslice of buf, not a copy).
func DecodeEnvelope(buf []byte) (uint32, []byte, error) {
	if k, err := Kind(buf); err != nil {
		return 0, nil, err
	} else if k != KindEnvelope {
		return 0, nil, fmt.Errorf("%w: kind %d is not an envelope", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	session := r.uint32()
	if r.err != nil {
		return 0, nil, fmt.Errorf("%w: envelope: %v", ErrCodec, r.err)
	}
	inner := buf[r.off:]
	if _, err := Kind(inner); err != nil {
		return 0, nil, fmt.Errorf("%w: envelope payload: %v", ErrCodec, err)
	}
	return session, inner, nil
}

// EncodeOpenEpisode serializes o with its kind tag.
func EncodeOpenEpisode(o *OpenEpisode) []byte {
	buf := make([]byte, 0, 2+4+4+8+1+2+2+8+8+1)
	buf = append(buf, Version, byte(KindOpenEpisode))
	buf = appendUint32(buf, o.From)
	buf = appendUint32(buf, o.To)
	buf = appendUint64(buf, o.Seed)
	buf = append(buf, o.Weather)
	buf = appendUint16(buf, o.NumNPCs)
	buf = appendUint16(buf, o.NumPedestrians)
	buf = appendFloat(buf, o.TimeoutSec)
	buf = appendFloat(buf, o.GoalRadius)
	buf = append(buf, boolByte(o.WantResult))
	return buf
}

// DecodeOpenEpisode parses an encoded open-episode request.
func DecodeOpenEpisode(buf []byte) (*OpenEpisode, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindOpenEpisode {
		return nil, fmt.Errorf("%w: kind %d is not an open-episode", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	var o OpenEpisode
	o.From = r.uint32()
	o.To = r.uint32()
	o.Seed = r.uint64()
	o.Weather = r.byte()
	o.NumNPCs = r.uint16()
	o.NumPedestrians = r.uint16()
	o.TimeoutSec = r.float()
	o.GoalRadius = r.float()
	// WantResult is an optional trailing extension: absent in buffers from
	// pre-EpisodeResult encoders, which must keep decoding (as false).
	if r.err == nil && r.off < len(buf) {
		o.WantResult = r.byte() != 0
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: open episode: %v", ErrCodec, r.err)
	}
	return &o, nil
}

// EncodeSessionError serializes e with its kind tag. Oversized reasons are
// truncated rather than rejected: the error path must not itself error.
func EncodeSessionError(e *SessionError) []byte {
	reason := e.Reason
	if len(reason) > MaxReason {
		reason = reason[:MaxReason]
	}
	buf := make([]byte, 0, 2+2+len(reason))
	buf = append(buf, Version, byte(KindSessionError))
	buf = appendUint16(buf, uint16(len(reason)))
	buf = append(buf, reason...)
	return buf
}

// DecodeSessionError parses an encoded session error.
func DecodeSessionError(buf []byte) (*SessionError, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindSessionError {
		return nil, fmt.Errorf("%w: kind %d is not a session error", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	n := int(r.uint16())
	if n > MaxReason {
		return nil, fmt.Errorf("%w: reason length %d exceeds limit", ErrCodec, n)
	}
	raw := r.bytes(n)
	if r.err != nil {
		return nil, fmt.Errorf("%w: session error: %v", ErrCodec, r.err)
	}
	return &SessionError{Reason: string(raw)}, nil
}
