package proto

import (
	"reflect"
	"testing"
)

func TestEpisodeResultRoundTrip(t *testing.T) {
	in := &EpisodeResult{
		Status: 3, Success: true, Frames: 451,
		DistanceM: 812.375, DurationS: 30.25, RouteLengthM: 901.5,
		Violations: []WireViolation{
			{Kind: 1, TimeSec: 4.5, PosX: -12.25, PosY: 88.0625},
			{Kind: 4, TimeSec: 11.75, PosX: 3, PosY: -7},
		},
	}
	buf := EncodeEpisodeResult(in)
	if k, err := Kind(buf); err != nil || k != KindEpisodeResult {
		t.Fatalf("Kind = %v, %v", k, err)
	}
	out, err := DecodeEpisodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mangled:\n in  %+v\n out %+v", in, out)
	}
}

func TestEpisodeResultNoViolations(t *testing.T) {
	in := &EpisodeResult{Status: 2, Success: true, Frames: 10, DistanceM: 5}
	out, err := DecodeEpisodeResult(EncodeEpisodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mangled: %+v vs %+v", in, out)
	}
}

func TestEpisodeResultRejectsGarbage(t *testing.T) {
	if _, err := DecodeEpisodeResult(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeEpisodeResult(EncodeControl(&Control{Frame: 1})); err == nil {
		t.Error("control accepted as episode result")
	}
	// Truncate mid-violation list.
	full := EncodeEpisodeResult(&EpisodeResult{
		Violations: []WireViolation{{Kind: 2, TimeSec: 1}},
	})
	if _, err := DecodeEpisodeResult(full[:len(full)-4]); err == nil {
		t.Error("truncated violation list accepted")
	}
}

func TestEpisodeResultTruncatesOversizedViolationList(t *testing.T) {
	in := &EpisodeResult{Violations: make([]WireViolation, MaxViolations+5)}
	out, err := DecodeEpisodeResult(EncodeEpisodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != MaxViolations {
		t.Errorf("violations = %d, want truncation to %d", len(out.Violations), MaxViolations)
	}
}

func TestOpenEpisodeWantResultRoundTrip(t *testing.T) {
	in := &OpenEpisode{From: 1, To: 2, Seed: 9, WantResult: true}
	out, err := DecodeOpenEpisode(EncodeOpenEpisode(in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("round trip mangled: %+v vs %+v", in, out)
	}
}

// TestOpenEpisodeLegacyBufferDecodes pins wire compatibility: a buffer from
// a pre-WantResult encoder (no trailing byte) must still decode, with
// WantResult defaulting to false.
func TestOpenEpisodeLegacyBufferDecodes(t *testing.T) {
	buf := EncodeOpenEpisode(&OpenEpisode{From: 11, To: 29, Seed: 7, NumNPCs: 3})
	legacy := buf[:len(buf)-1] // strip the optional trailing byte
	out, err := DecodeOpenEpisode(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if out.WantResult {
		t.Error("legacy buffer decoded with WantResult set")
	}
	if out.From != 11 || out.To != 29 || out.Seed != 7 || out.NumNPCs != 3 {
		t.Errorf("legacy fields mangled: %+v", out)
	}
}
