// Full-result message: EpisodeEnd deliberately carries only a summary
// (status, frames, distance), which forces campaign metrics to read the
// violation list from the Server in-process — fine when client and server
// share an address space, impossible for a truly remote campaign.
// EpisodeResult closes that gap: it is the complete wire form of
// sim.Result, sent (immediately before EpisodeEnd) only when the client's
// OpenEpisode asked for it, so the legacy summary-only exchange is
// untouched.

package proto

import (
	"fmt"
)

// KindEpisodeResult is server -> client: the full episode result
// (violation list included), sent before EpisodeEnd when the session's
// OpenEpisode set WantResult.
const KindEpisodeResult MsgKind = KindSessionError + 1

// MaxViolations bounds the violation list on the wire. Violations are
// debounced events (one per kind per cooldown window), so real episodes
// produce a handful; a count beyond this is stream corruption.
const MaxViolations = 1 << 14

// WireViolation is one debounced violation event in wire form.
type WireViolation struct {
	// Kind is the sim.ViolationKind numeric value.
	Kind uint8
	// TimeSec is the episode time at which the event started.
	TimeSec float64
	// PosX and PosY are where the ego vehicle was.
	PosX, PosY float64
}

// EpisodeResult is the complete wire form of a finished episode's
// sim.Result.
type EpisodeResult struct {
	// Status is the sim.Status numeric value.
	Status uint8
	// Success reports whether the mission completed within its budget.
	Success bool
	// Frames is the episode length in simulation frames.
	Frames uint32
	// DistanceM, DurationS and RouteLengthM summarize the drive.
	DistanceM    float64
	DurationS    float64
	RouteLengthM float64
	// Violations are the debounced events.
	Violations []WireViolation
}

// EncodeEpisodeResult serializes r with its kind tag. Violation lists
// beyond MaxViolations are truncated rather than rejected: the result path
// must not itself error.
func EncodeEpisodeResult(res *EpisodeResult) []byte {
	viols := res.Violations
	if len(viols) > MaxViolations {
		viols = viols[:MaxViolations]
	}
	buf := make([]byte, 0, 2+1+1+4+3*8+2+len(viols)*(1+3*8))
	buf = append(buf, Version, byte(KindEpisodeResult))
	buf = append(buf, res.Status, boolByte(res.Success))
	buf = appendUint32(buf, res.Frames)
	buf = appendFloat(buf, res.DistanceM)
	buf = appendFloat(buf, res.DurationS)
	buf = appendFloat(buf, res.RouteLengthM)
	buf = appendUint16(buf, uint16(len(viols)))
	for _, v := range viols {
		buf = append(buf, v.Kind)
		buf = appendFloat(buf, v.TimeSec)
		buf = appendFloat(buf, v.PosX)
		buf = appendFloat(buf, v.PosY)
	}
	return buf
}

// DecodeEpisodeResult parses an encoded full episode result.
func DecodeEpisodeResult(buf []byte) (*EpisodeResult, error) {
	if k, err := Kind(buf); err != nil {
		return nil, err
	} else if k != KindEpisodeResult {
		return nil, fmt.Errorf("%w: kind %d is not an episode result", ErrCodec, k)
	}
	r := reader{buf: buf, off: 2}
	var res EpisodeResult
	res.Status = r.byte()
	res.Success = r.byte() != 0
	res.Frames = r.uint32()
	res.DistanceM = r.float()
	res.DurationS = r.float()
	res.RouteLengthM = r.float()
	n := int(r.uint16())
	if n > MaxViolations {
		return nil, fmt.Errorf("%w: %d violations exceeds limit", ErrCodec, n)
	}
	if n > 0 {
		res.Violations = make([]WireViolation, n)
		for i := range res.Violations {
			res.Violations[i].Kind = r.byte()
			res.Violations[i].TimeSec = r.float()
			res.Violations[i].PosX = r.float()
			res.Violations[i].PosY = r.float()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: episode result: %v", ErrCodec, r.err)
	}
	return &res, nil
}
