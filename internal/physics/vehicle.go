// Package physics implements the vehicle and pedestrian dynamics of the
// AVFI world simulator: a kinematic bicycle model with throttle/brake/steer
// actuation, pedestrian kinematics, and the oriented-bounding-box collision
// queries the violation detectors use.
//
// It is the stand-in for Unreal Engine's physics in the paper's CARLA
// stack. A kinematic bicycle is the standard fidelity level for urban-speed
// AV control research and preserves what matters to AVFI: corrupted control
// commands translate into lane departures, curb strikes, and collisions
// with realistic (bounded steer/accel) vehicle responses.
package physics

import (
	"math"

	"github.com/avfi/avfi/internal/geom"
)

// Control is an actuation command for one simulation step. Fields are
// normalized exactly like CARLA's VehicleControl message: Steer in [-1, 1]
// (positive = left), Throttle and Brake in [0, 1].
type Control struct {
	Steer    float64
	Throttle float64
	Brake    float64
}

// Sanitize clamps the control into its legal ranges, mapping non-finite
// values to zero. Fault injectors deliberately produce NaN/Inf/huge
// commands; the actuator boundary (this function) is where the physical
// plant's limits apply, mirroring a real drive-by-wire ECU's input guards.
func (c Control) Sanitize() Control {
	return Control{
		Steer:    clampFinite(c.Steer, -1, 1),
		Throttle: clampFinite(c.Throttle, 0, 1),
		Brake:    clampFinite(c.Brake, 0, 1),
	}
}

func clampFinite(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return geom.Clamp(x, lo, hi)
}

// VehicleParams are the physical constants of a vehicle.
type VehicleParams struct {
	// Wheelbase is the front-to-rear axle distance in meters.
	Wheelbase float64
	// MaxSteerAngle is the maximum road-wheel angle in radians.
	MaxSteerAngle float64
	// SteerRate limits how fast the road-wheel angle can change (rad/s).
	SteerRate float64
	// MaxAccel and MaxBrake are the peak longitudinal accelerations (m/s^2).
	MaxAccel float64
	MaxBrake float64
	// Drag is a linear speed-proportional deceleration coefficient (1/s).
	Drag float64
	// MaxSpeed caps forward speed (m/s).
	MaxSpeed float64
	// Length and Width are the collision footprint in meters.
	Length float64
	Width  float64
}

// DefaultVehicleParams returns a mid-size car, CARLA-sedan-like.
func DefaultVehicleParams() VehicleParams {
	return VehicleParams{
		Wheelbase:     2.7,
		MaxSteerAngle: 35 * math.Pi / 180,
		SteerRate:     4.0,
		MaxAccel:      3.5,
		MaxBrake:      8.0,
		Drag:          0.08,
		MaxSpeed:      20,
		Length:        4.5,
		Width:         2.0,
	}
}

// VehicleState is the dynamic state of one vehicle.
type VehicleState struct {
	Pose  geom.Pose
	Speed float64 // m/s along the heading; the model is forward-only
	Steer float64 // current road-wheel angle in radians
}

// StepVehicle advances state by dt seconds under the given control using a
// kinematic bicycle model. The control is sanitized first; the returned
// state is always finite.
func StepVehicle(s VehicleState, ctl Control, p VehicleParams, dt float64) VehicleState {
	ctl = ctl.Sanitize()

	// Steering with rate limit toward the commanded angle.
	target := ctl.Steer * p.MaxSteerAngle
	maxDelta := p.SteerRate * dt
	s.Steer += geom.Clamp(target-s.Steer, -maxDelta, maxDelta)
	s.Steer = geom.Clamp(s.Steer, -p.MaxSteerAngle, p.MaxSteerAngle)

	// Longitudinal dynamics.
	accel := ctl.Throttle*p.MaxAccel - ctl.Brake*p.MaxBrake - p.Drag*s.Speed
	s.Speed = geom.Clamp(s.Speed+accel*dt, 0, p.MaxSpeed)

	// Bicycle kinematics about the rear axle.
	s.Pose.Heading = geom.WrapAngle(s.Pose.Heading + s.Speed/p.Wheelbase*math.Tan(s.Steer)*dt)
	s.Pose.Pos = s.Pose.Pos.Add(geom.FromAngle(s.Pose.Heading).Scale(s.Speed * dt))
	return s
}

// VehicleOBB returns the collision footprint of a vehicle state. The pose
// is the rear-axle reference point, so the box center sits half a wheelbase
// forward.
func VehicleOBB(s VehicleState, p VehicleParams) geom.OBB {
	center := s.Pose.Advance(p.Wheelbase / 2)
	return geom.NewOBB(center, p.Length, p.Width)
}

// StoppingDistance returns the distance needed to brake from speed v to
// rest at full brake; the autopilot's safety envelope uses it.
func StoppingDistance(v float64, p VehicleParams) float64 {
	if p.MaxBrake <= 0 {
		return math.Inf(1)
	}
	return v * v / (2 * p.MaxBrake)
}

// PedestrianState is the dynamic state of one pedestrian, modeled as a
// point with heading and speed, collision radius Radius.
type PedestrianState struct {
	Pos     geom.Vec
	Heading float64
	Speed   float64
}

// PedestrianRadius is the collision radius of a pedestrian in meters.
const PedestrianRadius = 0.35

// StepPedestrian advances a pedestrian by dt seconds.
func StepPedestrian(s PedestrianState, dt float64) PedestrianState {
	s.Pos = s.Pos.Add(geom.FromAngle(s.Heading).Scale(s.Speed * dt))
	return s
}

// VehiclesCollide reports whether two vehicle states overlap.
func VehiclesCollide(a VehicleState, ap VehicleParams, b VehicleState, bp VehicleParams) bool {
	return VehicleOBB(a, ap).Intersects(VehicleOBB(b, bp))
}

// VehicleHitsPedestrian reports whether a vehicle overlaps a pedestrian.
func VehicleHitsPedestrian(v VehicleState, p VehicleParams, ped PedestrianState) bool {
	return VehicleOBB(v, p).IntersectsCircle(ped.Pos, PedestrianRadius)
}
