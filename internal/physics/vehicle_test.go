package physics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/geom"
)

const dt = 1.0 / 15 // the paper's 15 FPS loop

func TestControlSanitize(t *testing.T) {
	cases := []struct {
		in, want Control
	}{
		{Control{Steer: 2, Throttle: 5, Brake: -1}, Control{Steer: 1, Throttle: 1, Brake: 0}},
		{Control{Steer: math.NaN(), Throttle: math.Inf(1), Brake: math.Inf(-1)}, Control{}},
		{Control{Steer: -0.5, Throttle: 0.3, Brake: 0.1}, Control{Steer: -0.5, Throttle: 0.3, Brake: 0.1}},
	}
	for _, c := range cases {
		if got := c.in.Sanitize(); got != c.want {
			t.Errorf("Sanitize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestStraightLineAcceleration(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Pose: geom.P(0, 0, 0)}
	for i := 0; i < 15*5; i++ { // 5 seconds full throttle
		s = StepVehicle(s, Control{Throttle: 1}, p, dt)
	}
	if s.Speed < 5 {
		t.Errorf("speed after 5s full throttle = %v, want > 5", s.Speed)
	}
	if s.Speed > p.MaxSpeed {
		t.Errorf("speed %v exceeds max %v", s.Speed, p.MaxSpeed)
	}
	if math.Abs(s.Pose.Pos.Y) > 1e-9 || math.Abs(s.Pose.Heading) > 1e-9 {
		t.Error("straight-line drive drifted laterally")
	}
	if s.Pose.Pos.X <= 0 {
		t.Error("vehicle did not move forward")
	}
}

func TestBrakingStops(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Pose: geom.P(0, 0, 0), Speed: 15}
	for i := 0; i < 15*5; i++ {
		s = StepVehicle(s, Control{Brake: 1}, p, dt)
	}
	if s.Speed != 0 {
		t.Errorf("speed after 5s full brake = %v, want 0", s.Speed)
	}
}

func TestNoReverse(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Speed: 0.1}
	for i := 0; i < 30; i++ {
		s = StepVehicle(s, Control{Brake: 1}, p, dt)
		if s.Speed < 0 {
			t.Fatal("vehicle reversed under braking")
		}
	}
}

func TestSteeringTurnsLeft(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Pose: geom.P(0, 0, 0), Speed: 10}
	for i := 0; i < 15; i++ {
		s = StepVehicle(s, Control{Steer: 1, Throttle: 0.5}, p, dt)
	}
	if s.Pose.Heading <= 0 {
		t.Errorf("heading after left steer = %v, want > 0", s.Pose.Heading)
	}
	if s.Pose.Pos.Y <= 0 {
		t.Errorf("position after left steer = %v, want Y > 0", s.Pose.Pos)
	}
}

func TestSteerRateLimit(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Speed: 5}
	s = StepVehicle(s, Control{Steer: 1}, p, dt)
	// One step cannot reach full lock: SteerRate*dt < MaxSteerAngle.
	if s.Steer >= p.MaxSteerAngle {
		t.Errorf("steer reached full lock in one step: %v", s.Steer)
	}
	if s.Steer <= 0 {
		t.Error("steer did not move toward command")
	}
}

func TestTurningCircle(t *testing.T) {
	// At constant speed and full steer the vehicle should return near its
	// start after enough time (closed circle).
	p := DefaultVehicleParams()
	s := VehicleState{Pose: geom.P(0, 0, 0), Speed: 5}
	// Let steering settle, then record.
	for i := 0; i < 30; i++ {
		s = StepVehicle(s, Control{Steer: 1, Throttle: 0.12}, p, dt)
	}
	start := s.Pose.Pos
	minDist := math.MaxFloat64
	traveled := 0.0
	prev := s.Pose.Pos
	for i := 0; i < 15*60 && traveled < 200; i++ {
		s = StepVehicle(s, Control{Steer: 1, Throttle: 0.12}, p, dt)
		traveled += s.Pose.Pos.Dist(prev)
		prev = s.Pose.Pos
		if traveled > 10 { // away from start first
			if d := s.Pose.Pos.Dist(start); d < minDist {
				minDist = d
			}
		}
	}
	if minDist > 2 {
		t.Errorf("full-lock trajectory never closed its circle (min dist %v)", minDist)
	}
}

func TestFaultyControlNeverCorruptsState(t *testing.T) {
	// Hardware fault injection can hand physics literally any float; state
	// must remain finite.
	p := DefaultVehicleParams()
	err := quick.Check(func(steer, throttle, brake float64) bool {
		s := VehicleState{Pose: geom.P(5, 5, 1), Speed: 8}
		s = StepVehicle(s, Control{Steer: steer, Throttle: throttle, Brake: brake}, p, dt)
		return s.Pose.Pos.IsFinite() &&
			!math.IsNaN(s.Pose.Heading) && !math.IsInf(s.Pose.Heading, 0) &&
			!math.IsNaN(s.Speed) && s.Speed >= 0 && s.Speed <= p.MaxSpeed
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSpeedNeverExceedsMax(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{}
	for i := 0; i < 15*60; i++ {
		s = StepVehicle(s, Control{Throttle: 1}, p, dt)
		if s.Speed > p.MaxSpeed {
			t.Fatalf("speed %v exceeded max at step %d", s.Speed, i)
		}
	}
	if s.Speed < p.MaxSpeed*0.95 {
		t.Errorf("terminal speed %v well below max %v", s.Speed, p.MaxSpeed)
	}
}

func TestVehicleOBBGeometry(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Pose: geom.P(0, 0, 0)}
	box := VehicleOBB(s, p)
	// Center sits half a wheelbase ahead of the rear-axle pose.
	if !box.Pose.Pos.Eq(geom.V(p.Wheelbase/2, 0), 1e-9) {
		t.Errorf("OBB center = %v", box.Pose.Pos)
	}
	if box.HalfLen != p.Length/2 || box.HalfWid != p.Width/2 {
		t.Errorf("OBB extents = %v x %v", box.HalfLen*2, box.HalfWid*2)
	}
}

func TestVehiclesCollide(t *testing.T) {
	p := DefaultVehicleParams()
	a := VehicleState{Pose: geom.P(0, 0, 0)}
	b := VehicleState{Pose: geom.P(3, 0.5, 0.2)}
	if !VehiclesCollide(a, p, b, p) {
		t.Error("overlapping vehicles not colliding")
	}
	c := VehicleState{Pose: geom.P(20, 0, 0)}
	if VehiclesCollide(a, p, c, p) {
		t.Error("distant vehicles colliding")
	}
}

func TestVehicleHitsPedestrian(t *testing.T) {
	p := DefaultVehicleParams()
	v := VehicleState{Pose: geom.P(0, 0, 0)}
	hit := PedestrianState{Pos: geom.V(2, 0)}
	if !VehicleHitsPedestrian(v, p, hit) {
		t.Error("pedestrian in front bumper not hit")
	}
	miss := PedestrianState{Pos: geom.V(2, 5)}
	if VehicleHitsPedestrian(v, p, miss) {
		t.Error("distant pedestrian hit")
	}
}

func TestStepPedestrian(t *testing.T) {
	s := PedestrianState{Pos: geom.V(0, 0), Heading: math.Pi / 2, Speed: 1.4}
	for i := 0; i < 15; i++ {
		s = StepPedestrian(s, dt)
	}
	if math.Abs(s.Pos.Y-1.4) > 1e-9 || math.Abs(s.Pos.X) > 1e-9 {
		t.Errorf("pedestrian after 1s = %v, want (0, 1.4)", s.Pos)
	}
}

func TestStoppingDistance(t *testing.T) {
	p := DefaultVehicleParams()
	d := StoppingDistance(10, p)
	want := 100.0 / (2 * p.MaxBrake)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("StoppingDistance = %v, want %v", d, want)
	}
	if StoppingDistance(0, p) != 0 {
		t.Error("stopping distance at rest not zero")
	}
	noBrake := p
	noBrake.MaxBrake = 0
	if !math.IsInf(StoppingDistance(1, noBrake), 1) {
		t.Error("zero-brake stopping distance not infinite")
	}
}

func TestDragDeceleratesCoasting(t *testing.T) {
	p := DefaultVehicleParams()
	s := VehicleState{Speed: 10}
	s = StepVehicle(s, Control{}, p, dt)
	if s.Speed >= 10 {
		t.Error("coasting vehicle did not decelerate under drag")
	}
}
