// Package sensors implements the AV's sensor suite: the hood camera (backed
// by the software renderer), GPS with bias drift and jitter, a speedometer,
// and a 2D LIDAR — the measurement sources the paper's data-fault injectors
// corrupt ("manipulating sensor measurements (such as camera images, LIDAR,
// and GPS)").
//
// All noise is drawn from deterministic rng streams so that a campaign seed
// reproduces identical sensor traces.
package sensors

import (
	"math"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

// Camera is the forward RGB camera; it owns no state beyond the renderer.
type Camera struct {
	r *render.Renderer
}

// NewCamera wraps a renderer as a camera sensor.
func NewCamera(r *render.Renderer) *Camera { return &Camera{r: r} }

// Capture renders the camera frame for the scene.
func (c *Camera) Capture(scene render.Scene) *render.Image { return c.r.Render(scene) }

// Config returns the camera geometry.
func (c *Camera) Config() render.Config { return c.r.Config() }

// GPS models a satellite fix: a slowly drifting bias (random walk) plus
// per-reading jitter, both Gaussian.
type GPS struct {
	jitter   float64
	walkRate float64
	bias     geom.Vec
	r        *rng.Stream
}

// NewGPS constructs a GPS with the given per-reading jitter stddev (m) and
// bias random-walk rate (m per reading).
func NewGPS(jitter, walkRate float64, r *rng.Stream) *GPS {
	return &GPS{jitter: jitter, walkRate: walkRate, r: r}
}

// Read returns a noisy fix of the true position.
func (g *GPS) Read(truth geom.Vec) geom.Vec {
	g.bias = g.bias.Add(geom.V(g.r.NormScaled(0, g.walkRate), g.r.NormScaled(0, g.walkRate)))
	return truth.Add(g.bias).Add(geom.V(g.r.NormScaled(0, g.jitter), g.r.NormScaled(0, g.jitter)))
}

// Bias returns the current drift, for tests.
func (g *GPS) Bias() geom.Vec { return g.bias }

// Speedometer reads vehicle speed with multiplicative noise, clamped
// non-negative.
type Speedometer struct {
	noise float64
	r     *rng.Stream
}

// NewSpeedometer constructs a speedometer with fractional noise stddev.
func NewSpeedometer(noise float64, r *rng.Stream) *Speedometer {
	return &Speedometer{noise: noise, r: r}
}

// Read returns a noisy speed reading.
func (s *Speedometer) Read(truth float64) float64 {
	v := truth * (1 + s.r.NormScaled(0, s.noise))
	return math.Max(0, v)
}

// Lidar is a planar scanner: Beams rays spread uniformly over 2*pi,
// returning range per beam (MaxRange on miss). It shares raycast geometry
// with the renderer so the two sensors agree about the world.
type Lidar struct {
	Beams    int
	MaxRange float64
}

// NewLidar constructs a scanner.
func NewLidar(beams int, maxRange float64) *Lidar {
	return &Lidar{Beams: beams, MaxRange: maxRange}
}

// Scan returns ranges from the pose against buildings and obstacle boxes.
// Beam 0 points along the pose heading; beams proceed counterclockwise.
func (l *Lidar) Scan(town *world.Town, pose geom.Pose, obstacles []geom.OBB) []float64 {
	out := make([]float64, l.Beams)
	for i := range out {
		angle := pose.Heading + 2*math.Pi*float64(i)/float64(l.Beams)
		ray := geom.NewRay(pose.Pos, geom.FromAngle(angle))
		best := l.MaxRange
		if d, _, ok := town.RaycastBuildings(ray, best); ok {
			best = d
		}
		for _, ob := range obstacles {
			for _, e := range ob.Edges() {
				if t, hit := ray.IntersectSegment(e); hit && t < best {
					best = t
				}
			}
		}
		out[i] = best
	}
	return out
}
