package sensors

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

func TestGPSJitterStatistics(t *testing.T) {
	g := NewGPS(0.5, 0, rng.New(1)) // no walk, pure jitter
	truth := geom.V(100, 200)
	const n = 20000
	var sumX, sumY, ssX float64
	for i := 0; i < n; i++ {
		r := g.Read(truth)
		sumX += r.X - truth.X
		sumY += r.Y - truth.Y
		ssX += (r.X - truth.X) * (r.X - truth.X)
	}
	if math.Abs(sumX/n) > 0.02 || math.Abs(sumY/n) > 0.02 {
		t.Errorf("GPS jitter biased: %v, %v", sumX/n, sumY/n)
	}
	if sd := math.Sqrt(ssX / n); math.Abs(sd-0.5) > 0.03 {
		t.Errorf("GPS jitter stddev = %v, want ~0.5", sd)
	}
}

func TestGPSBiasWalks(t *testing.T) {
	g := NewGPS(0, 0.1, rng.New(2))
	truth := geom.V(0, 0)
	for i := 0; i < 1000; i++ {
		g.Read(truth)
	}
	if g.Bias().Len() == 0 {
		t.Error("GPS bias never drifted")
	}
}

func TestGPSDeterministic(t *testing.T) {
	mk := func() geom.Vec {
		g := NewGPS(0.3, 0.05, rng.New(7))
		var last geom.Vec
		for i := 0; i < 10; i++ {
			last = g.Read(geom.V(5, 5))
		}
		return last
	}
	if mk() != mk() {
		t.Error("GPS not deterministic for fixed stream")
	}
}

func TestSpeedometer(t *testing.T) {
	s := NewSpeedometer(0.02, rng.New(3))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Read(10)
		if v < 0 {
			t.Fatal("negative speed reading")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("speedometer mean = %v, want ~10", mean)
	}
	// Zero truth reads zero regardless of noise.
	if s.Read(0) != 0 {
		t.Error("speedometer invented speed at rest")
	}
}

func TestLidarRangesAndMisses(t *testing.T) {
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(200, 0))
	net.AddEdge(a, b)
	town := &world.Town{
		Net: net,
		Buildings: []world.Building{
			{Box: geom.NewAABB(geom.V(20, -5), geom.V(30, 5)), Height: 10, Shade: 0.5},
		},
	}
	l := NewLidar(8, 50)
	ranges := l.Scan(town, geom.P(0, 0, 0), nil)
	if len(ranges) != 8 {
		t.Fatalf("beam count = %d", len(ranges))
	}
	// Beam 0 (forward, +X) hits the building at 20m.
	if math.Abs(ranges[0]-20) > 1e-9 {
		t.Errorf("forward beam = %v, want 20", ranges[0])
	}
	// Beam 4 (backward) misses: max range.
	if ranges[4] != 50 {
		t.Errorf("backward beam = %v, want 50 (miss)", ranges[4])
	}
}

func TestLidarSeesObstacles(t *testing.T) {
	town := &world.Town{Net: world.NewNetwork(3.5, 2)}
	l := NewLidar(4, 100)
	ob := geom.NewOBB(geom.P(10, 0, 0), 4, 2)
	ranges := l.Scan(town, geom.P(0, 0, 0), []geom.OBB{ob})
	if math.Abs(ranges[0]-8) > 1e-9 { // box rear face at 10-2=8
		t.Errorf("obstacle beam = %v, want 8", ranges[0])
	}
}

func TestCameraCaptureMatchesRenderer(t *testing.T) {
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	r := render.New(render.DefaultConfig(), town)
	cam := NewCamera(r)
	scene := render.Scene{CamPose: town.Spawns[0], Weather: world.WeatherClear}
	a := cam.Capture(scene)
	b := r.Render(scene)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("camera capture differs from renderer output")
		}
	}
	if cam.Config() != r.Config() {
		t.Error("camera config mismatch")
	}
}
