package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello world")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	// And the other direction.
	if err := b.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || string(got) != "reply" {
		t.Errorf("reply = %q, %v", got, err)
	}
}

func TestPipeCopiesOnSend(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate me")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 'X' {
		t.Error("Send did not copy the buffer")
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	b.Close()
	// The buffered slot may accept one message; eventually Send must fail.
	var err error
	for i := 0; i < 3; i++ {
		err = a.Send([]byte("x"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed peer = %v, want ErrClosed", err)
	}
}

func TestPipeDrainsBufferedAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil || string(got) != "last words" {
		t.Errorf("buffered message lost after close: %q, %v", got, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		serverErr = conn.Send(append([]byte("echo:"), msg...))
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:ping" {
		t.Errorf("got %q", got)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	big := make([]byte, 300_000) // an encoded camera frame is ~60 KB; stress larger
	for i := range big {
		big[i] = byte(i)
	}

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		_ = conn.Send(msg)
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large message corrupted")
	}
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, _ := l.Accept()
		if conn != nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized Send did not error")
	}
}

func TestDialFailsToNowhere(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port did not error")
	}
}

func TestPipeManyMessagesInOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send([]byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < n; i++ {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if int(msg[0])|int(msg[1])<<8 != i {
			t.Fatalf("out of order at %d: %v", i, msg)
		}
	}
}

func TestEmptyFrameRejected(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(nil); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("pipe Send(nil) = %v, want ErrEmptyFrame", err)
	}
	if err := a.SendBatch([][]byte{[]byte("ok"), {}}); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("pipe SendBatch with empty = %v, want ErrEmptyFrame", err)
	}

	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, _ := l.Accept()
		if conn != nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(nil); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("tcp Send(nil) = %v, want ErrEmptyFrame", err)
	}
	if err := c.SendBatch([][]byte{[]byte("ok"), {}}); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("tcp SendBatch with empty = %v, want ErrEmptyFrame", err)
	}
}

// TestTCPRecvRejectsZeroLengthFrame drives a raw zero-length frame header
// at the receiver: it must surface ErrEmptyFrame instead of returning an
// empty message no proto decoder could have produced.
func TestTCPRecvRejectsZeroLengthFrame(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		_, err = conn.Recv()
		errCh <- err
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("Recv of zero-length frame = %v, want ErrEmptyFrame", err)
	}
}

// TestSendBatchWireIdenticalToSends pins the compatibility contract: a
// batch produces byte-for-byte the same stream as sequential Sends, so a
// legacy peer cannot tell them apart.
func TestSendBatchWireIdenticalToSends(t *testing.T) {
	msgs := [][]byte{[]byte("alpha"), []byte("b"), make([]byte, 3000)}
	for i := range msgs[2] {
		msgs[2][i] = byte(i * 7)
	}

	recvAll := func(send func(Conn) error) []byte {
		l, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		done := make(chan []byte, 1)
		go func() {
			conn, err := l.Accept()
			if err != nil {
				done <- nil
				return
			}
			defer conn.Close()
			var all []byte
			for i := 0; i < len(msgs); i++ {
				m, err := conn.Recv()
				if err != nil {
					done <- nil
					return
				}
				all = append(all, m...)
				Recycle(m)
			}
			done <- all
		}()
		c, err := Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := send(c); err != nil {
			t.Fatal(err)
		}
		return <-done
	}

	batched := recvAll(func(c Conn) error { return c.SendBatch(msgs) })
	single := recvAll(func(c Conn) error {
		for _, m := range msgs {
			if err := c.Send(m); err != nil {
				return err
			}
		}
		return nil
	})
	if batched == nil || single == nil {
		t.Fatal("receive failed")
	}
	if !bytes.Equal(batched, single) {
		t.Error("SendBatch stream differs from sequential Send stream")
	}
	var want []byte
	for _, m := range msgs {
		want = append(want, m...)
	}
	if !bytes.Equal(batched, want) {
		t.Error("batched payloads corrupted")
	}
}

func TestPipeSendBatchInOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = a.SendBatch([][]byte{[]byte("one"), []byte("two"), []byte("three")})
	}()
	for _, want := range []string{"one", "two", "three"} {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(msg) != want {
			t.Fatalf("got %q, want %q", msg, want)
		}
		Recycle(msg)
	}
}

// TestRecycleReuse exercises the pool round trip: a recycled buffer with
// enough capacity is handed back out, and contents never bleed between
// messages.
func TestRecycleReuse(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 64; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 128)
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("iteration %d corrupted: %v", i, got[:4])
		}
		Recycle(got)
	}
}
