package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello world")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	// And the other direction.
	if err := b.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || string(got) != "reply" {
		t.Errorf("reply = %q, %v", got, err)
	}
}

func TestPipeCopiesOnSend(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate me")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 'X' {
		t.Error("Send did not copy the buffer")
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	b.Close()
	// The buffered slot may accept one message; eventually Send must fail.
	var err error
	for i := 0; i < 3; i++ {
		err = a.Send([]byte("x"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed peer = %v, want ErrClosed", err)
	}
}

func TestPipeDrainsBufferedAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil || string(got) != "last words" {
		t.Errorf("buffered message lost after close: %q, %v", got, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		serverErr = conn.Send(append([]byte("echo:"), msg...))
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:ping" {
		t.Errorf("got %q", got)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	big := make([]byte, 300_000) // an encoded camera frame is ~60 KB; stress larger
	for i := range big {
		big[i] = byte(i)
	}

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		_ = conn.Send(msg)
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large message corrupted")
	}
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, _ := l.Accept()
		if conn != nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized Send did not error")
	}
}

func TestDialFailsToNowhere(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port did not error")
	}
}

func TestPipeManyMessagesInOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send([]byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < n; i++ {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if int(msg[0])|int(msg[1])<<8 != i {
			t.Fatalf("out of order at %d: %v", i, msg)
		}
	}
}
