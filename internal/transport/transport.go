// Package transport carries encoded proto messages between the simulator
// server and the agent client. Two implementations share one framing
// format: an in-process pipe (fast, used by test and campaign loops) and
// real TCP (the paper's CARLA deployment shape). Because both carry the
// same frames, the timing-fault injector behaves identically on either —
// a property the integration tests assert.
//
// Framing: a 4-byte big-endian length prefix, then the message bytes. A
// zero-length frame is invalid on the wire: every proto message starts
// with a two-byte version/kind header, so an empty body is corruption and
// both ends reject it at the transport boundary.
//
// The frame hot path is allocation-conscious: Send on TCP issues a single
// writev (header and body gathered, no copy and no second syscall),
// SendBatch flushes many messages in one writev, and Recv fills message
// bodies from a shared buffer pool that callers can return to with
// Recycle once a message is fully consumed.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/avfi/avfi/internal/telemetry"
)

// MaxFrame bounds one framed message (must cover an encoded camera frame).
const MaxFrame = 4 << 20

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrEmptyFrame is returned for zero-length messages, sent or received:
// no proto message is empty, so an empty frame is a programming error on
// the send side and stream corruption on the receive side.
var ErrEmptyFrame = errors.New("transport: empty frame")

// Conn is a bidirectional, ordered message stream.
type Conn interface {
	// Send writes one message.
	Send(msg []byte) error
	// SendBatch writes several messages back-to-back, preserving order.
	// The wire bytes are identical to calling Send per message; batching
	// only coalesces the writes (over TCP, one writev syscall for the
	// whole batch), so peers cannot observe the difference.
	SendBatch(msgs [][]byte) error
	// Recv reads the next message, blocking until one arrives or the
	// connection closes. The returned buffer may come from a shared pool;
	// callers that fully consume a message can hand it back with Recycle.
	Recv() ([]byte, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// --- Buffer pool ---
//
// Message buffers cycle through a two-pool design so that neither Get nor
// Put boxes a slice header into an interface (which would allocate on
// every message): full holds *[]byte containers with a buffer inside,
// empty holds spent containers awaiting a recycled buffer. Pointers are
// interface-boxing-free, so a warmed steady state runs at zero
// allocations per message.
var (
	fullBufs  sync.Pool // *[]byte, non-nil buffer
	emptyBufs sync.Pool // *[]byte, nil buffer
)

// getBuf returns a message buffer of length n, reusing a recycled buffer
// when one with enough capacity is available.
func getBuf(n int) []byte {
	telemetry.TransportBufGets.Inc()
	if p, ok := fullBufs.Get().(*[]byte); ok {
		b := *p
		*p = nil
		emptyBufs.Put(p)
		if cap(b) >= n {
			telemetry.TransportBufHits.Inc()
			return b[:n]
		}
	}
	return make([]byte, n)
}

// Recycle returns a message buffer obtained from Recv (or copied by a
// pipe Send) to the shared pool. Callers must not touch buf afterwards.
// Recycling is optional — unreturned buffers are simply garbage collected
// — and only safe once nothing aliasing the buffer is live, so routing
// layers that hand subslices to other goroutines must leave recycling to
// the final consumer.
func Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	telemetry.TransportBufRecycles.Inc()
	p, ok := emptyBufs.Get().(*[]byte)
	if !ok {
		p = new([]byte)
	}
	*p = buf[:0]
	fullBufs.Put(p)
}

// --- In-process pipe ---

// pipeConn is one end of an in-process duplex channel pair.
type pipeConn struct {
	send chan<- []byte
	recv <-chan []byte

	mu     sync.Mutex
	closed chan struct{}
	once   sync.Once
	peer   *pipeConn
}

var _ Conn = (*pipeConn)(nil)

// Pipe returns two connected in-process ends. Messages are copied on Send
// (into pooled buffers), so callers may reuse their buffers immediately.
func Pipe() (Conn, Conn) {
	// Buffered one deep: the simulator loop is strictly request/response,
	// and a single slot avoids goroutine handoff stalls.
	ab := make(chan []byte, 1)
	ba := make(chan []byte, 1)
	a := &pipeConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &pipeConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *pipeConn) Send(msg []byte) error {
	if len(msg) == 0 {
		return ErrEmptyFrame
	}
	cp := getBuf(len(msg))
	copy(cp, msg)
	select {
	case <-c.closed:
		Recycle(cp)
		return ErrClosed
	case <-c.peer.closed:
		Recycle(cp)
		return ErrClosed
	case c.send <- cp:
		telemetry.TransportMsgsSent.Inc()
		telemetry.TransportBytesSent.Add(uint64(len(msg)))
		return nil
	}
}

// SendBatch implements Conn. The pipe has no syscalls to coalesce, so a
// batch is simply ordered sends.
func (c *pipeConn) SendBatch(msgs [][]byte) error {
	for _, msg := range msgs {
		if err := c.Send(msg); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements Conn.
func (c *pipeConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.recv:
		return recvDone(msg), nil
	default:
	}
	select {
	case msg := <-c.recv:
		return recvDone(msg), nil
	case <-c.closed:
		return nil, ErrClosed
	case <-c.peer.closed:
		// Drain anything the peer sent before closing.
		select {
		case msg := <-c.recv:
			return recvDone(msg), nil
		default:
			return nil, ErrClosed
		}
	}
}

// recvDone counts one delivered message on the receive instruments.
func recvDone(msg []byte) []byte {
	telemetry.TransportMsgsRecv.Inc()
	telemetry.TransportBytesRecv.Add(uint64(len(msg)))
	return msg
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// --- TCP ---

// tcpConn frames messages over a net.Conn.
type tcpConn struct {
	conn net.Conn

	sendMu sync.Mutex
	// hdr and vecs are Send's gather-write scratch (guarded by sendMu):
	// one header array and a two-element iovec so a single message goes
	// out as one writev with zero per-send allocations.
	hdr  [4]byte
	vecs [2][]byte
	// batchHdrs and batchVecs are SendBatch's scratch, grown once and
	// reused across batches.
	batchHdrs []byte
	batchVecs net.Buffers
	// wbufs is the net.Buffers value WriteTo consumes (it advances the
	// slice header as buffers drain). A local would escape through
	// WriteTo's pointer receiver into the buffersWriter interface and
	// allocate per send; a field rides along with the already-heap conn.
	wbufs net.Buffers

	recvMu sync.Mutex
	// recvHdr is Recv's header scratch (guarded by recvMu); a stack array
	// would escape through the io.Reader interface and cost an allocation
	// per message.
	recvHdr [4]byte
}

var _ Conn = (*tcpConn)(nil)

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(c net.Conn) Conn { return &tcpConn{conn: c} }

// Dial connects to a listening server.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// DialTimeout is Dial with a bounded connect: a host that blackholes
// packets (down, firewalled — no RST) fails after timeout instead of the
// OS connect timeout, which can run minutes.
func DialTimeout(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// Listener accepts framed connections.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener; addr may be ":0" for an ephemeral port.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Send implements Conn: header and body leave in a single gather write
// (writev on Linux), not the two sequential Writes of the naive framing —
// half the syscalls, and no header/body coalescing left to Nagle.
func (t *tcpConn) Send(msg []byte) error {
	if len(msg) == 0 {
		return ErrEmptyFrame
	}
	if len(msg) > MaxFrame {
		return fmt.Errorf("transport: frame %d exceeds max %d", len(msg), MaxFrame)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.BigEndian.PutUint32(t.hdr[:], uint32(len(msg)))
	t.vecs[0], t.vecs[1] = t.hdr[:], msg
	t.wbufs = net.Buffers(t.vecs[:])
	_, err := t.wbufs.WriteTo(t.conn)
	t.wbufs = nil
	// WriteTo reslices the iovec elements as it consumes them; clear the
	// scratch so no reference to msg outlives the call.
	t.vecs[0], t.vecs[1] = nil, nil
	if err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	telemetry.TransportMsgsSent.Inc()
	telemetry.TransportBytesSent.Add(uint64(4 + len(msg)))
	telemetry.TransportWritevBatch.Observe(1)
	return nil
}

// SendBatch implements Conn: every message's header and body are gathered
// into one vectored write, so a whole batch of envelopes costs a single
// syscall (the kernel splits writev at IOV_MAX transparently).
func (t *tcpConn) SendBatch(msgs [][]byte) error {
	if len(msgs) == 0 {
		return nil
	}
	if len(msgs) == 1 {
		return t.Send(msgs[0])
	}
	for _, msg := range msgs {
		if len(msg) == 0 {
			return ErrEmptyFrame
		}
		if len(msg) > MaxFrame {
			return fmt.Errorf("transport: frame %d exceeds max %d", len(msg), MaxFrame)
		}
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if cap(t.batchHdrs) < 4*len(msgs) {
		t.batchHdrs = make([]byte, 4*len(msgs))
	}
	hdrs := t.batchHdrs[:4*len(msgs)]
	t.batchVecs = t.batchVecs[:0]
	for i, msg := range msgs {
		h := hdrs[4*i : 4*i+4]
		binary.BigEndian.PutUint32(h, uint32(len(msg)))
		t.batchVecs = append(t.batchVecs, h, msg)
	}
	t.wbufs = t.batchVecs
	_, err := t.wbufs.WriteTo(t.conn)
	t.wbufs = nil
	// Drop message references (WriteTo consumed the local header, but the
	// elements it resliced live in the shared backing array).
	for i := range t.batchVecs {
		t.batchVecs[i] = nil
	}
	if err != nil {
		return fmt.Errorf("transport: write batch: %w", err)
	}
	total := 0
	for _, msg := range msgs {
		total += 4 + len(msg)
	}
	telemetry.TransportMsgsSent.Add(uint64(len(msgs)))
	telemetry.TransportBytesSent.Add(uint64(total))
	telemetry.TransportWritevBatch.Observe(float64(len(msgs)))
	return nil
}

// Recv implements Conn. Message bodies are read into pooled buffers; the
// caller owns the returned slice and may Recycle it when done.
func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.conn, t.recvHdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(t.recvHdr[:])
	if n == 0 {
		return nil, fmt.Errorf("transport: read header: %w", ErrEmptyFrame)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame %d exceeds max %d", n, MaxFrame)
	}
	buf := getBuf(int(n))
	if _, err := io.ReadFull(t.conn, buf); err != nil {
		Recycle(buf)
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	telemetry.TransportMsgsRecv.Inc()
	telemetry.TransportBytesRecv.Add(uint64(4 + n))
	return buf, nil
}

// Close implements Conn.
func (t *tcpConn) Close() error { return t.conn.Close() }
