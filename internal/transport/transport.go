// Package transport carries encoded proto messages between the simulator
// server and the agent client. Two implementations share one framing
// format: an in-process pipe (fast, used by test and campaign loops) and
// real TCP (the paper's CARLA deployment shape). Because both carry the
// same frames, the timing-fault injector behaves identically on either —
// a property the integration tests assert.
//
// Framing: a 4-byte big-endian length prefix, then the message bytes.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds one framed message (must cover an encoded camera frame).
const MaxFrame = 4 << 20

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional, ordered message stream.
type Conn interface {
	// Send writes one message.
	Send(msg []byte) error
	// Recv reads the next message, blocking until one arrives or the
	// connection closes.
	Recv() ([]byte, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// --- In-process pipe ---

// pipeConn is one end of an in-process duplex channel pair.
type pipeConn struct {
	send chan<- []byte
	recv <-chan []byte

	mu     sync.Mutex
	closed chan struct{}
	once   sync.Once
	peer   *pipeConn
}

var _ Conn = (*pipeConn)(nil)

// Pipe returns two connected in-process ends. Messages are copied on Send,
// so callers may reuse buffers.
func Pipe() (Conn, Conn) {
	// Buffered one deep: the simulator loop is strictly request/response,
	// and a single slot avoids goroutine handoff stalls.
	ab := make(chan []byte, 1)
	ba := make(chan []byte, 1)
	a := &pipeConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &pipeConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *pipeConn) Send(msg []byte) error {
	cp := append([]byte(nil), msg...)
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- cp:
		return nil
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.recv:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-c.closed:
		return nil, ErrClosed
	case <-c.peer.closed:
		// Drain anything the peer sent before closing.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// --- TCP ---

// tcpConn frames messages over a net.Conn.
type tcpConn struct {
	conn net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
}

var _ Conn = (*tcpConn)(nil)

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(c net.Conn) Conn { return &tcpConn{conn: c} }

// Dial connects to a listening server.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// DialTimeout is Dial with a bounded connect: a host that blackholes
// packets (down, firewalled — no RST) fails after timeout instead of the
// OS connect timeout, which can run minutes.
func DialTimeout(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// Listener accepts framed connections.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener; addr may be ":0" for an ephemeral port.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Send implements Conn.
func (t *tcpConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("transport: frame %d exceeds max %d", len(msg), MaxFrame)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := t.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := t.conn.Write(msg); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	return nil
}

// Recv implements Conn.
func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame %d exceeds max %d", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.conn, buf); err != nil {
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	return buf, nil
}

// Close implements Conn.
func (t *tcpConn) Close() error { return t.conn.Close() }
