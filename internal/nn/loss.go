package nn

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/tensor"
)

// Loss scores a prediction against a target and provides the gradient of
// the loss with respect to the prediction.
type Loss interface {
	// Loss returns the scalar loss.
	Loss(pred, target *tensor.Tensor) (float64, error)
	// Grad returns dLoss/dPred.
	Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error)
}

// Compile-time interface checks.
var (
	_ Loss = MSE{}
	_ Loss = Huber{}
)

// MSE is mean squared error: mean((pred-target)^2).
type MSE struct{}

// Loss implements Loss.
func (MSE) Loss(pred, target *tensor.Tensor) (float64, error) {
	if !pred.SameShape(target) {
		return 0, fmt.Errorf("mse: shape %v vs %v: %w", pred.Shape(), target.Shape(), tensor.ErrShape)
	}
	var sum float64
	for i, p := range pred.Data() {
		d := p - target.Data()[i]
		sum += d * d
	}
	return sum / float64(pred.Len()), nil
}

// Grad implements Loss.
func (MSE) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	if !pred.SameShape(target) {
		return nil, fmt.Errorf("mse: shape %v vs %v: %w", pred.Shape(), target.Shape(), tensor.ErrShape)
	}
	out := pred.Clone()
	scale := 2 / float64(pred.Len())
	for i := range out.Data() {
		out.Data()[i] = scale * (pred.Data()[i] - target.Data()[i])
	}
	return out, nil
}

// Huber is the Huber loss with threshold Delta: quadratic near zero, linear
// in the tails. Imitation-learning steering targets occasionally contain
// sharp expert corrections; Huber keeps those from dominating the gradient.
type Huber struct {
	Delta float64
}

func (h Huber) delta() float64 {
	if h.Delta <= 0 {
		return 1
	}
	return h.Delta
}

// Loss implements Loss.
func (h Huber) Loss(pred, target *tensor.Tensor) (float64, error) {
	if !pred.SameShape(target) {
		return 0, fmt.Errorf("huber: shape %v vs %v: %w", pred.Shape(), target.Shape(), tensor.ErrShape)
	}
	d := h.delta()
	var sum float64
	for i, p := range pred.Data() {
		r := math.Abs(p - target.Data()[i])
		if r <= d {
			sum += r * r / 2
		} else {
			sum += d * (r - d/2)
		}
	}
	return sum / float64(pred.Len()), nil
}

// Grad implements Loss.
func (h Huber) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	if !pred.SameShape(target) {
		return nil, fmt.Errorf("huber: shape %v vs %v: %w", pred.Shape(), target.Shape(), tensor.ErrShape)
	}
	d := h.delta()
	out := pred.Clone()
	scale := 1 / float64(pred.Len())
	for i := range out.Data() {
		r := pred.Data()[i] - target.Data()[i]
		switch {
		case r > d:
			out.Data()[i] = d * scale
		case r < -d:
			out.Data()[i] = -d * scale
		default:
			out.Data()[i] = r * scale
		}
	}
	return out, nil
}
