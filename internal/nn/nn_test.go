package nn

import (
	"bytes"
	"math"
	"testing"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

func TestNetworkForwardShapes(t *testing.T) {
	r := rng.New(1)
	conv := NewConv2D(3, 16, 16, 4, 3, 1, 1).InitHe(r)
	net := NewNetwork(
		conv,
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*8*8, 10).InitHe(r),
	)
	x := randImage(r, 3, 16, 16)
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 10 {
		t.Fatalf("output len %d, want 10", y.Len())
	}
}

func TestNetworkForwardShapeError(t *testing.T) {
	net := NewNetwork(NewDense(4, 2))
	if _, err := net.Forward(tensor.New(5)); err == nil {
		t.Error("wrong-size input did not error")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	layers := []Layer{
		NewDense(2, 2), NewReLU(), NewTanh(), NewSigmoid(),
		NewFlatten(), NewMaxPool2D(2), NewConv2D(1, 4, 4, 1, 3, 1, 1),
		NewRNNCell(2, 2),
	}
	for _, l := range layers {
		if _, err := l.Backward(tensor.New(2)); err == nil {
			t.Errorf("%T: Backward before Forward did not error", l)
		}
	}
}

func TestParamCountAndVisit(t *testing.T) {
	r := rng.New(2)
	net := NewNetwork(
		NewDense(3, 4).InitHe(r), // 3*4 + 4 = 16
		NewReLU(),
		NewDense(4, 2).InitHe(r), // 4*2 + 2 = 10
	)
	if got := net.ParamCount(); got != 26 {
		t.Errorf("ParamCount = %d, want 26", got)
	}
	visited := map[string]int{}
	net.VisitParams(func(layer int, name string, v *tensor.Tensor) {
		visited[name] += v.Len()
	})
	if visited["weight"] != 20 || visited["bias"] != 6 {
		t.Errorf("VisitParams totals = %v", visited)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(3)
	net := NewNetwork(NewDense(2, 2).InitHe(r))
	cl := net.Clone()
	// Corrupt the clone's weights; original must be untouched.
	cl.Params()[0].Value.Fill(999)
	if net.Params()[0].Value.MaxAbs() > 100 {
		t.Error("Clone shares weight storage with original")
	}
	// Both still produce output.
	if _, err := cl.Forward(tensor.New(2)); err != nil {
		t.Fatal(err)
	}
}

func TestCloneProducesSameOutput(t *testing.T) {
	r := rng.New(4)
	net := NewNetwork(
		NewConv2D(1, 8, 8, 2, 3, 1, 1).InitHe(r),
		NewReLU(),
		NewFlatten(),
		NewDense(2*8*8, 3).InitXavier(r),
	)
	x := randImage(r, 1, 8, 8)
	y1, err := net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	y2, err := net.Clone().Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("clone output differs")
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	r := rng.New(5)
	drop := NewDropout(0.5, r)
	net := NewNetwork(drop)
	x := tensor.New(1000)
	x.Fill(1)

	net.SetTraining(false)
	y, err := net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data() {
		if v != 1 {
			t.Fatal("inference dropout altered values")
		}
	}

	net.SetTraining(true)
	y, err = net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	var sum float64
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropout zeroed %d/1000, want ~500", zeros)
	}
	// Inverted dropout keeps the expectation.
	if mean := sum / 1000; math.Abs(mean-1) > 0.15 {
		t.Errorf("dropout mean %v, want ~1", mean)
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	r := rng.New(6)
	drop := NewDropout(0.5, r)
	drop.active = true
	x := tensor.New(100)
	x.Fill(1)
	y, err := drop.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.New(100)
	g.Fill(1)
	back, err := drop.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (back.Data()[i] == 0) {
			t.Fatal("backward mask mismatch with forward mask")
		}
	}
}

func TestSGDReducesLoss(t *testing.T) {
	r := rng.New(7)
	net := NewNetwork(
		NewDense(2, 8).InitHe(r),
		NewTanh(),
		NewDense(8, 1).InitXavier(r),
	)
	assertTrainingConverges(t, net, NewSGD(0.01, 0.9), r)
}

func TestAdamReducesLoss(t *testing.T) {
	r := rng.New(8)
	net := NewNetwork(
		NewDense(2, 8).InitHe(r),
		NewTanh(),
		NewDense(8, 1).InitXavier(r),
	)
	assertTrainingConverges(t, net, NewAdam(0.01), r)
}

// assertTrainingConverges fits y = x0*x1 (XOR-ish smooth target) and demands
// a large loss reduction.
func assertTrainingConverges(t *testing.T, net *Network, opt Optimizer, r *rng.Stream) {
	t.Helper()
	loss := MSE{}
	sample := func() (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.MustFromSlice([]float64{r.Range(-1, 1), r.Range(-1, 1)}, 2)
		y := tensor.MustFromSlice([]float64{x.At(0) * x.At(1)}, 1)
		return x, y
	}
	measure := func() float64 {
		var total float64
		probe := rng.New(999)
		for i := 0; i < 100; i++ {
			x := tensor.MustFromSlice([]float64{probe.Range(-1, 1), probe.Range(-1, 1)}, 2)
			y := tensor.MustFromSlice([]float64{x.At(0) * x.At(1)}, 1)
			pred, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			l, err := loss.Loss(pred, y)
			if err != nil {
				t.Fatal(err)
			}
			total += l
		}
		return total / 100
	}

	before := measure()
	for step := 0; step < 2000; step++ {
		net.ZeroGrad()
		x, y := sample()
		pred, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		g, err := loss.Grad(pred, y)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Backward(g); err != nil {
			t.Fatal(err)
		}
		opt.Step(net.Params())
	}
	after := measure()
	if after > before*0.25 {
		t.Errorf("training did not converge: loss %v -> %v", before, after)
	}
}

func TestSGDClipNorm(t *testing.T) {
	p := newParam("w", 2)
	p.Grad.Data()[0] = 100
	p.Grad.Data()[1] = -100
	sgd := NewSGD(1, 0)
	sgd.ClipNorm = 1
	sgd.Step([]*Param{p})
	// With clipping to max-abs 1, update magnitude is exactly lr*1.
	if math.Abs(p.Value.Data()[0]+1) > 1e-12 || math.Abs(p.Value.Data()[1]-1) > 1e-12 {
		t.Errorf("clipped step = %v", p.Value.Data())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(9)
	conv := NewConv2D(1, 8, 8, 2, 3, 1, 1).InitHe(r)
	net := NewNetwork(
		conv,
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*4*4, 6).InitXavier(r),
		NewTanh(),
		NewRNNCell(6, 4).InitXavier(r),
		NewDropout(0.3, r),
		NewDense(4, 2).InitXavier(r),
		NewSigmoid(),
	)
	x := randImage(r, 1, 8, 8)
	want, err := net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resetRNNStates(loaded)
	got, err := loaded.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if math.Abs(want.Data()[i]-got.Data()[i]) > 1e-12 {
			t.Fatalf("loaded output differs at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage Load did not error")
	}
}

func TestBuildLayerRejectsBadSpecs(t *testing.T) {
	bad := []LayerSpec{
		{Kind: "nope"},
		{Kind: "dense", Ints: map[string]int{"in": 0, "out": 2}},
		{Kind: "dense", Ints: map[string]int{"in": 2, "out": 2}}, // missing tensors
		{Kind: "maxpool2d", Ints: map[string]int{"size": 0}},
		{Kind: "conv2d", Ints: map[string]int{"inC": 1}},
		{Kind: "rnncell", Ints: map[string]int{"in": 2, "hidden": 0}},
	}
	for _, s := range bad {
		if _, err := buildLayer(s); err == nil {
			t.Errorf("spec %+v did not error", s.Kind)
		}
	}
}

func TestRNNStateEvolvesAndResets(t *testing.T) {
	r := rng.New(10)
	cell := NewRNNCell(2, 3).InitXavier(r)
	x := tensor.MustFromSlice([]float64{0.5, -0.25}, 2)

	y1, err := cell.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	y2, err := cell.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			same = false
		}
	}
	if same {
		t.Error("RNN output identical across steps; state not evolving")
	}

	cell.ResetState()
	y3, err := cell.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y3.Data()[i] {
			t.Fatal("RNN reset did not restore initial behaviour")
		}
	}
}

func TestIsFinite(t *testing.T) {
	r := rng.New(11)
	net := NewNetwork(NewDense(2, 2).InitHe(r))
	if !net.IsFinite() {
		t.Error("fresh network reported non-finite")
	}
	net.Params()[0].Value.Data()[0] = math.Inf(1)
	if net.IsFinite() {
		t.Error("Inf weight not detected")
	}
}

func TestMSELossKnown(t *testing.T) {
	pred := tensor.MustFromSlice([]float64{1, 2}, 2)
	target := tensor.MustFromSlice([]float64{0, 4}, 2)
	l, err := MSE{}.Loss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-2.5) > 1e-12 { // (1+4)/2
		t.Errorf("MSE = %v, want 2.5", l)
	}
	g, err := MSE{}.Grad(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0) != 1 || g.At(1) != -2 {
		t.Errorf("MSE grad = %v", g.Data())
	}
}

func TestHuberMatchesMSEInCore(t *testing.T) {
	pred := tensor.MustFromSlice([]float64{0.5}, 1)
	target := tensor.MustFromSlice([]float64{0}, 1)
	h, err := Huber{Delta: 1}.Loss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.125) > 1e-12 { // r^2/2
		t.Errorf("Huber core = %v, want 0.125", h)
	}
}

func TestHuberLinearTail(t *testing.T) {
	pred := tensor.MustFromSlice([]float64{10}, 1)
	target := tensor.MustFromSlice([]float64{0}, 1)
	h, err := Huber{Delta: 1}.Loss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-9.5) > 1e-12 { // d*(r - d/2) = 1*(10-0.5)
		t.Errorf("Huber tail = %v, want 9.5", h)
	}
	g, err := Huber{Delta: 1}.Grad(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0) != 1 { // clipped to delta
		t.Errorf("Huber tail grad = %v, want 1", g.At(0))
	}
}

func TestLossShapeMismatch(t *testing.T) {
	if _, err := (MSE{}).Loss(tensor.New(2), tensor.New(3)); err == nil {
		t.Error("MSE shape mismatch did not error")
	}
	if _, err := (Huber{}).Grad(tensor.New(2), tensor.New(3)); err == nil {
		t.Error("Huber shape mismatch did not error")
	}
}
