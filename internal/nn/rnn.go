package nn

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

var _ Layer = (*RNNCell)(nil)

// RNNCell is an Elman recurrent cell: h' = tanh(Wx·x + Wh·h + b). The
// paper's Figure 1 shows an RNN stage in the driving agent's network; the
// agent uses this cell to smooth its control outputs over time.
//
// The cell carries its hidden state between Forward calls; ResetState
// clears it at episode boundaries. Backward implements single-step
// truncated BPTT (gradient does not flow into the previous hidden state),
// which is sufficient for the imitation-learning objective used here.
type RNNCell struct {
	inSize, hiddenSize int
	wx, wh, b          *Param
	state              *tensor.Tensor
	lastX, lastH       *tensor.Tensor
	lastOut            *tensor.Tensor
}

// NewRNNCell constructs a cell with zeroed weights and state.
func NewRNNCell(inSize, hiddenSize int) *RNNCell {
	return &RNNCell{
		inSize:     inSize,
		hiddenSize: hiddenSize,
		wx:         newParam("wx", inSize, hiddenSize),
		wh:         newParam("wh", hiddenSize, hiddenSize),
		b:          newParam("bias", hiddenSize),
		state:      tensor.New(hiddenSize),
	}
}

// InitXavier initializes both weight matrices Xavier-uniform.
func (c *RNNCell) InitXavier(r *rng.Stream) *RNNCell {
	limX := math.Sqrt(6 / float64(c.inSize+c.hiddenSize))
	for i := range c.wx.Value.Data() {
		c.wx.Value.Data()[i] = r.Range(-limX, limX)
	}
	limH := math.Sqrt(6 / float64(2*c.hiddenSize))
	for i := range c.wh.Value.Data() {
		c.wh.Value.Data()[i] = r.Range(-limH, limH)
	}
	return c
}

// ResetState zeroes the hidden state; call at episode boundaries.
func (c *RNNCell) ResetState() { c.state.Zero() }

// State returns the current hidden state (shared storage).
func (c *RNNCell) State() *tensor.Tensor { return c.state }

// Forward implements Layer.
func (c *RNNCell) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Len() != c.inSize {
		return nil, fmt.Errorf("rnn: input %v, want %d values", x.Shape(), c.inSize)
	}
	c.lastX = x.Clone()
	c.lastH = c.state.Clone()

	xRow, err := x.Reshape(1, c.inSize)
	if err != nil {
		return nil, err
	}
	hRow, err := c.state.Reshape(1, c.hiddenSize)
	if err != nil {
		return nil, err
	}
	xPart, err := tensor.MatMul(xRow, c.wx.Value)
	if err != nil {
		return nil, err
	}
	hPart, err := tensor.MatMul(hRow, c.wh.Value)
	if err != nil {
		return nil, err
	}
	if err := xPart.AddInPlace(hPart); err != nil {
		return nil, err
	}
	if err := xPart.AddRowVec(c.b.Value); err != nil {
		return nil, err
	}
	out, err := xPart.Reshape(c.hiddenSize)
	if err != nil {
		return nil, err
	}
	out.Apply(math.Tanh)
	c.state = out.Clone()
	c.lastOut = out.Clone()
	return out, nil
}

// Backward implements Layer (truncated to one step).
func (c *RNNCell) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastOut == nil {
		return nil, fmt.Errorf("rnn: Backward before Forward")
	}
	if grad.Len() != c.hiddenSize {
		return nil, fmt.Errorf("rnn: grad %v, want %d values", grad.Shape(), c.hiddenSize)
	}
	// dPre = grad * (1 - out^2)
	dPre := grad.Clone()
	for i, y := range c.lastOut.Data() {
		dPre.Data()[i] *= 1 - y*y
	}
	dPreRow, err := dPre.Reshape(1, c.hiddenSize)
	if err != nil {
		return nil, err
	}
	xRow, err := c.lastX.Reshape(1, c.inSize)
	if err != nil {
		return nil, err
	}
	hRow, err := c.lastH.Reshape(1, c.hiddenSize)
	if err != nil {
		return nil, err
	}
	// dWx = x^T dPre ; dWh = h^T dPre ; db = dPre
	dwx, err := tensor.MatMulTransA(xRow, dPreRow)
	if err != nil {
		return nil, err
	}
	if err := c.wx.Grad.AddInPlace(dwx); err != nil {
		return nil, err
	}
	dwh, err := tensor.MatMulTransA(hRow, dPreRow)
	if err != nil {
		return nil, err
	}
	if err := c.wh.Grad.AddInPlace(dwh); err != nil {
		return nil, err
	}
	dbFlat, err := dPreRow.Reshape(c.hiddenSize)
	if err != nil {
		return nil, err
	}
	if err := c.b.Grad.AddInPlace(dbFlat); err != nil {
		return nil, err
	}
	// dx = dPre Wx^T
	dx, err := tensor.MatMulTransB(dPreRow, c.wx.Value)
	if err != nil {
		return nil, err
	}
	return dx.Reshape(c.inSize)
}

// Params implements Layer.
func (c *RNNCell) Params() []*Param { return []*Param{c.wx, c.wh, c.b} }

// Spec implements Layer.
func (c *RNNCell) Spec() LayerSpec {
	return LayerSpec{
		Kind: "rnncell",
		Ints: map[string]int{"in": c.inSize, "hidden": c.hiddenSize},
		Tensors: map[string]*tensor.Tensor{
			"wx": c.wx.Value.Clone(), "wh": c.wh.Value.Clone(), "bias": c.b.Value.Clone(),
		},
	}
}

func (c *RNNCell) clone() Layer {
	return &RNNCell{
		inSize:     c.inSize,
		hiddenSize: c.hiddenSize,
		wx:         cloneParam(c.wx),
		wh:         cloneParam(c.wh),
		b:          cloneParam(c.b),
		state:      c.state.Clone(),
	}
}
