package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/avfi/avfi/internal/tensor"
)

// LayerSpec is the serializable description of a layer: its kind, scalar
// configuration, and weight tensors. Networks round-trip through
// []LayerSpec so trained agent models can be saved, shipped, and reloaded.
type LayerSpec struct {
	Kind    string
	Ints    map[string]int
	Floats  map[string]float64
	Tensors map[string]*tensor.Tensor
}

func (s LayerSpec) intOr(key string, def int) int {
	if v, ok := s.Ints[key]; ok {
		return v
	}
	return def
}

func (s LayerSpec) needTensor(key string) (*tensor.Tensor, error) {
	t, ok := s.Tensors[key]
	if !ok || t == nil {
		return nil, fmt.Errorf("%w: %q missing tensor %q", ErrBadSpec, s.Kind, key)
	}
	return t, nil
}

// Save writes the network (architecture + weights) to w.
func (n *Network) Save(w io.Writer) error {
	specs := make([]LayerSpec, len(n.layers))
	for i, l := range n.layers {
		specs[i] = l.Spec()
	}
	if err := gob.NewEncoder(w).Encode(specs); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var specs []LayerSpec
	if err := gob.NewDecoder(r).Decode(&specs); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	layers := make([]Layer, len(specs))
	for i, s := range specs {
		l, err := buildLayer(s)
		if err != nil {
			return nil, fmt.Errorf("nn: load layer %d: %w", i, err)
		}
		layers[i] = l
	}
	return NewNetwork(layers...), nil
}

func buildLayer(s LayerSpec) (Layer, error) {
	switch s.Kind {
	case "dense":
		in, out := s.intOr("in", 0), s.intOr("out", 0)
		if in <= 0 || out <= 0 {
			return nil, fmt.Errorf("%w: dense dims %dx%d", ErrBadSpec, in, out)
		}
		d := NewDense(in, out)
		w, err := s.needTensor("weight")
		if err != nil {
			return nil, err
		}
		b, err := s.needTensor("bias")
		if err != nil {
			return nil, err
		}
		if !w.SameShape(d.w.Value) || !b.SameShape(d.b.Value) {
			return nil, fmt.Errorf("%w: dense weight shapes %v/%v", ErrBadSpec, w.Shape(), b.Shape())
		}
		copy(d.w.Value.Data(), w.Data())
		copy(d.b.Value.Data(), b.Data())
		return d, nil

	case "conv2d":
		c := NewConv2D(
			s.intOr("inC", 0), s.intOr("inH", 0), s.intOr("inW", 0),
			s.intOr("outC", 0), s.intOr("k", 0), s.intOr("stride", 1), s.intOr("pad", 0),
		)
		if c.inC <= 0 || c.inH <= 0 || c.inW <= 0 || c.outC <= 0 || c.k <= 0 {
			return nil, fmt.Errorf("%w: conv2d config %+v", ErrBadSpec, s.Ints)
		}
		w, err := s.needTensor("filter")
		if err != nil {
			return nil, err
		}
		b, err := s.needTensor("bias")
		if err != nil {
			return nil, err
		}
		if !w.SameShape(c.w.Value) || !b.SameShape(c.b.Value) {
			return nil, fmt.Errorf("%w: conv2d weight shapes %v/%v", ErrBadSpec, w.Shape(), b.Shape())
		}
		copy(c.w.Value.Data(), w.Data())
		copy(c.b.Value.Data(), b.Data())
		return c, nil

	case "maxpool2d":
		size := s.intOr("size", 0)
		if size <= 0 {
			return nil, fmt.Errorf("%w: maxpool size %d", ErrBadSpec, size)
		}
		return NewMaxPool2D(size), nil

	case "flatten":
		return NewFlatten(), nil
	case "relu":
		return NewReLU(), nil
	case "tanh":
		return NewTanh(), nil
	case "sigmoid":
		return NewSigmoid(), nil

	case "dropout":
		p := s.Floats["p"]
		// Dropout reloads inert (nil stream): inference never drops, and a
		// caller that wants to continue training must supply a stream.
		return &Dropout{p: p}, nil

	case "rnncell":
		in, hidden := s.intOr("in", 0), s.intOr("hidden", 0)
		if in <= 0 || hidden <= 0 {
			return nil, fmt.Errorf("%w: rnncell dims %dx%d", ErrBadSpec, in, hidden)
		}
		c := NewRNNCell(in, hidden)
		for key, dst := range map[string]*Param{"wx": c.wx, "wh": c.wh, "bias": c.b} {
			t, err := s.needTensor(key)
			if err != nil {
				return nil, err
			}
			if !t.SameShape(dst.Value) {
				return nil, fmt.Errorf("%w: rnncell %s shape %v", ErrBadSpec, key, t.Shape())
			}
			copy(dst.Value.Data(), t.Data())
		}
		return c, nil

	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadSpec, s.Kind)
	}
}
