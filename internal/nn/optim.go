package nn

import (
	"math"

	"github.com/avfi/avfi/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its gradient, then the caller is
	// expected to zero the gradients.
	Step(params []*Param)
}

// Compile-time interface checks.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// SGD is stochastic gradient descent with optional classical momentum and
// gradient clipping.
type SGD struct {
	LR       float64
	Momentum float64
	// ClipNorm, when > 0, rescales each parameter's gradient so its max
	// absolute element does not exceed the value; a cheap guard against
	// exploding gradients in the recurrent cell.
	ClipNorm float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	if o.velocity == nil {
		o.velocity = make(map[*Param]*tensor.Tensor)
	}
	for _, p := range params {
		grad := p.Grad
		if o.ClipNorm > 0 {
			if m := grad.MaxAbs(); m > o.ClipNorm {
				grad = grad.Clone().ScaleInPlace(o.ClipNorm / m)
			}
		}
		if o.Momentum > 0 {
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				o.velocity[p] = v
			}
			for i := range v.Data() {
				v.Data()[i] = o.Momentum*v.Data()[i] - o.LR*grad.Data()[i]
				p.Value.Data()[i] += v.Data()[i]
			}
		} else {
			for i := range p.Value.Data() {
				p.Value.Data()[i] -= o.LR * grad.Data()[i]
			}
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam constructs Adam with the usual defaults for unset fields.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		m:       make(map[*Param]*tensor.Tensor),
		v:       make(map[*Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = make(map[*Param]*tensor.Tensor)
		o.v = make(map[*Param]*tensor.Tensor)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p]
		for i := range p.Value.Data() {
			g := p.Grad.Data()[i]
			m.Data()[i] = o.Beta1*m.Data()[i] + (1-o.Beta1)*g
			v.Data()[i] = o.Beta2*v.Data()[i] + (1-o.Beta2)*g*g
			mHat := m.Data()[i] / bc1
			vHat := v.Data()[i] / bc2
			p.Value.Data()[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}
