// Package nn is a from-scratch neural network library: the substrate for
// the AVFI driving agent, standing in for the TensorFlow/PyTorch stack
// behind the paper's imitation-learning CNN (Codevilla et al., ICRA 2018).
//
// It provides the layer types the paper's Figure 1 names — convolutional
// perception layers, fully connected layers, and a recurrent cell — plus
// losses, SGD/Adam optimizers, deterministic initialization, gob
// serialization, and, critically for AVFI, *parameter visitation hooks*
// that the machine-learning fault injector uses to corrupt weights exactly
// as the paper describes ("adding noise into the parameters of the machine
// learning model").
//
// Layers process one sample at a time and cache activations for backward;
// a Network is therefore not safe for concurrent use. Campaign code clones
// one network per episode goroutine.
package nn

import (
	"errors"
	"fmt"

	"github.com/avfi/avfi/internal/tensor"
)

// ErrBadSpec is returned when deserializing a malformed layer spec.
var ErrBadSpec = errors.New("nn: bad layer spec")

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// zeroGrad clears the gradient accumulator.
func (p *Param) zeroGrad() { p.Grad.Zero() }

// Layer is one stage of a feed-forward network.
type Layer interface {
	// Forward consumes the input and returns the output, caching whatever
	// backward needs.
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	// Backward consumes dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Spec returns a serializable description of the layer including its
	// weights.
	Spec() LayerSpec
	// clone returns a deep copy sharing no state.
	clone() Layer
}

// Network is an ordered sequence of layers.
type Network struct {
	layers []Layer
	train  bool
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: layers}
}

// SetTraining toggles training mode (affects Dropout).
func (n *Network) SetTraining(train bool) { n.train = train }

// Training reports whether the network is in training mode.
func (n *Network) Training() bool { return n.train }

// Layers returns the layer slice (shared; used by fault localization).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs x through every layer.
func (n *Network) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i, l := range n.layers {
		if d, ok := l.(*Dropout); ok {
			d.active = n.train
		}
		x, err = l.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%T): %w", i, l, err)
		}
	}
	return x, nil
}

// Backward propagates grad back through every layer, accumulating parameter
// gradients, and returns the gradient with respect to the network input.
func (n *Network) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad, err = n.layers[i].Backward(grad)
		if err != nil {
			return nil, fmt.Errorf("nn: backward layer %d (%T): %w", i, n.layers[i], err)
		}
	}
	return grad, nil
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.zeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// VisitParams calls fn for every parameter tensor with its layer index and
// name. This is the hook the ML fault injector (internal/fault/mlfault)
// localizes and corrupts weights through.
func (n *Network) VisitParams(fn func(layer int, name string, value *tensor.Tensor)) {
	for i, l := range n.layers {
		for _, p := range l.Params() {
			fn(i, p.Name, p.Value)
		}
	}
}

// Clone returns a deep copy of the network: independent weights and caches.
// Campaign episodes run on clones so that per-episode weight faults never
// leak across episodes.
func (n *Network) Clone() *Network {
	out := &Network{layers: make([]Layer, len(n.layers)), train: n.train}
	for i, l := range n.layers {
		out.layers[i] = l.clone()
	}
	return out
}

// IsFinite reports whether every parameter is finite. Weight bit-flip
// faults can produce Inf/NaN weights; the agent's output guard consults
// this for diagnostics.
func (n *Network) IsFinite() bool {
	for _, p := range n.Params() {
		if !p.Value.IsFinite() {
			return false
		}
	}
	return true
}

func newParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

func cloneParam(p *Param) *Param {
	return &Param{Name: p.Name, Value: p.Value.Clone(), Grad: p.Grad.Clone()}
}
