package nn

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for every scalar in the given
// parameter by central finite differences, where loss is computed by eval.
func numericalGrad(t *testing.T, value *tensor.Tensor, eval func() float64) []float64 {
	t.Helper()
	const h = 1e-5
	grads := make([]float64, value.Len())
	for i := range value.Data() {
		orig := value.Data()[i]
		value.Data()[i] = orig + h
		up := eval()
		value.Data()[i] = orig - h
		down := eval()
		value.Data()[i] = orig
		grads[i] = (up - down) / (2 * h)
	}
	return grads
}

// checkNetworkGradients runs forward/backward once and compares analytic
// parameter gradients against finite differences.
func checkNetworkGradients(t *testing.T, net *Network, x, target *tensor.Tensor, tol float64) {
	t.Helper()
	loss := MSE{}

	eval := func() float64 {
		// RNN state must be identical for every evaluation.
		resetRNNStates(net)
		pred, err := net.Forward(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Loss(pred, target)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Analytic gradients.
	net.ZeroGrad()
	resetRNNStates(net)
	pred, err := net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	grad, err := loss.Grad(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}

	for _, p := range net.Params() {
		numeric := numericalGrad(t, p.Value, eval)
		for i, ng := range numeric {
			ag := p.Grad.Data()[i]
			denom := math.Max(1, math.Max(math.Abs(ng), math.Abs(ag)))
			if math.Abs(ng-ag)/denom > tol {
				t.Fatalf("param %q[%d]: analytic %v vs numeric %v", p.Name, i, ag, ng)
			}
		}
	}
}

func resetRNNStates(net *Network) {
	for _, l := range net.Layers() {
		if c, ok := l.(*RNNCell); ok {
			c.ResetState()
		}
	}
}

func TestDenseGradient(t *testing.T) {
	r := rng.New(1)
	net := NewNetwork(NewDense(4, 3).InitXavier(r))
	x := randVec(r, 4)
	target := randVec(r, 3)
	checkNetworkGradients(t, net, x, target, 1e-5)
}

func TestDenseReLUStackGradient(t *testing.T) {
	r := rng.New(2)
	net := NewNetwork(
		NewDense(5, 8).InitHe(r),
		NewReLU(),
		NewDense(8, 2).InitXavier(r),
	)
	x := randVec(r, 5)
	target := randVec(r, 2)
	checkNetworkGradients(t, net, x, target, 1e-5)
}

func TestTanhSigmoidGradient(t *testing.T) {
	r := rng.New(3)
	net := NewNetwork(
		NewDense(4, 6).InitXavier(r),
		NewTanh(),
		NewDense(6, 4).InitXavier(r),
		NewSigmoid(),
	)
	x := randVec(r, 4)
	target := randVec(r, 4)
	checkNetworkGradients(t, net, x, target, 1e-5)
}

func TestConvPoolGradient(t *testing.T) {
	r := rng.New(4)
	conv := NewConv2D(2, 6, 6, 3, 3, 1, 1).InitHe(r)
	net := NewNetwork(
		conv,
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(3*3*3, 2).InitXavier(r),
	)
	x := randImage(r, 2, 6, 6)
	target := randVec(r, 2)
	checkNetworkGradients(t, net, x, target, 1e-4)
}

func TestConvStrideGradient(t *testing.T) {
	r := rng.New(5)
	conv := NewConv2D(1, 8, 8, 2, 3, 2, 1)
	conv.InitHe(r)
	oc, oh, ow := conv.OutShape()
	net := NewNetwork(
		conv,
		NewTanh(),
		NewFlatten(),
		NewDense(oc*oh*ow, 3).InitXavier(r),
	)
	x := randImage(r, 1, 8, 8)
	target := randVec(r, 3)
	checkNetworkGradients(t, net, x, target, 1e-4)
}

func TestRNNCellGradient(t *testing.T) {
	r := rng.New(6)
	net := NewNetwork(
		NewDense(3, 4).InitXavier(r),
		NewRNNCell(4, 5).InitXavier(r),
		NewDense(5, 2).InitXavier(r),
	)
	x := randVec(r, 3)
	target := randVec(r, 2)
	checkNetworkGradients(t, net, x, target, 1e-4)
}

func TestInputGradientDense(t *testing.T) {
	// Check dLoss/dInput as well — the branched agent needs correct input
	// gradients to backprop from heads into the shared trunk.
	r := rng.New(7)
	net := NewNetwork(NewDense(4, 3).InitXavier(r), NewTanh())
	x := randVec(r, 4)
	target := randVec(r, 3)
	loss := MSE{}

	net.ZeroGrad()
	pred, err := net.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	g, err := loss.Grad(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := net.Backward(g)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-5
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up, _ := net.Forward(x.Clone())
		lUp, _ := loss.Loss(up, target)
		x.Data()[i] = orig - h
		down, _ := net.Forward(x.Clone())
		lDown, _ := loss.Loss(down, target)
		x.Data()[i] = orig
		numeric := (lUp - lDown) / (2 * h)
		if math.Abs(numeric-dx.Data()[i]) > 1e-5*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, dx.Data()[i], numeric)
		}
	}
}

func randVec(r *rng.Stream, n int) *tensor.Tensor {
	x := tensor.New(n)
	for i := range x.Data() {
		x.Data()[i] = r.Range(-1, 1)
	}
	return x
}

func randImage(r *rng.Stream, c, h, w int) *tensor.Tensor {
	x := tensor.New(c, h, w)
	for i := range x.Data() {
		x.Data()[i] = r.Range(-1, 1)
	}
	return x
}
