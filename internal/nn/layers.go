package nn

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
)

// Compile-time interface checks.
var (
	_ Layer = (*Dense)(nil)
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*MaxPool2D)(nil)
	_ Layer = (*Flatten)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Tanh)(nil)
	_ Layer = (*Sigmoid)(nil)
	_ Layer = (*Dropout)(nil)
)

// Dense is a fully connected layer: y = xW + b with W shaped (in, out).
type Dense struct {
	in, out int
	w, b    *Param
	lastX   *tensor.Tensor
}

// NewDense constructs a Dense layer with zero weights; call InitHe or
// InitXavier (or load weights) before use.
func NewDense(in, out int) *Dense {
	return &Dense{
		in:  in,
		out: out,
		w:   newParam("weight", in, out),
		b:   newParam("bias", out),
	}
}

// InitHe applies He-normal initialization (for ReLU activations).
func (d *Dense) InitHe(r *rng.Stream) *Dense {
	std := math.Sqrt(2 / float64(d.in))
	for i := range d.w.Value.Data() {
		d.w.Value.Data()[i] = r.NormScaled(0, std)
	}
	return d
}

// InitXavier applies Xavier-uniform initialization (for tanh/sigmoid).
func (d *Dense) InitXavier(r *rng.Stream) *Dense {
	lim := math.Sqrt(6 / float64(d.in+d.out))
	for i := range d.w.Value.Data() {
		d.w.Value.Data()[i] = r.Range(-lim, lim)
	}
	return d
}

// Forward implements Layer. Input must be a vector of length in.
func (d *Dense) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Len() != d.in {
		return nil, fmt.Errorf("dense: input %v, want %d values", x.Shape(), d.in)
	}
	row, err := x.Reshape(1, d.in)
	if err != nil {
		return nil, err
	}
	d.lastX = x.Clone()
	y, err := tensor.MatMul(row, d.w.Value)
	if err != nil {
		return nil, err
	}
	if err := y.AddRowVec(d.b.Value); err != nil {
		return nil, err
	}
	return y.Reshape(d.out)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if grad.Len() != d.out {
		return nil, fmt.Errorf("dense: grad %v, want %d values", grad.Shape(), d.out)
	}
	if d.lastX == nil {
		return nil, fmt.Errorf("dense: Backward before Forward")
	}
	g, err := grad.Reshape(1, d.out)
	if err != nil {
		return nil, err
	}
	xRow, err := d.lastX.Reshape(1, d.in)
	if err != nil {
		return nil, err
	}
	// dW = x^T g  (in,1)x(1,out)
	dw, err := tensor.MatMulTransA(xRow, g)
	if err != nil {
		return nil, err
	}
	if err := d.w.Grad.AddInPlace(dw); err != nil {
		return nil, err
	}
	// db = g
	dbFlat, err := g.Reshape(d.out)
	if err != nil {
		return nil, err
	}
	if err := d.b.Grad.AddInPlace(dbFlat); err != nil {
		return nil, err
	}
	// dx = g W^T  (1,out)x(out,in)
	dx, err := tensor.MatMulTransB(g, d.w.Value)
	if err != nil {
		return nil, err
	}
	return dx.Reshape(d.in)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Spec implements Layer.
func (d *Dense) Spec() LayerSpec {
	return LayerSpec{
		Kind:    "dense",
		Ints:    map[string]int{"in": d.in, "out": d.out},
		Tensors: map[string]*tensor.Tensor{"weight": d.w.Value.Clone(), "bias": d.b.Value.Clone()},
	}
}

func (d *Dense) clone() Layer {
	return &Dense{in: d.in, out: d.out, w: cloneParam(d.w), b: cloneParam(d.b)}
}

// Conv2D is a 2D convolution over (C, H, W) inputs, implemented as
// im2col + matmul. Filters are stored as a (C*KH*KW, OutC) matrix; bias is
// (OutC,). Output is (OutC, OH, OW).
type Conv2D struct {
	inC, inH, inW        int
	outC, k, stride, pad int
	outH, outW           int
	w, b                 *Param
	lastCols             *tensor.Tensor
}

// NewConv2D constructs a convolution for a fixed input geometry. Square
// kernels only — the agent's perception stack doesn't need rectangular ones.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	oh, ow := tensor.Conv2DShape(inH, inW, k, k, stride, pad)
	return &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, k: k, stride: stride, pad: pad,
		outH: oh, outW: ow,
		w: newParam("filter", inC*k*k, outC),
		b: newParam("bias", outC),
	}
}

// InitHe applies He-normal initialization scaled by fan-in.
func (c *Conv2D) InitHe(r *rng.Stream) *Conv2D {
	fanIn := float64(c.inC * c.k * c.k)
	std := math.Sqrt(2 / fanIn)
	for i := range c.w.Value.Data() {
		c.w.Value.Data()[i] = r.NormScaled(0, std)
	}
	return c
}

// OutShape returns the (C, H, W) of this layer's output.
func (c *Conv2D) OutShape() (int, int, int) { return c.outC, c.outH, c.outW }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 || x.Dim(0) != c.inC || x.Dim(1) != c.inH || x.Dim(2) != c.inW {
		return nil, fmt.Errorf("conv2d: input %v, want (%d,%d,%d)", x.Shape(), c.inC, c.inH, c.inW)
	}
	cols, err := tensor.Im2Col(x, c.k, c.k, c.stride, c.pad)
	if err != nil {
		return nil, err
	}
	c.lastCols = cols
	out2d, err := tensor.MatMul(cols, c.w.Value) // (OH*OW, OutC)
	if err != nil {
		return nil, err
	}
	if err := out2d.AddRowVec(c.b.Value); err != nil {
		return nil, err
	}
	// Rearrange (OH*OW, OutC) -> (OutC, OH, OW).
	out := tensor.New(c.outC, c.outH, c.outW)
	n := c.outH * c.outW
	for p := 0; p < n; p++ {
		for oc := 0; oc < c.outC; oc++ {
			out.Data()[oc*n+p] = out2d.Data()[p*c.outC+oc]
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if grad.Dims() != 3 || grad.Dim(0) != c.outC || grad.Dim(1) != c.outH || grad.Dim(2) != c.outW {
		return nil, fmt.Errorf("conv2d: grad %v, want (%d,%d,%d)", grad.Shape(), c.outC, c.outH, c.outW)
	}
	if c.lastCols == nil {
		return nil, fmt.Errorf("conv2d: Backward before Forward")
	}
	// Rearrange (OutC, OH, OW) -> (OH*OW, OutC).
	n := c.outH * c.outW
	g2d := tensor.New(n, c.outC)
	for p := 0; p < n; p++ {
		for oc := 0; oc < c.outC; oc++ {
			g2d.Data()[p*c.outC+oc] = grad.Data()[oc*n+p]
		}
	}
	// dW = cols^T g2d
	dw, err := tensor.MatMulTransA(c.lastCols, g2d)
	if err != nil {
		return nil, err
	}
	if err := c.w.Grad.AddInPlace(dw); err != nil {
		return nil, err
	}
	// db = column sums of g2d
	db, err := tensor.SumRows(g2d)
	if err != nil {
		return nil, err
	}
	if err := c.b.Grad.AddInPlace(db); err != nil {
		return nil, err
	}
	// dCols = g2d W^T; dX = col2im(dCols)
	dcols, err := tensor.MatMulTransB(g2d, c.w.Value)
	if err != nil {
		return nil, err
	}
	return tensor.Col2Im(dcols, c.inC, c.inH, c.inW, c.k, c.k, c.stride, c.pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Spec implements Layer.
func (c *Conv2D) Spec() LayerSpec {
	return LayerSpec{
		Kind: "conv2d",
		Ints: map[string]int{
			"inC": c.inC, "inH": c.inH, "inW": c.inW,
			"outC": c.outC, "k": c.k, "stride": c.stride, "pad": c.pad,
		},
		Tensors: map[string]*tensor.Tensor{"filter": c.w.Value.Clone(), "bias": c.b.Value.Clone()},
	}
}

func (c *Conv2D) clone() Layer {
	cp := *c
	cp.w = cloneParam(c.w)
	cp.b = cloneParam(c.b)
	cp.lastCols = nil
	return &cp
}

// MaxPool2D downsamples (C, H, W) by a square window.
type MaxPool2D struct {
	size          int
	inC, inH, inW int
	lastArgmax    []int
}

// NewMaxPool2D constructs a pooling layer with the given window size.
func NewMaxPool2D(size int) *MaxPool2D { return &MaxPool2D{size: size} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 {
		return nil, fmt.Errorf("maxpool: input %v, want (C,H,W)", x.Shape())
	}
	m.inC, m.inH, m.inW = x.Dim(0), x.Dim(1), x.Dim(2)
	out, argmax, err := tensor.MaxPool2D(x, m.size)
	if err != nil {
		return nil, err
	}
	m.lastArgmax = argmax
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArgmax == nil {
		return nil, fmt.Errorf("maxpool: Backward before Forward")
	}
	return tensor.MaxPool2DBackward(grad, m.lastArgmax, m.inC, m.inH, m.inW)
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Spec implements Layer.
func (m *MaxPool2D) Spec() LayerSpec {
	return LayerSpec{Kind: "maxpool2d", Ints: map[string]int{"size": m.size}}
}

func (m *MaxPool2D) clone() Layer { return &MaxPool2D{size: m.size} }

// Flatten reshapes any input to a vector.
type Flatten struct {
	lastShape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	f.lastShape = x.Shape()
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("flatten: Backward before Forward")
	}
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Spec implements Layer.
func (f *Flatten) Spec() LayerSpec { return LayerSpec{Kind: "flatten"} }

func (f *Flatten) clone() Layer { return &Flatten{} }

// ReLU is max(0, x) elementwise.
type ReLU struct {
	lastX *tensor.Tensor
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	l.lastX = x.Clone()
	return x.Clone().Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}), nil
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastX == nil {
		return nil, fmt.Errorf("relu: Backward before Forward")
	}
	out := grad.Clone()
	for i, v := range l.lastX.Data() {
		if v <= 0 {
			out.Data()[i] = 0
		}
	}
	return out, nil
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Spec implements Layer.
func (l *ReLU) Spec() LayerSpec { return LayerSpec{Kind: "relu"} }

func (l *ReLU) clone() Layer { return &ReLU{} }

// Tanh is tanh(x) elementwise.
type Tanh struct {
	lastY *tensor.Tensor
}

// NewTanh constructs a Tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y := x.Clone().Apply(math.Tanh)
	l.lastY = y.Clone()
	return y, nil
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastY == nil {
		return nil, fmt.Errorf("tanh: Backward before Forward")
	}
	out := grad.Clone()
	for i, y := range l.lastY.Data() {
		out.Data()[i] *= 1 - y*y
	}
	return out, nil
}

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// Spec implements Layer.
func (l *Tanh) Spec() LayerSpec { return LayerSpec{Kind: "tanh"} }

func (l *Tanh) clone() Layer { return &Tanh{} }

// Sigmoid is 1/(1+e^-x) elementwise.
type Sigmoid struct {
	lastY *tensor.Tensor
}

// NewSigmoid constructs a Sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y := x.Clone().Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	l.lastY = y.Clone()
	return y, nil
}

// Backward implements Layer.
func (l *Sigmoid) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastY == nil {
		return nil, fmt.Errorf("sigmoid: Backward before Forward")
	}
	out := grad.Clone()
	for i, y := range l.lastY.Data() {
		out.Data()[i] *= y * (1 - y)
	}
	return out, nil
}

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// Spec implements Layer.
func (l *Sigmoid) Spec() LayerSpec { return LayerSpec{Kind: "sigmoid"} }

func (l *Sigmoid) clone() Layer { return &Sigmoid{} }

// Dropout randomly zeroes a fraction p of activations during training and
// scales the survivors by 1/(1-p) (inverted dropout); it is the identity at
// inference.
type Dropout struct {
	p        float64
	r        *rng.Stream
	active   bool
	lastMask []float64
}

// NewDropout constructs a Dropout layer with drop probability p, drawing
// masks from r.
func NewDropout(p float64, r *rng.Stream) *Dropout {
	return &Dropout{p: p, r: r}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !d.active || d.p <= 0 {
		d.lastMask = nil
		return x, nil
	}
	keep := 1 - d.p
	out := x.Clone()
	d.lastMask = make([]float64, x.Len())
	for i := range out.Data() {
		if d.r.Float64() < d.p {
			out.Data()[i] = 0
			d.lastMask[i] = 0
		} else {
			out.Data()[i] /= keep
			d.lastMask[i] = 1 / keep
		}
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastMask == nil {
		return grad, nil
	}
	if len(d.lastMask) != grad.Len() {
		return nil, fmt.Errorf("dropout: grad %v vs mask %d", grad.Shape(), len(d.lastMask))
	}
	out := grad.Clone()
	for i := range out.Data() {
		out.Data()[i] *= d.lastMask[i]
	}
	return out, nil
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Spec implements Layer.
func (d *Dropout) Spec() LayerSpec {
	return LayerSpec{Kind: "dropout", Floats: map[string]float64{"p": d.p}}
}

func (d *Dropout) clone() Layer { return &Dropout{p: d.p, r: d.r} }
