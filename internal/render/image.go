// Package render is the AVFI world simulator's camera: a software
// perspective renderer that turns the 2D town model into the forward-facing
// RGB frames the driving agent consumes — the stand-in for Unreal Engine's
// rendering in the paper's CARLA stack.
//
// The projection is a classic column raycaster: ground pixels are classified
// by road geometry (asphalt, lane markings, curb, sidewalk, grass), and
// buildings, vehicles and pedestrians are raycast per column and drawn as
// vertical wall spans with painter's-algorithm ordering. Weather modulates
// the image (fog attenuation, rain streaks and surface darkening) the way
// CARLA's weather presets degrade camera input.
//
// What matters for the paper's experiments is not photorealism but that the
// image carries the lane geometry the IL-CNN steers by, so that corrupting
// the image (Gaussian noise, occlusions, water droplets — the Figure 2/3
// fault suite) measurably degrades driving.
package render

import (
	"fmt"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/tensor"
)

// Channels is the number of color channels (RGB).
const Channels = 3

// Image is a dense RGB image with float64 channels in [0, 1], stored
// channel-major (C, H, W) to match the agent's tensor input layout.
type Image struct {
	W, H int
	// Pix has length Channels*H*W; index = c*H*W + y*W + x.
	Pix []float64
}

// NewImage returns a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, Channels*w*h)}
}

// At returns channel c at pixel (x, y).
func (im *Image) At(c, y, x int) float64 { return im.Pix[c*im.H*im.W+y*im.W+x] }

// Set assigns channel c at pixel (x, y).
func (im *Image) Set(c, y, x int, v float64) { im.Pix[c*im.H*im.W+y*im.W+x] = v }

// SetRGB assigns all three channels at pixel (x, y).
func (im *Image) SetRGB(y, x int, r, g, b float64) {
	n := im.H * im.W
	i := y*im.W + x
	im.Pix[i] = r
	im.Pix[n+i] = g
	im.Pix[2*n+i] = b
}

// RGB returns the three channels at pixel (x, y).
func (im *Image) RGB(y, x int) (r, g, b float64) {
	n := im.H * im.W
	i := y*im.W + x
	return im.Pix[i], im.Pix[n+i], im.Pix[2*n+i]
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	return &Image{W: im.W, H: im.H, Pix: append([]float64(nil), im.Pix...)}
}

// Clamp limits every channel into [0, 1] in place and returns the image.
// Fault injectors add unbounded noise; the agent input boundary clamps.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		im.Pix[i] = geom.Clamp(v, 0, 1)
	}
	return im
}

// Mean returns the average intensity over all channels; tests use it to
// verify fault models move the image statistics the way they should.
func (im *Image) Mean() float64 {
	var sum float64
	for _, v := range im.Pix {
		sum += v
	}
	return sum / float64(len(im.Pix))
}

// ToTensor copies the image into a (3, H, W) tensor for the agent network.
func (im *Image) ToTensor() *tensor.Tensor {
	t := tensor.New(Channels, im.H, im.W)
	copy(t.Data(), im.Pix)
	return t
}

// ToBytes quantizes the image to 8-bit channels for the wire protocol,
// matching CARLA's uint8 camera payloads (and giving the hardware fault
// injector realistic bit widths to flip).
func (im *Image) ToBytes() []byte {
	return im.AppendBytes(make([]byte, 0, len(im.Pix)))
}

// AppendBytes is ToBytes appending into dst — the allocation-free variant
// for frame loops that reuse a pixel buffer.
func (im *Image) AppendBytes(dst []byte) []byte {
	for _, v := range im.Pix {
		dst = append(dst, byte(geom.Clamp(v, 0, 1)*255+0.5))
	}
	return dst
}

// ImageFromBytes reconstructs an image from ToBytes output.
func ImageFromBytes(w, h int, data []byte) (*Image, error) {
	if len(data) != Channels*w*h {
		return nil, fmt.Errorf("render: %d bytes for %dx%d image, want %d", len(data), w, h, Channels*w*h)
	}
	im := NewImage(w, h)
	for i, b := range data {
		im.Pix[i] = float64(b) / 255
	}
	return im, nil
}
