package render

import (
	"bytes"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

func TestTopDownShowsRoadsAndBuildings(t *testing.T) {
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	im := RenderTopDown(DefaultTopDownConfig(), town, TopDownScene{})
	if im.W != 256 || im.H != 256 {
		t.Fatalf("size %dx%d", im.W, im.H)
	}
	// The image must contain at least road-gray, grass-green and building
	// pixels (distinct colors).
	colors := map[[3]uint8]int{}
	for y := 0; y < im.H; y += 2 {
		for x := 0; x < im.W; x += 2 {
			r, g, b := im.RGB(y, x)
			colors[[3]uint8{uint8(r * 20), uint8(g * 20), uint8(b * 20)}]++
		}
	}
	if len(colors) < 3 {
		t.Errorf("top-down view has only %d distinct color bins", len(colors))
	}
}

func TestTopDownEgoAndRouteVisible(t *testing.T) {
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	from, to, err := town.RandomMission(rng.New(3), 150)
	if err != nil {
		t.Fatal(err)
	}
	route, err := town.Net.PlanRoute(from, to)
	if err != nil {
		t.Fatal(err)
	}
	ego := geom.NewOBB(geom.Pose{Pos: route.Start().Pos, Heading: route.Start().Heading}, 4.5, 2)
	im := RenderTopDown(DefaultTopDownConfig(), town, TopDownScene{Ego: ego, Route: route})

	yellowish, cyanish := 0, 0
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.RGB(y, x)
			if r > 0.9 && g > 0.85 && b < 0.3 {
				yellowish++
			}
			if b > 0.8 && g > 0.5 && r < 0.3 {
				cyanish++
			}
		}
	}
	if yellowish == 0 {
		t.Error("ego marker not visible")
	}
	if cyanish < 10 {
		t.Errorf("route overlay barely visible (%d px)", cyanish)
	}
}

func TestTopDownZeroConfigDefaults(t *testing.T) {
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	im := RenderTopDown(TopDownConfig{}, town, TopDownScene{})
	if im.W != 256 || im.H != 256 {
		t.Errorf("zero config produced %dx%d", im.W, im.H)
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(3, 2)
	im.SetRGB(0, 0, 1, 0, 0)
	im.SetRGB(1, 2, 0, 0, 1)
	var buf bytes.Buffer
	if err := WritePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P6\n3 2\n255\n") {
		t.Fatalf("header = %q", out[:12])
	}
	body := buf.Bytes()[len("P6\n3 2\n255\n"):]
	if len(body) != 3*2*3 {
		t.Fatalf("body length %d", len(body))
	}
	if body[0] != 255 || body[1] != 0 {
		t.Error("first pixel not red")
	}
	if body[len(body)-1] != 255 {
		t.Error("last pixel not blue")
	}
}
