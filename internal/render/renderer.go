package render

import (
	"math"
	"sort"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

// Config parameterizes the camera.
type Config struct {
	// Width and Height are the frame size in pixels.
	Width, Height int
	// FOV is the horizontal field of view in radians.
	FOV float64
	// CamHeight is the lens height above the road in meters (hood mount).
	CamHeight float64
	// MaxViewDist culls geometry beyond this range in meters.
	MaxViewDist float64
}

// DefaultConfig returns the camera used by the experiments: a small frame
// (the IL network downsamples anyway) with a wide hood view.
func DefaultConfig() Config {
	return Config{
		Width:       64,
		Height:      48,
		FOV:         100 * math.Pi / 180,
		CamHeight:   1.4,
		MaxViewDist: 120,
	}
}

// Obstacle is a dynamic box to draw: another vehicle or a pedestrian.
type Obstacle struct {
	Box geom.OBB
	// Height in meters.
	Height float64
	// Kind selects the palette.
	Kind ObstacleKind
}

// ObstacleKind selects an obstacle's color class.
type ObstacleKind int

// Obstacle kinds. Enums start at one.
const (
	ObstacleInvalid ObstacleKind = iota
	ObstacleVehicle
	ObstaclePedestrian
)

// Scene is one frame's world state as seen from the ego camera.
type Scene struct {
	// CamPose is the camera pose (position on the road plane + heading).
	CamPose geom.Pose
	Weather world.Weather
	// Obstacles are everything dynamic except the ego vehicle.
	Obstacles []Obstacle
	// Frame numbers the frame within the episode; rain streaks derive
	// deterministically from it.
	Frame int
}

// Renderer draws camera frames of one town. It is safe for concurrent use
// by multiple goroutines (it holds no mutable state).
type Renderer struct {
	cfg   Config
	town  *world.Town
	focal float64 // pixels
	cx    float64
	cy    float64
}

// New constructs a renderer.
func New(cfg Config, town *world.Town) *Renderer {
	return &Renderer{
		cfg:   cfg,
		town:  town,
		focal: float64(cfg.Width) / 2 / math.Tan(cfg.FOV/2),
		cx:    float64(cfg.Width)/2 - 0.5,
		cy:    float64(cfg.Height)/2 - 0.5,
	}
}

// Config returns the renderer's camera configuration.
func (r *Renderer) Config() Config { return r.cfg }

// palette
var (
	colAsphalt       = [3]float64{0.25, 0.25, 0.27}
	colAsphaltWet    = [3]float64{0.18, 0.18, 0.21}
	colCenterLine    = [3]float64{0.85, 0.75, 0.20}
	colEdgeLine      = [3]float64{0.92, 0.92, 0.92}
	colSidewalk      = [3]float64{0.55, 0.54, 0.52}
	colGrass         = [3]float64{0.24, 0.46, 0.22}
	colSkyTop        = [3]float64{0.33, 0.52, 0.83}
	colSkyHorizon    = [3]float64{0.72, 0.80, 0.92}
	colFog           = [3]float64{0.65, 0.67, 0.70}
	colVehicle       = [3]float64{0.72, 0.14, 0.10}
	colPedestrian    = [3]float64{0.16, 0.18, 0.65}
	colBuildingBase  = [3]float64{0.78, 0.72, 0.66}
	markHalfWidth    = 0.14
	centerDashPeriod = 6.0
	centerDashOn     = 3.5
)

// Render draws one frame.
func (r *Renderer) Render(scene Scene) *Image {
	im := NewImage(r.cfg.Width, r.cfg.Height)
	fogRange := math.Inf(1)
	if scene.Weather == world.WeatherFog {
		fogRange = 35
	}

	for x := 0; x < r.cfg.Width; x++ {
		// Camera-frame lateral slope of this column's rays: +a = left.
		a := (r.cx - float64(x)) / r.focal
		norm := math.Hypot(1, a)
		dirWorld := geom.FromAngle(scene.CamPose.Heading + math.Atan(a))

		r.renderSkyAndGround(im, scene, x, a, norm, dirWorld, fogRange)
		r.renderWalls(im, scene, x, a, norm, dirWorld, fogRange)
	}

	if scene.Weather == world.WeatherRain {
		r.renderRainStreaks(im, scene)
	}
	return im
}

// renderSkyAndGround fills one column's sky gradient and classified ground.
func (r *Renderer) renderSkyAndGround(im *Image, scene Scene, x int, a, norm float64, dirWorld geom.Vec, fogRange float64) {
	for y := 0; y < r.cfg.Height; y++ {
		b := (r.cy - float64(y)) / r.focal // + = up
		if b >= -1e-6 {
			// Sky gradient toward the horizon.
			t := geom.Clamp(b*3, 0, 1)
			c := lerpColor(colSkyHorizon, colSkyTop, t)
			if !math.IsInf(fogRange, 1) {
				c = lerpColor(c, colFog, 0.85)
			}
			im.SetRGB(y, x, c[0], c[1], c[2])
			continue
		}
		// Ground intersection: ray (1, a, b) scaled so z drops CamHeight.
		t := r.cfg.CamHeight / -b
		horizDist := t * norm
		if horizDist > r.cfg.MaxViewDist {
			c := applyFog(colGrass, horizDist, fogRange)
			im.SetRGB(y, x, c[0], c[1], c[2])
			continue
		}
		ground := scene.CamPose.Pos.Add(dirWorld.Scale(horizDist))
		c := r.classifyGround(ground, scene.Weather)
		c = applyFog(c, horizDist, fogRange)
		im.SetRGB(y, x, c[0], c[1], c[2])
	}
}

// wallHit is one raycast hit in a column, drawn painter's-style.
type wallHit struct {
	dist   float64
	height float64
	color  [3]float64
}

// renderWalls raycasts buildings and obstacles for one column and draws
// vertical spans far-to-near.
func (r *Renderer) renderWalls(im *Image, scene Scene, x int, a, norm float64, dirWorld geom.Vec, fogRange float64) {
	ray := geom.NewRay(scene.CamPose.Pos, dirWorld)
	var hits []wallHit

	if d, b, ok := r.town.RaycastBuildings(ray, r.cfg.MaxViewDist); ok {
		c := [3]float64{
			colBuildingBase[0] * b.Shade,
			colBuildingBase[1] * b.Shade,
			colBuildingBase[2] * b.Shade,
		}
		hits = append(hits, wallHit{dist: d, height: b.Height, color: c})
	}

	for _, ob := range scene.Obstacles {
		d, ok := raycastOBB(ray, ob.Box, r.cfg.MaxViewDist)
		if !ok {
			continue
		}
		c := colVehicle
		if ob.Kind == ObstaclePedestrian {
			c = colPedestrian
		}
		hits = append(hits, wallHit{dist: d, height: ob.Height, color: c})
	}
	if len(hits) == 0 {
		return
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].dist > hits[j].dist })

	for _, h := range hits {
		if h.dist < 0.3 {
			h.dist = 0.3
		}
		// Perspective rows for the wall top and bottom on this column: a
		// point at height z and ray-horizontal distance d projects to
		// vertical slope (z - camHeight)/d relative to the column ray.
		top := r.cy - r.focal*(h.height-r.cfg.CamHeight)/h.dist
		bottom := r.cy + r.focal*r.cfg.CamHeight/h.dist
		y0 := int(math.Max(0, math.Ceil(top)))
		y1 := int(math.Min(float64(r.cfg.Height-1), math.Floor(bottom)))
		c := applyFog(h.color, h.dist, fogRange)
		for y := y0; y <= y1; y++ {
			im.SetRGB(y, x, c[0], c[1], c[2])
		}
	}
}

// classifyGround maps a world point to its surface color.
func (r *Renderer) classifyGround(p geom.Vec, w world.Weather) [3]float64 {
	net := r.town.Net
	seg, dist, ok := net.NearestRoad(p)
	if !ok {
		return colGrass
	}
	asphalt := colAsphalt
	if w == world.WeatherRain {
		asphalt = colAsphaltWet
	}
	half := net.RoadHalfWidth()
	switch {
	case dist <= half:
		if net.InIntersection(p) {
			return asphalt
		}
		// Center line (dashed yellow).
		if dist < markHalfWidth {
			t, _ := seg.Project(p)
			along := t * seg.Len()
			if math.Mod(along, centerDashPeriod) < centerDashOn {
				return colCenterLine
			}
			return asphalt
		}
		// Edge line (solid white) just inside the curb.
		if math.Abs(dist-(half-0.25)) < markHalfWidth {
			return colEdgeLine
		}
		return asphalt
	case dist <= half+net.SidewalkWidth:
		return colSidewalk
	default:
		return colGrass
	}
}

// renderRainStreaks overlays deterministic rain streaks for the frame.
func (r *Renderer) renderRainStreaks(im *Image, scene Scene) {
	stream := rng.New(uint64(scene.Frame)*2654435761 + 17)
	n := r.cfg.Width * r.cfg.Height / 48
	for i := 0; i < n; i++ {
		x := stream.Intn(r.cfg.Width)
		y := stream.Intn(r.cfg.Height)
		l := 1 + stream.Intn(3)
		for dy := 0; dy < l && y+dy < r.cfg.Height; dy++ {
			rr, g, b := im.RGB(y+dy, x)
			im.SetRGB(y+dy, x, mix(rr, 0.8, 0.5), mix(g, 0.85, 0.5), mix(b, 0.9, 0.5))
		}
	}
}

// raycastOBB returns the nearest ray hit distance against the box edges.
func raycastOBB(ray geom.Ray, box geom.OBB, maxDist float64) (float64, bool) {
	best := maxDist
	ok := false
	for _, e := range box.Edges() {
		if t, hit := ray.IntersectSegment(e); hit && t < best {
			best = t
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}

func lerpColor(a, b [3]float64, t float64) [3]float64 {
	return [3]float64{
		a[0] + (b[0]-a[0])*t,
		a[1] + (b[1]-a[1])*t,
		a[2] + (b[2]-a[2])*t,
	}
}

func applyFog(c [3]float64, dist, fogRange float64) [3]float64 {
	if math.IsInf(fogRange, 1) {
		return c
	}
	f := 1 - math.Exp(-dist/fogRange)
	return lerpColor(c, colFog, f)
}

func mix(a, b, t float64) float64 { return a + (b-a)*t }
