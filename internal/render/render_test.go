package render

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/world"
)

func testTown(t *testing.T) *world.Town {
	t.Helper()
	town, err := world.GenerateTown(world.DefaultTownConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return town
}

// straightRoadScene puts the camera on the right lane of a +X street.
func straightRoadScene(town *world.Town) Scene {
	return Scene{
		CamPose: geom.P(45, -1.75, 0),
		Weather: world.WeatherClear,
	}
}

func singleRoadTown(t *testing.T) *world.Town {
	t.Helper()
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(200, 0))
	net.AddEdge(a, b)
	return &world.Town{Net: net}
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, 3, 0.5)
	if im.At(1, 2, 3) != 0.5 {
		t.Error("Set/At round trip failed")
	}
	im.SetRGB(0, 0, 0.1, 0.2, 0.3)
	r, g, b := im.RGB(0, 0)
	if r != 0.1 || g != 0.2 || b != 0.3 {
		t.Errorf("RGB = %v,%v,%v", r, g, b)
	}
}

func TestImageCloneIndependent(t *testing.T) {
	im := NewImage(2, 2)
	cl := im.Clone()
	cl.Set(0, 0, 0, 1)
	if im.At(0, 0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestImageClamp(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = -3
	im.Pix[1] = 7
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Errorf("Clamp = %v", im.Pix[:2])
	}
}

func TestImageToTensorShape(t *testing.T) {
	im := NewImage(5, 4)
	im.SetRGB(2, 3, 0.9, 0.5, 0.1)
	tt := im.ToTensor()
	shape := tt.Shape()
	if shape[0] != 3 || shape[1] != 4 || shape[2] != 5 {
		t.Fatalf("tensor shape = %v", shape)
	}
	if tt.At(0, 2, 3) != 0.9 || tt.At(2, 2, 3) != 0.1 {
		t.Error("tensor values misplaced")
	}
}

func TestImageBytesRoundTrip(t *testing.T) {
	im := NewImage(3, 2)
	for i := range im.Pix {
		im.Pix[i] = float64(i) / float64(len(im.Pix))
	}
	data := im.ToBytes()
	back, err := ImageFromBytes(3, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if math.Abs(back.Pix[i]-im.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("byte round trip lost precision at %d: %v vs %v", i, back.Pix[i], im.Pix[i])
		}
	}
	if _, err := ImageFromBytes(3, 2, data[:5]); err == nil {
		t.Error("short byte slice did not error")
	}
}

func TestRenderProducesSkyAndGround(t *testing.T) {
	town := singleRoadTown(t)
	r := New(DefaultConfig(), town)
	im := r.Render(straightRoadScene(town))

	// Top row should be sky (blue dominant).
	rr, gg, bb := im.RGB(0, im.W/2)
	if bb <= rr || bb <= gg {
		t.Errorf("top pixel not sky-like: %v %v %v", rr, gg, bb)
	}
	// Bottom center should be asphalt (dark gray).
	rr, gg, bb = im.RGB(im.H-1, im.W/2)
	if rr > 0.4 || math.Abs(rr-gg) > 0.1 {
		t.Errorf("bottom pixel not asphalt-like: %v %v %v", rr, gg, bb)
	}
}

func TestRenderShowsCenterLine(t *testing.T) {
	town := singleRoadTown(t)
	r := New(DefaultConfig(), town)
	im := r.Render(straightRoadScene(town))

	// Scan the lower half for yellow-ish pixels (center line is to the
	// vehicle's left, dashed).
	found := false
	for y := im.H / 2; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			rr, gg, bb := im.RGB(y, x)
			if rr > 0.55 && gg > 0.45 && bb < 0.45 && rr > bb {
				found = true
			}
		}
	}
	if !found {
		t.Error("center line not visible on straight road")
	}
}

func TestRenderDeterministic(t *testing.T) {
	town := testTown(t)
	r := New(DefaultConfig(), town)
	sc := Scene{CamPose: town.Spawns[0], Weather: world.WeatherClear, Frame: 3}
	a := r.Render(sc)
	b := r.Render(sc)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestRenderVehicleObstacleVisible(t *testing.T) {
	town := singleRoadTown(t)
	r := New(DefaultConfig(), town)
	sc := straightRoadScene(town)
	without := r.Render(sc)
	sc.Obstacles = []Obstacle{{
		Box:    geom.NewOBB(geom.P(60, -1.75, 0), 4.5, 2),
		Height: 1.5,
		Kind:   ObstacleVehicle,
	}}
	with := r.Render(sc)

	diff := 0
	redGain := 0.0
	for i := range with.Pix {
		if with.Pix[i] != without.Pix[i] {
			diff++
		}
	}
	n := with.H * with.W
	for i := 0; i < n; i++ {
		redGain += with.Pix[i] - without.Pix[i]
	}
	if diff == 0 {
		t.Fatal("vehicle obstacle invisible")
	}
	if redGain <= 0 {
		t.Error("vehicle obstacle did not add red")
	}
}

func TestRenderPedestrianVisible(t *testing.T) {
	town := singleRoadTown(t)
	r := New(DefaultConfig(), town)
	sc := straightRoadScene(town)
	sc.Obstacles = []Obstacle{{
		Box:    geom.NewOBB(geom.P(55, -1.75, 0), 0.5, 0.5),
		Height: 1.8,
		Kind:   ObstaclePedestrian,
	}}
	im := r.Render(sc)
	found := false
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if isPedestrianBlue(im.RGB(y, x)) {
				found = true
			}
		}
	}
	if !found {
		t.Error("pedestrian not visible as blue span")
	}
}

func TestNearerObstacleOccludesFarther(t *testing.T) {
	town := singleRoadTown(t)
	r := New(DefaultConfig(), town)
	sc := straightRoadScene(town)
	// Pedestrian behind a vehicle on the same sight line.
	sc.Obstacles = []Obstacle{
		{Box: geom.NewOBB(geom.P(70, -1.75, 0), 0.5, 0.5), Height: 1.6, Kind: ObstaclePedestrian},
		{Box: geom.NewOBB(geom.P(55, -1.75, 0), 4.5, 2.4), Height: 1.7, Kind: ObstacleVehicle},
	}
	im := r.Render(sc)
	// No blue pedestrian pixels should survive: vehicle is nearer, wider
	// and taller.
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if isPedestrianBlue(im.RGB(y, x)) {
				t.Fatalf("occluded pedestrian visible at (%d,%d)", x, y)
			}
		}
	}
}

// isPedestrianBlue distinguishes the pedestrian palette (strong blue, weak
// red AND green) from sky blue (which has high green).
func isPedestrianBlue(r, g, b float64) bool {
	return b > 0.45 && r < 0.3 && g < 0.3
}

func TestFogReducesContrast(t *testing.T) {
	town := testTown(t)
	r := New(DefaultConfig(), town)
	sc := Scene{CamPose: town.Spawns[0], Weather: world.WeatherClear}
	clear := r.Render(sc)
	sc.Weather = world.WeatherFog
	foggy := r.Render(sc)

	if contrast(foggy) >= contrast(clear) {
		t.Errorf("fog did not reduce contrast: %v vs %v", contrast(foggy), contrast(clear))
	}
}

func TestRainChangesImage(t *testing.T) {
	town := testTown(t)
	r := New(DefaultConfig(), town)
	sc := Scene{CamPose: town.Spawns[0], Weather: world.WeatherClear, Frame: 5}
	clear := r.Render(sc)
	sc.Weather = world.WeatherRain
	rain := r.Render(sc)
	diff := 0
	for i := range rain.Pix {
		if rain.Pix[i] != clear.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("rain identical to clear")
	}
	// Streaks vary across frames.
	sc.Frame = 6
	rain2 := r.Render(sc)
	diff = 0
	for i := range rain.Pix {
		if rain.Pix[i] != rain2.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("rain streaks identical across frames")
	}
}

func TestBuildingsAppear(t *testing.T) {
	// Camera staring straight at a building wall.
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(200, 0))
	net.AddEdge(a, b)
	town := &world.Town{
		Net: net,
		Buildings: []world.Building{
			{Box: geom.NewAABB(geom.V(30, -10), geom.V(40, 10)), Height: 15, Shade: 0.6},
		},
	}
	r := New(DefaultConfig(), town)
	im := r.Render(Scene{CamPose: geom.P(0, -1.75, 0), Weather: world.WeatherClear})
	// Center column should show a wall: mid-row pixel is the building color,
	// not sky or grass.
	rr, gg, bb := im.RGB(im.H/2-4, im.W/2)
	if bb > rr { // sky is blue-dominant; wall is warm
		t.Errorf("expected wall at center, got sky-like %v %v %v", rr, gg, bb)
	}
	if gg > rr { // grass is green-dominant
		t.Errorf("expected wall at center, got grass-like %v %v %v", rr, gg, bb)
	}
}

func TestRenderAllPixelsInRange(t *testing.T) {
	town := testTown(t)
	r := New(DefaultConfig(), town)
	for _, w := range []world.Weather{world.WeatherClear, world.WeatherRain, world.WeatherFog} {
		im := r.Render(Scene{CamPose: town.Spawns[2], Weather: w, Frame: 9})
		for i, v := range im.Pix {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("weather %v: pixel %d out of range: %v", w, i, v)
			}
		}
	}
}

func contrast(im *Image) float64 {
	mean := im.Mean()
	var ss float64
	for _, v := range im.Pix {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(im.Pix)))
}
