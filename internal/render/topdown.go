package render

import (
	"bufio"
	"fmt"
	"io"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/world"
)

// TopDownConfig parameterizes the spectator (bird's-eye) view.
type TopDownConfig struct {
	// Width and Height of the output image in pixels.
	Width, Height int
	// Bounds is the world rectangle to draw; the zero value uses the
	// town's bounds.
	Bounds geom.AABB
}

// DefaultTopDownConfig views the whole town at 256x256.
func DefaultTopDownConfig() TopDownConfig {
	return TopDownConfig{Width: 256, Height: 256}
}

// TopDownScene is everything the spectator draws beyond static geometry.
type TopDownScene struct {
	// Ego is the ego vehicle's box; drawn highlighted.
	Ego geom.OBB
	// Obstacles are the other dynamic boxes.
	Obstacles []Obstacle
	// Route, when non-nil, is drawn as a path overlay.
	Route *world.Route
}

// spectator palette
var (
	tdGrass    = [3]float64{0.30, 0.42, 0.26}
	tdRoad     = [3]float64{0.32, 0.32, 0.34}
	tdMarking  = [3]float64{0.80, 0.72, 0.25}
	tdBuilding = [3]float64{0.52, 0.46, 0.42}
	tdRoute    = [3]float64{0.15, 0.65, 0.90}
	tdEgo      = [3]float64{0.98, 0.92, 0.10}
	tdVehicle  = [3]float64{0.80, 0.16, 0.12}
	tdPed      = [3]float64{0.20, 0.22, 0.80}
)

// RenderTopDown draws the spectator view of a town.
func RenderTopDown(cfg TopDownConfig, town *world.Town, scene TopDownScene) *Image {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg = DefaultTopDownConfig()
	}
	bounds := cfg.Bounds
	if bounds == (geom.AABB{}) {
		bounds = town.Bounds
	}
	im := NewImage(cfg.Width, cfg.Height)
	size := bounds.Size()
	net := town.Net

	for py := 0; py < cfg.Height; py++ {
		for px := 0; px < cfg.Width; px++ {
			// Pixel center -> world point (y axis flipped: world +Y is up).
			wx := bounds.Min.X + (float64(px)+0.5)/float64(cfg.Width)*size.X
			wy := bounds.Max.Y - (float64(py)+0.5)/float64(cfg.Height)*size.Y
			p := geom.V(wx, wy)

			c := tdGrass
			if _, d, ok := net.NearestRoad(p); ok {
				switch {
				case d <= 0.3:
					c = tdMarking
				case net.OnRoad(p):
					c = tdRoad
				}
			}
			for _, b := range town.Buildings {
				if b.Box.Contains(p) {
					c = [3]float64{tdBuilding[0] * b.Shade * 1.4, tdBuilding[1] * b.Shade * 1.4, tdBuilding[2] * b.Shade * 1.4}
					break
				}
			}
			im.SetRGB(py, px, c[0], c[1], c[2])
		}
	}

	toPx := func(p geom.Vec) (int, int) {
		px := int((p.X - bounds.Min.X) / size.X * float64(cfg.Width))
		py := int((bounds.Max.Y - p.Y) / size.Y * float64(cfg.Height))
		return px, py
	}
	setSafe := func(px, py int, c [3]float64) {
		if px < 0 || px >= cfg.Width || py < 0 || py >= cfg.Height {
			return
		}
		im.SetRGB(py, px, c[0], c[1], c[2])
	}

	// Route overlay.
	if scene.Route != nil {
		for s := 0.0; s < scene.Route.Length(); s += size.X / float64(cfg.Width) {
			px, py := toPx(scene.Route.PointAt(s))
			setSafe(px, py, tdRoute)
		}
	}

	// Dynamic boxes: stamp a small filled disc at each corner-bounded box.
	stampBox := func(box geom.OBB, c [3]float64) {
		// Sample the box area on a small grid.
		for dl := -box.HalfLen; dl <= box.HalfLen; dl += 0.5 {
			for dw := -box.HalfWid; dw <= box.HalfWid; dw += 0.5 {
				p := box.Pose.ToWorld(geom.V(dl, dw))
				px, py := toPx(p)
				setSafe(px, py, c)
			}
		}
	}
	for _, ob := range scene.Obstacles {
		c := tdVehicle
		if ob.Kind == ObstaclePedestrian {
			c = tdPed
		}
		stampBox(ob.Box, c)
	}
	if scene.Ego.HalfLen > 0 {
		stampBox(scene.Ego, tdEgo)
	}
	return im
}

// WritePPM writes the image as a binary PPM (P6), viewable everywhere.
func WritePPM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("render: ppm header: %w", err)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.RGB(y, x)
			if _, err := bw.Write([]byte{
				byte(geom.Clamp(r, 0, 1)*255 + 0.5),
				byte(geom.Clamp(g, 0, 1)*255 + 0.5),
				byte(geom.Clamp(b, 0, 1)*255 + 0.5),
			}); err != nil {
				return fmt.Errorf("render: ppm body: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("render: ppm flush: %w", err)
	}
	return nil
}
