package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() *Stream { return New(7).Split("sensor-noise") }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split with same label not deterministic")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	parent2 := New(7)
	b := parent2.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams with different labels correlated: %d/100 equal", same)
	}
}

func TestSplitNDeterministic(t *testing.T) {
	a := New(9).SplitN(3)
	b := New(9).SplitN(3)
	c := New(9).SplitN(4)
	diff := false
	for i := 0; i < 50; i++ {
		av, cv := a.Uint64(), c.Uint64()
		if av != b.Uint64() {
			t.Fatal("SplitN not deterministic")
		}
		if av != cv {
			diff = true
		}
	}
	if !diff {
		t.Error("SplitN(3) and SplitN(4) produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/10)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("scaled mean = %v, want ~5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(23)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Errorf("weighted pick ordering violated: %v", counts)
	}
	frac2 := float64(counts[2]) / 30000
	if math.Abs(frac2-0.7) > 0.03 {
		t.Errorf("weight-7 fraction = %v, want ~0.7", frac2)
	}
}

func TestPickZeroWeights(t *testing.T) {
	r := New(29)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.Pick([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Error("zero-weight Pick not spreading over indices")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit fraction = %v", frac)
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 45 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
