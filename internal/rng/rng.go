// Package rng provides deterministic, splittable pseudo-random number
// streams for the AVFI simulator and fault injectors.
//
// Reproducibility is a first-class requirement of fault-injection campaigns:
// every result in the paper's figures must be regenerable from a campaign
// seed. A single shared math/rand source would make results depend on
// goroutine scheduling, so each subsystem (world generation, NPC behaviour,
// sensor noise, each fault injector, each episode) derives its own
// independent stream from the campaign seed with Split. Streams are based on
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
package rng

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// Stream is a deterministic PRNG stream. It is NOT safe for concurrent use;
// split one stream per goroutine instead.
type Stream struct {
	s [4]uint64
}

// New returns a stream seeded from seed via SplitMix64, so that nearby seeds
// yield decorrelated states.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return &st
}

// Split derives an independent child stream identified by label. The same
// (parent seed, label) pair always yields the same child, which is how
// campaign components get decorrelated but reproducible randomness.
func (r *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(r.Uint64() ^ h.Sum64())
}

// SplitN derives an independent child stream identified by an index, e.g.
// one stream per mission repetition.
func (r *Stream) SplitN(n uint64) *Stream {
	return New(r.Uint64() ^ (n+1)*0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a standard normal sample (Box–Muller).
func (r *Stream) Norm() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns a normal sample with the given mean and stddev.
func (r *Stream) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random index weighted by weights. Weights must be
// non-negative; an all-zero weight vector picks uniformly.
func (r *Stream) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
