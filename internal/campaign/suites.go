package campaign

import (
	"fmt"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/fault/imagefault"
	"github.com/avfi/avfi/internal/fault/timingfault"

	// Link the remaining built-in injectors so campaign users can resolve
	// any registered name.
	_ "github.com/avfi/avfi/internal/fault/actuatorfault"
	_ "github.com/avfi/avfi/internal/fault/commfault"
	_ "github.com/avfi/avfi/internal/fault/hallucinate"
	_ "github.com/avfi/avfi/internal/fault/hwfault"
	_ "github.com/avfi/avfi/internal/fault/locfault"
	_ "github.com/avfi/avfi/internal/fault/mlfault"
	_ "github.com/avfi/avfi/internal/fault/sensorfault"
)

// InputFaultSuite returns the paper's Figure 2/3 campaign columns: the
// fault-free baseline plus the five camera input-fault injectors, in the
// figures' x-axis order.
func InputFaultSuite() []InjectorSource {
	return []InjectorSource{
		Registry(fault.NoopName),
		Registry(imagefault.GaussianName),
		Registry(imagefault.SaltPepperName),
		Registry(imagefault.SolidOccName),
		Registry(imagefault.TranspOccName),
		Registry(imagefault.WaterDropName),
	}
}

// DelayName formats the column label for a Figure 4 delay point.
func DelayName(frames int) string { return fmt.Sprintf("delay-%02d", frames) }

// DelaySweep returns the paper's Figure 4 campaign columns: output delay of
// k frames between the agent's decision and its actuation, for each k.
// The paper sweeps {0, 5, 10, 20, 30} at 15 FPS (30 frames = 2 s).
func DelaySweep(frames []int) []InjectorSource {
	out := make([]InjectorSource, 0, len(frames))
	for _, k := range frames {
		k := k
		out = append(out, InjectorSource{
			Name: DelayName(k),
			New:  func() interface{} { return timingfault.NewDelay(k) },
		})
	}
	return out
}

// Fig4Frames is the paper's Figure 4 x-axis.
var Fig4Frames = []int{0, 5, 10, 20, 30}

// TaxonomySuite returns one representative injector per fault class (plus
// the fault-free baseline): the cross-family campaign that the taxonomy
// argument of the paper calls for — a single matrix sweep covering every
// family the repo injects.
func TaxonomySuite() []InjectorSource {
	out := []InjectorSource{Registry(fault.NoopName)}
	for _, c := range fault.Classes() {
		if c == fault.ClassNone {
			continue
		}
		names := fault.NamesByClass(c)
		if len(names) == 0 {
			continue
		}
		out = append(out, Registry(names[0]))
	}
	return out
}

// ClassSuite returns every registered injector of one fault class as
// campaign columns, in sorted-name order.
func ClassSuite(c fault.Class) []InjectorSource {
	names := fault.NamesByClass(c)
	out := make([]InjectorSource, 0, len(names))
	for _, n := range names {
		out = append(out, Registry(n))
	}
	return out
}

// Windowed wraps an injector source so its fault activates at startFrame
// rather than episode start — the campaign-level localizer choosing *when*
// a fault strikes, which makes the TTV metric meaningful (time from
// injection to first violation). Model (ML) faults apply at episode start
// by construction and pass through unwrapped.
func Windowed(src InjectorSource, startFrame int) InjectorSource {
	inner := src.New
	if inner == nil {
		name := src.Name
		inner = func() interface{} {
			spec, err := fault.Lookup(name)
			if err != nil {
				panic(err) // Validate() checks registration before running
			}
			return spec.New()
		}
	}
	return InjectorSource{
		Name:           fmt.Sprintf("%s@%d", src.Name, startFrame),
		InjectionFrame: startFrame,
		New: func() interface{} {
			inst := inner()
			w := fault.Window{StartFrame: startFrame}
			// Wrap every injector role the instance implements; Multi
			// keeps serving all roles through the wrappers.
			multi := &fault.Multi{InjectorName: src.Name}
			any := false
			if in, ok := inst.(fault.InputInjector); ok {
				multi.Input = &fault.WindowedInput{Inner: in, Window: w}
				any = true
			}
			if out, ok := inst.(fault.OutputInjector); ok {
				multi.Output = &fault.WindowedOutput{Inner: out, Window: w}
				any = true
			}
			if tm, ok := inst.(fault.TimingInjector); ok {
				multi.Timing = &fault.WindowedTiming{Inner: tm, Window: w}
				any = true
			}
			if !any {
				// Model faults (or exotic injectors): unwrapped.
				return inst
			}
			return multi
		},
	}
}
