package campaign

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/world"
)

// Density is one traffic-population level of a scenario matrix.
type Density struct {
	// NPCs and Pedestrians populate each episode.
	NPCs        int
	Pedestrians int
}

// ScenarioMatrix spans a combinatorial scenario space: every combination of
// weather, traffic density, AEB setting, fault-activation frame and
// injector becomes one campaign column (crossed, as always, with missions
// and repetitions). This replaces the flat (mission x injector x
// repetition) grid for resilience studies that need coverage over
// environmental conditions, not just fault types — the scale the paper's
// follow-ups (Bayesian FI, DriveFI) sweep.
//
// Empty dimensions default to a single neutral level (clear weather, empty
// roads, AEB off, activation at episode start), so a matrix with only
// Injectors set degenerates to the classic suite.
type ScenarioMatrix struct {
	// Weathers are the ambient conditions to cross.
	Weathers []world.Weather
	// Densities are the traffic-population levels to cross.
	Densities []Density
	// AEB lists the emergency-braking settings to cross (e.g. {false, true}
	// for an ablation).
	AEB []bool
	// ActivationFrames are the windowed fault-activation frames to cross;
	// 0 means the fault is active from episode start.
	ActivationFrames []int
	// Injectors are the fault columns (include fault.NoopName for the
	// baseline).
	Injectors []InjectorSource
}

// ScenarioCell is one fully-resolved point of a scenario matrix.
type ScenarioCell struct {
	// Injector is the cell's fault source, already wrapped for windowed
	// activation when the cell's activation frame is non-zero.
	Injector InjectorSource
	// Weather, Density and AEB configure the cell's episodes.
	Weather world.Weather
	Density Density
	AEB     bool
}

// Label is the cell's unique, deterministic column name; it keys the cell's
// episode records, reports and seed derivation.
func (c ScenarioCell) Label() string {
	aeb := "aeb-off"
	if c.AEB {
		aeb = "aeb-on"
	}
	return fmt.Sprintf("%s/%s/n%dp%d/%s",
		c.Injector.Name, c.Weather, c.Density.NPCs, c.Density.Pedestrians, aeb)
}

// Validate checks the matrix definition.
func (m ScenarioMatrix) Validate() error {
	if len(m.Injectors) == 0 {
		return fmt.Errorf("campaign: matrix has no injectors")
	}
	for i, src := range m.Injectors {
		if src.Name == "" {
			return fmt.Errorf("campaign: matrix injector %d has no name", i)
		}
	}
	for _, f := range m.ActivationFrames {
		if f < 0 {
			return fmt.Errorf("campaign: negative activation frame %d", f)
		}
	}
	for _, d := range m.Densities {
		if err := validateDensity(d); err != nil {
			return err
		}
	}
	return nil
}

// validateDensity bounds actor counts to what the wire's uint16 fields can
// carry: without this, out-of-range values would silently wrap modulo 65536
// at the OpenEpisode narrowing instead of erroring (the sim's own validation
// only sees the post-wrap count).
func validateDensity(d Density) error {
	if d.NPCs < 0 || d.Pedestrians < 0 || d.NPCs > math.MaxUint16 || d.Pedestrians > math.MaxUint16 {
		return fmt.Errorf("campaign: actor counts (npcs=%d pedestrians=%d) outside [0, %d]", d.NPCs, d.Pedestrians, math.MaxUint16)
	}
	return nil
}

// Size returns the number of cells the matrix expands to.
func (m ScenarioMatrix) Size() int {
	d := m.withDefaults()
	return len(d.Injectors) * len(d.Weathers) * len(d.Densities) * len(d.AEB) * len(d.ActivationFrames)
}

// withDefaults fills empty dimensions with their single neutral level.
func (m ScenarioMatrix) withDefaults() ScenarioMatrix {
	if len(m.Weathers) == 0 {
		m.Weathers = []world.Weather{world.WeatherClear}
	}
	if len(m.Densities) == 0 {
		m.Densities = []Density{{}}
	}
	if len(m.AEB) == 0 {
		m.AEB = []bool{false}
	}
	if len(m.ActivationFrames) == 0 {
		m.ActivationFrames = []int{0}
	}
	return m
}

// Cells expands the matrix into its cells in deterministic order
// (injector-major, then activation frame, weather, density, AEB), applying
// Windowed wrapping for non-zero activation frames.
func (m ScenarioMatrix) Cells() []ScenarioCell {
	m = m.withDefaults()
	cells := make([]ScenarioCell, 0, m.Size())
	for _, src := range m.Injectors {
		for _, frame := range m.ActivationFrames {
			resolved := src
			if frame > 0 {
				resolved = Windowed(src, frame)
			}
			for _, w := range m.Weathers {
				for _, d := range m.Densities {
					for _, aeb := range m.AEB {
						cells = append(cells, ScenarioCell{
							Injector: resolved,
							Weather:  w,
							Density:  d,
							AEB:      aeb,
						})
					}
				}
			}
		}
	}
	return cells
}
