package campaign

import (
	"sync"
	"time"
)

// CampaignStatus is a point-in-time snapshot of a running (or finished)
// campaign, built by Runner.Status for the /statusz endpoint: overall
// progress, per-engine health, per-cell episode timing, and — for
// RunAdaptive — the live round state. Safe to request from any goroutine
// at any time, including while no run is active.
type CampaignStatus struct {
	// State is "idle" (no run started), "running", "done", or "failed".
	State string `json:"state"`
	// Mode is "sweep" (RunContext) or "adaptive" (RunAdaptive); empty
	// while idle.
	Mode string `json:"mode,omitempty"`
	// ElapsedSec is wall-clock seconds since the run began (total run
	// duration once it finished).
	ElapsedSec float64 `json:"elapsed_sec"`
	// EpisodesPlanned is the run's fresh-episode count: the pending job
	// list for sweeps, the resolved budget for adaptive runs.
	EpisodesPlanned int `json:"episodes_planned"`
	// EpisodesDone counts fresh episodes finished so far.
	EpisodesDone int `json:"episodes_done"`
	// Retries and Replacements mirror PoolStats for the run in flight.
	Retries      int `json:"retries"`
	Replacements int `json:"replacements"`
	// Engines is the live per-engine breakdown (client-side counters and
	// the Backend address for remote slots), live slots then retired.
	Engines []EngineStats `json:"engines,omitempty"`
	// Cells holds per-cell progress and mean episode duration — the raw
	// signal a cost-aware allocation policy would consume.
	Cells []CellStatus `json:"cells,omitempty"`
	// Adaptive is the round loop's state; nil for exhaustive sweeps.
	Adaptive *AdaptiveStatus `json:"adaptive,omitempty"`
	// Err is the run's failure message once State is "failed".
	Err string `json:"err,omitempty"`
}

// CellStatus is one scenario cell's live progress.
type CellStatus struct {
	// Cell is the scenario column label.
	Cell string `json:"cell"`
	// Episodes counts the cell's fresh episodes finished so far.
	Episodes int `json:"episodes"`
	// MeanSeconds is the running mean episode wall-clock duration.
	MeanSeconds float64 `json:"mean_seconds"`
}

// AdaptiveStatus is the adaptive round loop's live state.
type AdaptiveStatus struct {
	// Policy is the allocation policy's name.
	Policy string `json:"policy"`
	// Budget is the resolved total episode budget.
	Budget int `json:"budget"`
	// Round is the last finished round's number (rounds count from 0; -1
	// before the first round completes).
	Round int `json:"round"`
	// Spent is how many budget episodes have been dispatched.
	Spent int `json:"spent"`
	// TotalViolations accumulates violations across rounds.
	TotalViolations int `json:"total_violations"`
}

// runnerStatus is the mutable state behind Runner.Status. The pool pointer
// lets Status snapshot per-engine stats live (enginePool has its own
// mutex); everything else is guarded here.
type runnerStatus struct {
	mu       sync.Mutex
	state    string
	mode     string
	started  time.Time
	finished time.Time
	planned  int
	done     int
	cells    []cellTrack
	pool     *enginePool
	adaptive *AdaptiveStatus
	errMsg   string
}

// cellTrack accumulates one cell's episode count and total duration.
type cellTrack struct {
	episodes int
	sumSec   float64
}

// beginRun marks a run started on the given pool.
func (r *Runner) beginRun(mode string, planned int, pool *enginePool) {
	s := &r.status
	s.mu.Lock()
	s.state = "running"
	s.mode = mode
	s.started = time.Now()
	s.finished = time.Time{}
	s.planned = planned
	s.done = 0
	s.cells = make([]cellTrack, len(r.cells))
	s.pool = pool
	s.adaptive = nil
	s.errMsg = ""
	s.mu.Unlock()
}

// noteEpisode folds one finished episode's duration into the status.
func (r *Runner) noteEpisode(cellIdx int, d time.Duration) {
	s := &r.status
	s.mu.Lock()
	if cellIdx < len(s.cells) {
		s.cells[cellIdx].episodes++
		s.cells[cellIdx].sumSec += d.Seconds()
	}
	s.done++
	s.mu.Unlock()
}

// setAdaptive publishes the adaptive round loop's state after each round.
func (r *Runner) setAdaptive(a AdaptiveStatus) {
	s := &r.status
	s.mu.Lock()
	s.adaptive = &a
	s.mu.Unlock()
}

// endRun marks the run finished; the pool reference is dropped because the
// engines are torn down.
func (r *Runner) endRun(err error) {
	s := &r.status
	s.mu.Lock()
	s.finished = time.Now()
	s.pool = nil
	if err != nil {
		s.state = "failed"
		s.errMsg = err.Error()
	} else {
		s.state = "done"
	}
	s.mu.Unlock()
}

// Status snapshots the campaign's live progress. It is safe to call from
// any goroutine at any time — the /statusz scrape path — and costs one
// mutex hold plus, while a run is active, one pool snapshot.
func (r *Runner) Status() CampaignStatus {
	s := &r.status
	s.mu.Lock()
	st := CampaignStatus{
		State:           s.state,
		Mode:            s.mode,
		EpisodesPlanned: s.planned,
		EpisodesDone:    s.done,
		Err:             s.errMsg,
	}
	if st.State == "" {
		st.State = "idle"
	}
	switch {
	case s.started.IsZero():
	case s.finished.IsZero():
		st.ElapsedSec = time.Since(s.started).Seconds()
	default:
		st.ElapsedSec = s.finished.Sub(s.started).Seconds()
	}
	for i, c := range s.cells {
		cs := CellStatus{Cell: r.cells[i].key, Episodes: c.episodes}
		if c.episodes > 0 {
			cs.MeanSeconds = c.sumSec / float64(c.episodes)
		}
		st.Cells = append(st.Cells, cs)
	}
	if s.adaptive != nil {
		a := *s.adaptive
		st.Adaptive = &a
	}
	pool := s.pool
	s.mu.Unlock()

	if pool != nil {
		ps, _ := pool.snapshot()
		st.Engines = ps.Engines
		st.Retries = ps.Retries
		st.Replacements = ps.Replacements
	}
	return st
}
