package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/transport"
)

// TestPoolCampaignBitIdentical is the sharding determinism contract: the
// same campaign run on a 4-engine pool must produce a ResultSet
// bit-identical to the single-engine run — episodes are pure functions of
// their seeds, and which engine served one is not part of the result.
func TestPoolCampaignBitIdentical(t *testing.T) {
	run := func(engines int) *ResultSet {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("saltpepper"),
		})
		cfg.Parallelism = 4
		cfg.Pool = PoolConfig{Engines: engines}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	single, pooled := run(1), run(4)
	if !reflect.DeepEqual(single.Records, pooled.Records) {
		t.Error("pooled records diverged from single-engine records")
	}
	if !reflect.DeepEqual(single.Reports, pooled.Reports) {
		t.Error("pooled reports diverged from single-engine reports")
	}
	if got := len(pooled.Pool.Engines); got != 4 {
		t.Errorf("pool ran %d engines, want 4", got)
	}
	if pooled.Engine.Episodes != len(pooled.Records) {
		t.Errorf("aggregate engine episodes = %d, want %d", pooled.Engine.Episodes, len(pooled.Records))
	}
	var sum int
	for _, es := range pooled.Pool.Engines {
		sum += es.Episodes
	}
	if sum != len(pooled.Records) {
		t.Errorf("per-engine episodes sum to %d, want %d", sum, len(pooled.Records))
	}
}

// failFirstOpens wraps an episode factory to fail the first n sessions it
// sees — the injected transient backend fault the retry path must absorb.
func failFirstOpens(n int, calls *int) func(simserver.EpisodeFactory) simserver.EpisodeFactory {
	var mu sync.Mutex
	return func(f simserver.EpisodeFactory) simserver.EpisodeFactory {
		return func(open *proto.OpenEpisode) (*sim.Episode, error) {
			mu.Lock()
			*calls++
			fail := *calls <= n
			mu.Unlock()
			if fail {
				return nil, errors.New("injected transient failure")
			}
			return f(open)
		}
	}
}

func TestEpisodeRetryAfterTransientFailure(t *testing.T) {
	clean := func() *ResultSet {
		cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}()

	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Parallelism = 2
	cfg.Pool = PoolConfig{Engines: 2, MaxRetries: 2}
	var calls int
	cfg.testFactoryWrap = failFirstOpens(1, &calls)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatalf("campaign did not absorb a transient session failure: %v", err)
	}
	if rs.Pool.Retries != 1 {
		t.Errorf("Pool.Retries = %d, want 1", rs.Pool.Retries)
	}
	// The retried episode reruns from the same seed: results are identical
	// to the failure-free campaign.
	if !reflect.DeepEqual(rs.Records, clean.Records) {
		t.Error("records after retry diverged from the failure-free run")
	}
	var failed int
	for _, es := range rs.Pool.Engines {
		failed += es.FailedSessions
	}
	if failed != 1 {
		t.Errorf("pool counted %d failed sessions, want 1", failed)
	}
	// Episodes counts completions, not attempts: the aborted session must
	// not inflate the aggregate.
	if rs.Engine.Episodes != len(rs.Records) {
		t.Errorf("Engine.Episodes = %d under retry, want %d", rs.Engine.Episodes, len(rs.Records))
	}
}

func TestEpisodeFailureFatalWithoutRetryBudget(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Pool = PoolConfig{Engines: 1, MaxRetries: 0}
	var calls int
	cfg.testFactoryWrap = failFirstOpens(1, &calls)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "injected transient failure") {
		t.Errorf("Run = %v, want the injected failure with MaxRetries=0", err)
	}
}

// TestFatalErrorCancelsDispatch pins the cancellation satellite: after the
// first fatal episode error the scheduler must stop dispatching, not drain
// the whole job list. With one worker and a factory that always fails, only
// the first job may ever reach an engine.
func TestFatalErrorCancelsDispatch(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Parallelism = 1
	var calls int
	cfg.testFactoryWrap = failFirstOpens(1<<30, &calls)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("campaign with an always-failing factory succeeded")
	}
	if jobs := len(r.jobs()); jobs < 4 {
		t.Fatalf("test needs several jobs, got %d", jobs)
	}
	if calls != 1 {
		t.Errorf("factory saw %d sessions after a fatal first episode, want 1 (dispatch not cancelled)", calls)
	}
}

// TestTransientEpisodeErrorClassification pins which failures the
// scheduler may retry — in particular the TCP death signatures
// (partial-read, reset, broken pipe), which are what a backend dying
// mid-frame actually surfaces as.
func TestTransientEpisodeErrorClassification(t *testing.T) {
	transient := []error{
		&simclient.SessionError{SID: 3, Reason: "boom"},
		simclient.ErrClientClosed,
		transport.ErrClosed,
		io.EOF,
		io.ErrUnexpectedEOF,
		syscall.ECONNRESET,
		syscall.EPIPE,
		net.ErrClosed,
		errNoResult,
	}
	for _, e := range transient {
		wrapped := fmt.Errorf("campaign: gaussian m1 r0: %w", e)
		if !transientEpisodeError(wrapped) {
			t.Errorf("%v not classified transient", e)
		}
	}
	fatal := []error{
		errors.New("campaign: mission 3: no route"),
		context.Canceled,
	}
	for _, e := range fatal {
		if transientEpisodeError(e) {
			t.Errorf("%v wrongly classified transient", e)
		}
	}
}

func TestRunContextExternalCancel(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestPoolSize pins the one sizing rule the scheduler and cmd/avfi's
// shard-log count share.
func TestPoolSize(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1"}
	cases := []struct {
		name        string
		pool        PoolConfig
		parallelism int
		want        int
	}{
		{"zero value is one engine", PoolConfig{}, 8, 1},
		{"explicit engines", PoolConfig{Engines: 4}, 8, 4},
		{"auto-sizes to backends", PoolConfig{Backends: backends}, 8, 3},
		{"explicit engines beat backends", PoolConfig{Engines: 2, Backends: backends}, 8, 2},
		{"capped by parallelism", PoolConfig{Backends: backends}, 2, 2},
		{"unbounded parallelism", PoolConfig{Engines: 6}, 0, 6},
	}
	for _, tc := range cases {
		if got := tc.pool.PoolSize(tc.parallelism); got != tc.want {
			t.Errorf("%s: PoolSize(%d) = %d, want %d", tc.name, tc.parallelism, got, tc.want)
		}
	}
}

// TestEnginePoolReplacesDeadEngine drives the pool directly: a backend
// whose connection dies is retired and a fresh engine takes its slot,
// until the bounded replacement budget runs out.
func TestEnginePoolReplacesDeadEngine(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := newEnginePool(r.startEngine, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.close()

	victim, err := pool.acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the backend out from under the client and condemn it.
	victim.serverConn.Close()
	pool.fail(victim)
	pool.release(victim)

	// The victim's session traffic is gone; a fresh engine must take the
	// slot and serve an episode end-to-end.
	replacement, err := pool.acquire()
	if err != nil {
		t.Fatalf("acquire after engine death: %v", err)
	}
	if replacement == victim {
		t.Fatal("pool handed back the dead engine")
	}
	rec, err := r.runEpisode(replacement, job{cellIdx: 0, mission: 0, repetition: 0})
	if err != nil {
		t.Fatalf("episode on replacement engine: %v", err)
	}
	if rec.DurationSec <= 0 {
		t.Errorf("replacement episode made no progress: %+v", rec)
	}
	pool.release(replacement)

	ps, _ := pool.snapshot()
	if ps.Replacements != 1 {
		t.Errorf("Replacements = %d, want 1", ps.Replacements)
	}
	replaced := 0
	for _, es := range ps.Engines {
		if es.Replaced {
			replaced++
		}
	}
	if replaced != 1 {
		t.Errorf("stats mark %d engines replaced, want 1", replaced)
	}

	// Exhaust the budget: keep killing whatever the pool hands out.
	for i := 0; i < 2*len(pool.engines)+2; i++ {
		e, err := pool.acquire()
		if err != nil {
			return // budget exhausted, as required
		}
		e.serverConn.Close()
		pool.fail(e)
		pool.release(e)
	}
	t.Error("replacement budget never exhausted")
}

// BenchmarkCampaignPool measures episode throughput of the same campaign
// sharded over 1, 2 and 4 engines — in-process, and against
// loopback-remote simulator workers (the -backends deployment shape, so
// the wire cost of going distributed is on the same chart). Reported as
// episodes/sec; the pool's win is demultiplexing the per-connection
// serialization, so it grows with worker count on multi-core runners. CI's
// bench-pool job renders this benchmark into BENCH_pool.json.
func BenchmarkCampaignPool(b *testing.B) {
	bench := func(b *testing.B, pool PoolConfig) {
		cfg := tinyConfig(b, []InjectorSource{
			Registry(fault.NoopName),
			Registry("gaussian"),
		})
		cfg.Missions = 4
		cfg.Repetitions = 2
		cfg.Parallelism = 8
		cfg.Pool = pool
		cfg.DiscardRecords = true
		r, err := NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		episodes := len(r.jobs())
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start).Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(episodes*b.N)/elapsed, "episodes/sec")
		}
	}
	for _, engines := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("inproc-%d", engines), func(b *testing.B) {
			bench(b, PoolConfig{Engines: engines})
		})
	}
	for _, engines := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("remote-%d", engines), func(b *testing.B) {
			addrs, _ := startTestWorkers(b, engines)
			bench(b, PoolConfig{Backends: addrs})
		})
	}
	// Batching disabled (one OpenEpisode envelope per episode) — the legacy
	// wire pattern, kept on the chart so the default-batched remote-N rows
	// show what group-committed dispatch buys.
	for _, engines := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("remote-single-%d", engines), func(b *testing.B) {
			addrs, _ := startTestWorkers(b, engines)
			bench(b, PoolConfig{Backends: addrs, BatchOpens: 1})
		})
	}
}
