package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
)

// collectSink is a test RecordSink remembering everything it consumed.
type collectSink struct {
	records []metrics.EpisodeRecord
	closed  bool
}

func (s *collectSink) Consume(rec metrics.EpisodeRecord) error {
	s.records = append(s.records, rec)
	return nil
}
func (s *collectSink) Close() error {
	s.closed = true
	return nil
}

// TestStreamingSinkMatchesBatch is the streaming-pipeline contract: a
// campaign that discards records and aggregates incrementally must produce
// exactly the reports of the collect-everything path, and its sink must see
// every episode.
func TestStreamingSinkMatchesBatch(t *testing.T) {
	runCfg := func() Config {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("gaussian"),
		})
		cfg.Parallelism = 3
		return cfg
	}

	batchRunner, err := NewRunner(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := runCfg()
	sink := &collectSink{}
	cfg.Sink = sink
	cfg.DiscardRecords = true
	streamRunner, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := streamRunner.Run()
	if err != nil {
		t.Fatal(err)
	}

	if stream.Records != nil {
		t.Errorf("DiscardRecords kept %d records", len(stream.Records))
	}
	if !reflect.DeepEqual(stream.Reports, batch.Reports) {
		t.Errorf("streaming reports diverged from batch:\n stream %+v\n batch  %+v", stream.Reports, batch.Reports)
	}
	if !sink.closed {
		t.Error("sink never closed")
	}
	// The sink saw every episode; sorted, they are the batch records.
	got := append([]metrics.EpisodeRecord(nil), sink.records...)
	sort.Slice(got, func(a, b int) bool {
		ra, rb := got[a], got[b]
		if ra.Injector != rb.Injector {
			return ra.Injector < rb.Injector
		}
		if ra.Mission != rb.Mission {
			return ra.Mission < rb.Mission
		}
		return ra.Repetition < rb.Repetition
	})
	if !reflect.DeepEqual(got, batch.Records) {
		t.Error("sink records (sorted) diverged from batch records")
	}
}

// TestProgressHookSeesEveryEpisode pins the adaptive-sampling seam: the
// Progress callback fires once per aggregated episode with the cell's
// running Welford VPK, converging on the final report's mean.
func TestProgressHookSeesEveryEpisode(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry("gaussian")})
	cfg.Parallelism = 2
	type update struct {
		cell     string
		episodes int
		mean     float64
	}
	var mu sync.Mutex
	var updates []update
	cfg.Progress = func(cell string, episodes int, meanVPK, stdVPK float64) {
		mu.Lock()
		updates = append(updates, update{cell, episodes, meanVPK})
		mu.Unlock()
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(rs.Records) {
		t.Fatalf("progress fired %d times for %d episodes", len(updates), len(rs.Records))
	}
	last := updates[len(updates)-1]
	if last.cell != "gaussian" || last.episodes != len(rs.Records) {
		t.Errorf("final update = %+v", last)
	}
	if math.Abs(last.mean-rs.Reports[0].MeanVPK) > 1e-9 {
		t.Errorf("final running mean %v != report mean %v", last.mean, rs.Reports[0].MeanVPK)
	}
}

// TestProgressV2ReportsViolations pins the extended progress hook: every
// aggregated episode fires with the cell's running violation tallies, and
// the final update matches the report exactly.
func TestProgressV2ReportsViolations(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry("gaussian")})
	cfg.Parallelism = 2
	var mu sync.Mutex
	var updates []CellProgress
	cfg.ProgressV2 = func(p CellProgress) {
		mu.Lock()
		updates = append(updates, p)
		mu.Unlock()
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(rs.Records) {
		t.Fatalf("ProgressV2 fired %d times for %d episodes", len(updates), len(rs.Records))
	}
	last := updates[len(updates)-1]
	if last.Cell != "gaussian" || last.Episodes != len(rs.Records) {
		t.Errorf("final update = %+v", last)
	}
	if last.Violations != rs.Reports[0].TotalViolations {
		t.Errorf("final running violations %d != report total %d", last.Violations, rs.Reports[0].TotalViolations)
	}
	violEps := 0
	for _, rec := range rs.Records {
		if len(rec.Violations) > 0 {
			violEps++
		}
	}
	if last.ViolationEpisodes != violEps {
		t.Errorf("final violation episodes %d, want %d", last.ViolationEpisodes, violEps)
	}
	if math.Abs(last.MeanVPK-rs.Reports[0].MeanVPK) > 1e-9 {
		t.Errorf("final running mean %v != report mean %v", last.MeanVPK, rs.Reports[0].MeanVPK)
	}
	if want := float64(violEps) / float64(len(rs.Records)); last.ViolationRate() != want {
		t.Errorf("ViolationRate = %v, want %v", last.ViolationRate(), want)
	}
}

func TestSinkErrorFailsCampaign(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Sink = &failingSink{}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Errorf("Run with failing sink = %v, want sink boom", err)
	}
}

type failingSink struct{}

func (failingSink) Consume(metrics.EpisodeRecord) error { return errors.New("sink boom") }
func (failingSink) Close() error                        { return nil }

// blockingSink wedges (blocks, not errors) on its first Consume until
// released — the hung-writer case (dead NFS, unread FIFO).
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *blockingSink) Consume(metrics.EpisodeRecord) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}
func (s *blockingSink) Close() error { return nil }

// TestWedgedSinkDoesNotDefeatCancellation: a sink that blocks forever must
// not make the campaign uncancellable — RunContext returns once cancelled,
// abandoning the pipeline instead of waiting on the wedged writer.
func TestWedgedSinkDoesNotDefeatCancellation(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Parallelism = 2
	sink := &blockingSink{entered: make(chan struct{}), release: make(chan struct{})}
	cfg.Sink = sink
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx)
		done <- err
	}()
	<-sink.entered // the aggregation goroutine is now wedged in Consume
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext hung on a wedged sink despite cancellation")
	}
	close(sink.release) // unpark the abandoned aggregation goroutine
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	recs := []metrics.EpisodeRecord{
		{Injector: "noinject", Mission: 1, Seed: 7, Success: true, DistanceKM: 0.4},
		{Injector: "gaussian", Mission: 2, Seed: 8, DistanceKM: 0.1,
			Violations: []metrics.ViolationRecord{{Kind: "lane", TimeSec: 3}}},
	}
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var back metrics.EpisodeRecord
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if !reflect.DeepEqual(back, recs[i]) {
			t.Errorf("round-trip %d: got %+v, want %+v", i, back, recs[i])
		}
	}
}
