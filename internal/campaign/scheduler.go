package campaign

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"

	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// errNoResult marks an episode whose session ended without a server-side
// result — the signature of an engine dying mid-episode.
var errNoResult = errors.New("session finished without a server result")

// transientEpisodeError reports whether err is a per-episode failure the
// scheduler may re-dispatch (bounded by PoolConfig.MaxRetries) rather than
// failing the campaign: server-side session aborts and dead-connection
// errors. A scenario-deterministic failure retries to the same outcome and
// exhausts the bounded budget, so misclassification only costs a few
// attempts, never correctness.
func transientEpisodeError(err error) bool {
	var se *simclient.SessionError
	return errors.As(err, &se) ||
		errors.Is(err, simclient.ErrClientClosed) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		// A TCP backend dying mid-frame surfaces as a partial read, a
		// reset, or a broken pipe — never a clean EOF.
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, errNoResult)
}

// jobs expands the campaign's full episode list in deterministic order.
func (r *Runner) jobs() []job {
	jobs := make([]job, 0, len(r.cells)*len(r.missions)*r.cfg.Repetitions)
	for i := range r.cells {
		for m := range r.missions {
			for rep := 0; rep < r.cfg.Repetitions; rep++ {
				jobs = append(jobs, job{cellIdx: i, mission: m, repetition: rep})
			}
		}
	}
	return jobs
}

// scheduler dispatches episodes onto the engine pool with bounded retry of
// transient failures.
type scheduler struct {
	pool       *enginePool
	run        func(*engine, job) (metrics.EpisodeRecord, error)
	maxRetries int
	// gate, when non-nil, throttles dispatch onto a shared fleet with
	// round-robin fairness across campaigns; gateID is this campaign's
	// identity at the gate. A slot is held across retry attempts — a
	// retried episode is still one episode of fleet work.
	gate   *fairGate
	gateID string
}

// runJob executes one episode, re-dispatching it (onto the then
// least-loaded, possibly freshly replaced engine) after transient failures.
// Episodes are a pure function of their seed, so a retried episode produces
// the identical record a first-try success would have.
func (s *scheduler) runJob(ctx context.Context, j job) (metrics.EpisodeRecord, error) {
	if s.gate != nil {
		if err := s.gate.acquire(ctx, s.gateID); err != nil {
			return metrics.EpisodeRecord{}, err
		}
		defer s.gate.release()
	}
	spans := telemetry.Enabled()
	for attempt := 0; ; attempt++ {
		if err := context.Cause(ctx); err != nil {
			return metrics.EpisodeRecord{}, err
		}
		var tAcq time.Time
		if spans {
			tAcq = time.Now()
		}
		eng, err := s.pool.acquire()
		if err != nil {
			return metrics.EpisodeRecord{}, err
		}
		if spans {
			telemetry.PhaseDispatch.Observe(time.Since(tAcq).Seconds())
		}
		rec, err := s.run(eng, j)
		if err != nil && eng.client.Err() != nil {
			// The engine's connection is gone: condemn the backend, not
			// just this episode.
			s.pool.fail(eng)
			telemetry.Warnf("campaign: engine %d (%s) condemned after episode failure: %v",
				eng.id, eng.desc(), eng.client.Err())
		}
		s.pool.release(eng)
		if err == nil {
			return rec, nil
		}
		if !transientEpisodeError(err) || attempt >= s.maxRetries {
			return metrics.EpisodeRecord{}, err
		}
		s.pool.noteRetry()
		telemetry.Infof("campaign: retrying episode cell=%d mission=%d rep=%d (attempt %d/%d) after transient failure: %v",
			j.cellIdx, j.mission, j.repetition, attempt+1, s.maxRetries, err)
	}
}

// runSession is the re-entrant dispatch substrate: a started engine pool
// plus its scheduler and worker sizing, able to run successive job batches
// on the same engines before one teardown. RunContext uses it for a single
// batch (the full sweep); RunAdaptive reuses it round after round, so an
// adaptive campaign dials its backends exactly once, not once per round.
type runSession struct {
	pool        *enginePool
	sched       *scheduler
	parallelism int
	// shared marks a session borrowing a Service's fleet pool: close is a
	// no-op (the pool outlives this campaign) and dispatch runs behind the
	// fleet's fairness gate.
	shared bool
}

// newRunSession sizes the worker pool and starts the engines. maxBatch
// bounds useful parallelism: no single runJobs call will carry more jobs
// than it, so workers (and engines) beyond it would idle. Campaigns
// submitted to a Service (cfg.fleet) borrow the fleet's long-lived pool
// instead of starting engines of their own.
func (r *Runner) newRunSession(maxBatch int) (*runSession, error) {
	run := r.runEpisode
	if r.cfg.testRunEpisode != nil {
		run = r.cfg.testRunEpisode
	}
	if fl := r.cfg.fleet; fl != nil {
		parallelism := fl.parallelism
		if parallelism > maxBatch {
			parallelism = maxBatch
		}
		if parallelism < 1 {
			parallelism = 1
		}
		return &runSession{
			pool: fl.pool,
			sched: &scheduler{pool: fl.pool, run: run, maxRetries: r.cfg.Pool.MaxRetries,
				gate: fl.gate, gateID: r.cfg.fleetID},
			parallelism: parallelism,
			shared:      true,
		}, nil
	}
	parallelism := r.cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > maxBatch {
		parallelism = maxBatch
	}
	if parallelism < 1 {
		parallelism = 1
	}
	pool, err := newEnginePool(r.startEngine, r.cfg.Pool.PoolSize(parallelism))
	if err != nil {
		return nil, err
	}
	return &runSession{
		pool:        pool,
		sched:       &scheduler{pool: pool, run: run, maxRetries: r.cfg.Pool.MaxRetries},
		parallelism: parallelism,
	}, nil
}

// runJobs dispatches one batch of episodes onto the session's pool,
// delivering each finished record to consume (from worker goroutines,
// concurrently). The first fatal episode error cancels ctx via cancel:
// in-flight episodes finish, the rest of the batch is abandoned, and the
// cause is readable from the context. runJobs itself always returns after
// the batch drains — callers decide whether a cancelled context aborts the
// campaign or just this batch.
func (s *runSession) runJobs(ctx context.Context, cancel context.CancelCauseFunc, jobs []job,
	consume func(context.Context, metrics.EpisodeRecord)) {
	workers := s.parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var j job
				var ok bool
				select {
				case <-ctx.Done():
					return
				case j, ok = <-jobCh:
					if !ok {
						return
					}
				}
				if !j.enqueued.IsZero() {
					telemetry.PhaseQueueWait.Observe(time.Since(j.enqueued).Seconds())
				}
				rec, err := s.sched.runJob(ctx, j)
				if err != nil {
					cancel(err)
					return
				}
				consume(ctx, rec)
			}
		}()
	}
	spans := telemetry.Enabled()
feed:
	for _, j := range jobs {
		if spans {
			j.enqueued = time.Now()
		}
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
}

// close tears the session's engine pool down. Sessions on a shared fleet
// leave the pool alone — it belongs to the Service and outlives them.
func (s *runSession) close() error {
	if s.shared {
		return nil
	}
	return s.pool.close()
}

// Run executes the full sweep and aggregates reports; it is RunContext
// without external cancellation.
func (r *Runner) Run() (*ResultSet, error) { return r.RunContext(context.Background()) }

// RunContext executes the full sweep on a sharded pool of persistent
// engines (PoolConfig.Engines servers/clients/connections; one for the
// classic single-engine shape) and streams every finished episode through
// the results pipeline: incremental per-cell aggregation, the optional
// RecordSink, and — unless Config.DiscardRecords — retention for
// ResultSet.Records. Episodes already present in Config.Resume are folded
// into the results without being re-run.
//
// The first fatal episode error cancels dispatch: in-flight episodes
// finish, the remaining job list is abandoned, and the error is returned.
// Cancelling ctx does the same with ctx's cause. Transient failures
// (session aborts, dead backends) are retried within PoolConfig.MaxRetries
// and dead engines are replaced, so one lost backend costs a re-dispatch,
// not the campaign.
func (r *Runner) RunContext(ctx context.Context) (*ResultSet, error) {
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// A broken sink cancels dispatch: finishing thousands of episodes whose
	// streamed records are being dropped would be pure waste.
	pipe := newSinkPipeline(r.cells, r.sinkLanes(), !r.cfg.DiscardRecords,
		func(err error) { cancel(err) }, r.cfg.Progress, r.cfg.ProgressV2)
	// Resume records stream through the pipeline's seed one at a time —
	// only their slot keys are retained here — before the shard goroutines
	// take ownership of the builders.
	skip, err := r.seedResume(pipe.seed)
	if err != nil {
		pipe.abandon()
		return nil, err
	}
	jobs := r.pendingJobs(skip)

	sess, err := r.newRunSession(len(jobs))
	if err != nil {
		pipe.abandon()
		return nil, err
	}
	r.beginRun("sweep", len(jobs), sess.pool)
	telemetry.Infof("campaign: sweep started: %d episodes over %d cells, parallelism %d",
		len(jobs), len(r.cells), sess.parallelism)
	pipe.start(sess.parallelism)
	sess.runJobs(ctx, cancel, jobs, pipe.consume)

	poolStats, engineAgg := sess.pool.snapshot()
	closeErr := sess.close()
	if cause := context.Cause(ctx); cause != nil {
		// The campaign is aborting: don't wait for the pipeline to drain —
		// a cancellation caused by a wedged sink would never finish.
		pipe.abandon()
		r.endRun(cause)
		return nil, cause
	}
	records, reports, sinkErr := pipe.finish()
	if closeErr != nil {
		r.endRun(closeErr)
		return nil, closeErr
	}
	if sinkErr != nil {
		r.endRun(sinkErr)
		return nil, sinkErr
	}
	r.endRun(nil)
	return &ResultSet{
		Records: records,
		Reports: reports,
		Engine:  engineAgg,
		Pool:    poolStats,
	}, nil
}
