package campaign

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
)

// shardBase is the campaign every sharded-sink test runs.
func shardBase(t *testing.T) Config {
	cfg := tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	})
	cfg.Parallelism = 3
	return cfg
}

// TestShardedSinkMergeByteIdentical is the shard-log contract: a campaign
// streamed through three shard sinks and the same campaign streamed
// through one sink must merge (MergeRecordsJSONL) to byte-identical
// canonical record streams.
func TestShardedSinkMergeByteIdentical(t *testing.T) {
	single := &bytes.Buffer{}
	cfg := shardBase(t)
	cfg.Sink = NewJSONLSink(single)
	cfg.DiscardRecords = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	shards := []*bytes.Buffer{{}, {}, {}}
	cfg = shardBase(t)
	for _, buf := range shards {
		cfg.ShardSinks = append(cfg.ShardSinks, NewJSONLSink(buf))
	}
	cfg.DiscardRecords = true
	r, err = NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	written := 0
	for _, buf := range shards {
		if buf.Len() > 0 {
			written++
		}
	}
	if written < 2 {
		t.Errorf("only %d of 3 shard logs saw records; cells not distributed", written)
	}

	var wantMerged bytes.Buffer
	wantN, err := MergeRecordsJSONL(&wantMerged, bytes.NewReader(single.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gotMerged bytes.Buffer
	readers := make([]io.Reader, len(shards))
	for i, buf := range shards {
		readers[i] = bytes.NewReader(buf.Bytes())
	}
	gotN, err := MergeRecordsJSONL(&gotMerged, readers...)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Errorf("merged %d records from shards, want %d", gotN, wantN)
	}
	if !bytes.Equal(gotMerged.Bytes(), wantMerged.Bytes()) {
		t.Error("merged shard logs are not byte-identical to the merged single log")
	}
}

// TestLoadRecordsDir: shard logs written to disk load back as one sorted
// record set, tolerating a crash-truncated tail in any one shard.
func TestLoadRecordsDir(t *testing.T) {
	dir := t.TempDir()
	recs := []metrics.EpisodeRecord{
		{Injector: "a", Mission: 0, Repetition: 0, Seed: 1},
		{Injector: "a", Mission: 1, Repetition: 0, Seed: 2},
		{Injector: "b", Mission: 0, Repetition: 0, Seed: 3},
		{Injector: "c", Mission: 0, Repetition: 1, Seed: 4},
	}
	// Shard 0 gets a+c, shard 1 gets b plus a partial trailing record.
	writeShard := func(name string, rs []metrics.EpisodeRecord, tail string) {
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		for _, r := range rs {
			if err := sink.Consume(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(tail)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeShard(ShardLogName(0), []metrics.EpisodeRecord{recs[0], recs[1], recs[3]}, "")
	writeShard(ShardLogName(1), []metrics.EpisodeRecord{recs[2]}, `{"Injector":"b","Missi`)

	got, err := LoadRecordsDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]metrics.EpisodeRecord(nil), recs...)
	sortRecords(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LoadRecordsDir:\n got  %+v\n want %+v", got, want)
	}

	// An empty directory is an empty log, not an error.
	empty, err := LoadRecordsDir(t.TempDir())
	if err != nil || len(empty) != 0 {
		t.Errorf("empty dir = %d records, %v; want 0, nil", len(empty), err)
	}
}

// TestResumeFromShardDirectory is the sharded resume satellite: a sharded
// campaign crashes (one shard's tail truncated mid-record, later episodes
// lost), is resumed from the shard directory, and must finish with logs
// whose merge is bit-identical to the uninterrupted run — with no episode
// re-sunk twice.
func TestResumeFromShardDirectory(t *testing.T) {
	const nShards = 2
	runSharded := func(dir string, resume []metrics.EpisodeRecord, appendMode bool) *ResultSet {
		cfg := shardBase(t)
		cfg.Resume = resume
		for i := 0; i < nShards; i++ {
			path := filepath.Join(dir, ShardLogName(i))
			var f *os.File
			var err error
			if appendMode {
				f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			} else {
				f, err = os.Create(path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cfg.ShardSinks = append(cfg.ShardSinks, NewJSONLSink(f))
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	fullDir := t.TempDir()
	want := runSharded(fullDir, nil, false)

	// Fabricate the crash: copy the full shard logs, drop the second
	// shard's last complete record and leave a partial line in its place —
	// a run killed mid-write.
	crashDir := t.TempDir()
	for i := 0; i < nShards; i++ {
		data, err := os.ReadFile(filepath.Join(fullDir, ShardLogName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			lines := strings.SplitAfter(string(data), "\n")
			if len(lines) < 3 {
				t.Fatalf("shard 1 has %d lines; need >= 2 records to truncate meaningfully", len(lines))
			}
			last := lines[len(lines)-2] // final complete record
			data = []byte(strings.Join(lines[:len(lines)-2], "") + last[:len(last)/2])
		}
		if err := os.WriteFile(filepath.Join(crashDir, ShardLogName(i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := LoadRecordsDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) >= len(want.Records) {
		t.Fatalf("crash fabrication failed: resumed %d of %d records", len(resumed), len(want.Records))
	}
	// Clamp the partial tail exactly like cmd/avfi does before appending.
	clampShardTails(t, crashDir, nShards)

	got := runSharded(crashDir, resumed, true)
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("resumed sharded campaign diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("resumed sharded reports diverged from the uninterrupted run")
	}
	fresh := len(want.Records) - len(resumed)
	if got.Engine.Episodes != fresh {
		t.Errorf("resumed campaign ran %d episodes, want the %d missing ones", got.Engine.Episodes, fresh)
	}

	// The resumed directory's merge is bit-identical to the full run's
	// merge, and no (cell, mission, repetition) slot appears twice.
	finalRecs, err := LoadRecordsDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[string]int{}
	for _, rec := range finalRecs {
		slots[fmt.Sprintf("%s|%d|%d", rec.Injector, rec.Mission, rec.Repetition)]++
	}
	for slot, n := range slots {
		if n > 1 {
			t.Errorf("slot %s sunk %d times after resume", slot, n)
		}
	}
	if !reflect.DeepEqual(finalRecs, want.Records) {
		t.Error("resumed shard directory does not reload to the uninterrupted run's records")
	}
	mergeDir := func(dir string) []byte {
		var files []io.Reader
		for i := 0; i < nShards; i++ {
			data, err := os.ReadFile(filepath.Join(dir, ShardLogName(i)))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, bytes.NewReader(data))
		}
		var out bytes.Buffer
		if _, err := MergeRecordsJSONL(&out, files...); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(mergeDir(crashDir), mergeDir(fullDir)) {
		t.Error("merged resumed shards are not byte-identical to the uninterrupted run's merge")
	}
}

// clampShardTails truncates each shard log to its last complete line —
// the append-mode preparation cmd/avfi performs.
func clampShardTails(t *testing.T, dir string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, ShardLogName(i))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if cut := bytes.LastIndexByte(data, '\n'); cut >= 0 {
			data = data[:cut+1]
		} else {
			data = nil
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
