package campaign

import (
	"context"
	"sync"
)

// fairGate admits episode dispatches onto a shared fleet with round-robin
// fairness across campaigns. It is a counting semaphore (capacity = the
// fleet's episode parallelism) whose waiters are queued per campaign:
// when a slot frees, it is granted to the next campaign in rotation that
// has a waiter, so N concurrent campaigns each make progress every
// scheduling epoch — one busy campaign with thousands of queued episodes
// cannot starve a small one, and a lone campaign still gets the whole
// fleet (slots are granted immediately whenever nobody else waits).
type fairGate struct {
	mu       sync.Mutex
	capacity int
	free     int
	queues   map[string][]chan struct{} // per-campaign FIFO of waiters
	ring     []string                   // campaign rotation (first-wait order)
	next     int                        // ring cursor: next campaign to favor

	// grantLog, when recording, appends the campaign id of every grant in
	// grant order — the fairness tests' observable.
	recording bool
	grantLog  []string
}

// newFairGate builds a gate admitting up to capacity concurrent episodes.
func newFairGate(capacity int) *fairGate {
	if capacity < 1 {
		capacity = 1
	}
	return &fairGate{
		capacity: capacity,
		free:     capacity,
		queues:   make(map[string][]chan struct{}),
	}
}

// acquire blocks until the campaign id is granted a dispatch slot or ctx
// is done. Every acquire must be paired with exactly one release.
func (g *fairGate) acquire(ctx context.Context, id string) error {
	g.mu.Lock()
	if g.free > 0 {
		// A free slot means no one is waiting (release hands busy slots
		// directly to waiters), so granting immediately cannot starve.
		g.free--
		g.noteGrant(id)
		g.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	g.queues[id] = append(g.queues[id], ch)
	g.ensureRingMember(id)
	g.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		q := g.queues[id]
		for i, w := range q {
			if w == ch {
				g.queues[id] = append(q[:i:i], q[i+1:]...)
				g.mu.Unlock()
				return context.Cause(ctx)
			}
		}
		// Not queued anymore: the grant raced the cancellation and this
		// waiter owns a slot it will never use — pass it on.
		g.releaseLocked()
		g.mu.Unlock()
		return context.Cause(ctx)
	}
}

// release returns a slot granted by acquire, handing it to the next
// campaign in rotation with a waiter (or back to the free count).
func (g *fairGate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked grants the freed slot round-robin. Requires g.mu.
func (g *fairGate) releaseLocked() {
	for i := 0; i < len(g.ring); i++ {
		idx := (g.next + i) % len(g.ring)
		id := g.ring[idx]
		q := g.queues[id]
		if len(q) == 0 {
			continue
		}
		g.queues[id] = q[1:]
		g.next = (idx + 1) % len(g.ring)
		g.noteGrant(id)
		close(q[0])
		return
	}
	g.free++
}

// ensureRingMember adds id to the rotation on its first wait. Finished
// campaigns linger in the ring with empty queues — releaseLocked skips
// them, and the ring stays small (campaigns per service lifetime).
func (g *fairGate) ensureRingMember(id string) {
	for _, r := range g.ring {
		if r == id {
			return
		}
	}
	g.ring = append(g.ring, id)
}

// record switches grant logging on (tests only). Call before any acquire.
func (g *fairGate) record() {
	g.mu.Lock()
	g.recording = true
	g.mu.Unlock()
}

// grants snapshots the grant log. Requires record() beforehand.
func (g *fairGate) grants() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.grantLog...)
}

// noteGrant appends to the grant log when recording. Requires g.mu.
func (g *fairGate) noteGrant(id string) {
	if g.recording {
		g.grantLog = append(g.grantLog, id)
	}
}
