package campaign

import (
	"fmt"
	"sync"
	"time"

	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/transport"
)

// PoolConfig shards a campaign across a pool of persistent engines.
type PoolConfig struct {
	// Engines is how many persistent engines (each its own simserver.Server,
	// simclient.Client and connection) the campaign spreads episodes over
	// with least-loaded dispatch. 0 or 1 runs the classic single engine —
	// except with Backends, where 0 sizes the pool to the backend count.
	Engines int
	// MaxRetries bounds how many times one episode is re-dispatched after a
	// transient failure (server-side session abort, dead engine connection)
	// before the whole campaign fails. 0 disables retry.
	MaxRetries int
	// Backends, when non-empty, lists remote simulator worker addresses
	// (see simserver.Worker / avfi -serve): instead of spawning in-process
	// pipe or loopback-TCP engines, the pool dials these addresses
	// round-robin, one connection per engine slot. Health checks, bounded
	// retry and dead-engine replacement carry over unchanged — a replacement
	// engine dials the next backend in the rotation, so one dead worker
	// degrades the campaign onto the survivors. Episode results travel over
	// the wire (EpisodeResult), so the worker's world configuration is the
	// only thing that must match the campaign's for bit-identical results.
	Backends []string
	// BatchOpens bounds how many concurrent episode opens an engine's
	// client may coalesce into one OpenEpisodeBatch message — the group
	// commit that amortizes per-session sends on remote dispatch. 0 (the
	// default) enables batching with a default bound on dialed Backends
	// engines only, where a send is a network round-trip worth amortizing;
	// 1 disables batching everywhere; >= 2 sets the exact bound on every
	// engine, in-process included. Batching engages only against servers
	// announcing the capability, so legacy workers transparently get
	// single opens; it never changes episode results, only message
	// framing.
	BatchOpens int
	// FullFrames keeps every sensor frame a full keyframe by disabling the
	// delta-frame capability on the pool's engine clients. The default
	// (false) lets capable servers delta-encode the frame stream — the wire
	// shrinks, the decoded frames do not: reconstruction is byte-exact, so
	// campaign results are bit-identical either way (pinned by the
	// determinism matrix test). A diagnostic escape hatch, not a tuning
	// knob.
	FullFrames bool
}

// defaultBatchOpens is the auto (BatchOpens = 0) coalescing bound for
// remote engines — deep enough to soak up a worker pool's burst of
// concurrent opens, small against MaxBatchOpens.
const defaultBatchOpens = 8

// batchLimit resolves BatchOpens for one engine (remote reports whether
// the engine dials a Backends worker): the coalescing bound, 1 for
// batching off.
func (p PoolConfig) batchLimit(remote bool) int {
	switch {
	case p.BatchOpens == 0:
		if remote {
			return defaultBatchOpens
		}
		return 1
	case p.BatchOpens < 1:
		return 1
	default:
		return p.BatchOpens
	}
}

// PoolSize resolves the number of engine slots this configuration runs
// under the given worker parallelism (<= 0 means unbounded): Engines, or
// one per backend when Engines is 0 with Backends set, capped at
// parallelism (slots beyond the worker count would idle), floor 1. The
// scheduler sizes its pool with this; cmd/avfi sizes its shard logs with
// it too, so shard count can only exceed actual slots when the scheduler
// additionally clamps parallelism to a small job batch — the surplus
// shard logs just stay empty, which merge and resume tolerate.
func (p PoolConfig) PoolSize(parallelism int) int {
	n := p.Engines
	if n == 0 && len(p.Backends) > 0 {
		n = len(p.Backends)
	}
	if parallelism > 0 && n > parallelism {
		n = parallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// PoolStats describes the engine pool's work for one campaign run. The
// pool-wide episode total lives in ResultSet.Engine (the aggregate
// EngineStats), not here.
type PoolStats struct {
	// Engines holds per-engine stats: live slots first (in slot order),
	// then any engines that died mid-campaign and were replaced.
	Engines []EngineStats
	// Retries counts episode re-dispatches after transient failures.
	Retries int
	// Replacements counts engines that died and were swapped for a fresh
	// backend.
	Replacements int
}

// engine is one slot of a campaign's engine pool: a persistent simulation
// backend — a session client and exactly one connection to its server. For
// in-process engines the server (and, over TCP, its listener) lives here
// too; for remote backends (PoolConfig.Backends) the server is a
// simserver.Worker in another process and only the dialed connection is
// ours.
type engine struct {
	id         int
	server     *simserver.Server // nil for remote backends
	client     *simclient.Client
	serverConn transport.Conn
	listener   *transport.Listener
	serveCh    chan error
	transport  string
	backend    string // remote worker address ("" for in-process)

	// Pool bookkeeping; guarded by the owning pool's mutex.
	inflight int
	dead     bool
}

// startEngine wires one engine slot: a dialed connection to the next remote
// backend in round-robin rotation when PoolConfig.Backends is set, or an
// in-process server/client pair over the configured transport otherwise.
func (r *Runner) startEngine() (*engine, error) {
	if len(r.cfg.Pool.Backends) > 0 {
		return r.dialBackend()
	}
	factory := simserver.WorldFactory(r.world)
	if r.cfg.testFactoryWrap != nil {
		factory = r.cfg.testFactoryWrap(factory)
	}
	eng := &engine{server: simserver.NewServer(factory), serveCh: make(chan error, 1)}

	var clientConn transport.Conn
	if r.cfg.UseTCP {
		eng.transport = "tcp"
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		eng.listener = l
		acceptCh := make(chan transport.Conn, 1)
		acceptErr := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			acceptCh <- c
		}()
		clientConn, err = transport.Dial(l.Addr())
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
		select {
		case eng.serverConn = <-acceptCh:
		case err := <-acceptErr:
			clientConn.Close()
			l.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
	} else {
		eng.transport = "pipe"
		eng.serverConn, clientConn = transport.Pipe()
	}

	go func() { eng.serveCh <- eng.server.Serve(eng.serverConn) }()
	eng.client = simclient.NewClient(clientConn)
	eng.client.SetBatchOpens(r.cfg.Pool.batchLimit(false))
	eng.client.SetDeltaFrames(!r.cfg.Pool.FullFrames)
	return eng, nil
}

// backendDialTimeout bounds one backend connect. Replacement dials run
// under the pool mutex (see replaceLocked), so a worker host that
// blackholes packets must fail in seconds, not the OS connect timeout's
// minutes — within this bound the pool stalls briefly, then degrades onto
// the surviving backends.
const backendDialTimeout = 3 * time.Second

// WorldMismatchError is returned when a dialed worker announces a world
// configuration fingerprint different from the campaign's: every episode
// the pairing ran would silently break bit-identity, so the dial fails
// fast instead. It is not a transient episode error — retrying the same
// worker cannot fix a configuration mismatch.
type WorldMismatchError struct {
	// Backend is the worker address that was dialed.
	Backend string
	// Want is the campaign's world hash; Got the worker's.
	Want, Got uint64
}

// Error implements error.
func (e *WorldMismatchError) Error() string {
	return fmt.Sprintf("campaign: backend %s serves world %016x, campaign needs %016x (world config mismatch)",
		e.Backend, e.Got, e.Want)
}

// dialWorkerEngine dials one remote worker and verifies its announced
// world fingerprint against want before any episode is dispatched. A
// worker announcing a different world is rejected with WorldMismatchError;
// a worker announcing no hash (legacy, predating world announcement) is
// paired anyway with a logged warning — the operator keeps responsibility
// for world identity, exactly the pre-handshake contract.
func dialWorkerEngine(addr string, batchOpens int, fullFrames bool, want uint64) (*engine, error) {
	conn, err := transport.DialTimeout(addr, backendDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("campaign: backend %s: %w", addr, err)
	}
	client := simclient.NewClient(conn)
	client.SetBatchOpens(batchOpens)
	client.SetDeltaFrames(!fullFrames)
	if client.WaitServerHello(backendDialTimeout) {
		if got, ok := client.ServerWorldHash(); ok {
			if got != want {
				client.Close()
				return nil, &WorldMismatchError{Backend: addr, Want: want, Got: got}
			}
		} else {
			telemetry.Warnf("campaign: backend %s announced no world hash (legacy worker); pairing without world verification", addr)
		}
	} else {
		telemetry.Warnf("campaign: backend %s sent no capability hello (legacy worker); pairing without world verification", addr)
	}
	return &engine{
		transport: "remote",
		backend:   addr,
		client:    client,
	}, nil
}

// dialBackend starts one remote engine slot: a connection to the next
// worker address in round-robin rotation. The rotation advances on every
// start — including replacements — so a dead worker's slot migrates onto a
// surviving backend instead of redialing the corpse forever.
func (r *Runner) dialBackend() (*engine, error) {
	backends := r.cfg.Pool.Backends
	addr := backends[int((r.backendSeq.Add(1)-1)%uint64(len(backends)))]
	return dialWorkerEngine(addr, r.cfg.Pool.batchLimit(true), r.cfg.Pool.FullFrames, r.worldHash)
}

// stashedResult consults the in-process server's result stash — the
// fallback for sessions whose result didn't ride the wire. Remote backends
// have no reachable stash; their episodes must use wire results.
func (e *engine) stashedResult(sid uint32) (sim.Result, bool) {
	if e.server == nil {
		return sim.Result{}, false
	}
	return e.server.Result(sid)
}

// stats snapshots the engine's work so far, always from the client side of
// the connection: the same session events reach both ends, and counting at
// the near end makes in-process and remote engines report identically (a
// remote backend has no reachable server to ask anyway).
func (e *engine) stats() EngineStats {
	return EngineStats{
		Engine:                e.id,
		Transport:             e.transport,
		Backend:               e.backend,
		Episodes:              e.client.CompletedSessions(),
		MaxConcurrentSessions: e.client.MaxConcurrent(),
		FailedSessions:        e.client.FailedSessions(),
	}
}

// desc labels the engine's backend for log lines.
func (e *engine) desc() string {
	if e.backend != "" {
		return e.transport + " " + e.backend
	}
	return e.transport
}

// close tears the engine down: closing the client's connection is the
// shutdown signal the server drains on. A remote engine owns only its side
// of the connection — the worker notices the hang-up and retires the
// server it spun up for us.
func (e *engine) close() error {
	e.client.Close()
	if e.server == nil {
		return nil
	}
	err := <-e.serveCh
	e.serverConn.Close()
	if e.listener != nil {
		e.listener.Close()
	}
	return err
}

// healthy reports whether the engine's backend is still serving: not
// condemned, client demux loop alive, and (in-process only) the server's
// Serve loop still running.
func (e *engine) healthy() bool {
	return !e.dead && e.client.Err() == nil && (e.server == nil || !e.server.Done())
}

// backendErr reports why a dead engine's backend stopped, whichever side
// noticed first.
func (e *engine) backendErr() error {
	if err := e.client.Err(); err != nil {
		return err
	}
	if e.server != nil {
		if err := e.server.Err(); err != nil {
			return err
		}
	}
	return fmt.Errorf("connection lost")
}

// enginePool shards campaign episodes over N persistent engines with
// least-loaded dispatch. When an engine's backend dies mid-campaign the
// pool retires it and starts a fresh engine in its slot, within a bounded
// replacement budget, so one dead backend degrades the campaign instead of
// killing it.
type enginePool struct {
	start func() (*engine, error)

	mu              sync.Mutex
	engines         []*engine // live slots, fixed length
	retired         []*engine // replaced engines, kept for stats and close
	retries         int
	replacements    int
	maxReplacements int
}

// newEnginePool starts n engines. On any startup failure the already
// started engines are torn down.
func newEnginePool(start func() (*engine, error), n int) (*enginePool, error) {
	if n < 1 {
		n = 1
	}
	p := &enginePool{start: start, maxReplacements: 2 * n}
	for i := 0; i < n; i++ {
		e, err := start()
		if err != nil {
			p.close()
			return nil, fmt.Errorf("campaign: engine %d: %w", i, err)
		}
		e.id = i
		p.engines = append(p.engines, e)
	}
	return p, nil
}

// acquire returns the least-loaded live engine, first replacing any dead
// ones within the replacement budget. A dead slot that cannot be revived
// (budget exhausted, or the fresh backend failed to start) degrades the
// pool instead of failing it: dispatch continues on the remaining live
// engines, and acquire errors only when none are left. The caller must
// release the engine.
func (p *enginePool) acquire() (*engine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *engine
	var lastErr error
	for i, e := range p.engines {
		if !e.healthy() {
			ne, err := p.replaceLocked(i)
			if err != nil {
				lastErr = err
				continue
			}
			e = ne
		}
		if best == nil || e.inflight < best.inflight {
			best = e
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("campaign: engine pool is empty")
	}
	best.inflight++
	return best, nil
}

// release returns an engine acquired with acquire.
func (p *enginePool) release(e *engine) {
	p.mu.Lock()
	e.inflight--
	p.mu.Unlock()
}

// fail marks an engine's backend dead; the next acquire replaces it.
func (p *enginePool) fail(e *engine) {
	p.mu.Lock()
	e.dead = true
	p.mu.Unlock()
}

// addSlot grows the pool by one freshly started engine — the campaign
// service's join path: a worker announcing itself mid-campaign becomes a
// new live slot that the very next acquire can dispatch onto, the grow
// direction complementing replaceLocked's dead-slot migration.
func (p *enginePool) addSlot(e *engine) {
	p.mu.Lock()
	e.id = len(p.engines) + len(p.retired)
	p.engines = append(p.engines, e)
	p.mu.Unlock()
}

// liveSlots counts healthy engine slots per backend address — how much of
// the pool each remote worker is currently serving. The service's registry
// uses it to decide which registered workers need a (re)dial.
func (p *enginePool) liveSlots() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := make(map[string]int)
	for _, e := range p.engines {
		if e.healthy() {
			m[e.backend]++
		}
	}
	return m
}

// noteRetry counts one episode re-dispatch.
func (p *enginePool) noteRetry() {
	telemetry.CampaignRetries.Inc()
	p.mu.Lock()
	p.retries++
	p.mu.Unlock()
}

// replaceLocked swaps slot i's dead engine for a fresh backend. The dead
// engine stays in its slot if the budget is exhausted or the replacement
// fails to start; acquire then skips it. Requires p.mu — engine startup is
// a pipe allocation, one loopback dial, or a remote dial bounded by
// backendDialTimeout, all short against the seconds an episode runs, and
// backend death is exceptional, so blocking the pool briefly beats
// unlock/relock juggling.
func (p *enginePool) replaceLocked(i int) (*engine, error) {
	old := p.engines[i]
	old.dead = true
	if p.replacements >= p.maxReplacements {
		return nil, fmt.Errorf("campaign: engine pool: replacement budget (%d) exhausted; last backend error: %v",
			p.maxReplacements, old.backendErr())
	}
	ne, err := p.start()
	if err != nil {
		return nil, fmt.Errorf("campaign: replacing engine %d: %w", i, err)
	}
	ne.id = i
	p.engines[i] = ne
	p.retired = append(p.retired, old)
	p.replacements++
	telemetry.CampaignReplacements.Inc()
	telemetry.Warnf("campaign: engine %d (%s) died (%v); replaced with %s (%d/%d replacements used)",
		i, old.desc(), old.backendErr(), ne.desc(), p.replacements, p.maxReplacements)
	return ne, nil
}

// snapshot reports the pool's work: per-engine stats plus the aggregate
// EngineStats that keeps ResultSet.Engine meaningful for pooled runs
// (episodes summed, concurrency high-water maxed across engines).
func (p *enginePool) snapshot() (PoolStats, EngineStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := PoolStats{Retries: p.retries, Replacements: p.replacements}
	var agg EngineStats
	collect := func(e *engine, replaced bool) {
		es := e.stats()
		es.Dead = !e.healthy()
		es.Replaced = replaced
		ps.Engines = append(ps.Engines, es)
		agg.Episodes += es.Episodes
		agg.FailedSessions += es.FailedSessions
		if es.MaxConcurrentSessions > agg.MaxConcurrentSessions {
			agg.MaxConcurrentSessions = es.MaxConcurrentSessions
		}
		agg.Transport = es.Transport
	}
	for _, e := range p.engines {
		collect(e, false)
	}
	for _, e := range p.retired {
		collect(e, true)
	}
	return ps, agg
}

// close tears down every engine, live and retired. It returns the first
// shutdown error from a live engine; retired engines' errors are the
// failures the pool already recovered from and are dropped.
func (p *enginePool) close() error {
	p.mu.Lock()
	live := p.engines
	retired := p.retired
	p.engines, p.retired = nil, nil
	p.mu.Unlock()
	var firstErr error
	for _, e := range live {
		if err := e.close(); err != nil && firstErr == nil && !e.dead {
			firstErr = err
		}
	}
	for _, e := range retired {
		_ = e.close()
	}
	return firstErr
}
