package campaign

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
)

func TestResumeAndResumeFromExclusive(t *testing.T) {
	cfg := resumeBase(t)
	cfg.Resume = []metrics.EpisodeRecord{{Injector: fault.NoopName}}
	cfg.ResumeFrom = &sliceSource{}
	if err := cfg.Validate(); err == nil {
		t.Error("Resume and ResumeFrom together accepted")
	}
}

// TestResumeFromStreamMatchesMaterialized: resuming through a streaming
// RecordSource over an on-disk log (either format) is behaviorally
// identical to materializing the log into Config.Resume.
func TestResumeFromStreamMatchesMaterialized(t *testing.T) {
	full, err := NewRunner(resumeBase(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	half := want.Records[:len(want.Records)/2]

	for _, format := range []RecordFormat{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "records.log")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			sink := format.NewRecordSink(f)
			for _, r := range half {
				if err := sink.Consume(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			stream, err := OpenRecordsPath(path)
			if err != nil {
				t.Fatal(err)
			}
			defer stream.Close()
			cfg := resumeBase(t)
			cfg.ResumeFrom = stream
			r, err := NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Records, want.Records) {
				t.Error("streamed resume diverged from the uninterrupted run")
			}
			if got.Engine.Episodes != len(want.Records)-len(half) {
				t.Errorf("streamed resume ran %d episodes, want %d",
					got.Engine.Episodes, len(want.Records)-len(half))
			}
		})
	}
}

// TestLoadRecordsDirMixedFormats: JSONL and binary shard logs coexist in
// one directory and load as a single sorted record set.
func TestLoadRecordsDirMixedFormats(t *testing.T) {
	dir := t.TempDir()
	recs := []metrics.EpisodeRecord{
		{Injector: "a", Mission: 0, Repetition: 0, Seed: 1},
		{Injector: "a", Mission: 1, Repetition: 0, Seed: 2},
		{Injector: "b", Mission: 0, Repetition: 0, Seed: 3,
			Violations: []metrics.ViolationRecord{{Kind: "lane", TimeSec: 2}}},
	}
	write := func(name string, format RecordFormat, rs []metrics.EpisodeRecord) {
		var buf bytes.Buffer
		sink := format.NewRecordSink(&buf)
		for _, r := range rs {
			if err := sink.Consume(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(ShardLogName(0), FormatJSONL, recs[:1])
	write(BinaryShardLogName(1), FormatBinary, recs[1:])

	got, err := LoadRecordsDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]metrics.EpisodeRecord(nil), recs...)
	sortRecords(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mixed-format dir:\n got  %+v\n want %+v", got, want)
	}
}

// TestResumeFromBinaryShardDirectory is the binary mirror of
// TestResumeFromShardDirectory: a binary-sharded campaign crashes (one
// shard's tail truncated mid-frame), is resumed by streaming the shard
// directory, and must finish with logs that merge bit-identically to the
// uninterrupted run's.
func TestResumeFromBinaryShardDirectory(t *testing.T) {
	const nShards = 2
	runSharded := func(dir string, resume RecordSource, appendMode bool) *ResultSet {
		cfg := shardBase(t)
		cfg.ResumeFrom = resume
		for i := 0; i < nShards; i++ {
			path := filepath.Join(dir, BinaryShardLogName(i))
			var f *os.File
			var err error
			if appendMode {
				f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			} else {
				f, err = os.Create(path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cfg.ShardSinks = append(cfg.ShardSinks, NewBinarySink(f))
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	fullDir := t.TempDir()
	want := runSharded(fullDir, nil, false)

	// Fabricate the crash: drop shard 1's final complete frame and leave
	// half of it behind as the truncated tail, then clamp exactly as
	// cmd/avfi's append mode does.
	crashDir := t.TempDir()
	for i := 0; i < nShards; i++ {
		data, err := os.ReadFile(filepath.Join(fullDir, BinaryShardLogName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if len(data) == 0 {
				t.Fatal("shard 1 is empty; cells not distributed")
			}
			boundary, err := CompleteBinaryPrefixLen(bytes.NewReader(data[:len(data)-1]))
			if err != nil {
				t.Fatal(err)
			}
			if boundary == 0 {
				t.Fatal("shard 1 has one record; need >= 2 to truncate meaningfully")
			}
			data = data[:int(boundary)+(len(data)-int(boundary))/2]
		}
		if err := os.WriteFile(filepath.Join(crashDir, BinaryShardLogName(i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := LoadRecordsDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) >= len(want.Records) {
		t.Fatalf("crash fabrication failed: resumed %d of %d records", len(resumed), len(want.Records))
	}
	for i := 0; i < nShards; i++ {
		path := filepath.Join(crashDir, BinaryShardLogName(i))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		good, err := CompleteBinaryPrefixLen(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:good], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	stream, err := OpenRecordsDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	got := runSharded(crashDir, stream, true)
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("binary shard resume diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("binary shard resume reports diverged")
	}
	fresh := len(want.Records) - len(resumed)
	if got.Engine.Episodes != fresh {
		t.Errorf("resumed campaign ran %d episodes, want the %d missing ones", got.Engine.Episodes, fresh)
	}

	// No slot sunk twice, and the resumed directory's canonical merge is
	// byte-identical to the uninterrupted run's.
	finalRecs, err := LoadRecordsDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[string]int{}
	for _, rec := range finalRecs {
		slots[fmt.Sprintf("%s|%d|%d", rec.Injector, rec.Mission, rec.Repetition)]++
	}
	for slot, n := range slots {
		if n > 1 {
			t.Errorf("slot %s sunk %d times after resume", slot, n)
		}
	}
	mergeDir := func(dir string) []byte {
		var files []io.Reader
		for i := 0; i < nShards; i++ {
			data, err := os.ReadFile(filepath.Join(dir, BinaryShardLogName(i)))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, bytes.NewReader(data))
		}
		var out bytes.Buffer
		if _, err := MergeRecords(&out, FormatJSONL, files...); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(mergeDir(crashDir), mergeDir(fullDir)) {
		t.Error("merged resumed binary shards are not byte-identical to the uninterrupted run's merge")
	}
}

// TestBinaryBatchedCampaignBitIdentical is the hot-path determinism
// contract: the same campaign streamed through a binary sink with batched
// episode dispatch merges to the byte-identical canonical JSONL stream as
// the plain in-process JSONL baseline, with identical reports.
func TestBinaryBatchedCampaignBitIdentical(t *testing.T) {
	base := func() Config {
		cfg := shardBase(t)
		cfg.DiscardRecords = true
		return cfg
	}

	jsonl := &bytes.Buffer{}
	cfg := base()
	cfg.Sink = NewJSONLSink(jsonl)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	binary := &bytes.Buffer{}
	cfg = base()
	cfg.Sink = NewBinarySink(binary)
	cfg.Pool = PoolConfig{Engines: 2, BatchOpens: 4}
	r, err = NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("batched binary campaign reports diverged from the baseline")
	}

	var wantMerged, gotMerged bytes.Buffer
	if _, err := MergeRecords(&wantMerged, FormatJSONL, bytes.NewReader(jsonl.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRecords(&gotMerged, FormatJSONL, bytes.NewReader(binary.Bytes())); err != nil {
		t.Fatal(err)
	}
	if wantMerged.Len() == 0 {
		t.Fatal("baseline merge is empty")
	}
	if !bytes.Equal(gotMerged.Bytes(), wantMerged.Bytes()) {
		t.Error("binary+batched record stream does not merge byte-identically to the JSONL baseline")
	}

	// And the binary-to-binary merge round-trips through the converter
	// direction too: JSONL -> binary -> JSONL is lossless.
	var rebin, back bytes.Buffer
	if _, err := MergeRecords(&rebin, FormatBinary, bytes.NewReader(jsonl.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRecords(&back, FormatJSONL, bytes.NewReader(rebin.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), wantMerged.Bytes()) {
		t.Error("JSONL -> binary -> JSONL conversion is not byte-lossless")
	}
}
