package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/avfi/avfi/internal/metrics"
)

// WriteRecordsCSV emits one row per episode.
func WriteRecordsCSV(w io.Writer, records []metrics.EpisodeRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"injector", "mission", "repetition", "seed", "success",
		"distance_km", "duration_s", "violations", "accidents", "vpk", "apk", "ttv_s",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("campaign: csv: %w", err)
	}
	for _, r := range records {
		accidents := 0
		for _, v := range r.Violations {
			if v.Accident {
				accidents++
			}
		}
		ttv := ""
		if t, ok := r.TTV(); ok {
			ttv = strconv.FormatFloat(t, 'f', 3, 64)
		}
		row := []string{
			r.Injector,
			strconv.Itoa(r.Mission),
			strconv.Itoa(r.Repetition),
			strconv.FormatUint(r.Seed, 10),
			strconv.FormatBool(r.Success),
			strconv.FormatFloat(r.DistanceKM, 'f', 4, 64),
			strconv.FormatFloat(r.DurationSec, 'f', 2, 64),
			strconv.Itoa(len(r.Violations)),
			strconv.Itoa(accidents),
			strconv.FormatFloat(r.VPK(), 'f', 3, 64),
			strconv.FormatFloat(r.APK(), 'f', 3, 64),
			ttv,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("campaign: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReportsCSV emits one row per injector aggregate.
func WriteReportsCSV(w io.Writer, reports []metrics.Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"injector", "episodes", "msr_pct",
		"vpk_min", "vpk_q1", "vpk_median", "vpk_q3", "vpk_max", "vpk_mean",
		"apk_mean", "ttv_mean_s", "ttv_episodes", "total_violations", "total_km", "aggregate_vpk",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("campaign: csv: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
	for _, r := range reports {
		row := []string{
			r.Injector, strconv.Itoa(r.Episodes), f(r.MSR),
			f(r.VPK.Min), f(r.VPK.Q1), f(r.VPK.Median), f(r.VPK.Q3), f(r.VPK.Max), f(r.MeanVPK),
			f(r.MeanAPK), f(r.MeanTTV), strconv.Itoa(r.TTVEpisodes),
			strconv.Itoa(r.TotalViolations), f(r.TotalKM), f(r.AggregateVPK),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("campaign: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full result set as JSON.
func WriteJSON(w io.Writer, rs *ResultSet) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rs); err != nil {
		return fmt.Errorf("campaign: json: %w", err)
	}
	return nil
}

// PrintTable renders the per-injector reports as an aligned text table —
// the textual form of one paper figure.
func PrintTable(w io.Writer, title string, reports []metrics.Report) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s %4s %8s %24s %10s %12s\n",
		"injector", "n", "MSR(%)", "VPK med [q1,q3]", "APK mean", "TTV mean(s)")
	for _, r := range reports {
		fmt.Fprintf(w, "%-14s %4d %8.1f %10.2f [%5.2f,%5.2f] %10.2f %12.2f\n",
			r.Injector, r.Episodes, r.MSR,
			r.VPK.Median, r.VPK.Q1, r.VPK.Q3,
			r.MeanAPK, r.MeanTTV)
	}
}
