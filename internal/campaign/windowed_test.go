package campaign

import (
	"sync/atomic"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sim"
)

// probeInput records the frames it is invoked on.
type probeInput struct {
	minFrame *int64 // atomic; smallest frame seen
	calls    *int64
}

func (probeInput) Name() string { return "probe" }

func (p probeInput) InjectImage(_ *render.Image, frame int, _ *rng.Stream) {
	atomic.AddInt64(p.calls, 1)
	for {
		cur := atomic.LoadInt64(p.minFrame)
		if int64(frame) >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(p.minFrame, cur, int64(frame)) {
			return
		}
	}
}

func (p probeInput) InjectMeasurements(speed, gpsX, gpsY float64, _ int, _ *rng.Stream) (float64, float64, float64) {
	return speed, gpsX, gpsY
}

func TestWindowedInjectorActivatesAtFrame(t *testing.T) {
	minFrame := int64(1 << 40)
	calls := int64(0)
	const start = 30

	src := Windowed(InjectorSource{
		Name: "probe",
		New: func() interface{} {
			return probeInput{minFrame: &minFrame, calls: &calls}
		},
	}, start)

	if src.Name != "probe@30" {
		t.Errorf("windowed name = %q", src.Name)
	}
	if src.InjectionFrame != start {
		t.Errorf("InjectionFrame = %d", src.InjectionFrame)
	}

	cfg := tinyConfig(t, []InjectorSource{src})
	cfg.Missions = 1
	cfg.Repetitions = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	if atomic.LoadInt64(&calls) == 0 {
		t.Fatal("windowed injector never fired")
	}
	if got := atomic.LoadInt64(&minFrame); got < start {
		t.Errorf("injector fired at frame %d, window starts at %d", got, start)
	}
	// The record carries the injection time for TTV accounting.
	wantTime := float64(start) * sim.Dt
	if rs.Records[0].InjectionTimeSec != wantTime {
		t.Errorf("InjectionTimeSec = %v, want %v", rs.Records[0].InjectionTimeSec, wantTime)
	}
}

func TestWindowedRegistryInjector(t *testing.T) {
	// Wrapping a registry-resolved injector must also work.
	src := Windowed(Registry("gaussian"), 10)
	inst := src.New()
	if _, ok := inst.(fault.InputInjector); !ok {
		t.Fatal("wrapped registry injector lost its InputInjector role")
	}
	cfg := tinyConfig(t, []InjectorSource{src})
	cfg.Missions = 1
	cfg.Repetitions = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedLidarInjectorKeepsRole(t *testing.T) {
	// Regression: the Multi/WindowedInput bundle built by Windowed used to
	// drop the LidarInjector role, so name@frame lidar faults were silent
	// no-ops — the client's type assertion failed and the AEB saw clean
	// scans during the activation window.
	src := Windowed(Registry("lidardropout"), 30)
	inst := src.New()
	li, ok := inst.(fault.LidarInjector)
	if !ok {
		t.Fatal("windowed lidar injector lost its LidarInjector role")
	}

	r := rng.New(9)
	scan := make([]float64, 36) // all-zero; dropout pushes beams to max range
	li.InjectLidar(scan, 10, r)
	for i, v := range scan {
		if v != 0 {
			t.Fatalf("lidar fault fired before window: beam %d = %v", i, v)
		}
	}
	li.InjectLidar(scan, 40, r)
	changed := 0
	for _, v := range scan {
		if v != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("windowed lidar fault never corrupted the scan inside the window")
	}
}

func TestWindowedTimingInjector(t *testing.T) {
	// Timing injectors keep working when windowed.
	src := Windowed(Registry("outputdelay"), 5)
	inst := src.New()
	if _, ok := inst.(fault.TimingInjector); !ok {
		t.Fatal("wrapped timing injector lost its TimingInjector role")
	}
}
