package campaign

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
)

// TestAdaptiveUniformMatchesExhaustive is the adaptive baseline contract:
// the Uniform policy with a full-grid budget must execute exactly the
// static job list — records and reports bit-identical to the classic
// exhaustive sweep for the same seed.
func TestAdaptiveUniformMatchesExhaustive(t *testing.T) {
	exhaustive, err := NewRunner(tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := exhaustive.Run()
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy:    adaptive.Uniform{},
		RoundSize: 3, // deliberately not a divisor of the grid
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("adaptive-uniform records diverged from the exhaustive sweep")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("adaptive-uniform reports diverged from the exhaustive sweep")
	}
	if got.Adaptive == nil || got.Adaptive.Policy != "uniform" {
		t.Fatalf("Adaptive stats = %+v", got.Adaptive)
	}
	if got.Adaptive.Budget != len(want.Records) {
		t.Errorf("resolved budget = %d, want full grid %d", got.Adaptive.Budget, len(want.Records))
	}
	total := 0
	for _, rs := range got.Adaptive.Rounds {
		total += rs.Episodes
	}
	if total != len(want.Records) {
		t.Errorf("rounds dispatched %d episodes, want %d", total, len(want.Records))
	}
}

// TestAdaptiveBitIdenticalAcrossPoolSizes is the adaptive determinism
// contract: same seed, same policy ⇒ the same episode allocation and the
// same ResultSet, whether the rounds run on one engine or a pool of four.
func TestAdaptiveBitIdenticalAcrossPoolSizes(t *testing.T) {
	run := func(engines int) *ResultSet {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("saltpepper"),
		})
		cfg.Parallelism = 4
		cfg.Pool = PoolConfig{Engines: engines}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
			Policy:    adaptive.UCB{},
			Budget:    6, // partial budget: allocation actually matters
			RoundSize: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	single, pooled := run(1), run(4)
	if !reflect.DeepEqual(single.Records, pooled.Records) {
		t.Error("adaptive records diverged across pool sizes")
	}
	if !reflect.DeepEqual(single.Reports, pooled.Reports) {
		t.Error("adaptive reports diverged across pool sizes")
	}
	if !reflect.DeepEqual(single.Adaptive, pooled.Adaptive) {
		t.Errorf("episode allocation diverged across pool sizes:\n 1 engine: %+v\n 4 engines: %+v",
			single.Adaptive, pooled.Adaptive)
	}
	if got := len(single.Records); got != 6 {
		t.Errorf("ran %d episodes, want the budget's 6", got)
	}
}

// lethalGrid builds a synthetic scenario space for allocation tests: n
// injector columns, with episode execution stubbed so the cell named
// "lethal" yields violationsPer violations every episode and every other
// cell none. No simulator runs; what's under test is purely where the
// budget goes.
func lethalGrid(tb testing.TB, n, missions, reps, violationsPer int) Config {
	tb.Helper()
	var cells []InjectorSource
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("benign%02d", i)
		if i == n/2 {
			name = "lethal"
		}
		cells = append(cells, InjectorSource{Name: name, New: func() interface{} { return struct{}{} }})
	}
	cfg := tinyConfig(tb, cells)
	cfg.Missions = missions
	cfg.Repetitions = reps
	cfg.testRunEpisode = func(_ *engine, j job) (metrics.EpisodeRecord, error) {
		rec := metrics.EpisodeRecord{
			Injector:    cells[j.cellIdx].Name,
			Mission:     j.mission,
			Repetition:  j.repetition,
			Success:     true,
			DistanceKM:  0.5,
			DurationSec: 30,
		}
		if cells[j.cellIdx].Name == "lethal" {
			rec.Success = false
			for v := 0; v < violationsPer; v++ {
				rec.Violations = append(rec.Violations, metrics.ViolationRecord{
					Kind: "lane", TimeSec: float64(v + 1),
				})
			}
		}
		return rec, nil
	}
	return cfg
}

// cellEpisodes returns the named cell's fresh-episode count from the
// adaptive stats.
func cellEpisodes(tb testing.TB, rs *ResultSet, cell string) int {
	tb.Helper()
	for _, c := range rs.Adaptive.Cells {
		if c.Cell == cell {
			return c.Episodes
		}
	}
	tb.Fatalf("cell %q not in adaptive stats", cell)
	return 0
}

// totalViolations sums violations across a result set's reports.
func totalViolations(rs *ResultSet) int {
	total := 0
	for _, rep := range rs.Reports {
		total += rep.TotalViolations
	}
	return total
}

// TestAdaptivePoliciesBeatUniformOnLethalCell is the headline acceptance
// test: on a seeded grid with one known-lethal cell, SuccessiveHalving and
// UCB must each find at least the violations Uniform finds — using half
// Uniform's episode budget — and must give the lethal cell more episodes
// than Uniform does at that same half budget.
func TestAdaptivePoliciesBeatUniformOnLethalCell(t *testing.T) {
	const (
		cells, missions, reps = 8, 8, 4
		violationsPer         = 5
		uniformBudget         = 128 // half the 256-episode grid
		adaptiveBudget        = uniformBudget / 2
		roundSize             = 16
	)
	run := func(policy adaptive.Policy, budget int) *ResultSet {
		r, err := NewRunner(lethalGrid(t, cells, missions, reps, violationsPer))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
			Policy:    policy,
			Budget:    budget,
			RoundSize: roundSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	uniform := run(adaptive.Uniform{}, uniformBudget)
	uniformViolations := totalViolations(uniform)
	uniformLethalAtHalf := cellEpisodes(t, run(adaptive.Uniform{}, adaptiveBudget), "lethal")
	if want := uniformBudget / cells * violationsPer; uniformViolations != want {
		t.Fatalf("uniform found %d violations, want the even split's %d", uniformViolations, want)
	}

	for _, policy := range []adaptive.Policy{adaptive.SuccessiveHalving{}, adaptive.UCB{}} {
		rs := run(policy, adaptiveBudget)
		if got := len(rs.Records); got != adaptiveBudget {
			t.Errorf("%s ran %d episodes, want %d", policy.Name(), got, adaptiveBudget)
		}
		if got := totalViolations(rs); got < uniformViolations {
			t.Errorf("%s found %d violations on half budget, want >= uniform's %d on full",
				policy.Name(), got, uniformViolations)
		}
		lethal := cellEpisodes(t, rs, "lethal")
		if lethal <= uniformLethalAtHalf {
			t.Errorf("%s gave the lethal cell %d episodes, want > uniform's %d at the same budget",
				policy.Name(), lethal, uniformLethalAtHalf)
		}
	}
}

// TestAdaptiveRoundProgress pins the per-round observer: rounds arrive in
// order, episode counts sum to the budget, and the running totals match.
func TestAdaptiveRoundProgress(t *testing.T) {
	r, err := NewRunner(lethalGrid(t, 4, 4, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	var rounds []RoundStats
	rs, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy:        adaptive.UCB{},
		Budget:        16,
		RoundSize:     4,
		RoundProgress: func(s RoundStats) { rounds = append(rounds, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, rs.Adaptive.Rounds) {
		t.Error("RoundProgress diverged from AdaptiveStats.Rounds")
	}
	total, violations := 0, 0
	for i, s := range rounds {
		if s.Round != i {
			t.Errorf("round %d numbered %d", i, s.Round)
		}
		total += s.Episodes
		violations += s.Violations
		if s.TotalEpisodes != total || s.TotalViolations != violations {
			t.Errorf("round %d running totals %d/%d, want %d/%d",
				i, s.TotalEpisodes, s.TotalViolations, total, violations)
		}
	}
	if total != 16 {
		t.Errorf("rounds dispatched %d episodes, want 16", total)
	}
	if violations != totalViolations(rs) {
		t.Errorf("round violations sum to %d, reports say %d", violations, totalViolations(rs))
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	r, err := NewRunner(lethalGrid(t, 2, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunAdaptive(context.Background(), AdaptiveConfig{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy: adaptive.Uniform{}, Budget: -1,
	}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy: adaptive.Uniform{}, RoundSize: -1,
	}); err == nil {
		t.Error("negative round size accepted")
	}

	// Duplicate column keys would alias posteriors; adaptive must refuse
	// what exhaustive sweeps tolerate.
	dup := tinyConfig(t, []InjectorSource{
		{Name: "twin", New: func() interface{} { return struct{}{} }},
		{Name: "twin", New: func() interface{} { return struct{}{} }},
	})
	rd, err := NewRunner(dup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy: adaptive.Uniform{},
	}); err == nil || !strings.Contains(err.Error(), "share keys") {
		t.Errorf("duplicate cell keys = %v, want rejection", err)
	}
}

// TestAdaptiveExternalCancel: cancelling the context aborts the round loop
// with the cause, mirroring RunContext.
func TestAdaptiveExternalCancel(t *testing.T) {
	r, err := NewRunner(lethalGrid(t, 2, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunAdaptive(ctx, AdaptiveConfig{Policy: adaptive.Uniform{}}); err != context.Canceled {
		t.Errorf("RunAdaptive on cancelled ctx = %v, want context.Canceled", err)
	}
}
