// The campaign control plane: a long-lived Service owning one shared
// engine fleet that many concurrent campaigns dispatch onto. Workers
// announce themselves to the service (and may join mid-campaign — the
// grow direction complementing the pool's dead-slot shrink migration),
// campaigns are submitted as declarative specs and interleave fairly via
// a round-robin dispatch gate, and results stream out of an in-memory
// sink in either canonical record format. The HTTP face of all of this
// lives in api.go and rides the telemetry endpoint.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/telemetry"
)

// sharedFleet is a Service's dispatch substrate: one long-lived engine
// pool shared by every submitted campaign, plus the fairness gate that
// interleaves their episodes round-robin at the configured parallelism.
type sharedFleet struct {
	pool        *enginePool
	gate        *fairGate
	parallelism int
}

// ServiceConfig parameterizes a campaign Service.
type ServiceConfig struct {
	// World is the fleet's world configuration. Its hash is verified
	// against every worker's capability hello at dial time: a mismatched
	// worker is rejected (WorldMismatchError) rather than silently
	// breaking bit-identity; a legacy worker announcing no hash pairs
	// with a logged warning.
	World sim.WorldConfig
	// Agent supplies the system under test, shared by every campaign
	// (resolved — trained, for a pretrain spec — once at service start).
	Agent AgentSource
	// Parallelism bounds concurrent episodes fleet-wide, shared fairly
	// across campaigns (0 = NumCPU).
	Parallelism int
	// DefaultRetries is the per-episode transient-failure retry bound for
	// campaigns whose spec doesn't set one (0 = 3; a long-lived fleet
	// should survive a worker dying mid-episode by default).
	DefaultRetries int
	// RedialInterval is how often the service re-dials registered workers
	// with no live engine slot — backends that were down at announce time
	// or died mid-campaign rejoin automatically (0 = 2s).
	RedialInterval time.Duration
	// BatchOpens and FullFrames mirror PoolConfig for the fleet's dialed
	// engines.
	BatchOpens int
	FullFrames bool
}

// serviceCampaignSeq numbers campaigns process-wide ("c1", "c2", ...), so
// per-campaign telemetry series stay unique even across Service instances
// in one process.
var serviceCampaignSeq atomic.Uint64

// ErrServiceClosed is returned by submissions and announcements after
// Service.Close.
var ErrServiceClosed = errors.New("campaign: service closed")

// ErrUnknownCampaign is returned for campaign ids the service never
// issued.
var ErrUnknownCampaign = errors.New("campaign: unknown campaign id")

// regWorker is one registry entry. Liveness is not stored here: a worker
// is "up" iff the fleet pool has a healthy engine slot dialed to it.
type regWorker struct {
	addr    string
	lastErr string // last dial failure ("" after a successful dial)
	dialing bool   // a dial is in flight; don't start another
	joined  time.Time
}

// serviceCampaign is one submitted campaign's lifecycle record.
type serviceCampaign struct {
	id        string
	spec      CampaignSpec
	runner    *Runner
	sink      *memorySink
	submitted time.Time
	episodes  atomic.Int64 // fresh episodes aggregated so far
	done      chan struct{}

	mu     sync.Mutex
	result *ResultSet
	err    error
}

// Service is the long-lived campaign control plane: it owns a worker
// registry and one shared engine fleet, accepts campaign submissions, and
// schedules their episodes fairly over the fleet. Locking order, where
// both are needed: the fleet pool's mutex is acquired before the
// service's (the pool's start hook dials under the pool mutex) — so no
// Service method may call into the pool while holding s.mu.
type Service struct {
	cfg       ServiceConfig
	worldHash uint64
	agent     *agent.Agent
	fleet     *sharedFleet
	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup

	mu          sync.Mutex
	workers     map[string]*regWorker
	workerOrder []string // registration order; dial rotation
	dialSeq     int
	campaigns   map[string]*serviceCampaign
	order       []string // submission order
	closed      bool

	// testOnEpisode, when set (tests only), observes every aggregated
	// episode (campaign id, fresh episodes so far) — the chaos tests'
	// mid-campaign trigger.
	testOnEpisode func(id string, episodes int)
}

// NewService builds the control plane: resolves the agent (training it
// now if a pretrain spec is given, so the first submission doesn't pay
// for it), fingerprints the world for the worker handshake, and starts
// the registry's re-dial loop. The fleet starts empty — workers join via
// AddWorker (the POST /workers announce path).
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Agent.Agent == nil && cfg.Agent.Pretrain == nil {
		return nil, fmt.Errorf("campaign: service: no agent source")
	}
	w, err := sim.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	a := cfg.Agent.Agent
	if a == nil {
		a, err = agent.Pretrained(w, *cfg.Agent.Pretrain)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.DefaultRetries <= 0 {
		cfg.DefaultRetries = 3
	}
	if cfg.RedialInterval <= 0 {
		cfg.RedialInterval = 2 * time.Second
	}
	s := &Service{
		cfg:       cfg,
		worldHash: cfg.World.Hash(),
		agent:     a,
		workers:   make(map[string]*regWorker),
		campaigns: make(map[string]*serviceCampaign),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	// The fleet pool starts with zero slots and grows as workers
	// announce; its start hook serves replaceLocked, migrating a dead
	// slot onto the next registered worker in rotation. The replacement
	// budget is effectively unbounded: the pool lives as long as the
	// service, not one campaign, so a per-run budget would eventually
	// strand a healthy fleet.
	s.fleet = &sharedFleet{
		pool:        &enginePool{start: s.dialNext, maxReplacements: 1 << 30},
		gate:        newFairGate(cfg.Parallelism),
		parallelism: cfg.Parallelism,
	}
	s.wg.Add(1)
	go s.maintain()
	return s, nil
}

// WorldHash returns the fleet's world fingerprint (what every worker must
// announce, or omit as a legacy worker).
func (s *Service) WorldHash() uint64 { return s.worldHash }

// Close stops the service: running campaigns are cancelled, the re-dial
// loop stops, and the fleet's engines are torn down.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return s.fleet.pool.close()
}

// AddWorker registers a worker address (the POST /workers announce path;
// idempotent) and dials it immediately. A worker announcing a mismatched
// world hash is rejected outright — the registration is dropped and the
// WorldMismatchError returned. Any other dial failure (the worker is down
// or unreachable) keeps the registration: the worker joins the periodic
// re-dial rotation and its first successful dial adds it to the fleet,
// mid-campaign included.
func (s *Service) AddWorker(addr string) (WorkerInfo, error) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return WorkerInfo{}, fmt.Errorf("campaign: service: empty worker address")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return WorkerInfo{}, ErrServiceClosed
	}
	if _, ok := s.workers[addr]; !ok {
		s.workers[addr] = &regWorker{addr: addr, joined: time.Now()}
		s.workerOrder = append(s.workerOrder, addr)
		telemetry.ServiceWorkers.Set(int64(len(s.workers)))
		telemetry.Infof("campaign: service: worker %s registered (%d total)", addr, len(s.workers))
	}
	s.mu.Unlock()

	if err := s.ensureWorker(addr); err != nil {
		var wm *WorldMismatchError
		if errors.As(err, &wm) {
			s.dropWorker(addr)
			return WorkerInfo{}, err
		}
		// Stays registered as down; the re-dial loop keeps trying.
		telemetry.Warnf("campaign: service: worker %s registered but unreachable (will re-dial): %v", addr, err)
	}
	s.noteWorkersUp()
	return s.workerInfo(addr), nil
}

// Workers snapshots the registry with per-worker fleet liveness.
func (s *Service) Workers() []WorkerInfo {
	live := s.fleet.pool.liveSlots()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, 0, len(s.workerOrder))
	for _, addr := range s.workerOrder {
		w := s.workers[addr]
		out = append(out, WorkerInfo{
			Addr:    addr,
			Up:      live[addr] > 0,
			Slots:   live[addr],
			LastErr: w.lastErr,
		})
	}
	return out
}

// WorkerInfo is one registry entry's API view.
type WorkerInfo struct {
	// Addr is the worker's announce address.
	Addr string `json:"addr"`
	// Up reports the fleet holds at least one live engine slot to it.
	Up bool `json:"up"`
	// Slots is the number of live engine slots dialed to this worker.
	Slots int `json:"slots"`
	// LastErr is the most recent dial failure ("" once a dial succeeds).
	LastErr string `json:"last_err,omitempty"`
}

// workerInfo builds one worker's API view.
func (s *Service) workerInfo(addr string) WorkerInfo {
	live := s.fleet.pool.liveSlots()
	s.mu.Lock()
	defer s.mu.Unlock()
	info := WorkerInfo{Addr: addr, Up: live[addr] > 0, Slots: live[addr]}
	if w, ok := s.workers[addr]; ok {
		info.LastErr = w.lastErr
	}
	return info
}

// dropWorker removes a rejected registration.
func (s *Service) dropWorker(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workers[addr]; !ok {
		return
	}
	delete(s.workers, addr)
	for i, a := range s.workerOrder {
		if a == addr {
			s.workerOrder = append(s.workerOrder[:i:i], s.workerOrder[i+1:]...)
			break
		}
	}
	telemetry.ServiceWorkers.Set(int64(len(s.workers)))
}

// ensureWorker guarantees the fleet holds a live engine slot to addr,
// dialing one if needed. Concurrent calls for one worker coalesce (one
// dial in flight at a time). Returns the dial error, WorldMismatchError
// included.
func (s *Service) ensureWorker(addr string) error {
	if s.fleet.pool.liveSlots()[addr] > 0 {
		return nil
	}
	s.mu.Lock()
	w, ok := s.workers[addr]
	if !ok || w.dialing {
		s.mu.Unlock()
		return nil
	}
	w.dialing = true
	s.mu.Unlock()

	eng, err := s.dialWorker(addr)

	s.mu.Lock()
	if w, ok := s.workers[addr]; ok {
		w.dialing = false
		if err != nil {
			w.lastErr = err.Error()
		} else {
			w.lastErr = ""
		}
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.fleet.pool.addSlot(eng)
	telemetry.Infof("campaign: service: worker %s joined the fleet", addr)
	return nil
}

// dialWorker dials one worker with hash verification, counting the
// attempt.
func (s *Service) dialWorker(addr string) (*engine, error) {
	telemetry.ServiceWorkerDials.Inc()
	pc := PoolConfig{BatchOpens: s.cfg.BatchOpens}
	eng, err := dialWorkerEngine(addr, pc.batchLimit(true), s.cfg.FullFrames, s.worldHash)
	if err != nil {
		telemetry.ServiceWorkerDialFailures.Inc()
	}
	return eng, err
}

// dialNext serves the fleet pool's replaceLocked: a dead slot migrates to
// the next registered worker in rotation. Runs under the pool mutex, so
// it must not call back into the pool; it marks the dial outcome in the
// registry so /workers reflects it.
func (s *Service) dialNext() (*engine, error) {
	s.mu.Lock()
	if len(s.workerOrder) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: service: no workers registered")
	}
	addr := s.workerOrder[s.dialSeq%len(s.workerOrder)]
	s.dialSeq++
	s.mu.Unlock()

	eng, err := s.dialWorker(addr)

	s.mu.Lock()
	if w, ok := s.workers[addr]; ok {
		if err != nil {
			w.lastErr = err.Error()
		} else {
			w.lastErr = ""
		}
	}
	s.mu.Unlock()
	return eng, err
}

// maintain is the registry's re-dial loop: every RedialInterval it dials
// any registered worker without a live fleet slot — covering workers that
// were down when they announced, and workers that died and came back.
func (s *Service) maintain() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RedialInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		s.mu.Lock()
		addrs := append([]string(nil), s.workerOrder...)
		s.mu.Unlock()
		for _, addr := range addrs {
			if s.ctx.Err() != nil {
				return
			}
			// Mismatch at re-dial time keeps the worker registered but
			// down, with the error visible in /workers — unlike announce
			// time there is no caller to bounce it back to.
			_ = s.ensureWorker(addr)
		}
		s.noteWorkersUp()
	}
}

// noteWorkersUp refreshes the workers-up gauge.
func (s *Service) noteWorkersUp() {
	live := s.fleet.pool.liveSlots()
	s.mu.Lock()
	up := 0
	for _, addr := range s.workerOrder {
		if live[addr] > 0 {
			up++
		}
	}
	s.mu.Unlock()
	telemetry.ServiceWorkersUp.Set(int64(up))
}

// Submit accepts a campaign spec, assigns it an id, and starts it on the
// shared fleet. The campaign waits (state "idle") until the fleet has at
// least one live engine slot, then runs interleaved with every other
// active campaign; poll Campaign(id) / GET /campaigns/{id} for progress
// and fetch records via WriteResults once done.
func (s *Service) Submit(spec CampaignSpec) (string, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return "", ErrServiceClosed
	}
	id := fmt.Sprintf("c%d", serviceCampaignSeq.Add(1))
	sink := &memorySink{}
	cfg, adaptive, err := s.buildConfig(spec, sink, id)
	if err != nil {
		return "", err
	}
	c := &serviceCampaign{
		id:        id,
		spec:      spec,
		sink:      sink,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// Per-campaign episode counter: ids are process-unique, so dynamic
	// registration cannot collide.
	episodes := telemetry.Default.Counter("avfi_service_campaign_episodes_total",
		"Episodes completed per submitted campaign.", "campaign", id)
	cfg.Progress = func(string, int, float64, float64) {
		episodes.Inc()
		n := int(c.episodes.Add(1))
		s.mu.Lock()
		hook := s.testOnEpisode
		s.mu.Unlock()
		if hook != nil {
			hook(id, n)
		}
	}
	runner, err := NewRunner(cfg)
	if err != nil {
		return "", err
	}
	c.runner = runner

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrServiceClosed
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	telemetry.ServiceCampaignsSubmitted.Inc()
	telemetry.ServiceCampaignsActive.Add(1)
	telemetry.Infof("campaign: service: campaign %s submitted (%d episodes planned-ish, adaptive=%v)",
		id, spec.Missions*spec.Repetitions, spec.Adaptive != nil)
	go s.runCampaign(c, adaptive)
	return id, nil
}

// runCampaign waits for fleet capacity, runs the campaign, and records
// its terminal state.
func (s *Service) runCampaign(c *serviceCampaign, adaptive *AdaptiveConfig) {
	defer s.wg.Done()
	defer close(c.done)
	defer telemetry.ServiceCampaignsActive.Add(-1)

	var rs *ResultSet
	err := s.awaitCapacity(s.ctx)
	if err == nil {
		if adaptive != nil {
			rs, err = c.runner.RunAdaptive(s.ctx, *adaptive)
		} else {
			rs, err = c.runner.RunContext(s.ctx)
		}
	}
	c.mu.Lock()
	c.result, c.err = rs, err
	c.mu.Unlock()
	if err != nil {
		telemetry.ServiceCampaignsFailed.Inc()
		telemetry.Warnf("campaign: service: campaign %s failed: %v", c.id, err)
		return
	}
	telemetry.ServiceCampaignsDone.Inc()
	telemetry.Infof("campaign: service: campaign %s done (%d records)", c.id, len(c.sink.snapshot()))
}

// awaitCapacity blocks until the fleet has at least one live engine slot.
// A campaign submitted before any worker announced (or while every worker
// is down) queues here instead of failing on an empty pool.
func (s *Service) awaitCapacity(ctx context.Context) error {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		if len(s.fleet.pool.liveSlots()) > 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-t.C:
		}
	}
}

// CampaignInfo is one submitted campaign's API view: the spec it was
// submitted with plus the live CampaignStatus snapshot — exactly what
// GET /campaigns/{id} serves (shape pinned by a golden test).
type CampaignInfo struct {
	// ID is the service-assigned campaign id.
	ID string `json:"id"`
	// Spec echoes the submission.
	Spec CampaignSpec `json:"spec"`
	// Records is how many episode records the results buffer holds so
	// far (grows while running; final once state is "done").
	Records int `json:"records"`
	// Status is the runner's live snapshot ("idle" until the fleet has
	// capacity, then "running" / "done" / "failed").
	Status CampaignStatus `json:"status"`
}

// Campaign returns one campaign's API view.
func (s *Service) Campaign(id string) (CampaignInfo, error) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return CampaignInfo{}, ErrUnknownCampaign
	}
	return CampaignInfo{
		ID:      c.id,
		Spec:    c.spec,
		Records: c.sink.count(),
		Status:  c.runner.Status(),
	}, nil
}

// Campaigns lists every submitted campaign in submission order.
func (s *Service) Campaigns() []CampaignInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]CampaignInfo, 0, len(ids))
	for _, id := range ids {
		if info, err := s.Campaign(id); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// Wait blocks until the campaign finishes (or ctx is done) and returns
// its ResultSet. Records are nil in it by design — the service streams
// them through the results buffer; use Results or WriteResults.
func (s *Service) Wait(ctx context.Context, id string) (*ResultSet, error) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCampaign
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result, c.err
}

// Results snapshots the campaign's episode records so far, in the
// canonical deterministic order. Mid-run the snapshot is a consistent
// prefix of the final set.
func (s *Service) Results(id string) ([]metrics.EpisodeRecord, error) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCampaign
	}
	return c.sink.snapshot(), nil
}

// WriteResults streams the campaign's records to w in the requested
// format (FormatAuto writes binary) — canonical order, so two fetches of
// a finished campaign are byte-identical and format conversion is
// lossless (the avfi-records contract).
func (s *Service) WriteResults(w io.Writer, id string, format RecordFormat) error {
	records, err := s.Results(id)
	if err != nil {
		return err
	}
	sink := format.NewRecordSink(w)
	for _, rec := range records {
		if err := sink.Consume(rec); err != nil {
			return err
		}
	}
	return sink.Close()
}

// ServiceStatus is the /statusz section: registry plus campaign states.
type ServiceStatus struct {
	WorldHash string        `json:"world_hash"`
	Workers   []WorkerInfo  `json:"workers"`
	Campaigns []CampaignRef `json:"campaigns"`
}

// CampaignRef is a campaign's one-line status entry.
type CampaignRef struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// Status snapshots the service for /statusz.
func (s *Service) Status() ServiceStatus {
	st := ServiceStatus{
		WorldHash: fmt.Sprintf("%016x", s.worldHash),
		Workers:   s.Workers(),
	}
	for _, info := range s.Campaigns() {
		st.Campaigns = append(st.Campaigns, CampaignRef{ID: info.ID, State: info.Status.State})
	}
	return st
}

// memorySink buffers a service campaign's records for the results API.
// The campaign's aggregation shard is the only writer; API snapshots may
// race it, hence the mutex.
type memorySink struct {
	mu      sync.Mutex
	records []metrics.EpisodeRecord
}

// Consume implements RecordSink.
func (m *memorySink) Consume(rec metrics.EpisodeRecord) error {
	m.mu.Lock()
	m.records = append(m.records, rec)
	m.mu.Unlock()
	return nil
}

// Close implements RecordSink.
func (m *memorySink) Close() error { return nil }

// count reports records buffered so far.
func (m *memorySink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// snapshot copies the buffered records in canonical order.
func (m *memorySink) snapshot() []metrics.EpisodeRecord {
	m.mu.Lock()
	cp := append([]metrics.EpisodeRecord(nil), m.records...)
	m.mu.Unlock()
	sortRecords(cp)
	return cp
}
