package campaign

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
)

func TestLoadRecordsJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []metrics.EpisodeRecord{
		{Injector: "noinject", Mission: 0, Repetition: 1, Seed: 7, Success: true, DistanceKM: 0.4},
		{Injector: "gaussian", Mission: 2, Repetition: 0, Seed: 8, DistanceKM: 0.1,
			Violations: []metrics.ViolationRecord{{Kind: "lane", TimeSec: 3}}},
	}
	for _, r := range want {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecordsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mangled:\n got  %+v\n want %+v", got, want)
	}
}

// TestLoadRecordsJSONLTruncatedTail: a crash mid-write leaves a partial
// final line; the loader must keep every complete record and drop the
// tail without erroring.
func TestLoadRecordsJSONLTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for m := 0; m < 3; m++ {
		if err := sink.Consume(metrics.EpisodeRecord{Injector: "noinject", Mission: m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() - 10 // chop into the last record's JSON
	got, err := LoadRecordsJSONL(bytes.NewReader(buf.Bytes()[:cut]))
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("loaded %d records from a log truncated mid-third, want 2", len(got))
	}
}

func TestLoadRecordsJSONLMidFileCorruption(t *testing.T) {
	log := `{"Injector":"noinject","Mission":0}
{"Injector":"noinject","Mission":1,
{"Injector":"noinject","Mission":2}
`
	if _, err := LoadRecordsJSONL(strings.NewReader(log)); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

// resumeBase is the campaign both resume tests continue.
func resumeBase(t *testing.T) Config {
	cfg := tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	})
	cfg.Parallelism = 2
	return cfg
}

// TestResumeSkipsRecordedEpisodes is the resume contract: a campaign
// seeded with a partial record log runs only the missing episodes, and
// finishes with records and reports bit-identical to the uninterrupted
// run.
func TestResumeSkipsRecordedEpisodes(t *testing.T) {
	full, err := NewRunner(resumeBase(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Resume from roughly half the log.
	half := append([]metrics.EpisodeRecord(nil), want.Records[:len(want.Records)/2]...)
	cfg := resumeBase(t)
	cfg.Resume = half
	sink := &collectSink{}
	cfg.Sink = sink
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("resumed records diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("resumed reports diverged from the uninterrupted run")
	}
	// Only the fresh episodes ran and only they hit the sink: the resumed
	// half is already on record.
	fresh := len(want.Records) - len(half)
	if got.Engine.Episodes != fresh {
		t.Errorf("resumed campaign ran %d episodes, want %d", got.Engine.Episodes, fresh)
	}
	if len(sink.records) != fresh {
		t.Errorf("sink saw %d records, want only the %d fresh ones", len(sink.records), fresh)
	}
}

// TestResumeCompleteLogRunsNothing: resuming from a complete log is a
// no-op sweep that still reproduces the full ResultSet.
func TestResumeCompleteLogRunsNothing(t *testing.T) {
	full, err := NewRunner(resumeBase(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeBase(t)
	cfg.Resume = want.Records
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine.Episodes != 0 {
		t.Errorf("complete-log resume ran %d episodes, want 0", got.Engine.Episodes)
	}
	if !reflect.DeepEqual(got.Records, want.Records) || !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("complete-log resume diverged from the original run")
	}
}

// TestResumeIgnoresForeignRecords: records from a different configuration
// (unknown column, out-of-range slots) must not poison the campaign.
func TestResumeIgnoresForeignRecords(t *testing.T) {
	want, err := NewRunner(resumeBase(t))
	if err != nil {
		t.Fatal(err)
	}
	wantRS, err := want.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeBase(t)
	cfg.Resume = []metrics.EpisodeRecord{
		{Injector: "from-another-campaign", Mission: 0, Repetition: 0},
		{Injector: fault.NoopName, Mission: 99, Repetition: 0},
		{Injector: fault.NoopName, Mission: 0, Repetition: -1},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, wantRS.Records) {
		t.Error("foreign resume records leaked into the campaign")
	}
}

// TestAdaptiveResumeSeedsPosteriors: an adaptive campaign resumed from a
// partial log (a) never re-runs recorded slots, (b) still ends with the
// full-grid ResultSet under Uniform + full budget, and (c) counts only
// fresh episodes against the budget.
func TestAdaptiveResumeSeedsPosteriors(t *testing.T) {
	full, err := NewRunner(resumeBase(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	half := append([]metrics.EpisodeRecord(nil), want.Records[:len(want.Records)/2]...)
	cfg := resumeBase(t)
	cfg.Resume = half
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RunAdaptive(context.Background(), AdaptiveConfig{
		Policy:    adaptive.Uniform{},
		RoundSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("adaptive resume diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("adaptive resume reports diverged")
	}
	fresh := len(want.Records) - len(half)
	if got.Adaptive.Budget != fresh {
		t.Errorf("resolved budget = %d, want the %d un-recorded episodes", got.Adaptive.Budget, fresh)
	}
	if got.Engine.Episodes != fresh {
		t.Errorf("ran %d episodes, want %d", got.Engine.Episodes, fresh)
	}
}
