// Declarative campaign specs: the JSON surface of the service's submit
// API. A CampaignSpec names what to run — injectors, grid shape, optional
// scenario matrix and adaptive allocation — and buildConfig lowers it
// onto the service's shared world, agent and fleet. Specs are data, not
// code: everything a client can express here keeps the bit-identity
// contract (episodes remain a pure function of the spec and its seed).
package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/world"
)

// CampaignSpec is one campaign submission (POST /campaigns). The flat
// fields describe the classic injector sweep; Matrix crosses the
// injectors with environmental dimensions instead (the flat weather/
// density/AEB fields are then ignored); Adaptive switches from the
// exhaustive sweep to risk-driven episode allocation.
type CampaignSpec struct {
	// Injectors are the fault columns, resolved through the fault
	// registry (include "noop" for the baseline bar).
	Injectors []string `json:"injectors"`
	// Missions and Repetitions shape the episode grid.
	Missions    int `json:"missions"`
	Repetitions int `json:"repetitions"`
	// Seed drives all campaign randomness.
	Seed uint64 `json:"seed"`
	// Weather is "clear" (default), "rain" or "fog".
	Weather string `json:"weather,omitempty"`
	// NPCs and Pedestrians populate each episode.
	NPCs        int `json:"npcs,omitempty"`
	Pedestrians int `json:"pedestrians,omitempty"`
	// AEB installs the independent emergency-braking monitor.
	AEB bool `json:"aeb,omitempty"`
	// Matrix, when set, crosses Injectors with scenario dimensions.
	Matrix *MatrixSpec `json:"matrix,omitempty"`
	// Adaptive, when set, runs risk-driven allocation instead of the
	// exhaustive sweep.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// MaxRetries overrides the service's default per-episode transient
	// retry bound (0 = service default).
	MaxRetries int `json:"max_retries,omitempty"`
}

// MatrixSpec is the JSON form of ScenarioMatrix (injector columns come
// from CampaignSpec.Injectors).
type MatrixSpec struct {
	// Weathers lists conditions to cross ("clear", "rain", "fog").
	Weathers []string `json:"weathers,omitempty"`
	// Densities lists traffic levels as "NxP" (NPCs x pedestrians),
	// e.g. "10x4".
	Densities []string `json:"densities,omitempty"`
	// AEB is "off" (default), "on", or "both" (the ablation pair).
	AEB string `json:"aeb,omitempty"`
	// ActivationFrames lists windowed fault-activation frames to cross.
	ActivationFrames []int `json:"activation_frames,omitempty"`
}

// AdaptiveSpec is the JSON form of AdaptiveConfig.
type AdaptiveSpec struct {
	// Policy is "uniform", "halving" (alias "successive-halving"), or
	// "ucb".
	Policy string `json:"policy"`
	// Budget is the total fresh-episode budget (0 = full grid).
	Budget int `json:"budget,omitempty"`
	// RoundSize is episodes per plan->observe->reallocate round
	// (0 = default sizing).
	RoundSize int `json:"round_size,omitempty"`
}

// parseWeatherName resolves a spec weather label ("" = clear).
func parseWeatherName(name string) (world.Weather, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "clear":
		return world.WeatherClear, nil
	case "rain":
		return world.WeatherRain, nil
	case "fog":
		return world.WeatherFog, nil
	default:
		return 0, fmt.Errorf("campaign: unknown weather %q (want clear, rain or fog)", name)
	}
}

// parseDensitySpec resolves one "NxP" traffic level.
func parseDensitySpec(s string) (Density, error) {
	npcs, peds, ok := strings.Cut(strings.TrimSpace(s), "x")
	if !ok {
		return Density{}, fmt.Errorf("campaign: density %q is not NxP (e.g. 10x4)", s)
	}
	n, err := strconv.Atoi(npcs)
	if err != nil {
		return Density{}, fmt.Errorf("campaign: density %q: bad NPC count: %w", s, err)
	}
	p, err := strconv.Atoi(peds)
	if err != nil {
		return Density{}, fmt.Errorf("campaign: density %q: bad pedestrian count: %w", s, err)
	}
	return Density{NPCs: n, Pedestrians: p}, nil
}

// parseAEBSpec resolves a matrix AEB dimension label.
func parseAEBSpec(s string) ([]bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return nil, nil // neutral level (AEB off)
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	default:
		return nil, fmt.Errorf("campaign: matrix aeb %q (want off, on or both)", s)
	}
}

// matrix lowers the spec onto ScenarioMatrix with the given injector
// columns.
func (m *MatrixSpec) matrix(injectors []InjectorSource) (*ScenarioMatrix, error) {
	out := &ScenarioMatrix{Injectors: injectors, ActivationFrames: m.ActivationFrames}
	for _, name := range m.Weathers {
		w, err := parseWeatherName(name)
		if err != nil {
			return nil, err
		}
		out.Weathers = append(out.Weathers, w)
	}
	for _, d := range m.Densities {
		den, err := parseDensitySpec(d)
		if err != nil {
			return nil, err
		}
		out.Densities = append(out.Densities, den)
	}
	aeb, err := parseAEBSpec(m.AEB)
	if err != nil {
		return nil, err
	}
	out.AEB = aeb
	return out, nil
}

// adaptiveConfig lowers the spec onto AdaptiveConfig.
func (a *AdaptiveSpec) adaptiveConfig() (*AdaptiveConfig, error) {
	pol, err := adaptive.ParsePolicy(a.Policy)
	if err != nil {
		return nil, fmt.Errorf("campaign: adaptive spec: %w", err)
	}
	if a.Budget < 0 || a.RoundSize < 0 {
		return nil, fmt.Errorf("campaign: adaptive spec: budget=%d round_size=%d must be non-negative",
			a.Budget, a.RoundSize)
	}
	return &AdaptiveConfig{Policy: pol, Budget: a.Budget, RoundSize: a.RoundSize}, nil
}

// buildConfig lowers a submission onto the service's world, agent and
// shared fleet. The returned Config streams records to sink and discards
// in-memory retention (the service's results buffer is the only copy);
// Submit attaches the Progress hook afterwards.
func (s *Service) buildConfig(spec CampaignSpec, sink RecordSink, id string) (Config, *AdaptiveConfig, error) {
	if len(spec.Injectors) == 0 {
		return Config{}, nil, fmt.Errorf("campaign: spec has no injectors")
	}
	injectors := make([]InjectorSource, 0, len(spec.Injectors))
	for _, name := range spec.Injectors {
		if strings.TrimSpace(name) == "" {
			return Config{}, nil, fmt.Errorf("campaign: spec has an empty injector name")
		}
		injectors = append(injectors, Registry(name))
	}
	retries := spec.MaxRetries
	if retries <= 0 {
		retries = s.cfg.DefaultRetries
	}
	cfg := Config{
		World:          s.cfg.World,
		Agent:          AgentSource{Agent: s.agent},
		Missions:       spec.Missions,
		Repetitions:    spec.Repetitions,
		Seed:           spec.Seed,
		Pool:           PoolConfig{MaxRetries: retries},
		Sink:           sink,
		DiscardRecords: true,
		fleet:          s.fleet,
		fleetID:        id,
	}
	if spec.Matrix != nil {
		m, err := spec.Matrix.matrix(injectors)
		if err != nil {
			return Config{}, nil, err
		}
		cfg.Matrix = m
	} else {
		w, err := parseWeatherName(spec.Weather)
		if err != nil {
			return Config{}, nil, err
		}
		cfg.Injectors = injectors
		cfg.Weather = w
		cfg.NumNPCs = spec.NPCs
		cfg.NumPedestrians = spec.Pedestrians
		cfg.EnableAEB = spec.AEB
	}
	var acfg *AdaptiveConfig
	if spec.Adaptive != nil {
		var err error
		acfg, err = spec.Adaptive.adaptiveConfig()
		if err != nil {
			return Config{}, nil, err
		}
	}
	return cfg, acfg, nil
}
