package campaign

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simserver"
)

// startTestWorkers boots n standalone simulator workers on loopback TCP,
// each with its own tiny world — the same configuration the campaign under
// test uses, which is the one thing remote bit-identity requires. Workers
// are torn down (idempotently, so chaos tests may kill one early) when the
// test ends.
func startTestWorkers(t testing.TB, n int) ([]string, []*simserver.Worker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*simserver.Worker, n)
	for i := 0; i < n; i++ {
		w, err := sim.NewWorld(tinyWorldConfig())
		if err != nil {
			t.Fatal(err)
		}
		wk := simserver.NewWorker(simserver.WorldFactory(w))
		wk.SetWorldHash(tinyWorldConfig().Hash())
		addr, err := wk.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- wk.Serve() }()
		t.Cleanup(func() {
			wk.Close()
			if err := <-serveDone; err != nil {
				t.Errorf("worker %s Serve: %v", addr, err)
			}
		})
		addrs[i] = addr
		workers[i] = wk
	}
	return addrs, workers
}

// TestRemoteBackendsBitIdentical is the distributed determinism contract:
// the same campaign dispatched onto remote simulator workers must produce
// a ResultSet bit-identical to the single in-process engine run — episodes
// are pure functions of their seeds, and where the server ran is not part
// of the result.
func TestRemoteBackendsBitIdentical(t *testing.T) {
	base := func() Config {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("saltpepper"),
		})
		cfg.Parallelism = 4
		return cfg
	}

	inproc, err := NewRunner(base())
	if err != nil {
		t.Fatal(err)
	}
	want, err := inproc.Run()
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startTestWorkers(t, 3)
	cfg := base()
	cfg.Pool = PoolConfig{Backends: addrs} // Engines 0: one slot per backend
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("remote-backend records diverged from the in-process run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("remote-backend reports diverged from the in-process run")
	}
	if got.Engine.Transport != "remote" {
		t.Errorf("aggregate transport = %q, want remote", got.Engine.Transport)
	}
	if len(got.Pool.Engines) != 3 {
		t.Errorf("pool ran %d engines for 3 backends, want 3", len(got.Pool.Engines))
	}
	sum := 0
	seen := map[string]bool{}
	for _, es := range got.Pool.Engines {
		sum += es.Episodes
		if es.Backend == "" {
			t.Errorf("engine %d has no backend address", es.Engine)
		}
		seen[es.Backend] = true
	}
	if sum != len(got.Records) {
		t.Errorf("per-engine episodes sum to %d, want %d", sum, len(got.Records))
	}
	if len(seen) != 3 {
		t.Errorf("round-robin dialed %d distinct backends, want 3", len(seen))
	}
	for _, wk := range workers {
		if wk.ConnsServed() == 0 {
			t.Error("a worker served no connection despite round-robin dispatch")
		}
	}
}

// TestChaosBackendKillMidCampaign is the headline chaos invariant: with
// three remote workers and sharded sinks, killing one worker mid-campaign
// must cost retries and a replacement — never episodes. The run completes
// on the survivors with a ResultSet bit-identical to the undisturbed
// single-engine single-sink run, and the shard logs merge to the same
// byte stream as the undisturbed run's log.
func TestChaosBackendKillMidCampaign(t *testing.T) {
	base := func() Config {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("gaussian"),
		})
		cfg.Missions = 3
		cfg.Repetitions = 2
		return cfg
	}

	baseCfg := base()
	singleLog := &bytes.Buffer{}
	baseCfg.Sink = NewJSONLSink(singleLog)
	undisturbed, err := NewRunner(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := undisturbed.Run()
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startTestWorkers(t, 3)
	cfg := base()
	cfg.Parallelism = 3
	cfg.Pool = PoolConfig{Backends: addrs, MaxRetries: 6}
	shardLogs := []*bytes.Buffer{{}, {}, {}}
	for _, buf := range shardLogs {
		cfg.ShardSinks = append(cfg.ShardSinks, NewJSONLSink(buf))
	}
	// Kill the middle worker once a few episodes are on the books: its
	// engine's connection collapses under in-flight sessions, which must
	// surface as transient failures (retried elsewhere) plus a dead engine
	// (replaced by dialing the next backend in rotation).
	var mu sync.Mutex
	var once sync.Once
	aggregated := 0
	cfg.Progress = func(string, int, float64, float64) {
		mu.Lock()
		aggregated++
		kill := aggregated == 3
		mu.Unlock()
		if kill {
			once.Do(func() { workers[1].Close() })
		}
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatalf("campaign did not survive a backend kill: %v", err)
	}

	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("records after backend kill diverged from the undisturbed run")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Error("reports after backend kill diverged from the undisturbed run")
	}
	if got.Pool.Replacements < 1 {
		t.Errorf("Pool.Replacements = %d after a backend kill, want >= 1", got.Pool.Replacements)
	}
	dead := 0
	for _, es := range got.Pool.Engines {
		if es.Dead {
			dead++
		}
	}
	if dead < 1 {
		t.Errorf("no engine marked dead after its worker was killed (stats: %+v)", got.Pool.Engines)
	}

	// The shard logs of the disturbed distributed run merge to exactly the
	// undisturbed run's log — a lost backend cost nothing durable either.
	var wantMerged, gotMerged bytes.Buffer
	if _, err := MergeRecordsJSONL(&wantMerged, bytes.NewReader(singleLog.Bytes())); err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shardLogs))
	for i, buf := range shardLogs {
		readers[i] = bytes.NewReader(buf.Bytes())
	}
	if _, err := MergeRecordsJSONL(&gotMerged, readers...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMerged.Bytes(), wantMerged.Bytes()) {
		t.Error("merged shard logs after backend kill are not byte-identical to the undisturbed log")
	}
}

// TestDistributedDeterminismMatrix sweeps the bit-identity matrix the
// distributed campaign rests on: remote-vs-in-process and
// sharded-sink-vs-single-sink, for both the exhaustive sweep and the
// adaptive orchestrator under every policy. Every variant must reproduce
// its baseline's Records and Reports exactly.
func TestDistributedDeterminismMatrix(t *testing.T) {
	base := func() Config {
		cfg := tinyConfig(t, []InjectorSource{
			Registry(fault.NoopName),
			Registry("gaussian"),
		})
		cfg.Parallelism = 4
		return cfg
	}
	addrs, _ := startTestWorkers(t, 2)

	type variant struct {
		name   string
		remote bool
		shard  int  // shard sinks; 0 = single collect sink
		full   bool // disable delta frames (the baseline runs with them on)
	}
	variants := []variant{
		{"remote", true, 0, false},
		{"sharded-sink", false, 3, false},
		{"remote+sharded", true, 3, false},
		// The frame-encoding axis: delta-encoded and full-frame transports
		// must be indistinguishable in every result bit, in-process and
		// remote alike (the baseline negotiates deltas; these refuse them).
		{"full-frames", false, 0, true},
		{"remote+full-frames", true, 0, true},
	}

	configure := func(v variant) (Config, []*collectSink) {
		cfg := base()
		if v.remote {
			cfg.Pool = PoolConfig{Backends: addrs, MaxRetries: 2}
		}
		cfg.Pool.FullFrames = v.full
		var sinks []*collectSink
		if v.shard > 0 {
			for i := 0; i < v.shard; i++ {
				s := &collectSink{}
				sinks = append(sinks, s)
				cfg.ShardSinks = append(cfg.ShardSinks, s)
			}
		} else {
			s := &collectSink{}
			sinks = append(sinks, s)
			cfg.Sink = s
		}
		return cfg, sinks
	}
	sunk := func(sinks []*collectSink) []metrics.EpisodeRecord {
		var all []metrics.EpisodeRecord
		for _, s := range sinks {
			all = append(all, s.records...)
		}
		sortRecords(all)
		return all
	}

	t.Run("run", func(t *testing.T) {
		baseline, err := NewRunner(base())
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			t.Run(v.name, func(t *testing.T) {
				cfg, sinks := configure(v)
				r, err := NewRunner(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Records, want.Records) {
					t.Error("records diverged from the in-process single-sink baseline")
				}
				if !reflect.DeepEqual(got.Reports, want.Reports) {
					t.Error("reports diverged from the in-process single-sink baseline")
				}
				if s := sunk(sinks); !reflect.DeepEqual(s, want.Records) {
					t.Errorf("sinks saw %d records; sorted they diverge from the baseline's %d",
						len(s), len(want.Records))
				}
			})
		}
	})

	// The new fault families (comm, actuator, localization, perception)
	// must hold the same bit-identity contract — their injectors draw
	// randomness per frame, so any draw-order drift between in-process and
	// remote execution shows up here. The windowed phantom also rides the
	// Multi/WindowedInput wrappers, pinning the LIDAR role forwarding
	// end-to-end.
	t.Run("new-families", func(t *testing.T) {
		famCfg := func() Config {
			cfg := tinyConfig(t, []InjectorSource{
				Registry("commdelay"),
				Registry("stuckthrottle"),
				Registry("gpswalk"),
				Windowed(Registry("phantomahead"), 5),
			})
			cfg.Parallelism = 4
			return cfg
		}
		baseline, err := NewRunner(famCfg())
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.Run()
		if err != nil {
			t.Fatal(err)
		}
		cfg := famCfg()
		cfg.Pool = PoolConfig{Backends: addrs, MaxRetries: 2}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Error("new-family records diverged between in-process and remote")
		}
		if !reflect.DeepEqual(got.Reports, want.Reports) {
			t.Error("new-family reports diverged between in-process and remote")
		}
	})

	for _, policy := range []adaptive.Policy{adaptive.Uniform{}, adaptive.SuccessiveHalving{}, adaptive.UCB{}} {
		acfg := AdaptiveConfig{Policy: policy, Budget: 6, RoundSize: 2}
		t.Run("adaptive-"+policy.Name(), func(t *testing.T) {
			baseline, err := NewRunner(base())
			if err != nil {
				t.Fatal(err)
			}
			want, err := baseline.RunAdaptive(context.Background(), acfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				t.Run(v.name, func(t *testing.T) {
					cfg, sinks := configure(v)
					r, err := NewRunner(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got, err := r.RunAdaptive(context.Background(), acfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Records, want.Records) {
						t.Error("adaptive records diverged from the in-process single-sink baseline")
					}
					if !reflect.DeepEqual(got.Reports, want.Reports) {
						t.Error("adaptive reports diverged from the in-process single-sink baseline")
					}
					if !reflect.DeepEqual(got.Adaptive.Rounds, want.Adaptive.Rounds) {
						t.Error("adaptive allocation diverged: the orchestrator is not schedule-independent")
					}
					if s := sunk(sinks); !reflect.DeepEqual(s, want.Records) {
						t.Error("adaptive sink records (sorted) diverged from the baseline")
					}
				})
			}
		})
	}
}
