// Package campaign orchestrates AVFI fault-injection campaigns on a
// sharded pool of persistent, session-multiplexed simulation engines: each
// engine is one simserver.Server and one simclient.Client sharing a single
// transport.Conn (and, over TCP, a single listener) for the whole campaign,
// and a worker pool opens episodes as protocol sessions on the least-loaded
// engine — episode dispatch is O(1) in connections and throughput shards
// across PoolConfig.Engines backends, the shape million-episode resilience
// sweeps need. Finished episodes stream through a results pipeline
// (incremental per-cell aggregation plus an optional RecordSink), so a
// campaign can shrink per-episode retention to a small fixed-size
// statistics digest instead of full records (Config.DiscardRecords).
//
// Scenarios come from either the classic flat grid (injectors x missions x
// repetitions) or a ScenarioMatrix crossing weather, traffic density, AEB
// and windowed fault activation with the injector columns. Either way a
// campaign is a pure function of its configuration: missions, episode seeds
// and injector randomness all derive from Config.Seed, so every figure in
// EXPERIMENTS.md regenerates bit-identically — at any pool size, on either
// transport, with or without streaming.
package campaign

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/telemetry"
	"github.com/avfi/avfi/internal/world"
)

// InjectorSource names and constructs one injector column of a campaign.
type InjectorSource struct {
	// Name labels the column in reports.
	Name string
	// New builds a fresh (stateful) instance per episode. When nil, Name
	// is resolved through the fault registry.
	New func() interface{}
	// InjectionFrame is when the fault activates (frames); 0 means the
	// fault is active from episode start. Used for TTV accounting.
	InjectionFrame int
}

// Registry resolves a registered injector name into a source.
func Registry(name string) InjectorSource { return InjectorSource{Name: name} }

// Config parameterizes a campaign.
type Config struct {
	// World selects the town and camera.
	World sim.WorldConfig
	// Agent provides the system under test.
	Agent AgentSource
	// Injectors are the campaign columns (include fault.NoopName for the
	// baseline bar). Mutually exclusive with Matrix.
	Injectors []InjectorSource
	// Matrix, when set, replaces the flat injector sweep with a scenario
	// matrix crossing weather, density, AEB and activation frames with the
	// injector columns. The per-episode Weather/NumNPCs/NumPedestrians/
	// EnableAEB fields below are ignored in favor of each cell's values.
	Matrix *ScenarioMatrix
	// Missions is the number of distinct navigation scenarios.
	Missions int
	// Repetitions is how many seeds run per (mission, injector).
	Repetitions int
	// MinMissionDistM filters mission endpoints by straight-line distance.
	MinMissionDistM float64
	// NumNPCs and NumPedestrians populate each episode.
	NumNPCs        int
	NumPedestrians int
	// Weather applies to every episode.
	Weather world.Weather
	// EnableAEB installs the independent emergency-braking safety monitor
	// in every episode's client stack.
	EnableAEB bool
	// UseTCP runs episodes over loopback TCP instead of the in-proc pipe.
	UseTCP bool
	// Parallelism bounds concurrent episodes (0 = NumCPU).
	Parallelism int
	// Pool shards the campaign across persistent engines and bounds
	// per-episode retry after transient failures; the zero value runs the
	// classic single engine with no retries.
	Pool PoolConfig
	// Sink, when non-nil, receives every episode record as it completes
	// (completion order, from a single aggregation goroutine). Combine with
	// DiscardRecords for campaigns too large to retain in memory; see
	// NewJSONLSink.
	Sink RecordSink
	// ShardSinks, when non-empty, shards the streaming results pipeline:
	// one aggregation goroutine and one RecordSink per entry, with scenario
	// cells routed to shards round-robin in cell order. Each shard streams
	// a disjoint slice of the campaign to its own sink (typically one JSONL
	// log per engine — see cmd/avfi's -stream-records directory mode), so
	// the single aggregation goroutine stops being the throughput ceiling;
	// MergeRecordsJSONL reassembles the canonical single log. Mutually
	// exclusive with Sink. Each sink sees only its own shard's records, in
	// that shard's completion order.
	ShardSinks []RecordSink
	// Progress, when non-nil, is called after each episode is folded into
	// its cell's aggregate, with the cell label, episodes aggregated so
	// far, and the cell's Welford running VPK mean/stddev — the live
	// per-cell signal adaptive sampling hooks into. Called from the cell's
	// aggregation goroutine: one cell's updates are ordered, but with
	// ShardSinks different cells' shards call concurrently, so the hook
	// must be safe for concurrent use. Keep it fast.
	Progress func(cell string, episodes int, meanVPK, stdVPK float64)
	// ProgressV2, when non-nil, is called at the same points as Progress
	// (and under the same concurrency contract) with the full per-cell
	// running aggregate — violation tallies alongside the Welford VPK
	// statistics. Both hooks may be set; episodes seeded via Resume fire
	// neither.
	ProgressV2 func(CellProgress)
	// Resume seeds the campaign with episodes recorded by a prior partial
	// run, already materialized in memory (e.g. via LoadRecordsJSONL).
	// Their (cell, mission, repetition) slots are not re-dispatched; their
	// records are folded into reports — and retained, unless
	// DiscardRecords — but not re-sent to Sink, and adaptive posteriors
	// start from them. Records for columns or slots outside this
	// campaign's grid are ignored; duplicate slots keep the first record.
	// Prefer ResumeFrom for large logs.
	Resume []metrics.EpisodeRecord
	// ResumeFrom streams resume records instead of materializing them:
	// same semantics as Resume, but the records are read one at a time
	// (typically from OpenRecordsPath over a log file or shard directory),
	// so with DiscardRecords resume memory is O(1) in campaign size — the
	// skip set tracks only slot keys, never records. Mutually exclusive
	// with Resume. The runner drains the source before dispatching; the
	// caller still owns any underlying files (see RecordStream.Close).
	ResumeFrom RecordSource
	// SlowEpisode, when positive, is the wall-clock duration above which a
	// finished episode is logged as a warning (with its cell, mission,
	// repetition and engine) through the telemetry logger — the first place
	// to look when a campaign's throughput sags. 0 disables the warning.
	SlowEpisode time.Duration
	// DiscardRecords drops records after streaming aggregation:
	// ResultSet.Records stays nil, and instead of full EpisodeRecords
	// (violation lists and label strings) the campaign retains only each
	// episode's fixed-size statistics digest — the ~64 bytes per episode
	// the reports' exact quantiles require. Reports are built incrementally
	// and match the retained path exactly.
	DiscardRecords bool
	// Seed drives all campaign randomness.
	Seed uint64

	// fleet, when set, runs the campaign on a Service's shared engine pool
	// instead of starting (and tearing down) its own: dispatch is gated
	// round-robin across the fleet's active campaigns (see fairGate), and
	// the pool outlives this campaign. Set only by Service.Submit.
	fleet *sharedFleet
	// fleetID labels this campaign's dispatches at the fleet's fairness
	// gate (and its per-campaign telemetry series).
	fleetID string

	// testFactoryWrap, when set (tests only), wraps each engine's episode
	// factory — the hook fault-tolerance tests use to inject transient
	// backend failures.
	testFactoryWrap func(simserver.EpisodeFactory) simserver.EpisodeFactory
	// testRunEpisode, when set (tests only), replaces episode execution
	// entirely — the hook adaptive-allocation tests use to give scenario
	// cells exactly known risk profiles without running the simulator.
	testRunEpisode func(*engine, job) (metrics.EpisodeRecord, error)
}

// CellProgress is one cell's running aggregate, delivered to
// Config.ProgressV2 after each episode is folded in.
type CellProgress struct {
	// Cell is the scenario column label.
	Cell string
	// Episodes is how many of the cell's episodes have been aggregated.
	Episodes int
	// MeanVPK and StdVPK are the Welford running per-episode VPK stats.
	MeanVPK float64
	StdVPK  float64
	// Violations is the cell's total violation count so far.
	Violations int
	// ViolationEpisodes is how many episodes had at least one violation.
	ViolationEpisodes int
}

// ViolationRate is the fraction of aggregated episodes with at least one
// violation — the risk signal adaptive policies allocate by.
func (p CellProgress) ViolationRate() float64 {
	if p.Episodes == 0 {
		return 0
	}
	return float64(p.ViolationEpisodes) / float64(p.Episodes)
}

// AgentSource supplies the driving agent: either a ready instance or a
// pretraining recipe (resolved through the process-wide cache).
type AgentSource struct {
	Agent    *agent.Agent
	Pretrain *agent.PretrainSpec
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Matrix != nil {
		if len(c.Injectors) != 0 {
			return fmt.Errorf("campaign: Matrix and Injectors are mutually exclusive")
		}
		if err := c.Matrix.Validate(); err != nil {
			return err
		}
	} else if len(c.Injectors) == 0 {
		return fmt.Errorf("campaign: no injectors")
	} else if err := validateDensity(Density{NPCs: c.NumNPCs, Pedestrians: c.NumPedestrians}); err != nil {
		return err
	}
	if c.Missions <= 0 || c.Repetitions <= 0 {
		return fmt.Errorf("campaign: missions=%d repetitions=%d must be positive", c.Missions, c.Repetitions)
	}
	if c.Pool.Engines < 0 || c.Pool.MaxRetries < 0 {
		return fmt.Errorf("campaign: pool engines=%d retries=%d must be non-negative", c.Pool.Engines, c.Pool.MaxRetries)
	}
	for i, addr := range c.Pool.Backends {
		if strings.TrimSpace(addr) == "" {
			return fmt.Errorf("campaign: pool backend %d is empty", i)
		}
	}
	if c.Sink != nil && len(c.ShardSinks) > 0 {
		return fmt.Errorf("campaign: Sink and ShardSinks are mutually exclusive")
	}
	if len(c.Resume) > 0 && c.ResumeFrom != nil {
		return fmt.Errorf("campaign: Resume and ResumeFrom are mutually exclusive")
	}
	for i, s := range c.ShardSinks {
		if s == nil {
			return fmt.Errorf("campaign: shard sink %d is nil", i)
		}
	}
	if c.Agent.Agent == nil && c.Agent.Pretrain == nil {
		return fmt.Errorf("campaign: no agent source")
	}
	sources := c.Injectors
	if c.Matrix != nil {
		sources = c.Matrix.Injectors
	}
	for i, src := range sources {
		if src.Name == "" {
			return fmt.Errorf("campaign: injector %d has no name", i)
		}
		if src.New == nil {
			if _, err := fault.Lookup(src.Name); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	return nil
}

// EngineStats describes one persistent engine's work for a campaign run.
// For pooled campaigns, ResultSet.Engine carries the pool aggregate
// (episodes summed, concurrency high-water maxed) and ResultSet.Pool the
// per-engine breakdown.
type EngineStats struct {
	// Engine is the engine's slot index in the pool (0 for single-engine
	// campaigns and for the pool aggregate).
	Engine int
	// Transport is "pipe", "tcp", or "remote" (a dialed Backends worker).
	Transport string
	// Backend is the remote worker address serving this engine slot (""
	// for in-process engines).
	Backend string `json:",omitempty"`
	// Episodes is how many sessions the engine ran to completion, counted
	// at the client end of the connection (the same for in-process and
	// remote engines): an episode counts when its EpisodeEnd reaches the
	// client. Sessions aborted by factory failures, overflow drops or a
	// dying connection are excluded, so under retry the pool aggregate
	// matches the campaign's episode count.
	Episodes int
	// MaxConcurrentSessions is the high-water mark of episodes multiplexed
	// simultaneously over the engine's connection.
	MaxConcurrentSessions int
	// FailedSessions counts sessions aborted server-side (SessionError).
	FailedSessions int
	// Dead reports the engine's backend was condemned (connection lost or
	// Serve loop exited) during the campaign.
	Dead bool
	// Replaced reports the pool swapped a fresh engine into this dead
	// engine's slot. Dead && !Replaced means the slot stayed out of
	// service (replacement budget exhausted).
	Replaced bool
}

// ResultSet is a finished campaign.
type ResultSet struct {
	// Records holds every episode in deterministic order (nil when
	// Config.DiscardRecords streamed them instead of retaining them).
	Records []metrics.EpisodeRecord
	// Reports aggregates per scenario column (injector, or matrix-cell
	// label), in the configured column order.
	Reports []metrics.Report
	// Engine reports the engine pool's aggregate work.
	Engine EngineStats
	// Pool reports the sharded engine pool in detail: per-engine stats,
	// episode retries, and backend replacements.
	Pool PoolStats
	// Adaptive reports the orchestrator's round-by-round allocation when
	// the campaign ran via RunAdaptive (nil for exhaustive sweeps).
	Adaptive *AdaptiveStats `json:",omitempty"`
}

// ReportFor returns the report for an injector name.
func (rs *ResultSet) ReportFor(name string) (metrics.Report, bool) {
	for _, r := range rs.Reports {
		if r.Injector == name {
			return r, true
		}
	}
	return metrics.Report{}, false
}

// runCell is one resolved scenario column: an injector plus the episode
// conditions it runs under. Legacy flat campaigns have one cell per
// injector keyed by the bare injector name (preserving historical seed
// derivation); matrix campaigns have one cell per matrix point keyed by the
// cell label.
type runCell struct {
	src     InjectorSource
	key     string
	weather world.Weather
	npcs    int
	peds    int
	aeb     bool
}

// Runner executes campaigns over one world and agent.
type Runner struct {
	cfg   Config
	world *sim.World
	agent *agent.Agent
	// missions are the sampled (from, to) scenarios.
	missions [][2]world.NodeID
	// cells are the resolved scenario columns.
	cells []runCell
	// backendSeq drives the round-robin rotation over Pool.Backends.
	backendSeq atomic.Uint64
	// worldHash fingerprints cfg.World for the dial-time handshake.
	worldHash uint64
	// status is the live progress snapshot behind Runner.Status (status.go).
	status runnerStatus
}

// NewRunner builds the world, resolves the agent (training it on first use
// if a pretrain spec is given), and samples the missions.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	a := cfg.Agent.Agent
	if a == nil {
		a, err = agent.Pretrained(w, *cfg.Agent.Pretrain)
		if err != nil {
			return nil, err
		}
	}
	r := &Runner{cfg: cfg, world: w, agent: a, worldHash: cfg.World.Hash()}
	if cfg.Matrix != nil {
		for _, c := range cfg.Matrix.Cells() {
			r.cells = append(r.cells, runCell{
				src:     c.Injector,
				key:     c.Label(),
				weather: c.Weather,
				npcs:    c.Density.NPCs,
				peds:    c.Density.Pedestrians,
				aeb:     c.AEB,
			})
		}
	} else {
		for _, src := range cfg.Injectors {
			r.cells = append(r.cells, runCell{
				src:     src,
				key:     src.Name,
				weather: cfg.Weather,
				npcs:    cfg.NumNPCs,
				peds:    cfg.NumPedestrians,
				aeb:     cfg.EnableAEB,
			})
		}
	}

	minDist := cfg.MinMissionDistM
	if minDist == 0 {
		minDist = 150
	}
	missionStream := rng.New(cfg.Seed).Split("missions")
	for m := 0; m < cfg.Missions; m++ {
		from, to, err := w.Town().RandomMission(missionStream.SplitN(uint64(m)), minDist)
		if err != nil {
			return nil, fmt.Errorf("campaign: mission %d: %w", m, err)
		}
		r.missions = append(r.missions, [2]world.NodeID{from, to})
	}
	return r, nil
}

// World exposes the runner's world (for examples and diagnostics).
func (r *Runner) World() *sim.World { return r.world }

// Agent exposes the shared trained agent (clone before mutating).
func (r *Runner) Agent() *agent.Agent { return r.agent }

// Missions exposes the sampled scenarios.
func (r *Runner) Missions() [][2]world.NodeID {
	out := make([][2]world.NodeID, len(r.missions))
	copy(out, r.missions)
	return out
}

// job is one episode to run.
type job struct {
	cellIdx    int
	mission    int
	repetition int
	// enqueued is when the feed loop handed the job to the worker channel
	// (zero when telemetry is off) — the queue-wait phase span's start.
	enqueued time.Time
}

// sinkLanes resolves the configured sinks into the pipeline's lane list:
// the shard sinks when sharded, the single sink otherwise (nil for none).
func (r *Runner) sinkLanes() []RecordSink {
	if len(r.cfg.ShardSinks) > 0 {
		return r.cfg.ShardSinks
	}
	if r.cfg.Sink != nil {
		return []RecordSink{r.cfg.Sink}
	}
	return nil
}

// episodeSeed derives the deterministic seed for one job. The key is the
// scenario column label (the bare injector name for flat campaigns, which
// keeps historical suites reproducing bit-identically).
func (r *Runner) episodeSeed(key string, mission, rep int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", r.cfg.Seed, key, mission, rep)
	return h.Sum64()
}

// runEpisode executes one job as a session on the persistent engine.
func (r *Runner) runEpisode(eng *engine, j job) (metrics.EpisodeRecord, error) {
	start := time.Now()
	cell := r.cells[j.cellIdx]
	pair := r.missions[j.mission]
	seed := r.episodeSeed(cell.key, j.mission, j.repetition)

	// Instantiate the injector and slot it into every role it implements.
	inst := instantiate(cell.src)
	driver := simclient.NewFaultedDriver(r.agent.Clone(), nil, nil, nil, rng.New(seed).Split("fault"))
	if in, ok := inst.(fault.InputInjector); ok {
		driver.Input = in
	}
	if out, ok := inst.(fault.OutputInjector); ok {
		driver.Output = out
	}
	if tm, ok := inst.(fault.TimingInjector); ok {
		driver.Timing = tm
	}
	if mi, ok := inst.(fault.ModelInjector); ok {
		driver.ApplyModelFault(mi, rng.New(seed).Split("mlfault"))
	}
	if cell.aeb {
		driver.AEB = safety.NewAEB(r.world.EgoParams())
	}

	open := &proto.OpenEpisode{
		From: uint32(pair[0]), To: uint32(pair[1]),
		Seed:           seed,
		Weather:        uint8(cell.weather),
		NumNPCs:        uint16(cell.npcs),
		NumPedestrians: uint16(cell.peds),
	}
	// Full results ride the wire (WantResult), so this path is identical
	// for in-process and remote engines; the server-side stash is only a
	// fallback against a backend predating the EpisodeResult message.
	sid, wres, _, err := eng.client.RunEpisodeResult(open, driver)
	if err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: %w", cell.key, j.mission, j.repetition, err)
	}
	var res sim.Result
	if wres != nil {
		res = simclient.SimResult(wres)
	} else if stashed, ok := eng.stashedResult(sid); ok {
		res = stashed
	} else {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: session %d: %w", cell.key, j.mission, j.repetition, sid, errNoResult)
	}
	dur := time.Since(start)
	telemetry.CampaignEpisodes.Inc()
	telemetry.EpisodeSeconds.Observe(dur.Seconds())
	if r.cfg.SlowEpisode > 0 && dur > r.cfg.SlowEpisode {
		telemetry.Warnf("campaign: slow episode: cell=%s mission=%d rep=%d engine=%d (%s) took %s (threshold %s)",
			cell.key, j.mission, j.repetition, eng.id, eng.desc(), dur.Round(time.Millisecond), r.cfg.SlowEpisode)
	}
	r.noteEpisode(j.cellIdx, dur)
	injTime := float64(cell.src.InjectionFrame) * sim.Dt
	return metrics.FromSimResult(cell.key, j.mission, j.repetition, seed, res, injTime), nil
}

// instantiate builds the injector instance for one episode.
func instantiate(src InjectorSource) interface{} {
	if src.New != nil {
		return src.New()
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		// Validate() checked registration; this is unreachable.
		panic(err)
	}
	return spec.New()
}

// Instantiate builds one injector instance from a source, resolving
// registry names; exported for tools and examples that drive episodes
// outside the campaign runner.
func Instantiate(src InjectorSource) (interface{}, error) {
	if src.New != nil {
		return src.New(), nil
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		return nil, err
	}
	return spec.New(), nil
}
