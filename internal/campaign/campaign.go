// Package campaign orchestrates AVFI fault-injection campaigns on a
// persistent, session-multiplexed simulation engine: one simserver.Server
// and one simclient.Client share a single transport.Conn (and, over TCP, a
// single listener) for the whole campaign, and a worker pool opens episodes
// as protocol sessions — episode dispatch is O(1) in connections, the
// throughput shape thousands-of-episodes resilience sweeps need.
//
// Scenarios come from either the classic flat grid (injectors x missions x
// repetitions) or a ScenarioMatrix crossing weather, traffic density, AEB
// and windowed fault activation with the injector columns. Either way a
// campaign is a pure function of its configuration: missions, episode seeds
// and injector randomness all derive from Config.Seed, so every figure in
// EXPERIMENTS.md regenerates bit-identically.
package campaign

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

// InjectorSource names and constructs one injector column of a campaign.
type InjectorSource struct {
	// Name labels the column in reports.
	Name string
	// New builds a fresh (stateful) instance per episode. When nil, Name
	// is resolved through the fault registry.
	New func() interface{}
	// InjectionFrame is when the fault activates (frames); 0 means the
	// fault is active from episode start. Used for TTV accounting.
	InjectionFrame int
}

// Registry resolves a registered injector name into a source.
func Registry(name string) InjectorSource { return InjectorSource{Name: name} }

// Config parameterizes a campaign.
type Config struct {
	// World selects the town and camera.
	World sim.WorldConfig
	// Agent provides the system under test.
	Agent AgentSource
	// Injectors are the campaign columns (include fault.NoopName for the
	// baseline bar). Mutually exclusive with Matrix.
	Injectors []InjectorSource
	// Matrix, when set, replaces the flat injector sweep with a scenario
	// matrix crossing weather, density, AEB and activation frames with the
	// injector columns. The per-episode Weather/NumNPCs/NumPedestrians/
	// EnableAEB fields below are ignored in favor of each cell's values.
	Matrix *ScenarioMatrix
	// Missions is the number of distinct navigation scenarios.
	Missions int
	// Repetitions is how many seeds run per (mission, injector).
	Repetitions int
	// MinMissionDistM filters mission endpoints by straight-line distance.
	MinMissionDistM float64
	// NumNPCs and NumPedestrians populate each episode.
	NumNPCs        int
	NumPedestrians int
	// Weather applies to every episode.
	Weather world.Weather
	// EnableAEB installs the independent emergency-braking safety monitor
	// in every episode's client stack.
	EnableAEB bool
	// UseTCP runs episodes over loopback TCP instead of the in-proc pipe.
	UseTCP bool
	// Parallelism bounds concurrent episodes (0 = NumCPU).
	Parallelism int
	// Seed drives all campaign randomness.
	Seed uint64
}

// AgentSource supplies the driving agent: either a ready instance or a
// pretraining recipe (resolved through the process-wide cache).
type AgentSource struct {
	Agent    *agent.Agent
	Pretrain *agent.PretrainSpec
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Matrix != nil {
		if len(c.Injectors) != 0 {
			return fmt.Errorf("campaign: Matrix and Injectors are mutually exclusive")
		}
		if err := c.Matrix.Validate(); err != nil {
			return err
		}
	} else if len(c.Injectors) == 0 {
		return fmt.Errorf("campaign: no injectors")
	} else if err := validateDensity(Density{NPCs: c.NumNPCs, Pedestrians: c.NumPedestrians}); err != nil {
		return err
	}
	if c.Missions <= 0 || c.Repetitions <= 0 {
		return fmt.Errorf("campaign: missions=%d repetitions=%d must be positive", c.Missions, c.Repetitions)
	}
	if c.Agent.Agent == nil && c.Agent.Pretrain == nil {
		return fmt.Errorf("campaign: no agent source")
	}
	sources := c.Injectors
	if c.Matrix != nil {
		sources = c.Matrix.Injectors
	}
	for i, src := range sources {
		if src.Name == "" {
			return fmt.Errorf("campaign: injector %d has no name", i)
		}
		if src.New == nil {
			if _, err := fault.Lookup(src.Name); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	return nil
}

// EngineStats describes the persistent engine's work for one campaign run.
type EngineStats struct {
	// Transport is "pipe" or "tcp".
	Transport string
	// Episodes is how many sessions the engine served.
	Episodes int
	// MaxConcurrentSessions is the high-water mark of episodes multiplexed
	// simultaneously over the campaign's single connection.
	MaxConcurrentSessions int
}

// ResultSet is a finished campaign.
type ResultSet struct {
	// Records holds every episode in deterministic order.
	Records []metrics.EpisodeRecord
	// Reports aggregates per scenario column (injector, or matrix-cell
	// label), in the configured column order.
	Reports []metrics.Report
	// Engine reports how the persistent engine ran the campaign.
	Engine EngineStats
}

// ReportFor returns the report for an injector name.
func (rs *ResultSet) ReportFor(name string) (metrics.Report, bool) {
	for _, r := range rs.Reports {
		if r.Injector == name {
			return r, true
		}
	}
	return metrics.Report{}, false
}

// runCell is one resolved scenario column: an injector plus the episode
// conditions it runs under. Legacy flat campaigns have one cell per
// injector keyed by the bare injector name (preserving historical seed
// derivation); matrix campaigns have one cell per matrix point keyed by the
// cell label.
type runCell struct {
	src     InjectorSource
	key     string
	weather world.Weather
	npcs    int
	peds    int
	aeb     bool
}

// Runner executes campaigns over one world and agent.
type Runner struct {
	cfg   Config
	world *sim.World
	agent *agent.Agent
	// missions are the sampled (from, to) scenarios.
	missions [][2]world.NodeID
	// cells are the resolved scenario columns.
	cells []runCell
}

// NewRunner builds the world, resolves the agent (training it on first use
// if a pretrain spec is given), and samples the missions.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	a := cfg.Agent.Agent
	if a == nil {
		a, err = agent.Pretrained(w, *cfg.Agent.Pretrain)
		if err != nil {
			return nil, err
		}
	}
	r := &Runner{cfg: cfg, world: w, agent: a}
	if cfg.Matrix != nil {
		for _, c := range cfg.Matrix.Cells() {
			r.cells = append(r.cells, runCell{
				src:     c.Injector,
				key:     c.Label(),
				weather: c.Weather,
				npcs:    c.Density.NPCs,
				peds:    c.Density.Pedestrians,
				aeb:     c.AEB,
			})
		}
	} else {
		for _, src := range cfg.Injectors {
			r.cells = append(r.cells, runCell{
				src:     src,
				key:     src.Name,
				weather: cfg.Weather,
				npcs:    cfg.NumNPCs,
				peds:    cfg.NumPedestrians,
				aeb:     cfg.EnableAEB,
			})
		}
	}

	minDist := cfg.MinMissionDistM
	if minDist == 0 {
		minDist = 150
	}
	missionStream := rng.New(cfg.Seed).Split("missions")
	for m := 0; m < cfg.Missions; m++ {
		from, to, err := w.Town().RandomMission(missionStream.SplitN(uint64(m)), minDist)
		if err != nil {
			return nil, fmt.Errorf("campaign: mission %d: %w", m, err)
		}
		r.missions = append(r.missions, [2]world.NodeID{from, to})
	}
	return r, nil
}

// World exposes the runner's world (for examples and diagnostics).
func (r *Runner) World() *sim.World { return r.world }

// Agent exposes the shared trained agent (clone before mutating).
func (r *Runner) Agent() *agent.Agent { return r.agent }

// Missions exposes the sampled scenarios.
func (r *Runner) Missions() [][2]world.NodeID {
	out := make([][2]world.NodeID, len(r.missions))
	copy(out, r.missions)
	return out
}

// job is one episode to run.
type job struct {
	cellIdx    int
	mission    int
	repetition int
}

// Run executes the full sweep on a persistent engine and aggregates
// reports: one server, one client and one connection (plus, over TCP, one
// listener) carry every episode of the campaign as multiplexed sessions.
func (r *Runner) Run() (*ResultSet, error) {
	jobs := make([]job, 0, len(r.cells)*len(r.missions)*r.cfg.Repetitions)
	for i := range r.cells {
		for m := range r.missions {
			for rep := 0; rep < r.cfg.Repetitions; rep++ {
				jobs = append(jobs, job{cellIdx: i, mission: m, repetition: rep})
			}
		}
	}

	parallelism := r.cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}

	eng, err := r.startEngine()
	if err != nil {
		return nil, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		records  []metrics.EpisodeRecord
		firstErr error
	)
	jobCh := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				rec, err := r.runEpisode(eng, j)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					// Only successful episodes feed the aggregates; a
					// zero-value record would silently pollute them.
					records = append(records, rec)
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	stats := eng.stats()
	if err := eng.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic order regardless of scheduling.
	sort.Slice(records, func(a, b int) bool {
		ra, rb := records[a], records[b]
		if ra.Injector != rb.Injector {
			return ra.Injector < rb.Injector
		}
		if ra.Mission != rb.Mission {
			return ra.Mission < rb.Mission
		}
		return ra.Repetition < rb.Repetition
	})

	rs := &ResultSet{Records: records, Engine: stats}
	grouped := metrics.GroupByInjector(records)
	for _, c := range r.cells {
		rs.Reports = append(rs.Reports, metrics.BuildReport(c.key, grouped[c.key]))
	}
	return rs, nil
}

// episodeSeed derives the deterministic seed for one job. The key is the
// scenario column label (the bare injector name for flat campaigns, which
// keeps historical suites reproducing bit-identically).
func (r *Runner) episodeSeed(key string, mission, rep int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", r.cfg.Seed, key, mission, rep)
	return h.Sum64()
}

// runEpisode executes one job as a session on the persistent engine.
func (r *Runner) runEpisode(eng *engine, j job) (metrics.EpisodeRecord, error) {
	cell := r.cells[j.cellIdx]
	pair := r.missions[j.mission]
	seed := r.episodeSeed(cell.key, j.mission, j.repetition)

	// Instantiate the injector and slot it into every role it implements.
	inst := instantiate(cell.src)
	driver := simclient.NewFaultedDriver(r.agent.Clone(), nil, nil, nil, rng.New(seed).Split("fault"))
	if in, ok := inst.(fault.InputInjector); ok {
		driver.Input = in
	}
	if out, ok := inst.(fault.OutputInjector); ok {
		driver.Output = out
	}
	if tm, ok := inst.(fault.TimingInjector); ok {
		driver.Timing = tm
	}
	if mi, ok := inst.(fault.ModelInjector); ok {
		driver.ApplyModelFault(mi, rng.New(seed).Split("mlfault"))
	}
	if cell.aeb {
		driver.AEB = safety.NewAEB(r.world.EgoParams())
	}

	open := &proto.OpenEpisode{
		From: uint32(pair[0]), To: uint32(pair[1]),
		Seed:           seed,
		Weather:        uint8(cell.weather),
		NumNPCs:        uint16(cell.npcs),
		NumPedestrians: uint16(cell.peds),
	}
	sid, _, err := eng.client.RunEpisode(open, driver)
	if err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: %w", cell.key, j.mission, j.repetition, err)
	}
	res, ok := eng.server.Result(sid)
	if !ok {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: session %d finished without a server result", cell.key, j.mission, j.repetition, sid)
	}
	injTime := float64(cell.src.InjectionFrame) * sim.Dt
	return metrics.FromSimResult(cell.key, j.mission, j.repetition, seed, res, injTime), nil
}

// instantiate builds the injector instance for one episode.
func instantiate(src InjectorSource) interface{} {
	if src.New != nil {
		return src.New()
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		// Validate() checked registration; this is unreachable.
		panic(err)
	}
	return spec.New()
}

// Instantiate builds one injector instance from a source, resolving
// registry names; exported for tools and examples that drive episodes
// outside the campaign runner.
func Instantiate(src InjectorSource) (interface{}, error) {
	if src.New != nil {
		return src.New(), nil
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		return nil, err
	}
	return spec.New(), nil
}

// engine is a campaign's persistent simulation engine: one multiplexed
// server, one session client, and exactly one connection between them for
// the whole sweep (plus one listener when running over TCP).
type engine struct {
	server     *simserver.Server
	client     *simclient.Client
	serverConn transport.Conn
	listener   *transport.Listener
	serveCh    chan error
	transport  string
}

// startEngine wires the server and client over the configured transport and
// starts serving sessions.
func (r *Runner) startEngine() (*engine, error) {
	factory := func(open *proto.OpenEpisode) (*sim.Episode, error) {
		return r.world.NewEpisode(sim.EpisodeConfig{
			From: world.NodeID(open.From), To: world.NodeID(open.To),
			Seed:           open.Seed,
			Weather:        world.Weather(open.Weather),
			NumNPCs:        int(open.NumNPCs),
			NumPedestrians: int(open.NumPedestrians),
			TimeoutSec:     open.TimeoutSec,
			GoalRadius:     open.GoalRadius,
		})
	}
	eng := &engine{server: simserver.NewServer(factory), serveCh: make(chan error, 1)}

	var clientConn transport.Conn
	if r.cfg.UseTCP {
		eng.transport = "tcp"
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		eng.listener = l
		acceptCh := make(chan transport.Conn, 1)
		acceptErr := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			acceptCh <- c
		}()
		clientConn, err = transport.Dial(l.Addr())
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
		select {
		case eng.serverConn = <-acceptCh:
		case err := <-acceptErr:
			clientConn.Close()
			l.Close()
			return nil, fmt.Errorf("campaign: %w", err)
		}
	} else {
		eng.transport = "pipe"
		eng.serverConn, clientConn = transport.Pipe()
	}

	go func() { eng.serveCh <- eng.server.Serve(eng.serverConn) }()
	eng.client = simclient.NewClient(clientConn)
	return eng, nil
}

// stats snapshots the engine's work so far.
func (e *engine) stats() EngineStats {
	return EngineStats{
		Transport:             e.transport,
		Episodes:              e.server.TotalSessions(),
		MaxConcurrentSessions: e.server.MaxConcurrent(),
	}
}

// close tears the engine down: closing the client's connection is the
// shutdown signal the server drains on.
func (e *engine) close() error {
	e.client.Close()
	err := <-e.serveCh
	e.serverConn.Close()
	if e.listener != nil {
		e.listener.Close()
	}
	return err
}
