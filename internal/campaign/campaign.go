// Package campaign orchestrates AVFI fault-injection campaigns: it sweeps
// injectors over navigation missions and repetitions, runs each episode
// through the client/server protocol with the fault pipeline installed,
// and aggregates the paper's resilience metrics per injector.
//
// A campaign is a pure function of its configuration: missions, episode
// seeds and injector randomness all derive from Config.Seed, so every
// figure in EXPERIMENTS.md regenerates bit-identically.
package campaign

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/safety"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simclient"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/transport"
	"github.com/avfi/avfi/internal/world"
)

// InjectorSource names and constructs one injector column of a campaign.
type InjectorSource struct {
	// Name labels the column in reports.
	Name string
	// New builds a fresh (stateful) instance per episode. When nil, Name
	// is resolved through the fault registry.
	New func() interface{}
	// InjectionFrame is when the fault activates (frames); 0 means the
	// fault is active from episode start. Used for TTV accounting.
	InjectionFrame int
}

// Registry resolves a registered injector name into a source.
func Registry(name string) InjectorSource { return InjectorSource{Name: name} }

// Config parameterizes a campaign.
type Config struct {
	// World selects the town and camera.
	World sim.WorldConfig
	// Agent provides the system under test.
	Agent AgentSource
	// Injectors are the campaign columns (include fault.NoopName for the
	// baseline bar).
	Injectors []InjectorSource
	// Missions is the number of distinct navigation scenarios.
	Missions int
	// Repetitions is how many seeds run per (mission, injector).
	Repetitions int
	// MinMissionDistM filters mission endpoints by straight-line distance.
	MinMissionDistM float64
	// NumNPCs and NumPedestrians populate each episode.
	NumNPCs        int
	NumPedestrians int
	// Weather applies to every episode.
	Weather world.Weather
	// EnableAEB installs the independent emergency-braking safety monitor
	// in every episode's client stack.
	EnableAEB bool
	// UseTCP runs episodes over loopback TCP instead of the in-proc pipe.
	UseTCP bool
	// Parallelism bounds concurrent episodes (0 = NumCPU).
	Parallelism int
	// Seed drives all campaign randomness.
	Seed uint64
}

// AgentSource supplies the driving agent: either a ready instance or a
// pretraining recipe (resolved through the process-wide cache).
type AgentSource struct {
	Agent    *agent.Agent
	Pretrain *agent.PretrainSpec
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Injectors) == 0 {
		return fmt.Errorf("campaign: no injectors")
	}
	if c.Missions <= 0 || c.Repetitions <= 0 {
		return fmt.Errorf("campaign: missions=%d repetitions=%d must be positive", c.Missions, c.Repetitions)
	}
	if c.Agent.Agent == nil && c.Agent.Pretrain == nil {
		return fmt.Errorf("campaign: no agent source")
	}
	for i, src := range c.Injectors {
		if src.Name == "" {
			return fmt.Errorf("campaign: injector %d has no name", i)
		}
		if src.New == nil {
			if _, err := fault.Lookup(src.Name); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	return nil
}

// ResultSet is a finished campaign.
type ResultSet struct {
	// Records holds every episode in deterministic order.
	Records []metrics.EpisodeRecord
	// Reports aggregates per injector, in the configured injector order.
	Reports []metrics.Report
}

// ReportFor returns the report for an injector name.
func (rs *ResultSet) ReportFor(name string) (metrics.Report, bool) {
	for _, r := range rs.Reports {
		if r.Injector == name {
			return r, true
		}
	}
	return metrics.Report{}, false
}

// Runner executes campaigns over one world and agent.
type Runner struct {
	cfg   Config
	world *sim.World
	agent *agent.Agent
	// missions are the sampled (from, to) scenarios.
	missions [][2]world.NodeID
}

// NewRunner builds the world, resolves the agent (training it on first use
// if a pretrain spec is given), and samples the missions.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	a := cfg.Agent.Agent
	if a == nil {
		a, err = agent.Pretrained(w, *cfg.Agent.Pretrain)
		if err != nil {
			return nil, err
		}
	}
	r := &Runner{cfg: cfg, world: w, agent: a}

	minDist := cfg.MinMissionDistM
	if minDist == 0 {
		minDist = 150
	}
	missionStream := rng.New(cfg.Seed).Split("missions")
	for m := 0; m < cfg.Missions; m++ {
		from, to, err := w.Town().RandomMission(missionStream.SplitN(uint64(m)), minDist)
		if err != nil {
			return nil, fmt.Errorf("campaign: mission %d: %w", m, err)
		}
		r.missions = append(r.missions, [2]world.NodeID{from, to})
	}
	return r, nil
}

// World exposes the runner's world (for examples and diagnostics).
func (r *Runner) World() *sim.World { return r.world }

// Agent exposes the shared trained agent (clone before mutating).
func (r *Runner) Agent() *agent.Agent { return r.agent }

// Missions exposes the sampled scenarios.
func (r *Runner) Missions() [][2]world.NodeID {
	out := make([][2]world.NodeID, len(r.missions))
	copy(out, r.missions)
	return out
}

// job is one episode to run.
type job struct {
	injectorIdx int
	mission     int
	repetition  int
}

// Run executes the full sweep and aggregates reports.
func (r *Runner) Run() (*ResultSet, error) {
	jobs := make([]job, 0, len(r.cfg.Injectors)*len(r.missions)*r.cfg.Repetitions)
	for i := range r.cfg.Injectors {
		for m := range r.missions {
			for rep := 0; rep < r.cfg.Repetitions; rep++ {
				jobs = append(jobs, job{injectorIdx: i, mission: m, repetition: rep})
			}
		}
	}

	parallelism := r.cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		records  []metrics.EpisodeRecord
		firstErr error
	)
	jobCh := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				rec, err := r.runEpisode(j)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				records = append(records, rec)
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic order regardless of scheduling.
	sort.Slice(records, func(a, b int) bool {
		ra, rb := records[a], records[b]
		if ra.Injector != rb.Injector {
			return ra.Injector < rb.Injector
		}
		if ra.Mission != rb.Mission {
			return ra.Mission < rb.Mission
		}
		return ra.Repetition < rb.Repetition
	})

	rs := &ResultSet{Records: records}
	grouped := metrics.GroupByInjector(records)
	for _, src := range r.cfg.Injectors {
		rs.Reports = append(rs.Reports, metrics.BuildReport(src.Name, grouped[src.Name]))
	}
	return rs, nil
}

// episodeSeed derives the deterministic seed for one job.
func (r *Runner) episodeSeed(injName string, mission, rep int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", r.cfg.Seed, injName, mission, rep)
	return h.Sum64()
}

// runEpisode executes one job end to end.
func (r *Runner) runEpisode(j job) (metrics.EpisodeRecord, error) {
	src := r.cfg.Injectors[j.injectorIdx]
	pair := r.missions[j.mission]
	seed := r.episodeSeed(src.Name, j.mission, j.repetition)

	episode, err := r.world.NewEpisode(sim.EpisodeConfig{
		From: pair[0], To: pair[1],
		Seed:           seed,
		Weather:        r.cfg.Weather,
		NumNPCs:        r.cfg.NumNPCs,
		NumPedestrians: r.cfg.NumPedestrians,
	})
	if err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: %w", src.Name, j.mission, j.repetition, err)
	}

	// Instantiate the injector and slot it into every role it implements.
	inst := instantiate(src)
	driver := simclient.NewFaultedDriver(r.agent.Clone(), nil, nil, nil, rng.New(seed).Split("fault"))
	if in, ok := inst.(fault.InputInjector); ok {
		driver.Input = in
	}
	if out, ok := inst.(fault.OutputInjector); ok {
		driver.Output = out
	}
	if tm, ok := inst.(fault.TimingInjector); ok {
		driver.Timing = tm
	}
	if mi, ok := inst.(fault.ModelInjector); ok {
		driver.ApplyModelFault(mi, rng.New(seed).Split("mlfault"))
	}
	if r.cfg.EnableAEB {
		driver.AEB = safety.NewAEB(episode.EgoParams())
	}

	res, err := r.execute(episode, driver)
	if err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: %s m%d r%d: %w", src.Name, j.mission, j.repetition, err)
	}
	injTime := float64(src.InjectionFrame) * sim.Dt
	return metrics.FromSimResult(src.Name, j.mission, j.repetition, seed, res, injTime), nil
}

// instantiate builds the injector instance for one episode.
func instantiate(src InjectorSource) interface{} {
	if src.New != nil {
		return src.New()
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		// Validate() checked registration; this is unreachable.
		panic(err)
	}
	return spec.New()
}

// Instantiate builds one injector instance from a source, resolving
// registry names; exported for tools and examples that drive episodes
// outside the campaign runner.
func Instantiate(src InjectorSource) (interface{}, error) {
	if src.New != nil {
		return src.New(), nil
	}
	spec, err := fault.Lookup(src.Name)
	if err != nil {
		return nil, err
	}
	return spec.New(), nil
}

// execute runs one episode over the configured transport.
func (r *Runner) execute(episode *sim.Episode, driver simclient.Driver) (sim.Result, error) {
	if r.cfg.UseTCP {
		return r.executeTCP(episode, driver)
	}
	serverConn, clientConn := transport.Pipe()
	defer serverConn.Close()
	defer clientConn.Close()

	var (
		wg        sync.WaitGroup
		res       sim.Result
		serverErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, serverErr = simserver.ServeEpisode(episode, serverConn)
	}()
	if _, err := simclient.RunEpisode(clientConn, driver); err != nil {
		return sim.Result{}, err
	}
	wg.Wait()
	if serverErr != nil {
		return sim.Result{}, serverErr
	}
	return res, nil
}

func (r *Runner) executeTCP(episode *sim.Episode, driver simclient.Driver) (sim.Result, error) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return sim.Result{}, err
	}
	defer l.Close()

	var (
		wg        sync.WaitGroup
		res       sim.Result
		serverErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		res, serverErr = simserver.ServeEpisode(episode, conn)
	}()

	clientConn, err := transport.Dial(l.Addr())
	if err != nil {
		return sim.Result{}, err
	}
	defer clientConn.Close()
	if _, err := simclient.RunEpisode(clientConn, driver); err != nil {
		return sim.Result{}, err
	}
	wg.Wait()
	if serverErr != nil {
		return sim.Result{}, serverErr
	}
	return res, nil
}
