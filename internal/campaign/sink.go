package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/telemetry"
)

// RecordSink consumes episode records as they complete, in completion
// order. The campaign funnels all records through a single aggregation
// goroutine, so implementations need not be safe for concurrent use. Close
// is called once, when the campaign ends or aborts, even after a Consume
// error — so the log's tail is flushed whether the run succeeded or not.
// (The one exception: a sink wedged inside a blocking Consume while the
// campaign aborts is abandoned after a grace period rather than allowed to
// hang the caller.)
type RecordSink interface {
	// Consume receives one finished episode.
	Consume(rec metrics.EpisodeRecord) error
	// Close flushes the sink.
	Close() error
}

// jsonlSink streams records as JSON Lines through a buffered writer.
type jsonlSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a RecordSink writing one JSON object per line to w —
// a durable per-episode log whose memory footprint is independent of
// campaign size. The caller keeps ownership of w: Close flushes buffering
// but does not close the underlying writer.
func NewJSONLSink(w io.Writer) RecordSink {
	bw := bufio.NewWriter(w)
	return &jsonlSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Consume implements RecordSink.
func (s *jsonlSink) Consume(rec metrics.EpisodeRecord) error { return s.enc.Encode(rec) }

// Close implements RecordSink.
func (s *jsonlSink) Close() error { return s.bw.Flush() }

// sinkPipeline is the campaign's streaming results path: workers push
// finished episodes to aggregation shards, each of which folds its records
// into their cells' metrics.ReportBuilders, forwards them to its own
// optional RecordSink, and (unless records are discarded) retains them for
// the ResultSet. Aggregation is incremental: with DiscardRecords the
// pipeline keeps only a fixed-size per-episode digest (exact quantiles
// need that much) instead of full records, and the durable episode log
// streams through the sinks at O(1) memory.
//
// The classic shape is one shard — one goroutine, one sink, the single
// JSONL log. Sharded campaigns (Config.ShardSinks) run one shard per sink:
// scenario cells are routed to shards round-robin in cell order, so each
// cell's builder has exactly one writer and each shard streams a disjoint
// slice of the campaign to its own log. Because records sort into a total
// schedule-independent order, MergeRecordsJSONL over the shard logs
// reproduces the single log byte-for-byte.
type sinkPipeline struct {
	shards []*sinkShard
	route  map[string]*sinkShard // cell key -> owning shard; read-only

	cells    []runCell
	builders map[string]*metrics.ReportBuilder // each written by one shard
	keep     bool
	seeded   []metrics.EpisodeRecord // resumed records retained for finish
	started  bool                    // start ran: shard goroutines own the builders

	mu         sync.Mutex
	err        error
	onErr      func(error) // called once, on the first sink failure
	progress   func(cell string, episodes int, meanVPK, stdVPK float64)
	progressV2 func(CellProgress)
}

// sinkShard is one aggregation lane: a hand-off channel, the goroutine
// draining it, and the lane's RecordSink (may be nil).
type sinkShard struct {
	p       *sinkPipeline
	ch      chan metrics.EpisodeRecord
	done    chan struct{}
	sink    RecordSink
	broken  bool // sink failed; stop writing, keep draining
	records []metrics.EpisodeRecord
}

// newSinkPipeline builds one aggregation shard per sink (a single
// sink-less shard when sinks is empty) but does not start it: the caller
// may stream resume records through seed first, then calls start. keep
// retains records for ResultSet.Records; onErr (may be nil) is notified of
// the first sink failure so the caller can stop dispatching episodes whose
// streamed records would be lost; progress and progressV2 (either may be
// nil) see each cell's running aggregate as episodes land — from the
// cell's owning shard goroutine, so updates for one cell are ordered but
// different cells may report concurrently.
func newSinkPipeline(cells []runCell, sinks []RecordSink, keep bool,
	onErr func(error), progress func(string, int, float64, float64),
	progressV2 func(CellProgress)) *sinkPipeline {
	p := &sinkPipeline{
		cells:      cells,
		builders:   make(map[string]*metrics.ReportBuilder, len(cells)),
		route:      make(map[string]*sinkShard, len(cells)),
		keep:       keep,
		onErr:      onErr,
		progress:   progress,
		progressV2: progressV2,
	}
	if len(sinks) == 0 {
		sinks = []RecordSink{nil}
	}
	for _, sink := range sinks {
		p.shards = append(p.shards, &sinkShard{
			p:    p,
			done: make(chan struct{}),
			sink: sink,
		})
	}
	// Cells route to shards round-robin in cell order: deterministic, and
	// balanced whenever cells outnumber shards.
	for _, c := range cells {
		if _, ok := p.builders[c.key]; !ok {
			p.builders[c.key] = metrics.NewReportBuilder(c.key)
			p.route[c.key] = p.shards[len(p.route)%len(p.shards)]
		}
	}
	return p
}

// seed pre-folds one record resumed from a prior partial run: it counts in
// reports and retention but is never re-sent to any sink and fires no
// progress hooks (it is not this run's work). Records arrive one at a time
// from a streaming RecordSource, so resume memory stays O(1) in campaign
// size unless retention (keep) is on. Must be called before start —
// builders and retention are still exclusively the caller's.
func (p *sinkPipeline) seed(rec metrics.EpisodeRecord) {
	if b, ok := p.builders[rec.Injector]; ok {
		b.Add(rec)
	}
	if p.keep {
		p.seeded = append(p.seeded, rec)
	}
}

// start launches the shard goroutines, handing them ownership of the
// builders; buffer sizes each hand-off channel. No seed calls may follow.
func (p *sinkPipeline) start(buffer int) {
	p.started = true
	for _, sh := range p.shards {
		sh.ch = make(chan metrics.EpisodeRecord, buffer)
		go sh.loop()
	}
}

// shardFor routes a record to its cell's owning shard. Records for keys
// outside the campaign's cells (impossible for runner-produced records)
// fall through to shard 0 so retention and the durable log never drop one.
func (p *sinkPipeline) shardFor(key string) *sinkShard {
	if sh, ok := p.route[key]; ok {
		return sh
	}
	return p.shards[0]
}

// fail records the pipeline's first sink error and notifies onErr once.
func (p *sinkPipeline) fail(err error) {
	p.mu.Lock()
	first := p.err == nil
	if first {
		p.err = err
	}
	onErr := p.onErr
	p.mu.Unlock()
	if first && onErr != nil {
		onErr(err)
	}
}

// loop drains the shard's channel until it closes, then closes the shard's
// sink — each shard goroutine owns its sink end to end, so the durable
// log's tail is flushed on the finish and abandon paths alike. It never
// blocks the campaign on a failed sink: the first Consume error anywhere
// is recorded, onErr is told (so the scheduler stops dispatching instead
// of burning episodes whose streamed records would be lost), and in-flight
// records keep draining.
func (sh *sinkShard) loop() {
	defer close(sh.done)
	p := sh.p
	for rec := range sh.ch {
		telemetry.CampaignSinkQueue.Add(-1)
		if b, ok := p.builders[rec.Injector]; ok {
			b.Add(rec)
			if p.progress != nil {
				mean, std, n := b.RunningVPK()
				p.progress(rec.Injector, n, mean, std)
			}
			if p.progressV2 != nil {
				mean, std, n := b.RunningVPK()
				violations, violEpisodes := b.RunningViolations()
				p.progressV2(CellProgress{
					Cell:              rec.Injector,
					Episodes:          n,
					MeanVPK:           mean,
					StdVPK:            std,
					Violations:        violations,
					ViolationEpisodes: violEpisodes,
				})
			}
		}
		if p.keep {
			sh.records = append(sh.records, rec)
		}
		if sh.sink != nil && !sh.broken {
			if err := sh.sink.Consume(rec); err != nil {
				sh.broken = true
				p.fail(fmt.Errorf("campaign: record sink: %w", err))
			}
		}
	}
	if sh.sink != nil {
		if err := sh.sink.Close(); err != nil {
			p.fail(fmt.Errorf("campaign: record sink: %w", err))
		}
	}
}

// consume hands one finished episode to its cell's aggregation shard. The
// hand-off aborts when ctx is cancelled, so a sink that blocks (rather
// than errors) can never wedge the campaign beyond the caller's ability to
// cancel it.
func (p *sinkPipeline) consume(ctx context.Context, rec metrics.EpisodeRecord) {
	spans := telemetry.Enabled()
	var t0 time.Time
	if spans {
		t0 = time.Now()
	}
	// The depth gauge counts the record before the hand-off so a scrape
	// never catches the shard's decrement ahead of our increment.
	telemetry.CampaignSinkQueue.Add(1)
	select {
	case p.shardFor(rec.Injector).ch <- rec:
		if spans {
			telemetry.PhaseSink.Observe(time.Since(t0).Seconds())
		}
	case <-ctx.Done():
		telemetry.CampaignSinkQueue.Add(-1)
	}
}

// abandon releases the pipeline without collecting results, giving the
// shard goroutines a bounded grace period to drain and close their sinks
// (flushing the durable logs' tails for the episodes that did finish). A
// sink wedged inside a blocking Consume exhausts the grace period and is
// left behind rather than allowed to hang the aborting campaign.
func (p *sinkPipeline) abandon() {
	if !p.started {
		// An abort before start (resume seeding or pool construction
		// failed): run the shards against empty channels so each sink is
		// still closed exactly once, honoring the RecordSink contract.
		p.start(0)
	}
	for _, sh := range p.shards {
		close(sh.ch)
	}
	deadline := time.After(5 * time.Second)
	for _, sh := range p.shards {
		select {
		case <-sh.done:
		case <-deadline:
			return
		}
	}
}

// finish closes the pipeline and returns the retained records in the
// deterministic campaign order (nil when discarded), the per-cell reports
// in configured cell order, and the first sink error (every shard has
// closed its sink by the time its done channel is signalled).
func (p *sinkPipeline) finish() ([]metrics.EpisodeRecord, []metrics.Report, error) {
	for _, sh := range p.shards {
		close(sh.ch)
	}
	records := p.seeded
	for _, sh := range p.shards {
		<-sh.done
		records = append(records, sh.records...)
	}
	// Deterministic order regardless of scheduling and sharding.
	sortRecords(records)
	var reports []metrics.Report
	for _, c := range p.cells {
		reports = append(reports, p.builders[c.key].Build())
	}
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	return records, reports, err
}

// sortRecords puts records into the campaign's deterministic,
// schedule-independent order: (column key, mission, repetition).
func sortRecords(records []metrics.EpisodeRecord) {
	sort.Slice(records, func(a, b int) bool {
		return recordLess(records[a], records[b])
	})
}

// recordLess is the canonical campaign record order — shared by sorting
// and the k-way shard merge.
func recordLess(a, b metrics.EpisodeRecord) bool {
	if a.Injector != b.Injector {
		return a.Injector < b.Injector
	}
	if a.Mission != b.Mission {
		return a.Mission < b.Mission
	}
	return a.Repetition < b.Repetition
}
