package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/avfi/avfi/internal/metrics"
)

// RecordSink consumes episode records as they complete, in completion
// order. The campaign funnels all records through a single aggregation
// goroutine, so implementations need not be safe for concurrent use. Close
// is called once, when the campaign ends or aborts, even after a Consume
// error — so the log's tail is flushed whether the run succeeded or not.
// (The one exception: a sink wedged inside a blocking Consume while the
// campaign aborts is abandoned after a grace period rather than allowed to
// hang the caller.)
type RecordSink interface {
	// Consume receives one finished episode.
	Consume(rec metrics.EpisodeRecord) error
	// Close flushes the sink.
	Close() error
}

// jsonlSink streams records as JSON Lines through a buffered writer.
type jsonlSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a RecordSink writing one JSON object per line to w —
// a durable per-episode log whose memory footprint is independent of
// campaign size. The caller keeps ownership of w: Close flushes buffering
// but does not close the underlying writer.
func NewJSONLSink(w io.Writer) RecordSink {
	bw := bufio.NewWriter(w)
	return &jsonlSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Consume implements RecordSink.
func (s *jsonlSink) Consume(rec metrics.EpisodeRecord) error { return s.enc.Encode(rec) }

// Close implements RecordSink.
func (s *jsonlSink) Close() error { return s.bw.Flush() }

// sinkPipeline is the campaign's streaming results path: workers push
// finished episodes into a channel and one aggregation goroutine folds each
// record into its cell's metrics.ReportBuilder, forwards it to the optional
// RecordSink, and (unless records are discarded) retains it for the
// ResultSet. Aggregation is incremental: with DiscardRecords the pipeline
// keeps only a fixed-size per-episode digest (exact quantiles need that
// much) instead of full records, and the durable episode log streams
// through the sink at O(1) memory.
type sinkPipeline struct {
	ch   chan metrics.EpisodeRecord
	done chan struct{}

	cells      []runCell
	builders   map[string]*metrics.ReportBuilder
	keep       bool
	records    []metrics.EpisodeRecord
	sink       RecordSink
	broken     bool // sink failed; stop writing, keep draining
	err        error
	onErr      func(error) // called once, on the first sink failure
	progress   func(cell string, episodes int, meanVPK, stdVPK float64)
	progressV2 func(CellProgress)
}

// newSinkPipeline starts the aggregation goroutine. keep retains records
// for ResultSet.Records; buffer sizes the hand-off channel; onErr (may be
// nil) is notified of the first sink failure so the caller can stop
// dispatching episodes whose streamed records would be lost; progress and
// progressV2 (either may be nil) see each cell's running aggregate as
// episodes land. seed pre-folds records resumed from a prior partial run:
// they count in reports and retention but are not re-sent to the sink and
// fire no progress hooks (they are not this run's work).
func newSinkPipeline(cells []runCell, sink RecordSink, keep bool, buffer int,
	onErr func(error), progress func(string, int, float64, float64),
	progressV2 func(CellProgress), seed []metrics.EpisodeRecord) *sinkPipeline {
	p := &sinkPipeline{
		ch:         make(chan metrics.EpisodeRecord, buffer),
		done:       make(chan struct{}),
		cells:      cells,
		builders:   make(map[string]*metrics.ReportBuilder, len(cells)),
		keep:       keep,
		sink:       sink,
		onErr:      onErr,
		progress:   progress,
		progressV2: progressV2,
	}
	for _, c := range cells {
		if _, ok := p.builders[c.key]; !ok {
			p.builders[c.key] = metrics.NewReportBuilder(c.key)
		}
	}
	// Seeding happens before the aggregation goroutine starts: builders and
	// records are still exclusively ours.
	for _, rec := range seed {
		if b, ok := p.builders[rec.Injector]; ok {
			b.Add(rec)
		}
		if keep {
			p.records = append(p.records, rec)
		}
	}
	go p.loop()
	return p
}

// loop drains the record channel until it closes, then closes the sink —
// the aggregation goroutine owns the sink end to end, so the durable log's
// tail is flushed on the finish and abandon paths alike. It never blocks
// the campaign on a failed sink: the first Consume error is recorded,
// onErr is told (so the scheduler stops dispatching instead of burning
// episodes whose streamed records would be lost), and in-flight records
// keep draining.
func (p *sinkPipeline) loop() {
	defer close(p.done)
	for rec := range p.ch {
		if b, ok := p.builders[rec.Injector]; ok {
			b.Add(rec)
			if p.progress != nil {
				mean, std, n := b.RunningVPK()
				p.progress(rec.Injector, n, mean, std)
			}
			if p.progressV2 != nil {
				mean, std, n := b.RunningVPK()
				violations, violEpisodes := b.RunningViolations()
				p.progressV2(CellProgress{
					Cell:              rec.Injector,
					Episodes:          n,
					MeanVPK:           mean,
					StdVPK:            std,
					Violations:        violations,
					ViolationEpisodes: violEpisodes,
				})
			}
		}
		if p.keep {
			p.records = append(p.records, rec)
		}
		if p.sink != nil && !p.broken {
			if err := p.sink.Consume(rec); err != nil {
				p.err = fmt.Errorf("campaign: record sink: %w", err)
				p.broken = true
				if p.onErr != nil {
					p.onErr(p.err)
				}
			}
		}
	}
	if p.sink != nil {
		if err := p.sink.Close(); err != nil && p.err == nil {
			p.err = fmt.Errorf("campaign: record sink: %w", err)
		}
	}
}

// consume hands one finished episode to the aggregation goroutine. The
// hand-off aborts when ctx is cancelled, so a sink that blocks (rather
// than errors) can never wedge the campaign beyond the caller's ability to
// cancel it.
func (p *sinkPipeline) consume(ctx context.Context, rec metrics.EpisodeRecord) {
	select {
	case p.ch <- rec:
	case <-ctx.Done():
	}
}

// abandon releases the pipeline without collecting results, giving the
// aggregation goroutine a bounded grace period to drain and close the sink
// (flushing the durable log's tail for the episodes that did finish). A
// sink wedged inside a blocking Consume exhausts the grace period and is
// left behind rather than allowed to hang the aborting campaign.
func (p *sinkPipeline) abandon() {
	close(p.ch)
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
	}
}

// finish closes the pipeline and returns the retained records in the
// deterministic campaign order (nil when discarded), the per-cell reports
// in configured cell order, and the first sink error (the aggregation
// goroutine has already closed the sink by the time done is signalled).
func (p *sinkPipeline) finish() ([]metrics.EpisodeRecord, []metrics.Report, error) {
	close(p.ch)
	<-p.done
	// Deterministic order regardless of scheduling.
	sortRecords(p.records)
	var reports []metrics.Report
	for _, c := range p.cells {
		reports = append(reports, p.builders[c.key].Build())
	}
	return p.records, reports, p.err
}

// sortRecords puts records into the campaign's deterministic,
// schedule-independent order: (column key, mission, repetition).
func sortRecords(records []metrics.EpisodeRecord) {
	sort.Slice(records, func(a, b int) bool {
		ra, rb := records[a], records[b]
		if ra.Injector != rb.Injector {
			return ra.Injector < rb.Injector
		}
		if ra.Mission != rb.Mission {
			return ra.Mission < rb.Mission
		}
		return ra.Repetition < rb.Repetition
	})
}
