// Campaign resume: the JSONL record sink is a durable per-episode log, so
// a partial campaign — killed mid-sweep, crashed mid-write — can be picked
// up where it stopped instead of re-running finished episodes. The loader
// reads the partial log; Config.Resume threads it into the runner, which
// seeds its aggregates (and, for adaptive campaigns, its posteriors) from
// the recorded episodes and dispatches only the (cell, mission,
// repetition) slots not yet on record. Episodes are pure functions of
// their seeds, so a resumed campaign finishes with results bit-identical
// to an uninterrupted run.

package campaign

import (
	"io"

	"github.com/avfi/avfi/internal/metrics"
)

// LoadRecordsJSONL reads episode records from a JSONL record sink (see
// NewJSONLSink) — the durable episode log of a partial campaign. A
// truncated or corrupt final line is tolerated and dropped (the signature
// of a crash mid-write); corruption anywhere earlier is an error.
// LoadRecords is the format-agnostic counterpart.
func LoadRecordsJSONL(r io.Reader) ([]metrics.EpisodeRecord, error) {
	return drainSource(newJSONLSource(r))
}

// pairKey identifies one episode slot of the campaign grid.
type pairKey struct {
	cell       int
	mission    int
	repetition int
}

// cellIndex maps each scenario column key to its first cell index.
func (r *Runner) cellIndex() map[string]int {
	idx := make(map[string]int, len(r.cells))
	for i, c := range r.cells {
		if _, ok := idx[c.key]; !ok {
			idx[c.key] = i
		}
	}
	return idx
}

// resumeSource resolves the configured resume input into one stream:
// Config.ResumeFrom as-is, Config.Resume through an in-memory adapter, nil
// when the campaign resumes from nothing.
func (r *Runner) resumeSource() RecordSource {
	if r.cfg.ResumeFrom != nil {
		return r.cfg.ResumeFrom
	}
	if len(r.cfg.Resume) > 0 {
		return &sliceSource{recs: r.cfg.Resume}
	}
	return nil
}

// seedResume streams the configured resume records, reconciling each
// against this campaign's grid and handing the usable ones to seedFn one
// at a time — the O(1)-memory resume path. It returns the set of slots on
// record, which pendingJobs subtracts from the sweep. Records for unknown
// columns or out-of-range slots are dropped (they belong to a different
// configuration), and duplicate slots keep the first record.
func (r *Runner) seedResume(seedFn func(metrics.EpisodeRecord)) (map[pairKey]bool, error) {
	src := r.resumeSource()
	if src == nil {
		return nil, nil
	}
	cellIdx := r.cellIndex()
	skip := make(map[pairKey]bool)
	for {
		rec, err := src.Read()
		if err == io.EOF {
			return skip, nil
		}
		if err != nil {
			return nil, err
		}
		ci, ok := cellIdx[rec.Injector]
		if !ok || rec.Mission < 0 || rec.Mission >= len(r.missions) ||
			rec.Repetition < 0 || rec.Repetition >= r.cfg.Repetitions {
			continue
		}
		k := pairKey{cell: ci, mission: rec.Mission, repetition: rec.Repetition}
		if skip[k] {
			continue
		}
		skip[k] = true
		seedFn(rec)
	}
}

// pendingJobs is the campaign's static job list minus the slots already on
// record.
func (r *Runner) pendingJobs(skip map[pairKey]bool) []job {
	jobs := r.jobs()
	if len(skip) == 0 {
		return jobs
	}
	pending := jobs[:0]
	for _, j := range jobs {
		if !skip[pairKey{cell: j.cellIdx, mission: j.mission, repetition: j.repetition}] {
			pending = append(pending, j)
		}
	}
	return pending
}
