// Campaign resume: the JSONL record sink is a durable per-episode log, so
// a partial campaign — killed mid-sweep, crashed mid-write — can be picked
// up where it stopped instead of re-running finished episodes. The loader
// reads the partial log; Config.Resume threads it into the runner, which
// seeds its aggregates (and, for adaptive campaigns, its posteriors) from
// the recorded episodes and dispatches only the (cell, mission,
// repetition) slots not yet on record. Episodes are pure functions of
// their seeds, so a resumed campaign finishes with results bit-identical
// to an uninterrupted run.

package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/avfi/avfi/internal/metrics"
)

// LoadRecordsJSONL reads episode records from a JSONL record sink (see
// NewJSONLSink) — the durable episode log of a partial campaign. A
// truncated or corrupt final line is tolerated and dropped (the signature
// of a crash mid-write); corruption anywhere earlier is an error.
func LoadRecordsJSONL(r io.Reader) ([]metrics.EpisodeRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	var recs []metrics.EpisodeRecord
	var pending error // a bad line is fatal only if a later line follows
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if pending != nil {
			return nil, pending
		}
		var rec metrics.EpisodeRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pending = fmt.Errorf("campaign: resume: line %d: %w", line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	return recs, nil
}

// pairKey identifies one episode slot of the campaign grid.
type pairKey struct {
	cell       int
	mission    int
	repetition int
}

// cellIndex maps each scenario column key to its first cell index.
func (r *Runner) cellIndex() map[string]int {
	idx := make(map[string]int, len(r.cells))
	for i, c := range r.cells {
		if _, ok := idx[c.key]; !ok {
			idx[c.key] = i
		}
	}
	return idx
}

// resumeState reconciles Config.Resume against this campaign's grid: it
// returns the usable records plus the set of slots they occupy. Records
// for unknown columns or out-of-range slots are dropped (they belong to a
// different configuration), and duplicate slots keep the first record.
func (r *Runner) resumeState() ([]metrics.EpisodeRecord, map[pairKey]bool) {
	if len(r.cfg.Resume) == 0 {
		return nil, nil
	}
	cellIdx := r.cellIndex()
	used := make(map[pairKey]bool, len(r.cfg.Resume))
	var recs []metrics.EpisodeRecord
	for _, rec := range r.cfg.Resume {
		ci, ok := cellIdx[rec.Injector]
		if !ok || rec.Mission < 0 || rec.Mission >= len(r.missions) ||
			rec.Repetition < 0 || rec.Repetition >= r.cfg.Repetitions {
			continue
		}
		k := pairKey{cell: ci, mission: rec.Mission, repetition: rec.Repetition}
		if used[k] {
			continue
		}
		used[k] = true
		recs = append(recs, rec)
	}
	return recs, used
}

// pendingJobs is the campaign's static job list minus the slots already on
// record.
func (r *Runner) pendingJobs(skip map[pairKey]bool) []job {
	jobs := r.jobs()
	if len(skip) == 0 {
		return jobs
	}
	pending := jobs[:0]
	for _, j := range jobs {
		if !skip[pairKey{cell: j.cellIdx, mission: j.mission, repetition: j.repetition}] {
			pending = append(pending, j)
		}
	}
	return pending
}
