package campaign

import (
	"reflect"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/world"
)

func TestScenarioMatrixCells(t *testing.T) {
	m := ScenarioMatrix{
		Weathers:         []world.Weather{world.WeatherClear, world.WeatherRain},
		Densities:        []Density{{}, {NPCs: 4, Pedestrians: 2}},
		AEB:              []bool{false, true},
		ActivationFrames: []int{0, 30},
		Injectors:        []InjectorSource{Registry(fault.NoopName), Registry("gaussian")},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := m.Cells()
	if len(cells) != m.Size() || len(cells) != 2*2*2*2*2 {
		t.Fatalf("cells = %d, Size = %d, want 32", len(cells), m.Size())
	}
	seen := map[string]bool{}
	for _, c := range cells {
		label := c.Label()
		if seen[label] {
			t.Errorf("duplicate cell label %q", label)
		}
		seen[label] = true
	}
	// Activation frames wrap through Windowed: name and TTV bookkeeping.
	var windowed, immediate int
	for _, c := range cells {
		if c.Injector.InjectionFrame == 30 {
			windowed++
			if !strings.Contains(c.Injector.Name, "@30") {
				t.Errorf("windowed cell not renamed: %q", c.Injector.Name)
			}
		} else if c.Injector.InjectionFrame == 0 {
			immediate++
		}
	}
	if windowed != 16 || immediate != 16 {
		t.Errorf("windowed/immediate = %d/%d, want 16/16", windowed, immediate)
	}
}

func TestScenarioMatrixDefaults(t *testing.T) {
	m := ScenarioMatrix{Injectors: []InjectorSource{Registry(fault.NoopName)}}
	cells := m.Cells()
	if len(cells) != 1 {
		t.Fatalf("degenerate matrix expands to %d cells", len(cells))
	}
	c := cells[0]
	if c.Weather != world.WeatherClear || c.Density != (Density{}) || c.AEB {
		t.Errorf("neutral defaults not applied: %+v", c)
	}
}

func TestScenarioMatrixValidate(t *testing.T) {
	if err := (ScenarioMatrix{}).Validate(); err == nil {
		t.Error("empty matrix accepted")
	}
	bad := ScenarioMatrix{
		Injectors:        []InjectorSource{Registry(fault.NoopName)},
		ActivationFrames: []int{-1},
	}
	if err := bad.Validate(); err == nil {
		t.Error("negative activation frame accepted")
	}
	bad = ScenarioMatrix{
		Injectors: []InjectorSource{Registry(fault.NoopName)},
		Densities: []Density{{NPCs: -1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("negative density accepted")
	}
}

func TestMatrixAndInjectorsExclusive(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Matrix = &ScenarioMatrix{Injectors: []InjectorSource{Registry(fault.NoopName)}}
	if err := cfg.Validate(); err == nil {
		t.Error("Matrix alongside Injectors accepted")
	}
	// Matrix alone validates, including registry resolution of its columns.
	cfg.Injectors = nil
	if err := cfg.Validate(); err != nil {
		t.Errorf("matrix-only config rejected: %v", err)
	}
	cfg.Matrix = &ScenarioMatrix{Injectors: []InjectorSource{Registry("nonsense")}}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown matrix injector accepted")
	}
}

// TestMatrixCampaignDeterministic is the acceptance sweep: 2 weathers x 2
// NPC densities x 2 injectors must reproduce identical EpisodeRecords
// across two runs with the same seed.
func TestMatrixCampaignDeterministic(t *testing.T) {
	run := func() *ResultSet {
		cfg := tinyConfig(t, nil)
		cfg.Matrix = &ScenarioMatrix{
			Weathers:  []world.Weather{world.WeatherClear, world.WeatherRain},
			Densities: []Density{{}, {NPCs: 2, Pedestrians: 1}},
			Injectors: []InjectorSource{Registry(fault.NoopName), Registry("gaussian")},
		}
		cfg.Missions = 1
		cfg.Repetitions = 1
		cfg.Parallelism = 3
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a.Records) != 8 || len(b.Records) != 8 {
		t.Fatalf("records = %d/%d, want 8 (2 weathers x 2 densities x 2 injectors)", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !reflect.DeepEqual(a.Records[i], b.Records[i]) {
			t.Fatalf("record %d diverged:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
	// One report per cell, in cell order.
	if len(a.Reports) != 8 {
		t.Fatalf("reports = %d", len(a.Reports))
	}
	for i := range a.Reports {
		if a.Reports[i].Injector != b.Reports[i].Injector {
			t.Errorf("report order diverged: %q vs %q", a.Reports[i].Injector, b.Reports[i].Injector)
		}
	}
	// Cell conditions actually reach the episodes: rain and clear cells of
	// the same injector/density must not be byte-identical drives.
	recFor := func(rs *ResultSet, label string) (rec bool, dist float64) {
		for _, r := range rs.Records {
			if r.Injector == label {
				return true, r.DistanceKM
			}
		}
		return false, 0
	}
	okClear, dClear := recFor(a, "noinject/clear/n0p0/aeb-off")
	okRain, dRain := recFor(a, "noinject/rain/n0p0/aeb-off")
	if !okClear || !okRain {
		t.Fatalf("expected cell labels missing from records: %v", a.Reports)
	}
	if dClear == dRain {
		t.Error("clear and rain cells drove identically; weather not applied per cell")
	}
}

// TestCampaignMultiplexedTCP asserts the engine shape on the TCP path: the
// whole campaign rides one listener and one connection, with episodes
// multiplexed as concurrent sessions.
func TestCampaignMultiplexedTCP(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	})
	cfg.UseTCP = true
	cfg.Parallelism = 4
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantEpisodes := 2 * 2 * 2 // injectors x missions x reps
	if len(rs.Records) != wantEpisodes {
		t.Fatalf("records = %d, want %d", len(rs.Records), wantEpisodes)
	}
	if rs.Engine.Transport != "tcp" {
		t.Errorf("transport = %q", rs.Engine.Transport)
	}
	if rs.Engine.Episodes != wantEpisodes {
		t.Errorf("engine served %d episodes, want %d", rs.Engine.Episodes, wantEpisodes)
	}
	if rs.Engine.MaxConcurrentSessions < 2 {
		t.Errorf("MaxConcurrentSessions = %d; episodes were not multiplexed", rs.Engine.MaxConcurrentSessions)
	}
}
