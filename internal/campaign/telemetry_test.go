package campaign

import (
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/telemetry"
)

// TestStatusScrapeUnderLoad runs a pooled campaign while hammering its
// /metrics and /statusz endpoints from concurrent scrapers — the race
// detector's view of the whole observability path: atomic instruments,
// histogram snapshots, Runner.Status's pool snapshot, and the exposition
// writer, all interleaved with live episode dispatch.
func TestStatusScrapeUnderLoad(t *testing.T) {
	prev := telemetry.Enabled()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	srv, err := telemetry.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName), Registry("gaussian")})
	cfg.Parallelism = 2
	cfg.Pool = PoolConfig{Engines: 2}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetStatus("campaign", func() any { return r.Status() })

	if st := r.Status(); st.State != "idle" {
		t.Errorf("pre-run state = %q, want idle", st.State)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + path)
			if err != nil {
				continue // the runner may still be warming up
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != 200 {
				t.Errorf("GET %s = %d, %v", path, resp.StatusCode, err)
				return
			}
			if path == "/metrics" {
				if err := telemetry.LintPrometheus(body); err != nil {
					t.Errorf("mid-run /metrics malformed: %v", err)
					return
				}
			}
		}
	}
	wg.Add(2)
	go scrape("/metrics")
	go scrape("/statusz")

	rs, err := r.Run()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	st := r.Status()
	if st.State != "done" {
		t.Errorf("post-run state = %q, want done", st.State)
	}
	if st.EpisodesDone != len(rs.Records) || st.EpisodesPlanned != len(rs.Records) {
		t.Errorf("status episodes done=%d planned=%d, want %d", st.EpisodesDone, st.EpisodesPlanned, len(rs.Records))
	}
	var cellEpisodes int
	for _, c := range st.Cells {
		cellEpisodes += c.Episodes
		if c.Episodes > 0 && c.MeanSeconds <= 0 {
			t.Errorf("cell %s ran %d episodes with mean duration %v", c.Cell, c.Episodes, c.MeanSeconds)
		}
	}
	if cellEpisodes != len(rs.Records) {
		t.Errorf("per-cell episodes sum to %d, want %d", cellEpisodes, len(rs.Records))
	}
	if telemetry.CampaignEpisodes.Value() == 0 {
		t.Error("campaign episode counter never moved")
	}
	if telemetry.EpisodeSeconds.Snapshot().Total == 0 {
		t.Error("episode duration histogram never observed")
	}
}

// TestResultsIdenticalWithTelemetry pins the observability subsystem's
// zero-interference contract: the same campaign produces a bit-identical
// ResultSet with collection on and off.
func TestResultsIdenticalWithTelemetry(t *testing.T) {
	prev := telemetry.Enabled()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	run := func(on bool) *ResultSet {
		telemetry.SetEnabled(on)
		cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName), Registry("gaussian")})
		cfg.Parallelism = 2
		cfg.Pool = PoolConfig{Engines: 2}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	off := run(false)
	on := run(true)
	if !reflect.DeepEqual(off.Records, on.Records) {
		t.Error("records diverged between telemetry off and on")
	}
	if !reflect.DeepEqual(off.Reports, on.Reports) {
		t.Error("reports diverged between telemetry off and on")
	}
}
