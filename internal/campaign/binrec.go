// Binary episode records: the hot-path encoding of the durable episode
// log. JSONL (sink.go) pays text encoding and reflection on every episode;
// a million-episode sweep spends more time marshaling records than some
// injectors spend perturbing frames. The binary format is a
// length-prefixed, versioned frame per record — compact, reflection-free,
// and detectable by its first byte (0xAF, never the start of a JSON line),
// so every reader in the package auto-detects the format and the two can
// coexist in one shard directory. JSONL remains the export/interchange
// form; cmd/avfi-records converts between them losslessly.
//
// Frame layout (big-endian):
//
//	magic   uint16  0xAF1B
//	version uint8   BinaryRecordVersion
//	length  uint32  payload bytes that follow
//	payload:
//	  injector          uint16 len + bytes
//	  mission           uint32 (two's-complement int32)
//	  repetition        uint32 (two's-complement int32)
//	  seed              uint64
//	  flags             uint8  (bit0 = success)
//	  distanceKM        float64
//	  durationSec       float64
//	  injectionTimeSec  float64
//	  violations        uint32 count, then per violation:
//	    kind            uint8 len + bytes
//	    timeSec         float64
//	    flags           uint8  (bit0 = accident)
//
// A crash mid-write leaves a prefix of a frame; readers treat any
// incomplete trailing frame as the truncated tail (dropped, like a partial
// JSONL line) and any complete-but-invalid frame as corruption (an error).
// The version byte is per-frame, so a future layout change can mix
// versions in one log without a file header.

package campaign

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/avfi/avfi/internal/metrics"
)

const (
	binMagic0 = 0xAF
	binMagic1 = 0x1B
	// BinaryRecordVersion is the current binary record frame version;
	// bumped on incompatible payload change.
	BinaryRecordVersion = 1
	// binHeaderLen is magic (2) + version (1) + payload length (4).
	binHeaderLen = 7
	// maxBinaryPayload bounds one record's payload — matches the JSONL
	// loader's line cap, so a corrupt length prefix is detected instead of
	// honored as an allocation request.
	maxBinaryPayload = 16 << 20
)

// errShortRecord marks a frame that needs more bytes than the buffer
// holds — the signature of a crash-truncated tail, which loaders tolerate.
// Any other decode failure is corruption.
var errShortRecord = errors.New("campaign: short binary record frame")

// EncodeBinaryRecord serializes one episode record as a binary frame.
func EncodeBinaryRecord(rec metrics.EpisodeRecord) ([]byte, error) {
	return AppendBinaryRecord(nil, rec)
}

// AppendBinaryRecord appends rec's binary frame to dst and returns the
// extended buffer. It errors on records the format cannot carry (label
// strings beyond the length prefixes, mission/repetition outside int32) —
// none of which the campaign runner produces.
func AppendBinaryRecord(dst []byte, rec metrics.EpisodeRecord) ([]byte, error) {
	if len(rec.Injector) > math.MaxUint16 {
		return dst, fmt.Errorf("campaign: binary record: injector label is %d bytes (max %d)", len(rec.Injector), math.MaxUint16)
	}
	if int64(rec.Mission) != int64(int32(rec.Mission)) || int64(rec.Repetition) != int64(int32(rec.Repetition)) {
		return dst, fmt.Errorf("campaign: binary record: mission=%d repetition=%d outside int32", rec.Mission, rec.Repetition)
	}
	for _, v := range rec.Violations {
		if len(v.Kind) > math.MaxUint8 {
			return dst, fmt.Errorf("campaign: binary record: violation kind is %d bytes (max %d)", len(v.Kind), math.MaxUint8)
		}
	}
	payload := 2 + len(rec.Injector) + 4 + 4 + 8 + 1 + 3*8 + 4
	for _, v := range rec.Violations {
		payload += 1 + len(v.Kind) + 8 + 1
	}
	if payload > maxBinaryPayload {
		return dst, fmt.Errorf("campaign: binary record: %d-byte payload exceeds %d", payload, maxBinaryPayload)
	}
	dst = append(dst, binMagic0, binMagic1, BinaryRecordVersion)
	dst = binary.BigEndian.AppendUint32(dst, uint32(payload))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rec.Injector)))
	dst = append(dst, rec.Injector...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(rec.Mission)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(rec.Repetition)))
	dst = binary.BigEndian.AppendUint64(dst, rec.Seed)
	dst = append(dst, recFlags(rec.Success))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rec.DistanceKM))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rec.DurationSec))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rec.InjectionTimeSec))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Violations)))
	for _, v := range rec.Violations {
		dst = append(dst, byte(len(v.Kind)))
		dst = append(dst, v.Kind...)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.TimeSec))
		dst = append(dst, recFlags(v.Accident))
	}
	return dst, nil
}

func recFlags(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// DecodeBinaryRecord parses one binary frame from the front of buf,
// returning the record and the frame's total length. It never panics on
// arbitrary input: a buffer holding only a prefix of a frame returns
// errShortRecord (the truncated-tail signature), any other malformation an
// ordinary error.
func DecodeBinaryRecord(buf []byte) (metrics.EpisodeRecord, int, error) {
	var rec metrics.EpisodeRecord
	if len(buf) < binHeaderLen {
		return rec, 0, errShortRecord
	}
	if buf[0] != binMagic0 || buf[1] != binMagic1 {
		return rec, 0, fmt.Errorf("campaign: binary record: bad magic %#02x%02x", buf[0], buf[1])
	}
	if buf[2] != BinaryRecordVersion {
		return rec, 0, fmt.Errorf("campaign: binary record: version %d, want %d", buf[2], BinaryRecordVersion)
	}
	payload := int(binary.BigEndian.Uint32(buf[3:]))
	if payload > maxBinaryPayload {
		return rec, 0, fmt.Errorf("campaign: binary record: %d-byte payload exceeds %d", payload, maxBinaryPayload)
	}
	if len(buf) < binHeaderLen+payload {
		return rec, 0, errShortRecord
	}
	r := binReader{buf: buf[binHeaderLen : binHeaderLen+payload]}
	rec.Injector = string(r.bytes(int(r.uint16())))
	rec.Mission = int(int32(r.uint32()))
	rec.Repetition = int(int32(r.uint32()))
	rec.Seed = r.uint64()
	rec.Success = r.flag()
	rec.DistanceKM = r.float()
	rec.DurationSec = r.float()
	rec.InjectionTimeSec = r.float()
	nviol := int(r.uint32())
	// Each violation is at least kind-len + time + flags = 10 bytes: a
	// count that cannot fit the remaining payload is corruption, not an
	// allocation request.
	if nviol > 0 {
		if r.err == nil && nviol > r.remaining()/10 {
			return rec, 0, fmt.Errorf("campaign: binary record: %d violations exceed %d payload bytes", nviol, r.remaining())
		}
		rec.Violations = make([]metrics.ViolationRecord, 0, nviol)
		for i := 0; i < nviol && r.err == nil; i++ {
			var v metrics.ViolationRecord
			v.Kind = string(r.bytes(int(r.byte())))
			v.TimeSec = r.float()
			v.Accident = r.flag()
			rec.Violations = append(rec.Violations, v)
		}
	}
	if r.err != nil {
		return metrics.EpisodeRecord{}, 0, fmt.Errorf("campaign: binary record: %w", r.err)
	}
	if r.remaining() != 0 {
		return metrics.EpisodeRecord{}, 0, fmt.Errorf("campaign: binary record: %d trailing payload bytes", r.remaining())
	}
	return rec, binHeaderLen + payload, nil
}

// binReader is a bounds-checked cursor over one frame's payload. A read
// past the end sets err; the payload length is already validated against
// the buffer, so overruns here mean a corrupt frame, never a short one.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) remaining() int { return len(r.buf) - r.off }

func (r *binReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("payload overrun at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}

func (r *binReader) byte() byte {
	if !r.need(1) {
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// flag reads a strict boolean byte: anything but 0 or 1 is corruption, so
// every accepted frame re-encodes to its exact original bytes (the
// encoding is canonical — merges of identical episode sets stay
// byte-identical).
func (r *binReader) flag() bool {
	b := r.byte()
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("bad flags byte %#02x at offset %d", b, r.off-1)
	}
	return b&1 != 0
}

func (r *binReader) uint16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *binReader) uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *binReader) uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *binReader) float() float64 { return math.Float64frombits(r.uint64()) }

func (r *binReader) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// CompleteBinaryPrefixLen reads a binary record log and returns the byte
// length of its longest prefix holding only complete frames — the binary
// counterpart of clamping a JSONL log to its last newline before
// appending. An incomplete trailing frame (crash mid-write) is excluded
// from the prefix; a malformed header is corruption and an error, since
// appending after it would bury the damage mid-file.
func CompleteBinaryPrefixLen(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var good int64
	for {
		header, err := br.Peek(binHeaderLen)
		if err == io.EOF && len(header) == 0 {
			return good, nil
		}
		if err != nil && err != io.EOF {
			return good, err
		}
		if len(header) < binHeaderLen {
			return good, nil // truncated trailing header
		}
		if _, _, err := DecodeBinaryRecord(header); err != nil && err != errShortRecord {
			return good, err
		}
		frame := int64(binHeaderLen) + int64(binary.BigEndian.Uint32(header[3:]))
		if n, err := io.CopyN(io.Discard, br, frame); err != nil {
			if err == io.EOF && n < frame {
				return good, nil // truncated trailing payload
			}
			return good, err
		}
		good += frame
	}
}

// binarySink streams records as binary frames through a buffered writer —
// the hot-path counterpart of NewJSONLSink, byte-compatible with every
// binary-aware reader in the package.
type binarySink struct {
	bw  *bufio.Writer
	buf []byte // frame scratch, reused across records
}

// NewBinarySink returns a RecordSink writing one binary frame per episode
// to w. Like NewJSONLSink, the caller keeps ownership of w: Close flushes
// buffering but does not close the underlying writer.
func NewBinarySink(w io.Writer) RecordSink {
	return &binarySink{bw: bufio.NewWriter(w)}
}

// Consume implements RecordSink.
func (s *binarySink) Consume(rec metrics.EpisodeRecord) error {
	frame, err := AppendBinaryRecord(s.buf[:0], rec)
	if err != nil {
		return err
	}
	s.buf = frame[:0]
	_, err = s.bw.Write(frame)
	return err
}

// Close implements RecordSink.
func (s *binarySink) Close() error { return s.bw.Flush() }
