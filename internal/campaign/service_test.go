package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/simserver"
	"github.com/avfi/avfi/internal/world"
)

// startTestService boots a campaign service over the tiny world and
// registers the given workers, tearing everything down when the test
// ends. The re-dial interval is short so chaos tests see recovery within
// test timeouts.
func startTestService(t testing.TB, addrs []string) *Service {
	t.Helper()
	svc, err := NewService(ServiceConfig{
		World:          tinyWorldConfig(),
		Agent:          AgentSource{Agent: tinyAgent(t)},
		Parallelism:    4,
		RedialInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("service close: %v", err)
		}
	})
	for _, a := range addrs {
		if _, err := svc.AddWorker(a); err != nil {
			t.Fatalf("AddWorker(%s): %v", a, err)
		}
	}
	return svc
}

// specBaselineConfig builds the in-process Config a CampaignSpec lowers
// to — the solo baseline the service's runs must reproduce bit-for-bit.
func specBaselineConfig(tb testing.TB, spec CampaignSpec) Config {
	tb.Helper()
	cfg := tinyConfig(tb, nil)
	for _, name := range spec.Injectors {
		cfg.Injectors = append(cfg.Injectors, Registry(name))
	}
	cfg.Missions = spec.Missions
	cfg.Repetitions = spec.Repetitions
	cfg.Seed = spec.Seed
	cfg.Weather = world.WeatherClear
	return cfg
}

// waitCampaign waits for one service campaign with a test-sized timeout.
func waitCampaign(t *testing.T, svc *Service, id string) *ResultSet {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rs, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("campaign %s failed: %v", id, err)
	}
	return rs
}

// TestWorkerJoinsMidCampaign is the fleet-grow chaos invariant (the
// complement of TestChaosBackendKillMidCampaign's shrink): a campaign
// starts on two workers, a third announces itself mid-run, and the
// service folds it into the live fleet — it absorbs episodes, and the
// ResultSet stays bit-identical to the undisturbed solo run, because
// where an episode executes is not part of its result.
func TestWorkerJoinsMidCampaign(t *testing.T) {
	spec := CampaignSpec{
		Injectors:   []string{fault.NoopName, "gaussian"},
		Missions:    3,
		Repetitions: 2,
		Seed:        3,
	}
	baseline, err := NewRunner(specBaselineConfig(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run()
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startTestWorkers(t, 3)
	svc := startTestService(t, addrs[:2])

	var once sync.Once
	joined := make(chan error, 1)
	svc.mu.Lock()
	svc.testOnEpisode = func(_ string, n int) {
		if n >= 1 {
			once.Do(func() {
				// Announce from a fresh goroutine: the hook runs on the
				// aggregation path, which must never block on a dial.
				go func() {
					_, err := svc.AddWorker(addrs[2])
					joined <- err
				}()
			})
		}
	}
	svc.mu.Unlock()

	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, svc, id)

	select {
	case err := <-joined:
		if err != nil {
			t.Fatalf("mid-campaign join failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("third worker never finished joining")
	}

	got, err := svc.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Records) {
		t.Error("records after a mid-campaign join diverged from the undisturbed solo run")
	}
	if workers[2].ConnsServed() == 0 {
		t.Error("joined worker served no connection")
	}
	ps, _ := svc.fleet.pool.snapshot()
	joinedEpisodes := -1
	for _, es := range ps.Engines {
		if es.Backend == addrs[2] {
			joinedEpisodes = es.Episodes
		}
	}
	if joinedEpisodes < 0 {
		t.Fatal("joined worker never became a fleet engine slot")
	}
	if joinedEpisodes == 0 {
		t.Error("joined worker absorbed no episodes")
	}
}

// TestConcurrentCampaignsBitIdentical is the multi-tenant contract: two
// campaigns submitted to one service interleave over a shared
// three-worker fleet, and each produces results bit-identical to its
// solo run — cross-campaign scheduling is invisible in every result bit.
// The fairness gate's grant log must also show both campaigns making
// progress while they overlap (neither starves).
func TestConcurrentCampaignsBitIdentical(t *testing.T) {
	specA := CampaignSpec{
		Injectors:   []string{fault.NoopName, "gaussian"},
		Missions:    2,
		Repetitions: 3,
		Seed:        3,
	}
	specB := CampaignSpec{
		Injectors:   []string{fault.NoopName, "saltpepper"},
		Missions:    2,
		Repetitions: 3,
		Seed:        7,
	}
	solo := func(spec CampaignSpec) *ResultSet {
		r, err := NewRunner(specBaselineConfig(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	wantA, wantB := solo(specA), solo(specB)

	addrs, _ := startTestWorkers(t, 3)
	svc := startTestService(t, addrs)
	svc.fleet.gate.record()

	idA, err := svc.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := svc.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, svc, idA)
	waitCampaign(t, svc, idB)

	gotA, err := svc.Results(idA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := svc.Results(idB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA.Records) {
		t.Error("campaign A's records diverged from its solo run")
	}
	if !reflect.DeepEqual(gotB, wantB.Records) {
		t.Error("campaign B's records diverged from its solo run")
	}

	// Fairness: in the window where both campaigns had episodes in flight
	// (from B's first grant to A's last), round-robin granting must give
	// each a real share — a starved campaign would be all but absent.
	grants := svc.fleet.gate.grants()
	firstB, lastA := -1, -1
	for i, id := range grants {
		if id == idB && firstB < 0 {
			firstB = i
		}
		if id == idA {
			lastA = i
		}
	}
	if firstB < 0 || lastA < 0 || firstB >= lastA {
		t.Fatalf("campaigns never overlapped (grant log: %v)", grants)
	}
	window := grants[firstB : lastA+1]
	counts := map[string]int{}
	for _, id := range window {
		counts[id]++
	}
	if len(window) >= 8 {
		for _, id := range []string{idA, idB} {
			if counts[id] < len(window)/4 {
				t.Errorf("campaign %s got %d of %d overlapping grants (<25%%): starvation (window: %v)",
					id, counts[id], len(window), window)
			}
		}
	}
}

// TestFairGateRoundRobin pins the gate's deterministic core: with one
// campaign holding the only slot and two others queued, released slots
// rotate between the waiters instead of draining one queue first.
func TestFairGateRoundRobin(t *testing.T) {
	gate := newFairGate(1)
	gate.record()
	ctx := context.Background()
	if err := gate.acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}

	// Queue waiters in a controlled order: b, c, b, c.
	var wg sync.WaitGroup
	enqueue := func(id string, wantDepth int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := gate.acquire(ctx, id); err != nil {
				t.Errorf("acquire(%s): %v", id, err)
				return
			}
			gate.release()
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			gate.mu.Lock()
			depth := len(gate.queues[id])
			gate.mu.Unlock()
			if depth == wantDepth {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %s never queued (depth %d, want %d)", id, depth, wantDepth)
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("b", 1)
	enqueue("c", 1)
	enqueue("b", 2)
	enqueue("c", 2)

	gate.release() // a's slot starts the rotation
	wg.Wait()

	want := []string{"a", "b", "c", "b", "c"}
	if got := gate.grants(); !reflect.DeepEqual(got, want) {
		t.Errorf("grant order = %v, want %v (round-robin)", got, want)
	}
	gate.mu.Lock()
	free := gate.free
	gate.mu.Unlock()
	if free != 1 {
		t.Errorf("free slots after drain = %d, want 1", free)
	}
}

// TestFairGateCancelledWaiter: a waiter whose context dies must leave the
// queue without consuming a slot.
func TestFairGateCancelledWaiter(t *testing.T) {
	gate := newFairGate(1)
	gate.record()
	if err := gate.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- gate.acquire(ctx, "b") }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		gate.mu.Lock()
		queued := len(gate.queues["b"]) == 1
		gate.mu.Unlock()
		if queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled acquire returned nil")
	}
	gate.release()
	gate.mu.Lock()
	free := gate.free
	gate.mu.Unlock()
	if free != 1 {
		t.Errorf("free slots = %d after release with no live waiters, want 1", free)
	}
	if got, want := gate.grants(), []string{"a"}; !reflect.DeepEqual(got, want) {
		t.Errorf("grants = %v, want %v (the cancelled waiter must not be granted)", got, want)
	}
}

// startWorldWorker boots one worker serving the given world config,
// announcing hash (or not, for legacy workers).
func startWorldWorker(t testing.TB, cfg sim.WorldConfig, announceHash bool) (string, *simserver.Worker) {
	t.Helper()
	w, err := sim.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wk := simserver.NewWorker(simserver.WorldFactory(w))
	if announceHash {
		wk.SetWorldHash(cfg.Hash())
	}
	addr, err := wk.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- wk.Serve() }()
	t.Cleanup(func() {
		wk.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("worker %s Serve: %v", addr, err)
		}
	})
	return addr, wk
}

// TestWorldHashMismatchRejected: a worker announcing a different world
// fingerprint must be rejected at dial time with the typed error — by a
// direct Backends campaign and by the service's announce path alike.
// Every episode such a pairing ran would silently break bit-identity.
func TestWorldHashMismatchRejected(t *testing.T) {
	otherCfg := tinyWorldConfig()
	otherCfg.Town.GridW = 4 // a different world, honestly announced
	addr, _ := startWorldWorker(t, otherCfg, true)

	t.Run("backends campaign", func(t *testing.T) {
		cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
		cfg.Pool = PoolConfig{Backends: []string{addr}}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Run()
		var wm *WorldMismatchError
		if !errors.As(err, &wm) {
			t.Fatalf("Run against a mismatched worker = %v, want WorldMismatchError", err)
		}
		if wm.Want != tinyWorldConfig().Hash() || wm.Got != otherCfg.Hash() {
			t.Errorf("mismatch hashes want/got = %016x/%016x, expected %016x/%016x",
				wm.Want, wm.Got, tinyWorldConfig().Hash(), otherCfg.Hash())
		}
	})

	t.Run("service announce", func(t *testing.T) {
		svc := startTestService(t, nil)
		_, err := svc.AddWorker(addr)
		var wm *WorldMismatchError
		if !errors.As(err, &wm) {
			t.Fatalf("AddWorker(mismatched) = %v, want WorldMismatchError", err)
		}
		// The rejected worker must not linger in the registry (the re-dial
		// loop would pointlessly hammer it forever).
		if ws := svc.Workers(); len(ws) != 0 {
			t.Errorf("rejected worker stayed registered: %+v", ws)
		}
	})
}

// TestLegacyWorkerPairsWithoutHash: a worker predating world announcement
// sends no hash; campaigns pair with it anyway (operator keeps
// responsibility, as before the handshake) and results stay bit-identical
// when its world does match.
func TestLegacyWorkerPairsWithoutHash(t *testing.T) {
	addr, _ := startWorldWorker(t, tinyWorldConfig(), false)

	base := tinyConfig(t, []InjectorSource{Registry(fault.NoopName), Registry("gaussian")})
	baseline, err := NewRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName), Registry("gaussian")})
	cfg.Pool = PoolConfig{Backends: []string{addr}}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatalf("campaign against a legacy (hashless) worker failed: %v", err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("legacy-worker records diverged from the in-process run")
	}

	svc := startTestService(t, nil)
	info, err := svc.AddWorker(addr)
	if err != nil {
		t.Fatalf("AddWorker(legacy) = %v, want pairing with a warning", err)
	}
	if !info.Up {
		t.Errorf("legacy worker not up after announce: %+v", info)
	}
}

// jsonKeyPaths flattens a decoded JSON document into its sorted set of
// key paths (array elements contribute under a "[]" segment) — the
// schema shape, independent of values.
func jsonKeyPaths(v any) []string {
	set := map[string]bool{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, vv := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				set[p] = true
				walk(p, vv)
			}
		case []any:
			for _, vv := range x {
				walk(prefix+"[]", vv)
			}
		}
	}
	walk("", v)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TestCampaignInfoGoldenSchema pins the GET /campaigns/{id} JSON shape:
// clients and dashboards key on these exact paths, so a field rename or
// removal must show up in this diff and be deliberate.
func TestCampaignInfoGoldenSchema(t *testing.T) {
	addrs, _ := startTestWorkers(t, 1)
	svc := startTestService(t, addrs)
	id, err := svc.Submit(CampaignSpec{
		Injectors:   []string{fault.NoopName},
		Missions:    1,
		Repetitions: 1,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, svc, id)

	req := httptest.NewRequest(http.MethodGet, "/campaigns/"+id, nil)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /campaigns/%s = %d: %s", id, rec.Code, rec.Body.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"id",
		"records",
		"spec",
		"spec.injectors",
		"spec.missions",
		"spec.repetitions",
		"spec.seed",
		"status",
		"status.cells",
		"status.cells[].cell",
		"status.cells[].episodes",
		"status.cells[].mean_seconds",
		"status.elapsed_sec",
		"status.episodes_done",
		"status.episodes_planned",
		"status.mode",
		"status.replacements",
		"status.retries",
		"status.state",
	}
	if got := jsonKeyPaths(doc); !reflect.DeepEqual(got, want) {
		t.Errorf("GET /campaigns/{id} schema changed.\ngot:\n  %q\nwant:\n  %q", got, want)
	}
}

// TestServiceHTTPAPI drives the whole control plane over HTTP: announce,
// submit (flat and adaptive), poll to completion, stream results in both
// formats, and the error paths clients depend on.
func TestServiceHTTPAPI(t *testing.T) {
	addrs, _ := startTestWorkers(t, 2)
	svc := startTestService(t, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Workers join over the wire.
	for _, a := range addrs {
		code, body := post("/workers", `{"addr":"`+a+`"}`)
		if code != http.StatusOK {
			t.Fatalf("POST /workers = %d: %s", code, body)
		}
	}
	code, body := get("/workers")
	if code != http.StatusOK {
		t.Fatalf("GET /workers = %d: %s", code, body)
	}
	var ws []WorkerInfo
	if err := json.Unmarshal(body, &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || !ws[0].Up || !ws[1].Up {
		t.Fatalf("GET /workers = %+v, want 2 live workers", ws)
	}

	// Submit and poll a flat campaign.
	code, body = post("/campaigns", `{"injectors":["noinject","gaussian"],"missions":2,"repetitions":2,"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /campaigns = %d: %s", code, body)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	pollDone := func(id string) CampaignInfo {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			code, body := get("/campaigns/" + id)
			if code != http.StatusOK {
				t.Fatalf("GET /campaigns/%s = %d: %s", id, code, body)
			}
			var info CampaignInfo
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatal(err)
			}
			switch info.Status.State {
			case "done":
				return info
			case "failed":
				t.Fatalf("campaign %s failed: %s", id, info.Status.Err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never finished (state %s)", id, info.Status.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	info := pollDone(submitted.ID)
	if info.Records != 8 { // 2 injectors x 2 missions x 2 repetitions
		t.Errorf("finished campaign buffered %d records, want 8", info.Records)
	}

	// Results stream in both formats; two fetches are byte-identical
	// (canonical order is part of the contract).
	code, jsonl := get("/campaigns/" + submitted.ID + "/results?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("GET results jsonl = %d", code)
	}
	if lines := strings.Count(string(jsonl), "\n"); lines != 8 {
		t.Errorf("JSONL results have %d lines, want 8", lines)
	}
	_, again := get("/campaigns/" + submitted.ID + "/results?format=jsonl")
	if string(jsonl) != string(again) {
		t.Error("two result fetches of a finished campaign differ")
	}
	code, bin := get("/campaigns/" + submitted.ID + "/results?format=binary")
	if code != http.StatusOK {
		t.Fatalf("GET results binary = %d", code)
	}
	if SniffRecordFormat(bin) != FormatBinary {
		t.Error("binary results do not sniff as the binary record format")
	}

	// An adaptive submission runs through the same fleet.
	code, body = post("/campaigns", `{"injectors":["noinject","gaussian"],"missions":2,"repetitions":2,"seed":9,"adaptive":{"policy":"uniform","budget":4}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST adaptive campaign = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if info := pollDone(submitted.ID); info.Records != 4 {
		t.Errorf("adaptive campaign buffered %d records, want the budget's 4", info.Records)
	}

	// The list view carries every submission.
	code, body = get("/campaigns")
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns = %d", code)
	}
	var list []CampaignInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Errorf("GET /campaigns listed %d campaigns, want 2", len(list))
	}

	// Error paths.
	if code, _ := get("/campaigns/nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown campaign = %d, want 404", code)
	}
	if code, _ := get("/campaigns/" + submitted.ID + "/results?format=xml"); code != http.StatusBadRequest {
		t.Errorf("GET results with a bogus format = %d, want 400", code)
	}
	if code, _ := post("/campaigns", `{"injectors":["noinject"],"missions":1,"repetitions":1,"bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("POST with an unknown spec field = %d, want 400", code)
	}
	if code, _ := post("/campaigns", `{"missions":1,"repetitions":1}`); code != http.StatusBadRequest {
		t.Errorf("POST with no injectors = %d, want 400", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /campaigns = %d, want 405", resp.StatusCode)
	}
}

// TestServiceSubmitValidation: malformed specs must fail at submit time,
// not at run time.
func TestServiceSubmitValidation(t *testing.T) {
	svc := startTestService(t, nil)
	cases := []struct {
		name string
		spec CampaignSpec
	}{
		{"no injectors", CampaignSpec{Missions: 1, Repetitions: 1}},
		{"bad weather", CampaignSpec{Injectors: []string{fault.NoopName}, Missions: 1, Repetitions: 1, Weather: "hail"}},
		{"unknown injector", CampaignSpec{Injectors: []string{"definitely-not-registered"}, Missions: 1, Repetitions: 1}},
		{"zero missions", CampaignSpec{Injectors: []string{fault.NoopName}, Repetitions: 1}},
		{"bad adaptive policy", CampaignSpec{Injectors: []string{fault.NoopName}, Missions: 1, Repetitions: 1,
			Adaptive: &AdaptiveSpec{Policy: "nonsense"}}},
		{"bad matrix density", CampaignSpec{Injectors: []string{fault.NoopName}, Missions: 1, Repetitions: 1,
			Matrix: &MatrixSpec{Densities: []string{"lots"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := svc.Submit(tc.spec); err == nil {
				t.Errorf("Submit accepted a %s spec", tc.name)
			}
		})
	}
	if got := svc.Campaigns(); len(got) != 0 {
		t.Errorf("rejected submissions left %d campaigns registered", len(got))
	}
}
