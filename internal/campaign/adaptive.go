// Adaptive campaign orchestration: a round-based plan -> observe ->
// reallocate loop over the scenario matrix, replacing the static job list
// with risk-driven episode allocation (Jha et al., arXiv 1907.01051).
// Each round dispatches a batch through the same persistent engine pool an
// exhaustive sweep uses — started once, reused every round — folds the
// finished episodes into per-cell posteriors, and lets an
// adaptive.Policy decide where the next round's budget goes. The whole
// loop is a pure function of the campaign seed: posteriors are folded in
// a deterministic order regardless of engine-pool size or scheduling, so
// the episode allocation (and therefore the ResultSet) reproduces
// bit-identically.

package campaign

import (
	"context"
	"fmt"
	"sync"

	"github.com/avfi/avfi/internal/adaptive"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/stats"
	"github.com/avfi/avfi/internal/telemetry"
)

// AdaptiveConfig parameterizes RunAdaptive.
type AdaptiveConfig struct {
	// Policy allocates each round's episode budget across scenario cells
	// (see internal/adaptive: Uniform, SuccessiveHalving, UCB).
	Policy adaptive.Policy
	// Budget is the total number of fresh episodes to run; episodes seeded
	// via Config.Resume don't count against it. 0, or anything beyond the
	// campaign's remaining grid, means the full remaining grid.
	Budget int
	// RoundSize is how many episodes each plan->observe->reallocate round
	// dispatches. 0 picks a default: one episode per cell or an eighth of
	// the budget, whichever is larger. Smaller rounds react to risk
	// faster; larger rounds parallelize better.
	RoundSize int
	// RoundProgress, when non-nil, observes each finished round (called
	// between rounds, from the orchestrating goroutine).
	RoundProgress func(RoundStats)
}

// RoundStats summarizes one adaptive round.
type RoundStats struct {
	// Round numbers rounds from 0.
	Round int
	// Episodes is how many episodes the round dispatched.
	Episodes int
	// ActiveCells is how many cells received a non-zero allocation.
	ActiveCells int
	// Violations is the total violation count observed this round.
	Violations int
	// TotalEpisodes and TotalViolations accumulate across rounds
	// (fresh episodes only; resumed episodes are not this run's work).
	TotalEpisodes   int
	TotalViolations int
}

// CellBudget is one cell's share of an adaptive campaign's work.
type CellBudget struct {
	// Cell is the scenario column label.
	Cell string
	// Episodes is how many fresh episodes the policy allocated to the cell.
	Episodes int
	// Violations is the total violation count those episodes produced.
	Violations int
}

// AdaptiveStats reports an adaptive campaign's allocation — how the
// policy spent the budget over rounds and cells.
type AdaptiveStats struct {
	// Policy is the allocation policy's name.
	Policy string
	// Budget is the resolved total episode budget.
	Budget int
	// Rounds holds per-round statistics in order.
	Rounds []RoundStats
	// Cells holds per-cell allocation in campaign cell order.
	Cells []CellBudget
}

// cellPosterior accumulates one cell's observed statistics. Fold order is
// deterministic — each round's records are sorted before folding, and
// resumed records fold in their log's fixed stream order — so the
// floating-point Welford state is identical at any pool size.
type cellPosterior struct {
	episodes     int
	violations   int
	violEpisodes int
	vpk          stats.Welford
}

// fold adds one episode's outcome.
func (p *cellPosterior) fold(rec metrics.EpisodeRecord) {
	p.episodes++
	p.violations += len(rec.Violations)
	if len(rec.Violations) > 0 {
		p.violEpisodes++
	}
	p.vpk.Add(rec.VPK())
}

// RunAdaptive executes a risk-driven campaign: instead of sweeping the
// full (cell x mission x repetition) grid, it runs rounds of episodes
// whose allocation over cells the configured policy chooses from the
// posteriors observed so far. All rounds share one engine pool (started
// once, like an exhaustive sweep's) and one streaming results pipeline,
// so sinks, progress hooks and DiscardRecords behave exactly as under
// RunContext. The returned ResultSet carries the usual records/reports
// (covering the episodes actually run) plus AdaptiveStats.
//
// With the Uniform policy and a full-grid budget the campaign executes
// exactly the static job list, and its ResultSet records and reports are
// bit-identical to RunContext's for the same Config.
func (r *Runner) RunAdaptive(ctx context.Context, acfg AdaptiveConfig) (*ResultSet, error) {
	if acfg.Policy == nil {
		return nil, fmt.Errorf("campaign: adaptive: no policy")
	}
	if acfg.Budget < 0 || acfg.RoundSize < 0 {
		return nil, fmt.Errorf("campaign: adaptive: budget=%d roundSize=%d must be non-negative",
			acfg.Budget, acfg.RoundSize)
	}
	// Duplicate column keys would fold every record into the first
	// matching posterior, leaving its twin reading as forever-unexplored —
	// an allocation trap exhaustive sweeps don't have, so reject what
	// Validate tolerates for them.
	cellIdx := r.cellIndex()
	if len(cellIdx) != len(r.cells) {
		return nil, fmt.Errorf("campaign: adaptive: %d of %d scenario columns share keys; adaptive allocation needs distinct cells",
			len(r.cells)-len(cellIdx), len(r.cells))
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	pipe := newSinkPipeline(r.cells, r.sinkLanes(), !r.cfg.DiscardRecords,
		func(err error) { cancel(err) }, r.cfg.Progress, r.cfg.ProgressV2)

	// Posteriors start from the resumed episodes, folded in stream order
	// as they seed the pipeline — one pass, no materialized record slice.
	// For a given resume log the order (and so the Welford float state) is
	// fixed, and fresh rounds still fold in sorted order below.
	posteriors := make([]cellPosterior, len(r.cells))
	skip, err := r.seedResume(func(rec metrics.EpisodeRecord) {
		pipe.seed(rec)
		posteriors[cellIdx[rec.Injector]].fold(rec)
	})
	if err != nil {
		pipe.abandon()
		return nil, err
	}

	// Per-cell queues of unconsumed (mission, repetition) slots, in the
	// static sweep's order (mission-major); resume-recorded slots are
	// already consumed.
	perCell := len(r.missions) * r.cfg.Repetitions
	queues := make([][]pairKey, len(r.cells))
	remaining := 0
	for i := range r.cells {
		for p := 0; p < perCell; p++ {
			k := pairKey{cell: i, mission: p / r.cfg.Repetitions, repetition: p % r.cfg.Repetitions}
			if !skip[k] {
				queues[i] = append(queues[i], k)
			}
		}
		remaining += len(queues[i])
	}

	budget := acfg.Budget
	if budget == 0 || budget > remaining {
		budget = remaining
	}
	roundSize := acfg.RoundSize
	if roundSize == 0 {
		roundSize = len(r.cells)
		if b := budget / 8; b > roundSize {
			roundSize = b
		}
	}

	maxBatch := roundSize
	if maxBatch > budget {
		maxBatch = budget
	}
	sess, err := r.newRunSession(maxBatch)
	if err != nil {
		pipe.abandon()
		return nil, err
	}
	r.beginRun("adaptive", budget, sess.pool)
	telemetry.Infof("campaign: adaptive run started: policy %s, budget %d over %d cells, round size %d",
		acfg.Policy.Name(), budget, len(r.cells), roundSize)
	pipe.start(sess.parallelism)

	astats := &AdaptiveStats{Policy: acfg.Policy.Name(), Budget: budget}
	for _, c := range r.cells {
		astats.Cells = append(astats.Cells, CellBudget{Cell: c.key})
	}
	stream := rng.New(r.cfg.Seed).Split("adaptive")

	spent, totalViolations := 0, 0
	for round := 0; spent < budget; round++ {
		b := roundSize
		if left := budget - spent; b > left {
			b = left
		}

		// Plan: snapshot posteriors, let the policy split the round budget.
		cellStats := make([]adaptive.CellStats, len(r.cells))
		for i := range r.cells {
			p := &posteriors[i]
			cellStats[i] = adaptive.CellStats{
				Index:             i,
				Key:               r.cells[i].key,
				Episodes:          p.episodes,
				Remaining:         len(queues[i]),
				Violations:        p.violations,
				ViolationEpisodes: p.violEpisodes,
				MeanVPK:           p.vpk.Mean(),
				StdVPK:            p.vpk.StdDev(),
			}
		}
		alloc := acfg.Policy.Allocate(round, b, cellStats, stream.SplitN(uint64(round)))
		if len(alloc) != len(r.cells) {
			sess.close()
			pipe.abandon()
			err := fmt.Errorf("campaign: adaptive: policy %s allocated %d cells, want %d",
				acfg.Policy.Name(), len(alloc), len(r.cells))
			r.endRun(err)
			return nil, err
		}
		var jobs []job
		active := 0
		for i, n := range alloc {
			if n <= 0 {
				continue
			}
			if n > len(queues[i]) {
				n = len(queues[i])
			}
			if n > 0 {
				active++
			}
			for _, k := range queues[i][:n] {
				jobs = append(jobs, job{cellIdx: k.cell, mission: k.mission, repetition: k.repetition})
			}
			queues[i] = queues[i][n:]
		}
		if len(jobs) == 0 {
			// The policy stopped allocating (or every cell it wanted is
			// exhausted): the campaign ends early with the budget unspent.
			break
		}

		// Observe: dispatch the round on the shared pool, collecting its
		// records alongside the streaming pipeline.
		var mu sync.Mutex
		var roundRecs []metrics.EpisodeRecord
		sess.runJobs(ctx, cancel, jobs, func(ctx context.Context, rec metrics.EpisodeRecord) {
			pipe.consume(ctx, rec)
			mu.Lock()
			roundRecs = append(roundRecs, rec)
			mu.Unlock()
		})
		if cause := context.Cause(ctx); cause != nil {
			sess.close()
			pipe.abandon()
			r.endRun(cause)
			return nil, cause
		}

		// Reallocate inputs: fold the round into the posteriors in
		// deterministic order, so the next plan is schedule-independent.
		sortRecords(roundRecs)
		roundViolations := 0
		for _, rec := range roundRecs {
			i := cellIdx[rec.Injector]
			posteriors[i].fold(rec)
			astats.Cells[i].Episodes++
			astats.Cells[i].Violations += len(rec.Violations)
			roundViolations += len(rec.Violations)
		}
		spent += len(jobs)
		totalViolations += roundViolations
		rs := RoundStats{
			Round:           round,
			Episodes:        len(jobs),
			ActiveCells:     active,
			Violations:      roundViolations,
			TotalEpisodes:   spent,
			TotalViolations: totalViolations,
		}
		astats.Rounds = append(astats.Rounds, rs)
		r.setAdaptive(AdaptiveStatus{
			Policy:          astats.Policy,
			Budget:          budget,
			Round:           round,
			Spent:           spent,
			TotalViolations: totalViolations,
		})
		if acfg.RoundProgress != nil {
			acfg.RoundProgress(rs)
		}
	}

	poolStats, engineAgg := sess.pool.snapshot()
	closeErr := sess.close()
	if cause := context.Cause(ctx); cause != nil {
		pipe.abandon()
		r.endRun(cause)
		return nil, cause
	}
	records, reports, sinkErr := pipe.finish()
	if closeErr != nil {
		r.endRun(closeErr)
		return nil, closeErr
	}
	if sinkErr != nil {
		r.endRun(sinkErr)
		return nil, sinkErr
	}
	r.endRun(nil)
	return &ResultSet{
		Records:  records,
		Reports:  reports,
		Engine:   engineAgg,
		Pool:     poolStats,
		Adaptive: astats,
	}, nil
}
