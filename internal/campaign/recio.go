// Streaming record I/O: every reader of the durable episode log — resume,
// merge, shard loading, the avfi-records converter — goes through one
// format-agnostic streaming layer. A RecordSource yields records one at a
// time, so resume seeding is O(1) in campaign size, and format detection
// is per file (binary frames open with 0xAF, which no JSON line can), so
// JSONL and binary shard logs mix freely in one directory.

package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/avfi/avfi/internal/metrics"
)

// RecordFormat selects the on-disk encoding of an episode record log.
type RecordFormat int

const (
	// FormatAuto detects per file: binary by its 0xAF magic, JSONL
	// otherwise. Writers treat it as FormatBinary, the fresh-run default.
	FormatAuto RecordFormat = iota
	// FormatJSONL is the text interchange encoding (NewJSONLSink).
	FormatJSONL
	// FormatBinary is the hot-path frame encoding (NewBinarySink).
	FormatBinary
)

// ParseRecordFormat parses a -record-format flag value.
func ParseRecordFormat(s string) (RecordFormat, error) {
	switch s {
	case "auto":
		return FormatAuto, nil
	case "jsonl":
		return FormatJSONL, nil
	case "binary", "bin":
		return FormatBinary, nil
	}
	return FormatAuto, fmt.Errorf("campaign: unknown record format %q (want auto, jsonl, or binary)", s)
}

// String implements fmt.Stringer.
func (f RecordFormat) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatBinary:
		return "binary"
	default:
		return "auto"
	}
}

// ShardLogName names shard i's record log for this format inside a shard
// directory (FormatAuto names the binary default).
func (f RecordFormat) ShardLogName(i int) string {
	if f == FormatJSONL {
		return ShardLogName(i)
	}
	return BinaryShardLogName(i)
}

// NewRecordSink returns the sink writing this format to w (FormatAuto
// writes binary, the fresh-run default).
func (f RecordFormat) NewRecordSink(w io.Writer) RecordSink {
	if f == FormatJSONL {
		return NewJSONLSink(w)
	}
	return NewBinarySink(w)
}

// SniffRecordFormat reports the format of a record log from its leading
// bytes: FormatBinary on the frame magic, FormatAuto (unknown) on an empty
// prefix, FormatJSONL otherwise.
func SniffRecordFormat(prefix []byte) RecordFormat {
	if len(prefix) == 0 {
		return FormatAuto
	}
	if prefix[0] == binMagic0 {
		return FormatBinary
	}
	return FormatJSONL
}

// RecordSource streams episode records: Read returns the next record, or
// io.EOF after the last (a truncated tail — the crash-mid-write signature
// in either format — also ends the stream cleanly). Any other error is
// corruption or I/O failure. Sources need not be safe for concurrent use.
type RecordSource interface {
	Read() (metrics.EpisodeRecord, error)
}

// NewRecordReader streams records from one log in either format,
// auto-detected from the first byte.
func NewRecordReader(r io.Reader) RecordSource {
	return &recordReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// recordReader defers the format decision to the first Read, when the
// first byte is available.
type recordReader struct {
	br  *bufio.Reader
	src RecordSource
}

// Read implements RecordSource.
func (r *recordReader) Read() (metrics.EpisodeRecord, error) {
	if r.src == nil {
		b, err := r.br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return metrics.EpisodeRecord{}, io.EOF
			}
			return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
		}
		if b[0] == binMagic0 {
			r.src = &binarySource{br: r.br}
		} else {
			r.src = newJSONLSource(r.br)
		}
	}
	return r.src.Read()
}

// binarySource streams binary frames. An incomplete trailing frame —
// header or payload cut short by a crash — is dropped and ends the stream;
// a complete frame that fails to decode is corruption.
type binarySource struct {
	br    *bufio.Reader
	frame []byte // reused frame buffer
}

// Read implements RecordSource.
func (s *binarySource) Read() (metrics.EpisodeRecord, error) {
	header, err := s.br.Peek(binHeaderLen)
	if err != nil {
		if err == io.EOF {
			// 0 bytes left is the clean end; 1..6 is a truncated tail,
			// tolerated the same way.
			return metrics.EpisodeRecord{}, io.EOF
		}
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
	}
	// Validate the header before committing to a payload-sized read.
	if _, _, err := DecodeBinaryRecord(header); err != nil && err != errShortRecord {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
	}
	payload := int(uint32(header[3])<<24 | uint32(header[4])<<16 | uint32(header[5])<<8 | uint32(header[6]))
	total := binHeaderLen + payload
	if cap(s.frame) < total {
		s.frame = make([]byte, total)
	}
	s.frame = s.frame[:total]
	if _, err := io.ReadFull(s.br, s.frame); err != nil {
		if err == io.ErrUnexpectedEOF {
			return metrics.EpisodeRecord{}, io.EOF // truncated tail
		}
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
	}
	rec, _, err := DecodeBinaryRecord(s.frame)
	if err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
	}
	return rec, nil
}

// jsonlSource streams JSONL records with the resume loader's tail
// tolerance: a bad line is fatal only when a later non-empty line follows,
// so a truncated or corrupt final line is dropped.
type jsonlSource struct {
	sc      *bufio.Scanner
	pending error
	line    int
}

func newJSONLSource(r io.Reader) *jsonlSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	return &jsonlSource{sc: sc}
}

// Read implements RecordSource.
func (s *jsonlSource) Read() (metrics.EpisodeRecord, error) {
	for s.sc.Scan() {
		s.line++
		raw := bytes.TrimSpace(s.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if s.pending != nil {
			return metrics.EpisodeRecord{}, s.pending
		}
		var rec metrics.EpisodeRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			s.pending = fmt.Errorf("campaign: resume: line %d: %w", s.line, err)
			continue
		}
		return rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
	}
	return metrics.EpisodeRecord{}, io.EOF
}

// sliceSource adapts an in-memory record slice to RecordSource — the
// compatibility bridge from Config.Resume to the streaming seed path.
type sliceSource struct {
	recs []metrics.EpisodeRecord
}

// Read implements RecordSource.
func (s *sliceSource) Read() (metrics.EpisodeRecord, error) {
	if len(s.recs) == 0 {
		return metrics.EpisodeRecord{}, io.EOF
	}
	rec := s.recs[0]
	s.recs = s.recs[1:]
	return rec, nil
}

// RecordStream is a RecordSource over files that the caller must Close.
// Close is safe after the stream is exhausted and on every error path.
type RecordStream struct {
	src   RecordSource
	paths []string // remaining shard logs (directory streams)
	f     *os.File // file backing src, nil when exhausted
}

// OpenRecordsPath opens a record log for streaming: a file streams its
// records, a directory streams every shard log it holds (records-*.jsonl
// and records-*.bin, in sorted name order). Format is auto-detected per
// file. Reading holds at most one file open at a time, so resuming a
// million-episode shard directory costs one fd and one record of memory.
func OpenRecordsPath(path string) (*RecordStream, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	if info.IsDir() {
		return OpenRecordsDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	return &RecordStream{src: NewRecordReader(f), f: f}, nil
}

// OpenRecordsDir streams every shard log in dir, in sorted name order —
// the streaming counterpart of LoadRecordsDir. The stream's record order
// is per-shard completion order, not the canonical campaign order; resume
// seeding is order-independent, and callers that need the canonical order
// sort after draining (LoadRecordsDir) or merge (MergeRecordsJSONL).
func OpenRecordsDir(dir string) (*RecordStream, error) {
	paths, err := shardLogPaths(dir)
	if err != nil {
		return nil, err
	}
	return &RecordStream{paths: paths}, nil
}

// Read implements RecordSource.
func (s *RecordStream) Read() (metrics.EpisodeRecord, error) {
	for {
		if s.src == nil {
			if len(s.paths) == 0 {
				return metrics.EpisodeRecord{}, io.EOF
			}
			f, err := os.Open(s.paths[0])
			if err != nil {
				return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", err)
			}
			s.paths = s.paths[1:]
			s.f, s.src = f, NewRecordReader(f)
		}
		rec, err := s.src.Read()
		if err == io.EOF {
			s.src = nil
			if s.f != nil {
				closeErr := s.f.Close()
				s.f = nil
				if closeErr != nil {
					return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %w", closeErr)
				}
			}
			continue
		}
		if err != nil && s.f != nil {
			return metrics.EpisodeRecord{}, fmt.Errorf("campaign: resume: %s: %w", filepath.Base(s.f.Name()), unwrapResume(err))
		}
		return rec, err
	}
}

// unwrapResume strips the "campaign: resume: " layer a per-file source
// already added, so directory streams name the shard without doubling the
// prefix.
func unwrapResume(err error) error {
	return errTrimPrefix{err}
}

// errTrimPrefix hides one "campaign: resume: " prefix when printing while
// preserving the wrapped chain for errors.Is/As.
type errTrimPrefix struct{ err error }

func (e errTrimPrefix) Error() string {
	const prefix = "campaign: resume: "
	msg := e.err.Error()
	if len(msg) > len(prefix) && msg[:len(prefix)] == prefix {
		return msg[len(prefix):]
	}
	return msg
}

func (e errTrimPrefix) Unwrap() error { return e.err }

// Close releases the stream's open file, if any.
func (s *RecordStream) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// shardLogPaths lists every shard log in dir — both formats — in sorted
// name order.
func shardLogPaths(dir string) ([]string, error) {
	var paths []string
	for _, pattern := range []string{shardLogPattern, binShardLogPattern} {
		part, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, fmt.Errorf("campaign: resume: %w", err)
		}
		paths = append(paths, part...)
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadRecords reads every record from one log in either format — the
// auto-detecting counterpart of LoadRecordsJSONL, same tail tolerance.
func LoadRecords(r io.Reader) ([]metrics.EpisodeRecord, error) {
	return drainSource(NewRecordReader(r))
}

// drainSource collects a source's remaining records.
func drainSource(src RecordSource) ([]metrics.EpisodeRecord, error) {
	var recs []metrics.EpisodeRecord
	for {
		rec, err := src.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
