package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/avfi/avfi/internal/metrics"
)

// codecRecords covers the binary format's edge cases: empty labels, no
// violations, many violations, negative mission/repetition (foreign
// records carry them), NaN-free float extremes, and flag combinations.
func codecRecords() []metrics.EpisodeRecord {
	return []metrics.EpisodeRecord{
		{},
		{Injector: "noinject", Mission: 0, Repetition: 1, Seed: 7, Success: true, DistanceKM: 0.4},
		{Injector: "gaussian", Mission: 2, Repetition: 0, Seed: 8, DistanceKM: 0.1,
			Violations: []metrics.ViolationRecord{{Kind: "lane", TimeSec: 3}}},
		{Injector: "outputdelay", Mission: -3, Repetition: -1, Seed: 1<<64 - 1,
			DistanceKM: -1.5, DurationSec: 1e300, InjectionTimeSec: 2.25,
			Violations: []metrics.ViolationRecord{
				{Kind: "collision", TimeSec: 1.5, Accident: true},
				{Kind: "", TimeSec: 0},
				{Kind: "offroad", TimeSec: -2},
			}},
	}
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	for _, want := range codecRecords() {
		frame, err := EncodeBinaryRecord(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, n, err := DecodeBinaryRecord(frame)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(frame) {
			t.Errorf("decode consumed %d of %d frame bytes", n, len(frame))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mangled:\n got  %+v\n want %+v", got, want)
		}
	}
}

func TestBinaryRecordRejectsOversizedFields(t *testing.T) {
	huge := metrics.EpisodeRecord{Injector: string(make([]byte, 1<<16))}
	if _, err := EncodeBinaryRecord(huge); err == nil {
		t.Error("64KiB injector label accepted")
	}
	wide := metrics.EpisodeRecord{Mission: 1 << 40}
	if _, err := EncodeBinaryRecord(wide); err == nil {
		t.Error("mission outside int32 accepted")
	}
	badKind := metrics.EpisodeRecord{Violations: []metrics.ViolationRecord{{Kind: string(make([]byte, 300))}}}
	if _, err := EncodeBinaryRecord(badKind); err == nil {
		t.Error("300-byte violation kind accepted")
	}
}

// TestLoadRecordsBinary mirrors TestLoadRecordsJSONL through the binary
// sink and the auto-detecting loader.
func TestLoadRecordsBinary(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	want := codecRecords()
	for _, r := range want {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("binary sink round trip mangled:\n got  %+v\n want %+v", got, want)
	}
}

// TestLoadRecordsBinaryTruncatedTail: a crash mid-frame leaves a partial
// final frame; the loader must keep every complete record and drop the
// tail without erroring — at every cut point, including mid-header.
func TestLoadRecordsBinaryTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	var last []byte
	for m := 0; m < 3; m++ {
		if err := sink.Consume(metrics.EpisodeRecord{Injector: "noinject", Mission: m}); err != nil {
			t.Fatal(err)
		}
		if m == 2 {
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			last, _ = EncodeBinaryRecord(metrics.EpisodeRecord{Injector: "noinject", Mission: 2})
		}
	}
	whole := buf.Bytes()
	for cut := len(whole) - len(last) + 1; cut < len(whole); cut++ {
		got, err := LoadRecords(bytes.NewReader(whole[:cut]))
		if err != nil {
			t.Fatalf("cut at %d not tolerated: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut at %d loaded %d records, want 2", cut, len(got))
		}
	}
}

// TestLoadRecordsBinaryMidFileCorruption: a complete-but-invalid frame is
// corruption, never silently skipped.
func TestLoadRecordsBinaryMidFileCorruption(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	for m := 0; m < 3; m++ {
		if err := sink.Consume(metrics.EpisodeRecord{Injector: "noinject", Mission: m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	frame, _ := EncodeBinaryRecord(metrics.EpisodeRecord{Injector: "noinject", Mission: 0})
	data := append([]byte(nil), buf.Bytes()...)
	data[len(frame)+1] ^= 0xFF // second frame's magic
	if _, err := LoadRecords(bytes.NewReader(data)); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

func TestCompleteBinaryPrefixLen(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	for _, r := range codecRecords() {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if got, err := CompleteBinaryPrefixLen(bytes.NewReader(whole)); err != nil || got != int64(len(whole)) {
		t.Errorf("complete log prefix = %d, %v; want %d, nil", got, err, len(whole))
	}
	// Any cut into the final frame clamps back to the frame boundary.
	last, _ := EncodeBinaryRecord(codecRecords()[len(codecRecords())-1])
	boundary := int64(len(whole) - len(last))
	for _, cut := range []int{len(whole) - 1, len(whole) - len(last) + 3, len(whole) - len(last) + 1} {
		got, err := CompleteBinaryPrefixLen(bytes.NewReader(whole[:cut]))
		if err != nil || got != boundary {
			t.Errorf("cut at %d: prefix = %d, %v; want %d, nil", cut, got, err, boundary)
		}
	}
	// A corrupt header is an error, not a clamp point.
	bad := append([]byte(nil), whole...)
	bad[1] ^= 0xFF
	if _, err := CompleteBinaryPrefixLen(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt leading header clamped instead of erroring")
	}
	if got, err := CompleteBinaryPrefixLen(bytes.NewReader(nil)); err != nil || got != 0 {
		t.Errorf("empty log prefix = %d, %v; want 0, nil", got, err)
	}
}

// FuzzDecodeRecord: DecodeBinaryRecord must never panic on arbitrary
// bytes, and every frame it accepts must re-encode to the identical bytes
// (the encoding is canonical).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range codecRecords() {
		frame, err := EncodeBinaryRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{binMagic0})
	f.Add([]byte{binMagic0, binMagic1, BinaryRecordVersion, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeBinaryRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		again, err := AppendBinaryRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode diverged:\n got  %x\n want %x", again, data[:n])
		}
	})
}

// BenchmarkRecordCodec compares one record's encode+decode round trip in
// the binary frame format against JSONL — the per-episode cost the binary
// hot path removes from million-episode sweeps.
func BenchmarkRecordCodec(b *testing.B) {
	rec := metrics.EpisodeRecord{
		Injector: "gaussian", Mission: 5, Repetition: 1, Seed: 123456789,
		Success: false, DistanceKM: 0.734, DurationSec: 92.5, InjectionTimeSec: 14.25,
		Violations: []metrics.ViolationRecord{
			{Kind: "lane_violation", TimeSec: 31.5},
			{Kind: "collision_vehicle", TimeSec: 77.25, Accident: true},
		},
	}
	b.Run("binary", func(b *testing.B) {
		var frame []byte
		var err error
		for i := 0; i < b.N; i++ {
			if frame, err = AppendBinaryRecord(frame[:0], rec); err != nil {
				b.Fatal(err)
			}
			if _, _, err = DecodeBinaryRecord(frame); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(frame)))
	})
	b.Run("jsonl", func(b *testing.B) {
		var line []byte
		var err error
		for i := 0; i < b.N; i++ {
			if line, err = json.Marshal(rec); err != nil {
				b.Fatal(err)
			}
			var out metrics.EpisodeRecord
			if err = json.Unmarshal(line, &out); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(line)))
	})
}
