// The service's HTTP face: submit/status/results for campaigns and the
// worker announce endpoint, mounted on the telemetry endpoint's mux (see
// telemetry.Server.Handle) so one port serves the whole control plane
// alongside /metrics, /statusz and pprof.
//
//	POST /campaigns             submit a CampaignSpec       -> {"id": "c1"}
//	GET  /campaigns             list campaigns              -> [CampaignInfo]
//	GET  /campaigns/{id}         one campaign's status       -> CampaignInfo
//	GET  /campaigns/{id}/results stream records (?format=jsonl|binary)
//	POST /workers               announce a worker           -> WorkerInfo
//	GET  /workers               list registered workers     -> [WorkerInfo]
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Handler returns the service's HTTP API, rooted at /campaigns and
// /workers.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", s.handleCampaigns)
	mux.HandleFunc("/campaigns/", s.handleCampaign)
	mux.HandleFunc("/workers", s.handleWorkers)
	return mux
}

// writeJSON renders one API response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are gone; nothing to signal with
}

// writeError renders one API error.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleCampaigns serves POST /campaigns (submit) and GET /campaigns
// (list).
func (s *Service) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Campaigns())
	case http.MethodPost:
		var spec CampaignSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding campaign spec: %w", err))
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrServiceClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleCampaign serves GET /campaigns/{id} and GET
// /campaigns/{id}/results.
func (s *Service) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		info, err := s.Campaign(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	case "results":
		name := r.URL.Query().Get("format")
		if name == "" {
			name = "jsonl" // curl-friendly default; ?format=binary for the compact stream
		}
		format, err := ParseRecordFormat(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if _, err := s.Campaign(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if format == FormatJSONL {
			w.Header().Set("Content-Type", "application/jsonl")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		if err := s.WriteResults(w, id, format); err != nil {
			// Mid-body failure: the status line is sent; log and cut.
			writeError(w, http.StatusInternalServerError, err)
		}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: unknown resource %q", sub))
	}
}

// handleWorkers serves POST /workers (announce) and GET /workers (list).
func (s *Service) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Workers())
	case http.MethodPost:
		var req struct {
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding worker announce: %w", err))
			return
		}
		info, err := s.AddWorker(req.Addr)
		if err != nil {
			var wm *WorldMismatchError
			switch {
			case errors.As(err, &wm):
				// The worker serves a different world: announcing it again
				// cannot help, bounce it permanently.
				writeError(w, http.StatusConflict, err)
			case errors.Is(err, ErrServiceClosed):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}
