// Sharded record logs: a campaign with Config.ShardSinks streams each
// aggregation shard to its own JSONL file (cmd/avfi names them
// records-<shard>.jsonl inside the -stream-records directory, one shard
// per engine slot). Records sort into a total, schedule-independent order,
// so the shards are a partition of the canonical log: MergeRecordsJSONL
// over any sharding — including the degenerate single log — produces the
// same byte stream, and LoadRecordsDir feeds a whole shard directory into
// Config.Resume exactly like one log file.

package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/avfi/avfi/internal/metrics"
)

// ShardLogName names shard i's JSONL record log inside a shard directory.
func ShardLogName(i int) string { return fmt.Sprintf("records-%d.jsonl", i) }

// shardLogPattern globs every shard log in a directory.
const shardLogPattern = "records-*.jsonl"

// LoadRecordsDir reads every shard log (records-*.jsonl) in dir and returns
// the union of their records in the canonical campaign order. Each shard
// tolerates a truncated final line (the signature of a crash mid-write),
// exactly like LoadRecordsJSONL on a single log. A directory with no shard
// logs returns no records — indistinguishable from an empty log, so a
// first run against a fresh directory resumes from nothing.
func LoadRecordsDir(dir string) ([]metrics.EpisodeRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, shardLogPattern))
	if err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	sort.Strings(paths)
	var recs []metrics.EpisodeRecord
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("campaign: resume: %w", err)
		}
		shard, err := LoadRecordsJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("campaign: resume: %s: %w", filepath.Base(path), err)
		}
		recs = append(recs, shard...)
	}
	sortRecords(recs)
	return recs, nil
}

// MergeRecordsJSONL reads episode records from every source log — shard
// logs, single logs, or any mix — and writes the canonical record stream
// to w: the union of all complete records, sorted into the campaign's
// deterministic (cell, mission, repetition) order, one JSON object per
// line. Truncated final lines are tolerated per source. Because the order
// is total over a campaign's episodes, merging a sharded run's logs and
// merging an equivalent single-sink run's log produce byte-identical
// output. It returns the number of records written.
func MergeRecordsJSONL(w io.Writer, sources ...io.Reader) (int, error) {
	var recs []metrics.EpisodeRecord
	for i, src := range sources {
		part, err := LoadRecordsJSONL(src)
		if err != nil {
			return 0, fmt.Errorf("campaign: merge: source %d: %w", i, err)
		}
		recs = append(recs, part...)
	}
	sortRecords(recs)
	enc := json.NewEncoder(w)
	for i, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return i, fmt.Errorf("campaign: merge: %w", err)
		}
	}
	return len(recs), nil
}
