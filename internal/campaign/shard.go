// Sharded record logs: a campaign with Config.ShardSinks streams each
// aggregation shard to its own log file (cmd/avfi names them
// records-<shard>.bin — or .jsonl under -record-format jsonl — inside the
// -stream-records directory, one shard per engine slot). Records sort into
// a total, schedule-independent order, so the shards are a partition of
// the canonical log: MergeRecordsJSONL over any sharding — including the
// degenerate single log — produces the same byte stream, and
// LoadRecordsDir feeds a whole shard directory into Config.Resume exactly
// like one log file. Both formats are read transparently (auto-detected
// per file) and may coexist in one directory.

package campaign

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/avfi/avfi/internal/metrics"
)

// ShardLogName names shard i's JSONL record log inside a shard directory.
func ShardLogName(i int) string { return fmt.Sprintf("records-%d.jsonl", i) }

// BinaryShardLogName names shard i's binary record log inside a shard
// directory.
func BinaryShardLogName(i int) string { return fmt.Sprintf("records-%d.bin", i) }

// shardLogPattern and binShardLogPattern glob a directory's shard logs,
// one pattern per format.
const (
	shardLogPattern    = "records-*.jsonl"
	binShardLogPattern = "records-*.bin"
)

// LoadRecordsDir reads every shard log (records-*.jsonl and records-*.bin)
// in dir and returns the union of their records in the canonical campaign
// order. Each shard tolerates a truncated final line or frame (the
// signature of a crash mid-write), exactly like LoadRecordsJSONL on a
// single log. A directory with no shard logs returns no records —
// indistinguishable from an empty log, so a first run against a fresh
// directory resumes from nothing.
func LoadRecordsDir(dir string) ([]metrics.EpisodeRecord, error) {
	paths, err := shardLogPaths(dir)
	if err != nil {
		return nil, err
	}
	var recs []metrics.EpisodeRecord
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("campaign: resume: %w", err)
		}
		shard, err := LoadRecords(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("campaign: resume: %s: %w", filepath.Base(path), unwrapResume(err))
		}
		recs = append(recs, shard...)
	}
	sortRecords(recs)
	return recs, nil
}

// MergeRecordsJSONL reads episode records from every source log — shard
// logs, single logs, or any mix of formats — and writes the canonical
// JSONL record stream to w: the union of all complete records, sorted into
// the campaign's deterministic (cell, mission, repetition) order, one JSON
// object per line. Truncated final lines/frames are tolerated per source.
// Because the order is total over a campaign's episodes, merging a sharded
// run's logs and merging an equivalent single-sink run's log produce
// byte-identical output. It returns the number of records written.
func MergeRecordsJSONL(w io.Writer, sources ...io.Reader) (int, error) {
	return MergeRecords(w, FormatJSONL, sources...)
}

// MergeRecords is MergeRecordsJSONL with a selectable output format — the
// core of the avfi-records converter. The merge is a k-way heap merge over
// per-source heads: each source is sorted into its own run, then the
// smallest head across runs streams straight to w, so the merged output is
// written incrementally and no combined slice of the union is ever built.
func MergeRecords(w io.Writer, format RecordFormat, sources ...io.Reader) (int, error) {
	runs := make(mergeHeap, 0, len(sources))
	for i, src := range sources {
		part, err := LoadRecords(src)
		if err != nil {
			return 0, fmt.Errorf("campaign: merge: source %d: %w", i, unwrapResume(err))
		}
		if len(part) == 0 {
			continue
		}
		// Shard logs are in completion order; each run sorts independently
		// (smaller sorts than the union's) so the heads merge globally.
		sortRecords(part)
		runs = append(runs, part)
	}
	heap.Init(&runs)

	var enc *json.Encoder
	var frame []byte
	if format == FormatJSONL {
		enc = json.NewEncoder(w)
	}
	n := 0
	for len(runs) > 0 {
		rec := runs[0][0]
		if len(runs[0]) == 1 {
			heap.Pop(&runs)
		} else {
			runs[0] = runs[0][1:]
			heap.Fix(&runs, 0)
		}
		var err error
		if enc != nil {
			err = enc.Encode(rec)
		} else {
			frame, err = AppendBinaryRecord(frame[:0], rec)
			if err == nil {
				_, err = w.Write(frame)
			}
		}
		if err != nil {
			return n, fmt.Errorf("campaign: merge: %w", err)
		}
		n++
	}
	return n, nil
}

// mergeHeap is a min-heap of sorted record runs, ordered by each run's
// head record in the canonical campaign order.
type mergeHeap [][]metrics.EpisodeRecord

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(a, b int) bool  { return recordLess(h[a][0], h[b][0]) }
func (h mergeHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.([]metrics.EpisodeRecord)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	run := old[n-1]
	*h = old[:n-1]
	return run
}
