package campaign

import (
	"bytes"
	"strings"
	"testing"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/metrics"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/world"
)

// tinyWorldConfig keeps campaign-mechanics tests fast: small town, small
// camera.
func tinyWorldConfig() sim.WorldConfig {
	cfg := sim.DefaultWorldConfig()
	cfg.Town.GridW, cfg.Town.GridH = 3, 3
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	return cfg
}

// tinyAgent returns an untrained agent matching the tiny camera — campaign
// mechanics don't require driving skill.
func tinyAgent(tb testing.TB) *agent.Agent {
	tb.Helper()
	a, err := agent.New(agent.Config{
		ImageW: 16, ImageH: 12, Conv1: 4, Conv2: 4,
		FeatDim: 8, MeasDim: 4, HeadHidden: 8, Seed: 11,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func tinyConfig(tb testing.TB, injectors []InjectorSource) Config {
	tb.Helper()
	return Config{
		World:       tinyWorldConfig(),
		Agent:       AgentSource{Agent: tinyAgent(tb)},
		Injectors:   injectors,
		Missions:    2,
		Repetitions: 2,
		Seed:        3,
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	if err := good.Validate(); err != nil {
		t.Errorf("good config invalid: %v", err)
	}
	bad := good
	bad.Injectors = nil
	if err := bad.Validate(); err == nil {
		t.Error("no injectors accepted")
	}
	bad = good
	bad.Missions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero missions accepted")
	}
	bad = good
	bad.Agent = AgentSource{}
	if err := bad.Validate(); err == nil {
		t.Error("missing agent accepted")
	}
	bad = good
	bad.Injectors = []InjectorSource{Registry("nonsense")}
	if err := bad.Validate(); err == nil {
		t.Error("unknown injector accepted")
	}
	bad = good
	bad.Injectors = []InjectorSource{{}}
	if err := bad.Validate(); err == nil {
		t.Error("unnamed injector accepted")
	}
	bad = good
	bad.NumNPCs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative NPC count accepted")
	}
}

func TestRunSmallCampaign(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{
		Registry(fault.NoopName),
		Registry("gaussian"),
	})
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantEpisodes := 2 * 2 * 2 // injectors x missions x reps
	if len(rs.Records) != wantEpisodes {
		t.Fatalf("records = %d, want %d", len(rs.Records), wantEpisodes)
	}
	if len(rs.Reports) != 2 {
		t.Fatalf("reports = %d", len(rs.Reports))
	}
	// Reports follow injector config order, not alphabetical.
	if rs.Reports[0].Injector != fault.NoopName || rs.Reports[1].Injector != "gaussian" {
		t.Errorf("report order: %s, %s", rs.Reports[0].Injector, rs.Reports[1].Injector)
	}
	for _, rec := range rs.Records {
		if rec.DistanceKM < 0 || rec.DurationSec <= 0 {
			t.Errorf("suspicious record: %+v", rec)
		}
	}
	if _, ok := rs.ReportFor("gaussian"); !ok {
		t.Error("ReportFor failed")
	}
	if _, ok := rs.ReportFor("missing"); ok {
		t.Error("ReportFor invented a report")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() *ResultSet {
		cfg := tinyConfig(t, []InjectorSource{Registry("saltpepper")})
		cfg.Parallelism = 3
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatal("record counts differ")
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Seed != rb.Seed || ra.DistanceKM != rb.DistanceKM ||
			ra.Success != rb.Success || len(ra.Violations) != len(rb.Violations) {
			t.Fatalf("record %d diverged:\n%+v\n%+v", i, ra, rb)
		}
	}
}

func TestCampaignOverTCP(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Missions = 1
	cfg.Repetitions = 1
	cfg.UseTCP = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 1 {
		t.Fatalf("records = %d", len(rs.Records))
	}

	// Same campaign over the pipe must agree (transport equivalence).
	cfg2 := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg2.Missions = 1
	cfg2.Repetitions = 1
	r2, err := NewRunner(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records[0].DistanceKM != rs2.Records[0].DistanceKM ||
		rs.Records[0].Success != rs2.Records[0].Success {
		t.Errorf("TCP vs pipe diverged: %+v vs %+v", rs.Records[0], rs2.Records[0])
	}
}

func TestMissionsDeterministicAndExposed(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	r1, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	r2, err := NewRunner(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Missions(), r2.Missions()
	if len(m1) != 2 || len(m2) != 2 {
		t.Fatal("missions not sampled")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Error("mission sampling not deterministic")
		}
	}
}

func TestInputFaultSuiteShape(t *testing.T) {
	suite := InputFaultSuite()
	if len(suite) != 6 {
		t.Fatalf("suite size = %d, want 6", len(suite))
	}
	if suite[0].Name != fault.NoopName {
		t.Error("suite must start with the baseline")
	}
	for _, src := range suite {
		if src.New == nil {
			if _, err := fault.Lookup(src.Name); err != nil {
				t.Errorf("suite entry %q unresolvable", src.Name)
			}
		}
	}
}

func TestDelaySweepShape(t *testing.T) {
	sweep := DelaySweep(Fig4Frames)
	if len(sweep) != 5 {
		t.Fatalf("sweep size = %d", len(sweep))
	}
	if sweep[0].Name != "delay-00" || sweep[4].Name != "delay-30" {
		t.Errorf("sweep names: %s .. %s", sweep[0].Name, sweep[4].Name)
	}
	// Factories must produce independent instances.
	a := sweep[2].New()
	b := sweep[2].New()
	if a == b {
		t.Error("factory returned shared instance")
	}
}

func TestWriteRecordsCSV(t *testing.T) {
	records := []metrics.EpisodeRecord{
		{Injector: "noinject", Mission: 0, Seed: 1, Success: true, DistanceKM: 0.5, DurationSec: 30},
		{Injector: "gaussian", Mission: 1, Seed: 2, DistanceKM: 0.2, DurationSec: 60,
			Violations: []metrics.ViolationRecord{{Kind: "lane", TimeSec: 5}}},
	}
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "injector,mission") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "gaussian") || !strings.Contains(lines[2], "5.000") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteReportsCSVAndJSON(t *testing.T) {
	reports := []metrics.Report{
		metrics.BuildReport("noinject", []metrics.EpisodeRecord{
			{Injector: "noinject", Success: true, DistanceKM: 1},
		}),
	}
	var buf bytes.Buffer
	if err := WriteReportsCSV(&buf, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "noinject") {
		t.Error("reports CSV missing injector")
	}

	buf.Reset()
	rs := &ResultSet{Reports: reports}
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"Injector\": \"noinject\"") {
		t.Errorf("JSON output: %s", buf.String())
	}

	buf.Reset()
	PrintTable(&buf, "Figure 2", reports)
	if !strings.Contains(buf.String(), "Figure 2") || !strings.Contains(buf.String(), "noinject") {
		t.Error("table output incomplete")
	}
}

func TestCampaignWeatherApplied(t *testing.T) {
	// Rain vs clear must change episode outcomes deterministically (same
	// seeds, different sensory input to the agent).
	run := func(w world.Weather) *ResultSet {
		cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
		cfg.Missions = 1
		cfg.Repetitions = 1
		cfg.Weather = w
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	clear := run(world.WeatherClear)
	rain := run(world.WeatherRain)
	// Identical seeds: any outcome difference is attributable to weather.
	// (The untrained agent's reaction to rain pixels differs; exact
	// equality would mean weather never reached the pipeline.)
	if clear.Records[0].DistanceKM == rain.Records[0].DistanceKM &&
		clear.Records[0].DurationSec == rain.Records[0].DurationSec {
		t.Error("weather had no observable effect on the episode")
	}
}

func TestCampaignAEBConfig(t *testing.T) {
	cfg := tinyConfig(t, []InjectorSource{Registry(fault.NoopName)})
	cfg.Missions = 1
	cfg.Repetitions = 1
	cfg.EnableAEB = true
	cfg.NumNPCs = 3
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
}
