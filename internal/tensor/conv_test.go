package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/rng"
)

func TestConv2DShape(t *testing.T) {
	cases := []struct {
		h, w, kh, kw, stride, pad int
		oh, ow                    int
	}{
		{32, 32, 3, 3, 1, 1, 32, 32},
		{32, 32, 3, 3, 2, 1, 16, 16},
		{5, 5, 3, 3, 1, 0, 3, 3},
		{8, 6, 2, 2, 2, 0, 4, 3},
	}
	for _, c := range cases {
		oh, ow := Conv2DShape(c.h, c.w, c.kh, c.kw, c.stride, c.pad)
		if oh != c.oh || ow != c.ow {
			t.Errorf("Conv2DShape(%+v) = %d,%d want %d,%d", c, oh, ow, c.oh, c.ow)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity (flattened).
	img := MustFromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols, err := Im2Col(img, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 4 || cols.Dim(1) != 1 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	for i, w := range []float64{1, 2, 3, 4} {
		if cols.At(i, 0) != w {
			t.Fatalf("cols = %v", cols.Data())
		}
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 1 channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 rows of 4.
	img := MustFromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols, err := Im2Col(img, 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRow0 := []float64{1, 2, 4, 5}
	for j, w := range wantRow0 {
		if cols.At(0, j) != w {
			t.Fatalf("row0 = %v", cols.Data()[:4])
		}
	}
	wantRow3 := []float64{5, 6, 8, 9}
	for j, w := range wantRow3 {
		if cols.At(3, j) != w {
			t.Fatalf("row3 wrong")
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := MustFromSlice([]float64{5}, 1, 1, 1)
	cols, err := Im2Col(img, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1x1 output; center of the 3x3 receptive field is the pixel, rest pad.
	if cols.Dim(0) != 1 || cols.Dim(1) != 9 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	for j := 0; j < 9; j++ {
		want := 0.0
		if j == 4 {
			want = 5
		}
		if cols.At(0, j) != want {
			t.Fatalf("cols = %v", cols.Data())
		}
	}
}

func TestIm2ColErrors(t *testing.T) {
	if _, err := Im2Col(New(4, 4), 2, 2, 1, 0); err == nil {
		t.Error("2-d input did not error")
	}
	if _, err := Im2Col(New(1, 2, 2), 5, 5, 1, 0); err == nil {
		t.Error("oversized kernel did not error")
	}
}

// TestConvViaIm2ColMatchesDirect verifies the im2col+matmul path against a
// naive direct convolution.
func TestConvViaIm2ColMatchesDirect(t *testing.T) {
	r := rng.New(10)
	const (
		c, h, w      = 2, 6, 5
		outC, kh, kw = 3, 3, 3
		stride, pad  = 1, 1
	)
	img := randTensor(r, c, h, w)
	// Filters as (C*KH*KW, OutC) matrix.
	filt := randTensor(r, c*kh*kw, outC)

	cols, err := Im2Col(img, kh, kw, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MatMul(cols, filt) // (OH*OW, OutC)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)

	// Naive direct conv.
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float64
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							fIdx := ch*kh*kw + ky*kw + kx
							sum += img.At(ch, iy, ix) * filt.At(fIdx, oc)
						}
					}
				}
				if got := out.At(oy*ow+ox, oc); math.Abs(got-sum) > 1e-9 {
					t.Fatalf("conv mismatch at oc=%d oy=%d ox=%d: %v vs %v", oc, oy, ox, got, sum)
				}
			}
		}
	}
}

// TestCol2ImAdjoint checks <Im2Col(x), y> == <x, Col2Im(y)>, the defining
// property of an adjoint pair — this is what makes conv backprop correct.
func TestCol2ImAdjoint(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		const c, h, w, kh, kw, stride, pad = 2, 5, 4, 3, 3, 1, 1
		x := randTensor(r, c, h, w)
		cols, err := Im2Col(x, kh, kw, stride, pad)
		if err != nil {
			return false
		}
		y := randTensor(r, cols.Dim(0), cols.Dim(1))
		// <Im2Col(x), y>
		var lhs float64
		for i := range cols.Data() {
			lhs += cols.Data()[i] * y.Data()[i]
		}
		// <x, Col2Im(y)>
		back, err := Col2Im(y, c, h, w, kh, kw, stride, pad)
		if err != nil {
			return false
		}
		var rhs float64
		for i := range x.Data() {
			rhs += x.Data()[i] * back.Data()[i]
		}
		return math.Abs(lhs-rhs) < 1e-6*(1+math.Abs(lhs))
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestMaxPool2D(t *testing.T) {
	img := MustFromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}, 1, 4, 4)
	out, argmax, err := MaxPool2D(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 9, 4}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("pool = %v, want %v", out.Data(), want)
		}
	}
	// Backward: gradient lands at the argmax positions.
	grad := MustFromSlice([]float64{10, 20, 30, 40}, 1, 2, 2)
	back, err := MaxPool2DBackward(grad, argmax, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(0, 1, 1) != 10 { // where 4 was
		t.Errorf("grad for max=4 misplaced: %v", back.Data())
	}
	if back.At(0, 1, 3) != 20 { // where 8 was
		t.Errorf("grad for max=8 misplaced")
	}
	if back.At(0, 2, 0) != 30 { // where 9 was
		t.Errorf("grad for max=9 misplaced")
	}
	var total float64
	for _, v := range back.Data() {
		total += v
	}
	if total != 100 {
		t.Errorf("pool backward lost gradient mass: %v", total)
	}
}

func TestMaxPoolErrors(t *testing.T) {
	if _, _, err := MaxPool2D(New(4, 4), 2); err == nil {
		t.Error("2-d pool input did not error")
	}
	if _, _, err := MaxPool2D(New(1, 2, 2), 4); err == nil {
		t.Error("oversized pool window did not error")
	}
	if _, err := MaxPool2DBackward(New(1, 2, 2), make([]int, 3), 1, 4, 4); err == nil {
		t.Error("mismatched argmax did not error")
	}
}
