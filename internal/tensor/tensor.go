// Package tensor implements the dense numeric arrays underlying the AVFI
// driving agent's neural network (the stand-in for the paper's
// imitation-learning CNN). Tensors are row-major float64 with explicit
// shapes; the package provides exactly the operations the nn package needs:
// matmul, broadcast bias addition, elementwise maps, im2col-based 2D
// convolution, and max pooling.
//
// The deliberate float64 choice matters for fault injection: the hardware
// and ML fault models in internal/fault flip bits in these values directly
// (via math.Float64bits), exactly as the paper injects bit-level faults into
// the processing fabric and network weights.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with an explicit shape.
// The zero value is an empty tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's volume.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d values for shape %v", ErrShape, len(data), shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice, panicking on error; for tests and literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor; this
// is the hook the ML fault injector uses to corrupt weights in place.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		shape: append([]int(nil), t.shape...),
		data:  append([]float64(nil), t.data...),
	}
}

// Reshape returns a view with a new shape of equal volume. Storage is shared.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v to %v", ErrShape, t.shape, shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply maps f over every element in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: add %v + %v", ErrShape, t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return nil
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Add returns t + o elementwise.
func Add(t, o *Tensor) (*Tensor, error) {
	out := t.Clone()
	if err := out.AddInPlace(o); err != nil {
		return nil, err
	}
	return out, nil
}

// Mul returns the elementwise (Hadamard) product.
func Mul(t, o *Tensor) (*Tensor, error) {
	if !t.SameShape(o) {
		return nil, fmt.Errorf("%w: mul %v * %v", ErrShape, t.shape, o.shape)
	}
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= o.data[i]
	}
	return out, nil
}

// MatMul multiplies a (m,k) tensor by a (k,n) tensor.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	// ikj loop order for cache-friendly access of b's rows.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// MatMulTransB multiplies a (m,k) by the transpose of b (n,k), yielding (m,n).
// Backprop through Dense layers needs this without materializing transposes.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[1] != b.shape[1] {
		return nil, fmt.Errorf("%w: matmulTB %v x %v^T", ErrShape, a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var sum float64
			for kk := 0; kk < k; kk++ {
				sum += arow[kk] * brow[kk]
			}
			orow[j] = sum
		}
	}
	return out, nil
}

// MatMulTransA multiplies the transpose of a (k,m) by b (k,n), yielding (m,n).
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[0] != b.shape[0] {
		return nil, fmt.Errorf("%w: matmulTA %v^T x %v", ErrShape, a.shape, b.shape)
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// AddRowVec adds a (n,) bias vector to every row of a (m,n) tensor, in place.
func (t *Tensor) AddRowVec(bias *Tensor) error {
	if t.Dims() != 2 || bias.Dims() != 1 || bias.shape[0] != t.shape[1] {
		return fmt.Errorf("%w: addRowVec %v + %v", ErrShape, t.shape, bias.shape)
	}
	m, n := t.shape[0], t.shape[1]
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += bias.data[j]
		}
	}
	return nil
}

// SumRows returns the column sums of a (m,n) tensor as an (n,) vector; used
// for bias gradients.
func SumRows(t *Tensor) (*Tensor, error) {
	if t.Dims() != 2 {
		return nil, fmt.Errorf("%w: sumRows of %v", ErrShape, t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			out.data[j] += row[j]
		}
	}
	return out, nil
}

// MaxAbs returns the largest absolute element value (0 for empty tensors);
// used by gradient-explosion guards and tests.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// IsFinite reports whether every element is finite. Weight fault injection
// can produce Inf/NaN; the agent guards its outputs with this.
func (t *Tensor) IsFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a shape summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("tensor%v[%d elems]", t.shape, len(t.data))
}
