package tensor

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTensor is the gob-encodable form; Tensor's fields are unexported to
// keep the invariant len(data) == volume(shape), so encoding goes through
// this mirror struct.
type wireTensor struct {
	Shape []int
	Data  []float64
}

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf writerBuf
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(wireTensor{Shape: t.shape, Data: t.data}); err != nil {
		return nil, fmt.Errorf("tensor: encode: %w", err)
	}
	return buf.b, nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(p []byte) error {
	var w wireTensor
	if err := gob.NewDecoder(&readerBuf{b: p}).Decode(&w); err != nil {
		return fmt.Errorf("tensor: decode: %w", err)
	}
	n := 1
	for _, d := range w.Shape {
		if d < 0 {
			return fmt.Errorf("%w: negative dim in decoded shape %v", ErrShape, w.Shape)
		}
		n *= d
	}
	if n != len(w.Data) {
		return fmt.Errorf("%w: decoded %d values for shape %v", ErrShape, len(w.Data), w.Shape)
	}
	t.shape = w.Shape
	t.data = w.Data
	return nil
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuf struct {
	b []byte
	i int
}

func (r *readerBuf) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
