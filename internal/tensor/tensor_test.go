package tensor

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 || x.Dims() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape wrong: %v", x.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if x.At(i, j) != 0 {
				t.Fatal("not zero filled")
			}
		}
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data()[5] != 7 {
		t.Errorf("Set(1,2) did not write offset 5: %v", x.Data())
	}
	if x.At(1, 2) != 7 {
		t.Error("At(1,2) readback failed")
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
	x, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 0) != 3 {
		t.Error("FromSlice layout wrong")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Error("Reshape did not share storage")
	}
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Error("bad reshape did not error")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := MustFromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestApplyAndScale(t *testing.T) {
	x := MustFromSlice([]float64{1, -2, 3}, 3)
	x.Apply(math.Abs)
	if x.At(1) != 2 {
		t.Error("Apply failed")
	}
	x.ScaleInPlace(2)
	if x.At(2) != 6 {
		t.Error("ScaleInPlace failed")
	}
}

func TestAddMul(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Errorf("Add = %v", sum)
	}
	prod, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.At(1, 0) != 90 {
		t.Errorf("Mul = %v", prod)
	}
	if _, err := Add(a, New(3)); !errors.Is(err, ErrShape) {
		t.Error("shape-mismatched Add did not error")
	}
	if _, err := Mul(a, New(3)); !errors.Is(err, ErrShape) {
		t.Error("shape-mismatched Mul did not error")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulShapeError(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("incompatible MatMul did not error")
	}
	if _, err := MatMul(New(6), New(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("1-d MatMul did not error")
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	r := rng.New(1)
	a := randTensor(r, 4, 5)
	b := randTensor(r, 3, 5) // b^T is 5x3
	got, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bt := transpose(b)
	want, err := MatMul(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-12)
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	r := rng.New(2)
	a := randTensor(r, 5, 4) // a^T is 4x5
	b := randTensor(r, 5, 3)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(transpose(a), b)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-12)
}

func TestAddRowVec(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	bias := MustFromSlice([]float64{10, 20}, 2)
	if err := x.AddRowVec(bias); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if x.Data()[i] != w {
			t.Fatalf("AddRowVec = %v", x.Data())
		}
	}
	if err := x.AddRowVec(New(3)); !errors.Is(err, ErrShape) {
		t.Error("bad AddRowVec did not error")
	}
}

func TestSumRows(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s, err := SumRows(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 9 || s.At(1) != 12 {
		t.Errorf("SumRows = %v", s.Data())
	}
}

func TestMaxAbsIsFinite(t *testing.T) {
	x := MustFromSlice([]float64{-5, 2, 3}, 3)
	if x.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
	if !x.IsFinite() {
		t.Error("finite tensor reported non-finite")
	}
	x.Set(math.NaN(), 1)
	if x.IsFinite() {
		t.Error("NaN tensor reported finite")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := randTensor(r, 3, 4)
		b := randTensor(r, 4, 2)
		c := randTensor(r, 2, 5)
		ab, _ := MatMul(a, b)
		abc1, _ := MatMul(ab, c)
		bc, _ := MatMul(b, c)
		abc2, _ := MatMul(a, bc)
		return maxDiff(abc1, abc2) < 1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	x := randTensor(rng.New(3), 4, 7)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if err := gob.NewDecoder(&buf).Decode(&y); err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(&y) {
		t.Fatalf("shape after round trip: %v vs %v", x.Shape(), y.Shape())
	}
	assertClose(t, x, &y, 0)
}

func TestGobRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		x := randTensor(r, rows, cols)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(x); err != nil {
			return false
		}
		var y Tensor
		if err := gob.NewDecoder(&buf).Decode(&y); err != nil {
			return false
		}
		return x.SameShape(&y) && maxDiff(x, &y) == 0
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

// --- helpers ---

func randTensor(r *rng.Stream, shape ...int) *Tensor {
	x := New(shape...)
	for i := range x.Data() {
		x.Data()[i] = r.Range(-2, 2)
	}
	return x
}

func transpose(x *Tensor) *Tensor {
	m, n := x.Dim(0), x.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(x.At(i, j), j, i)
		}
	}
	return out
}

func maxDiff(a, b *Tensor) float64 {
	var m float64
	for i := range a.Data() {
		if d := math.Abs(a.Data()[i] - b.Data()[i]); d > m {
			m = d
		}
	}
	return m
}

func assertClose(t *testing.T, got, want *Tensor, eps float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
	}
	if d := maxDiff(got, want); d > eps {
		t.Fatalf("max diff %v > %v", d, eps)
	}
}
