package tensor

import "fmt"

// Conv2DShape computes the output spatial dimensions of a 2D convolution
// with the given input size, kernel, stride and padding.
func Conv2DShape(h, w, kh, kw, stride, pad int) (oh, ow int) {
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	return oh, ow
}

// Im2Col unrolls an input image tensor of shape (C, H, W) into a matrix of
// shape (OH*OW, C*KH*KW) whose rows are flattened receptive fields, so that
// convolution becomes a single matmul with the (C*KH*KW, OutC) filter
// matrix. Out-of-bounds (padding) samples read as zero.
func Im2Col(img *Tensor, kh, kw, stride, pad int) (*Tensor, error) {
	if img.Dims() != 3 {
		return nil, fmt.Errorf("%w: im2col input %v, want (C,H,W)", ErrShape, img.Shape())
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: im2col output %dx%d for input %v", ErrShape, oh, ow, img.Shape())
	}
	cols := New(oh*ow, c*kh*kw)
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			dst := cols.data[row*c*kh*kw : (row+1)*c*kh*kw]
			di := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst[di] = img.data[base+iy*w+ix]
						}
						di++
					}
				}
			}
			row++
		}
	}
	return cols, nil
}

// Col2Im scatters a (OH*OW, C*KH*KW) gradient matrix back into an image
// gradient of shape (C, H, W) — the adjoint of Im2Col. Overlapping
// receptive fields accumulate.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) (*Tensor, error) {
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	if cols.Dims() != 2 || cols.Dim(0) != oh*ow || cols.Dim(1) != c*kh*kw {
		return nil, fmt.Errorf("%w: col2im input %v, want (%d,%d)", ErrShape, cols.Shape(), oh*ow, c*kh*kw)
	}
	img := New(c, h, w)
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			src := cols.data[row*c*kh*kw : (row+1)*c*kh*kw]
			si := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							img.data[base+iy*w+ix] += src[si]
						}
						si++
					}
				}
			}
			row++
		}
	}
	return img, nil
}

// MaxPool2D applies max pooling with a square window and equal stride over a
// (C, H, W) tensor. It returns the pooled tensor and the argmax indices
// (into the input's flat storage) needed for backprop.
func MaxPool2D(img *Tensor, size int) (out *Tensor, argmax []int, err error) {
	if img.Dims() != 3 {
		return nil, nil, fmt.Errorf("%w: maxpool input %v, want (C,H,W)", ErrShape, img.Shape())
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	oh, ow := h/size, w/size
	if oh == 0 || ow == 0 {
		return nil, nil, fmt.Errorf("%w: maxpool window %d too large for %v", ErrShape, size, img.Shape())
	}
	out = New(c, oh, ow)
	argmax = make([]int, c*oh*ow)
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := img.data[base+oy*size*w+ox*size]
				bestIdx := base + oy*size*w + ox*size
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						idx := base + (oy*size+ky)*w + (ox*size + kx)
						if v := img.data[idx]; v > best {
							best, bestIdx = v, idx
						}
					}
				}
				out.data[oi] = best
				argmax[oi] = bestIdx
				oi++
			}
		}
	}
	return out, argmax, nil
}

// MaxPool2DBackward scatters the pooled gradient back through the argmax
// indices into an input-shaped gradient.
func MaxPool2DBackward(grad *Tensor, argmax []int, c, h, w int) (*Tensor, error) {
	if grad.Len() != len(argmax) {
		return nil, fmt.Errorf("%w: pool backward grad %v vs %d argmax", ErrShape, grad.Shape(), len(argmax))
	}
	out := New(c, h, w)
	for i, idx := range argmax {
		out.data[idx] += grad.data[i]
	}
	return out, nil
}
