package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/avfi/avfi/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of this set is 32/7.
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty moments not zero")
	}
	if Min(nil) != 0 || Max(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty order stats not zero")
	}
	if (Summary(nil) != FiveNum{}) {
		t.Error("empty Summary not zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(xs) != -9 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 6 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-value percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Summary(xs)
	if s.Min != 1 || s.Max != 9 || s.Median != 5 || s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("Summary = %+v", s)
	}
	if s.IQR() != 4 {
		t.Errorf("IQR = %v", s.IQR())
	}
}

func TestSummaryOrdering(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-100, 100)
		}
		s := Summary(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 12}
	h := Histogram(xs, 0, 1, 2)
	// -5 clamps into bucket 0; 12 clamps into bucket 1.
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram([]float64{1, 2}, 5, 5, 3); h[0] != 0 || h[1] != 0 || h[2] != 0 {
		t.Errorf("degenerate histogram = %v", h)
	}
	if h := Histogram([]float64{1}, 0, 1, 0); len(h) != 0 {
		t.Errorf("zero-bucket histogram = %v", h)
	}
}

func TestHistogramNaNIgnored(t *testing.T) {
	xs := []float64{0.1, math.NaN(), 0.9, math.NaN()}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 1 || h[1] != 1 {
		t.Errorf("Histogram with NaNs = %v, want [1 1]", h)
	}
	// All-NaN input counts nothing and, above all, must not panic or
	// scribble outside the bucket slice.
	h = Histogram([]float64{math.NaN()}, 0, 1, 4)
	for i, c := range h {
		if c != 0 {
			t.Errorf("bucket %d = %d from NaN-only input", i, c)
		}
	}
}

func TestHistogramTotalCount(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-10, 10)
		}
		h := Histogram(xs, -10, 10, 7)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormScaled(10, 2)
	}
	lo, hi := BootstrapCI(xs, 0.05, 500, rng.New(1))
	if lo >= hi {
		t.Fatalf("CI inverted: [%v, %v]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Errorf("sample mean %v outside its own bootstrap CI [%v, %v]", m, lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	lo1, hi1 := BootstrapCI(xs, 0.1, 200, rng.New(5))
	lo2, hi2 := BootstrapCI(xs, 0.1, 200, rng.New(5))
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("BootstrapCI not deterministic for fixed stream")
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	lo, hi := BootstrapCI(nil, 0.05, 100, rng.New(1))
	if lo != 0 || hi != 0 {
		t.Error("empty BootstrapCI not zero")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.Range(-5, 5)
		w.Add(xs[i])
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("Welford variance %v != batch %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Error("variance of empty Welford not 0")
	}
	w.Add(5)
	if w.Variance() != 0 || w.Mean() != 5 {
		t.Error("single-sample Welford wrong")
	}
}

func TestMedianSortedInvariance(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(0, 1)
		}
		m1 := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		m2 := Median(sorted)
		return m1 == m2
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
