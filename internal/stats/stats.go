// Package stats implements the summary statistics AVFI reports for
// fault-injection campaigns: means, variances, percentiles, five-number
// summaries for the paper's box plots (Figures 2–4), histograms, and
// bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/avfi/avfi/internal/rng"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo, hi = 0, 0
	}
	if hi >= len(sorted) {
		lo, hi = len(sorted)-1, len(sorted)-1
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FiveNum is the five-number summary used to draw the paper's box plots.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary of xs.
func Summary(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return FiveNum{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary as a compact boxplot row.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// IQR returns the interquartile range.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// Histogram bins xs into n equal-width buckets over [lo, hi]. Values outside
// the range clamp to the end buckets (fault injectors can push metrics past
// any fixed range; we still want them counted).
func Histogram(xs []float64, lo, hi float64, n int) []int {
	counts := make([]int, n)
	if n == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		if math.IsNaN(x) {
			// int(NaN) is platform-dependent and can land anywhere before
			// the clamps below; NaN belongs to no bucket.
			continue
		}
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// BootstrapCI returns the (1-alpha) bootstrap percentile confidence interval
// for the mean of xs, using iters resamples drawn from r. It is
// deterministic for a fixed stream.
func BootstrapCI(xs []float64, alpha float64, iters int, r *rng.Stream) (lo, hi float64) {
	if len(xs) == 0 || iters <= 0 {
		return 0, 0
	}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	return percentileSorted(means, 100*alpha/2), percentileSorted(means, 100*(1-alpha/2))
}

// Welford accumulates running mean/variance without storing samples; the
// campaign runner uses it for per-frame signals that would be too large to
// retain.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
