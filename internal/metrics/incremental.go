package metrics

import (
	"math"
	"sort"

	"github.com/avfi/avfi/internal/stats"
)

// episodeStat is the per-episode digest a ReportBuilder retains: every
// number a Report needs, without the violation list or label strings —
// a few dozen bytes per episode instead of a full EpisodeRecord, so a
// streaming campaign's aggregation memory stays far below record retention.
type episodeStat struct {
	mission    int
	repetition int
	success    bool
	vpk        float64
	apk        float64
	ttv        float64
	hasTTV     bool
	violations int
	km         float64
}

// ReportBuilder accumulates one scenario column's episode records
// incrementally, in any completion order, and produces a Report identical
// to BuildReport over the deterministically-sorted batch of the same
// records. It is the per-cell unit of the campaign's streaming results
// pipeline: records can be aggregated and dropped as they finish instead of
// being retained until the end of a million-episode sweep.
//
// A stats.Welford accumulator tracks the running per-episode VPK alongside
// the exact digests, so in-flight campaigns can report progress (see
// RunningVPK, surfaced live through campaign Config.Progress) without
// building a full Report.
type ReportBuilder struct {
	injector string
	eps      []episodeStat
	running  stats.Welford
	// Running violation tallies: totals are exact integer counts, so unlike
	// the float accumulators they are order-independent by construction.
	violations   int
	violEpisodes int
}

// NewReportBuilder starts an empty builder for one scenario column.
func NewReportBuilder(injector string) *ReportBuilder {
	return &ReportBuilder{injector: injector}
}

// Add folds one episode into the builder.
func (b *ReportBuilder) Add(r EpisodeRecord) {
	s := episodeStat{
		mission:    r.Mission,
		repetition: r.Repetition,
		success:    r.Success,
		vpk:        r.VPK(),
		apk:        r.APK(),
		violations: len(r.Violations),
		km:         r.DistanceKM,
	}
	s.ttv, s.hasTTV = r.TTV()
	b.eps = append(b.eps, s)
	b.running.Add(s.vpk)
	b.violations += s.violations
	if s.violations > 0 {
		b.violEpisodes++
	}
}

// Episodes reports how many records have been added.
func (b *ReportBuilder) Episodes() int { return len(b.eps) }

// RunningVPK reports the Welford running mean and standard deviation of the
// per-episode VPK seen so far — cheap mid-campaign progress, no Build.
func (b *ReportBuilder) RunningVPK() (mean, stddev float64, n int) {
	return b.running.Mean(), b.running.StdDev(), b.running.N()
}

// RunningViolations reports the column's violation tallies so far: the
// total violation count and the number of episodes with at least one
// violation. violations matches Build().TotalViolations; violEpisodes over
// Episodes() is the column's running violation rate — the per-cell risk
// signal adaptive campaign policies allocate episodes by.
func (b *ReportBuilder) RunningViolations() (violations, violEpisodes int) {
	return b.violations, b.violEpisodes
}

// Build produces the column's Report. Episodes are re-ordered by (mission,
// repetition) first, so the result is bit-identical to BuildReport over
// records sorted the way the campaign runner sorts them — regardless of the
// order episodes completed and were added.
func (b *ReportBuilder) Build() Report {
	rep := Report{Injector: b.injector, Episodes: len(b.eps)}
	if len(b.eps) == 0 {
		return rep
	}
	eps := append([]episodeStat(nil), b.eps...)
	sort.SliceStable(eps, func(i, j int) bool {
		if eps[i].mission != eps[j].mission {
			return eps[i].mission < eps[j].mission
		}
		return eps[i].repetition < eps[j].repetition
	})
	vpks := make([]float64, 0, len(eps))
	apks := make([]float64, 0, len(eps))
	var ttvs []float64
	successes := 0
	for _, e := range eps {
		if e.success {
			successes++
		}
		vpks = append(vpks, e.vpk)
		apks = append(apks, e.apk)
		if e.hasTTV {
			ttvs = append(ttvs, e.ttv)
		}
		rep.TotalViolations += e.violations
		rep.TotalKM += e.km
	}
	rep.MSR = 100 * float64(successes) / float64(len(eps))
	rep.MeanVPK = stats.Mean(vpks)
	rep.VPK = stats.Summary(vpks)
	rep.MeanAPK = stats.Mean(apks)
	rep.APK = stats.Summary(apks)
	rep.MeanTTV = stats.Mean(ttvs)
	rep.TTV = stats.Summary(ttvs)
	rep.TTVEpisodes = len(ttvs)
	rep.AggregateVPK = float64(rep.TotalViolations) / math.Max(rep.TotalKM, minKM)
	return rep
}
