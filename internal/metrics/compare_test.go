package metrics

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/rng"
)

func mkRecords(injector string, n int, successRate float64, vpkMean float64, r *rng.Stream) []EpisodeRecord {
	out := make([]EpisodeRecord, n)
	for i := range out {
		rec := EpisodeRecord{Injector: injector, DistanceKM: 1}
		rec.Success = r.Bool(successRate)
		nViol := int(vpkMean * (0.5 + r.Float64()))
		for v := 0; v < nViol; v++ {
			rec.Violations = append(rec.Violations, ViolationRecord{Kind: "lane", TimeSec: float64(v)})
		}
		out[i] = rec
	}
	return out
}

func TestCompareDetectsLargeDifference(t *testing.T) {
	r := rng.New(1)
	base := mkRecords("noinject", 40, 0.95, 0, r)
	bad := mkRecords("fault", 40, 0.2, 10, r)
	c, err := Compare(base, bad, 500, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.DeltaMSR > -40 {
		t.Errorf("DeltaMSR = %v, want strongly negative", c.DeltaMSR)
	}
	if c.DeltaVPK < 3 {
		t.Errorf("DeltaVPK = %v, want strongly positive", c.DeltaVPK)
	}
	if !c.Significant {
		t.Error("large VPK difference not flagged significant")
	}
	if !(c.DeltaVPKLo <= c.DeltaVPK && c.DeltaVPK <= c.DeltaVPKHi) {
		t.Errorf("point estimate outside its own CI: %v not in [%v, %v]", c.DeltaVPK, c.DeltaVPKLo, c.DeltaVPKHi)
	}
}

func TestCompareNoDifference(t *testing.T) {
	r := rng.New(3)
	a := mkRecords("noinject", 60, 0.8, 1, r)
	b := mkRecords("same", 60, 0.8, 1, r)
	c, err := Compare(a, b, 500, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Identical distributions: CI should include zero (overwhelmingly).
	if c.Significant {
		t.Errorf("identical populations flagged significant: %+v", c)
	}
	if math.Abs(c.DeltaMSR) > 15 {
		t.Errorf("DeltaMSR = %v for identical populations", c.DeltaMSR)
	}
}

func TestCompareDeterministic(t *testing.T) {
	r := rng.New(5)
	a := mkRecords("a", 20, 0.9, 0, r)
	b := mkRecords("b", 20, 0.5, 4, r)
	c1, err := Compare(a, b, 300, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compare(a, b, 300, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("Compare not deterministic for fixed stream")
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(nil, mkRecords("x", 5, 1, 0, rng.New(7)), 10, rng.New(8)); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := Compare(mkRecords("x", 5, 1, 0, rng.New(9)), nil, 10, rng.New(10)); err == nil {
		t.Error("empty treatment accepted")
	}
}

func TestComparisonString(t *testing.T) {
	c := Comparison{Baseline: "noinject", Treatment: "gaussian", DeltaMSR: -40, Significant: true}
	if s := c.String(); s == "" {
		t.Error("empty String")
	}
}
