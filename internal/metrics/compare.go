package metrics

import (
	"fmt"

	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/stats"
)

// Comparison quantifies how an injector's campaign differs from a baseline,
// with bootstrap confidence intervals — the statistical backing for claims
// like "Gaussian noise lowers MSR by 40 points" in EXPERIMENTS.md.
type Comparison struct {
	Baseline, Treatment string
	Episodes            int

	// DeltaMSR is treatment MSR minus baseline MSR, percentage points,
	// with a bootstrap confidence interval.
	DeltaMSR               float64
	DeltaMSRLo, DeltaMSRHi float64

	// DeltaVPK is the difference of mean per-episode VPK.
	DeltaVPK               float64
	DeltaVPKLo, DeltaVPKHi float64

	// Significant reports whether the VPK interval excludes zero.
	Significant bool
}

// Compare bootstraps the difference in MSR and mean VPK between two record
// sets (alpha 0.05, deterministic given the stream).
func Compare(baseline, treatment []EpisodeRecord, iters int, r *rng.Stream) (Comparison, error) {
	if len(baseline) == 0 || len(treatment) == 0 {
		return Comparison{}, fmt.Errorf("metrics: compare needs records on both sides")
	}
	if iters <= 0 {
		iters = 1000
	}
	c := Comparison{
		Baseline:  baseline[0].Injector,
		Treatment: treatment[0].Injector,
		Episodes:  len(treatment),
	}

	bMSR, bVPK := successesAndVPK(baseline)
	tMSR, tVPK := successesAndVPK(treatment)
	c.DeltaMSR = 100 * (stats.Mean(tMSR) - stats.Mean(bMSR))
	c.DeltaVPK = stats.Mean(tVPK) - stats.Mean(bVPK)

	msrDiffs := make([]float64, iters)
	vpkDiffs := make([]float64, iters)
	for i := 0; i < iters; i++ {
		msrDiffs[i] = 100 * (resampleMean(tMSR, r) - resampleMean(bMSR, r))
		vpkDiffs[i] = resampleMean(tVPK, r) - resampleMean(bVPK, r)
	}
	c.DeltaMSRLo = stats.Percentile(msrDiffs, 2.5)
	c.DeltaMSRHi = stats.Percentile(msrDiffs, 97.5)
	c.DeltaVPKLo = stats.Percentile(vpkDiffs, 2.5)
	c.DeltaVPKHi = stats.Percentile(vpkDiffs, 97.5)
	c.Significant = c.DeltaVPKLo > 0 || c.DeltaVPKHi < 0
	return c, nil
}

func successesAndVPK(records []EpisodeRecord) (msr, vpk []float64) {
	msr = make([]float64, len(records))
	vpk = make([]float64, len(records))
	for i, rec := range records {
		if rec.Success {
			msr[i] = 1
		}
		vpk[i] = rec.VPK()
	}
	return msr, vpk
}

func resampleMean(xs []float64, r *rng.Stream) float64 {
	var sum float64
	for range xs {
		sum += xs[r.Intn(len(xs))]
	}
	return sum / float64(len(xs))
}

// String renders the comparison as one row.
func (c Comparison) String() string {
	sig := ""
	if c.Significant {
		sig = " *"
	}
	return fmt.Sprintf("%s vs %s: dMSR=%+.1fpp [%.1f, %.1f], dVPK=%+.2f [%.2f, %.2f]%s",
		c.Treatment, c.Baseline, c.DeltaMSR, c.DeltaMSRLo, c.DeltaMSRHi,
		c.DeltaVPK, c.DeltaVPKLo, c.DeltaVPKHi, sig)
}
