// Package metrics computes AVFI's resilience metrics from fault-injection
// campaign records (paper §II, "Resilience Assessment"):
//
//   - Mission Success Rate (MSR): percentage of missions completed within
//     the time budget. Higher is more resilient.
//   - Traffic Violations Per KM (VPK): violations (lane, curb, collisions)
//     per kilometer driven. Lower is more resilient.
//   - Accidents Per KM (APK): collisions per kilometer driven.
//   - Time To Traffic Violation (TTV): time from fault activation to its
//     first manifestation as a violation. Higher means more time for
//     detection and recovery.
//
// Figures 2-4 of the paper are distributions of these quantities across
// missions; Report carries both the means and the five-number summaries
// the paper's box plots show.
package metrics

import (
	"fmt"
	"math"

	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/stats"
)

// EpisodeRecord is one mission's outcome under one injector.
type EpisodeRecord struct {
	// Injector is the registered fault injector name ("noinject" for the
	// baseline).
	Injector string
	// Mission and Repetition identify the scenario.
	Mission    int
	Repetition int
	// Seed reproduces the episode bit-for-bit.
	Seed uint64
	// Success, DistanceKM, DurationSec summarize the drive.
	Success     bool
	DistanceKM  float64
	DurationSec float64
	// Violations are the debounced events.
	Violations []ViolationRecord
	// InjectionTimeSec is when the fault became active (0 = episode start).
	InjectionTimeSec float64
}

// ViolationRecord is one debounced violation event.
type ViolationRecord struct {
	Kind     string
	TimeSec  float64
	Accident bool
}

// FromSimResult converts a sim result into a record.
func FromSimResult(injector string, mission, repetition int, seed uint64, res sim.Result, injectionTime float64) EpisodeRecord {
	rec := EpisodeRecord{
		Injector:         injector,
		Mission:          mission,
		Repetition:       repetition,
		Seed:             seed,
		Success:          res.Success,
		DistanceKM:       res.DistanceM / 1000,
		DurationSec:      res.DurationS,
		InjectionTimeSec: injectionTime,
	}
	for _, v := range res.Violations {
		rec.Violations = append(rec.Violations, ViolationRecord{
			Kind:     v.Kind.String(),
			TimeSec:  v.TimeSec,
			Accident: v.Kind.IsAccident(),
		})
	}
	return rec
}

// minKM floors episode distance when normalizing per-km rates so a car
// that crashes on the spot yields a large-but-finite VPK.
const minKM = 0.01

// VPK returns the episode's violations per kilometer.
func (r EpisodeRecord) VPK() float64 {
	return float64(len(r.Violations)) / math.Max(r.DistanceKM, minKM)
}

// APK returns the episode's accidents (collisions) per kilometer.
func (r EpisodeRecord) APK() float64 {
	n := 0
	for _, v := range r.Violations {
		if v.Accident {
			n++
		}
	}
	return float64(n) / math.Max(r.DistanceKM, minKM)
}

// TTV returns the time from fault activation to the first subsequent
// violation; ok is false if no violation followed the injection.
func (r EpisodeRecord) TTV() (float64, bool) {
	best := math.MaxFloat64
	found := false
	for _, v := range r.Violations {
		if v.TimeSec >= r.InjectionTimeSec && v.TimeSec-r.InjectionTimeSec < best {
			best = v.TimeSec - r.InjectionTimeSec
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Report aggregates one injector's records — one bar/box of the paper's
// figures.
type Report struct {
	Injector string
	Episodes int

	// MSR is the mission success rate in percent.
	MSR float64

	// Per-episode VPK distribution and mean.
	MeanVPK float64
	VPK     stats.FiveNum

	// Per-episode APK distribution and mean.
	MeanAPK float64
	APK     stats.FiveNum

	// TTV distribution over episodes that had a post-injection violation.
	MeanTTV     float64
	TTV         stats.FiveNum
	TTVEpisodes int

	// Aggregates.
	TotalViolations int
	TotalKM         float64
	// AggregateVPK is total violations over total distance (the paper's
	// campaign-level "Total Violations / KM").
	AggregateVPK float64
}

// BuildReport aggregates records (all from one injector). It is the batch
// form of ReportBuilder: both paths share one implementation, so streaming
// aggregation matches batch aggregation exactly.
func BuildReport(injector string, records []EpisodeRecord) Report {
	b := NewReportBuilder(injector)
	for _, r := range records {
		b.Add(r)
	}
	return b.Build()
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-14s n=%-3d MSR=%5.1f%% VPK(med=%.2f iqr=%.2f mean=%.2f) APK(mean=%.2f) TTV(mean=%.2fs n=%d)",
		r.Injector, r.Episodes, r.MSR, r.VPK.Median, r.VPK.IQR(), r.MeanVPK, r.MeanAPK, r.MeanTTV, r.TTVEpisodes)
}
