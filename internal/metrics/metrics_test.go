package metrics

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/sim"
)

func rec(success bool, km float64, violTimes []float64, accidents int) EpisodeRecord {
	r := EpisodeRecord{
		Injector:   "test",
		Success:    success,
		DistanceKM: km,
	}
	for i, tm := range violTimes {
		r.Violations = append(r.Violations, ViolationRecord{
			Kind:     "lane",
			TimeSec:  tm,
			Accident: i < accidents,
		})
	}
	return r
}

func TestVPK(t *testing.T) {
	r := rec(true, 2, []float64{1, 2, 3, 4}, 0)
	if got := r.VPK(); got != 2 {
		t.Errorf("VPK = %v, want 2", got)
	}
}

func TestVPKZeroDistanceFloored(t *testing.T) {
	r := rec(false, 0, []float64{1}, 0)
	if got := r.VPK(); math.IsInf(got, 0) || got != 100 {
		t.Errorf("VPK with zero distance = %v, want 100 (floored)", got)
	}
}

func TestAPKCountsOnlyAccidents(t *testing.T) {
	r := rec(true, 1, []float64{1, 2, 3}, 2)
	if got := r.APK(); got != 2 {
		t.Errorf("APK = %v, want 2", got)
	}
}

func TestTTV(t *testing.T) {
	r := rec(false, 1, []float64{5, 9}, 0)
	r.InjectionTimeSec = 3
	ttv, ok := r.TTV()
	if !ok || ttv != 2 {
		t.Errorf("TTV = %v, %v; want 2", ttv, ok)
	}
	// Violations before injection don't count.
	r2 := rec(false, 1, []float64{1}, 0)
	r2.InjectionTimeSec = 3
	if _, ok := r2.TTV(); ok {
		t.Error("pre-injection violation counted for TTV")
	}
	r3 := rec(true, 1, nil, 0)
	if _, ok := r3.TTV(); ok {
		t.Error("TTV from no violations")
	}
}

func TestBuildReport(t *testing.T) {
	records := []EpisodeRecord{
		rec(true, 1, nil, 0),
		rec(true, 1, []float64{2}, 0),
		rec(false, 0.5, []float64{1, 2, 3}, 1),
		rec(false, 1, []float64{4}, 1),
	}
	rep := BuildReport("test", records)
	if rep.Episodes != 4 {
		t.Errorf("Episodes = %d", rep.Episodes)
	}
	if rep.MSR != 50 {
		t.Errorf("MSR = %v, want 50", rep.MSR)
	}
	if rep.TotalViolations != 5 {
		t.Errorf("TotalViolations = %d", rep.TotalViolations)
	}
	if math.Abs(rep.TotalKM-3.5) > 1e-12 {
		t.Errorf("TotalKM = %v", rep.TotalKM)
	}
	if math.Abs(rep.AggregateVPK-5/3.5) > 1e-12 {
		t.Errorf("AggregateVPK = %v", rep.AggregateVPK)
	}
	// Per-episode VPKs: 0, 1, 6, 1 -> mean 2.
	if math.Abs(rep.MeanVPK-2) > 1e-12 {
		t.Errorf("MeanVPK = %v", rep.MeanVPK)
	}
	if rep.VPK.Min != 0 || rep.VPK.Max != 6 {
		t.Errorf("VPK summary = %+v", rep.VPK)
	}
	if rep.TTVEpisodes != 3 {
		t.Errorf("TTVEpisodes = %d", rep.TTVEpisodes)
	}
}

func TestBuildReportEmpty(t *testing.T) {
	rep := BuildReport("empty", nil)
	if rep.Episodes != 0 || rep.MSR != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestReportBuilderMatchesBatchAnyOrder(t *testing.T) {
	var records []EpisodeRecord
	for m := 0; m < 4; m++ {
		for rep := 0; rep < 3; rep++ {
			r := rec(m%2 == 0, 0.5+float64(m)*0.25, []float64{float64(rep) + 1}, rep%2)
			r.Mission, r.Repetition = m, rep
			r.InjectionTimeSec = 0.5
			records = append(records, r)
		}
	}
	want := BuildReport("test", records)

	// Feed the builder in reversed (i.e. non-canonical completion) order;
	// Build must still equal the sorted batch exactly.
	b := NewReportBuilder("test")
	for i := len(records) - 1; i >= 0; i-- {
		b.Add(records[i])
	}
	if b.Episodes() != len(records) {
		t.Fatalf("Episodes = %d, want %d", b.Episodes(), len(records))
	}
	got := b.Build()
	if got != want {
		t.Errorf("builder diverged from batch:\n got %+v\nwant %+v", got, want)
	}

	mean, stddev, n := b.RunningVPK()
	if n != len(records) {
		t.Errorf("RunningVPK n = %d, want %d", n, len(records))
	}
	if math.Abs(mean-want.MeanVPK) > 1e-9 {
		t.Errorf("RunningVPK mean = %v, batch mean = %v", mean, want.MeanVPK)
	}
	if stddev <= 0 {
		t.Errorf("RunningVPK stddev = %v, want > 0", stddev)
	}

	violations, violEpisodes := b.RunningViolations()
	if violations != want.TotalViolations {
		t.Errorf("RunningViolations total = %d, batch TotalViolations = %d", violations, want.TotalViolations)
	}
	wantViolEps := 0
	for _, r := range records {
		if len(r.Violations) > 0 {
			wantViolEps++
		}
	}
	if violEpisodes != wantViolEps {
		t.Errorf("RunningViolations episodes = %d, want %d", violEpisodes, wantViolEps)
	}
}

func TestFromSimResult(t *testing.T) {
	res := sim.Result{
		Status:    sim.StatusSuccess,
		Success:   true,
		DistanceM: 1500,
		DurationS: 60,
		Violations: []sim.Violation{
			{Kind: sim.ViolationLane, TimeSec: 10, Pos: geom.V(1, 2)},
			{Kind: sim.ViolationCollisionPedestrian, TimeSec: 20},
		},
	}
	rec := FromSimResult("gaussian", 3, 1, 42, res, 5)
	if rec.Injector != "gaussian" || rec.Mission != 3 || rec.Seed != 42 {
		t.Errorf("identity fields wrong: %+v", rec)
	}
	if rec.DistanceKM != 1.5 {
		t.Errorf("DistanceKM = %v", rec.DistanceKM)
	}
	if len(rec.Violations) != 2 {
		t.Fatalf("violations = %d", len(rec.Violations))
	}
	if rec.Violations[0].Accident || !rec.Violations[1].Accident {
		t.Error("accident classification wrong")
	}
	ttv, ok := rec.TTV()
	if !ok || ttv != 5 {
		t.Errorf("TTV = %v, %v", ttv, ok)
	}
}

func TestReportString(t *testing.T) {
	rep := BuildReport("x", []EpisodeRecord{rec(true, 1, nil, 0)})
	if s := rep.String(); s == "" {
		t.Error("empty String()")
	}
}
